
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/test_calibrate.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_calibrate.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_calibrate.cpp.o.d"
  "/root/repo/tests/runtime/test_decision.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_decision.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_decision.cpp.o.d"
  "/root/repo/tests/runtime/test_engine.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_engine.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_engine.cpp.o.d"
  "/root/repo/tests/runtime/test_engine_properties.cpp" "tests/CMakeFiles/test_runtime.dir/runtime/test_engine_properties.cpp.o" "gcc" "tests/CMakeFiles/test_runtime.dir/runtime/test_engine_properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosparse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/cosparse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cosparse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cosparse_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cosparse_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cosparse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cosparse_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
