
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/test_algo_stats.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_algo_stats.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_algo_stats.cpp.o.d"
  "/root/repo/tests/graph/test_bfs.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_bfs.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_bfs.cpp.o.d"
  "/root/repo/tests/graph/test_cc.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_cc.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_cc.cpp.o.d"
  "/root/repo/tests/graph/test_cf.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_cf.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_cf.cpp.o.d"
  "/root/repo/tests/graph/test_pagerank.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_pagerank.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_pagerank.cpp.o.d"
  "/root/repo/tests/graph/test_sssp.cpp" "tests/CMakeFiles/test_graph.dir/graph/test_sssp.cpp.o" "gcc" "tests/CMakeFiles/test_graph.dir/graph/test_sssp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosparse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/cosparse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cosparse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cosparse_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cosparse_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cosparse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cosparse_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
