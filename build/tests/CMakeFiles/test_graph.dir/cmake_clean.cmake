file(REMOVE_RECURSE
  "CMakeFiles/test_graph.dir/graph/test_algo_stats.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_algo_stats.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_bfs.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_bfs.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_cc.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_cc.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_cf.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_cf.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_pagerank.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_pagerank.cpp.o.d"
  "CMakeFiles/test_graph.dir/graph/test_sssp.cpp.o"
  "CMakeFiles/test_graph.dir/graph/test_sssp.cpp.o.d"
  "test_graph"
  "test_graph.pdb"
  "test_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
