file(REMOVE_RECURSE
  "CMakeFiles/test_kernels.dir/kernels/test_frontier.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_frontier.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_ip_spmv.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_ip_spmv.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_kernel_properties.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_kernel_properties.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_op_spmv.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_op_spmv.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_partition.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_partition.cpp.o.d"
  "CMakeFiles/test_kernels.dir/kernels/test_semiring.cpp.o"
  "CMakeFiles/test_kernels.dir/kernels/test_semiring.cpp.o.d"
  "test_kernels"
  "test_kernels.pdb"
  "test_kernels[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
