
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernels/test_frontier.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_frontier.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_frontier.cpp.o.d"
  "/root/repo/tests/kernels/test_ip_spmv.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_ip_spmv.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_ip_spmv.cpp.o.d"
  "/root/repo/tests/kernels/test_kernel_properties.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_kernel_properties.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_kernel_properties.cpp.o.d"
  "/root/repo/tests/kernels/test_op_spmv.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_op_spmv.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_op_spmv.cpp.o.d"
  "/root/repo/tests/kernels/test_partition.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_partition.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_partition.cpp.o.d"
  "/root/repo/tests/kernels/test_semiring.cpp" "tests/CMakeFiles/test_kernels.dir/kernels/test_semiring.cpp.o" "gcc" "tests/CMakeFiles/test_kernels.dir/kernels/test_semiring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosparse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/cosparse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cosparse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cosparse_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cosparse_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cosparse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cosparse_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
