file(REMOVE_RECURSE
  "CMakeFiles/test_sparse.dir/sparse/test_datasets.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_datasets.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_formats.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_formats.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_generate.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_generate.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_io.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_io.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_serialize.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_serialize.cpp.o.d"
  "CMakeFiles/test_sparse.dir/sparse/test_vector.cpp.o"
  "CMakeFiles/test_sparse.dir/sparse/test_vector.cpp.o.d"
  "test_sparse"
  "test_sparse.pdb"
  "test_sparse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
