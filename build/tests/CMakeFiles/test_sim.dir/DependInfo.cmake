
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_analytic.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_analytic.cpp.o.d"
  "/root/repo/tests/sim/test_cache.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cpp.o.d"
  "/root/repo/tests/sim/test_config.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_config.cpp.o.d"
  "/root/repo/tests/sim/test_dram.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_dram.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_dram.cpp.o.d"
  "/root/repo/tests/sim/test_energy.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_energy.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_energy.cpp.o.d"
  "/root/repo/tests/sim/test_machine.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_machine.cpp.o.d"
  "/root/repo/tests/sim/test_machine_configs.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_machine_configs.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_machine_configs.cpp.o.d"
  "/root/repo/tests/sim/test_stats.cpp" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosparse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/cosparse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cosparse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cosparse_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cosparse_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/cosparse_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/cosparse_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
