file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_analytic.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_analytic.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cache.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cache.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_config.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_config.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_dram.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_dram.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_energy.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_energy.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_machine.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_machine_configs.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_machine_configs.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_stats.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_stats.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
