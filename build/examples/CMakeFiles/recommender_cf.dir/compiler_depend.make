# Empty compiler generated dependencies file for recommender_cf.
# This may be replaced when dependencies are built.
