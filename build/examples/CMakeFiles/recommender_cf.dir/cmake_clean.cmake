file(REMOVE_RECURSE
  "CMakeFiles/recommender_cf.dir/recommender_cf.cpp.o"
  "CMakeFiles/recommender_cf.dir/recommender_cf.cpp.o.d"
  "recommender_cf"
  "recommender_cf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommender_cf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
