# Empty compiler generated dependencies file for frontier_traversal.
# This may be replaced when dependencies are built.
