file(REMOVE_RECURSE
  "CMakeFiles/frontier_traversal.dir/frontier_traversal.cpp.o"
  "CMakeFiles/frontier_traversal.dir/frontier_traversal.cpp.o.d"
  "frontier_traversal"
  "frontier_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontier_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
