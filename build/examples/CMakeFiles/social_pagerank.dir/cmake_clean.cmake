file(REMOVE_RECURSE
  "CMakeFiles/social_pagerank.dir/social_pagerank.cpp.o"
  "CMakeFiles/social_pagerank.dir/social_pagerank.cpp.o.d"
  "social_pagerank"
  "social_pagerank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_pagerank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
