file(REMOVE_RECURSE
  "libcosparse_graph.a"
)
