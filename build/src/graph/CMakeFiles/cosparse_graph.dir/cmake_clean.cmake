file(REMOVE_RECURSE
  "CMakeFiles/cosparse_graph.dir/algorithms.cpp.o"
  "CMakeFiles/cosparse_graph.dir/algorithms.cpp.o.d"
  "libcosparse_graph.a"
  "libcosparse_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
