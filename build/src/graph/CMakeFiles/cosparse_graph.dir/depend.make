# Empty dependencies file for cosparse_graph.
# This may be replaced when dependencies are built.
