# Empty compiler generated dependencies file for cosparse_common.
# This may be replaced when dependencies are built.
