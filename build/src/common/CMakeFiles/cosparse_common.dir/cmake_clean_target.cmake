file(REMOVE_RECURSE
  "libcosparse_common.a"
)
