file(REMOVE_RECURSE
  "CMakeFiles/cosparse_common.dir/cli.cpp.o"
  "CMakeFiles/cosparse_common.dir/cli.cpp.o.d"
  "CMakeFiles/cosparse_common.dir/log.cpp.o"
  "CMakeFiles/cosparse_common.dir/log.cpp.o.d"
  "CMakeFiles/cosparse_common.dir/table.cpp.o"
  "CMakeFiles/cosparse_common.dir/table.cpp.o.d"
  "libcosparse_common.a"
  "libcosparse_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
