# Empty dependencies file for cosparse_kernels.
# This may be replaced when dependencies are built.
