file(REMOVE_RECURSE
  "libcosparse_kernels.a"
)
