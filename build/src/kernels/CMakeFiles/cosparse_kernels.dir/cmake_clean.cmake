file(REMOVE_RECURSE
  "CMakeFiles/cosparse_kernels.dir/partition.cpp.o"
  "CMakeFiles/cosparse_kernels.dir/partition.cpp.o.d"
  "libcosparse_kernels.a"
  "libcosparse_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
