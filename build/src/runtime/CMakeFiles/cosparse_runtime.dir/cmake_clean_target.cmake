file(REMOVE_RECURSE
  "libcosparse_runtime.a"
)
