
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/calibrate.cpp" "src/runtime/CMakeFiles/cosparse_runtime.dir/calibrate.cpp.o" "gcc" "src/runtime/CMakeFiles/cosparse_runtime.dir/calibrate.cpp.o.d"
  "/root/repo/src/runtime/decision.cpp" "src/runtime/CMakeFiles/cosparse_runtime.dir/decision.cpp.o" "gcc" "src/runtime/CMakeFiles/cosparse_runtime.dir/decision.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "src/runtime/CMakeFiles/cosparse_runtime.dir/engine.cpp.o" "gcc" "src/runtime/CMakeFiles/cosparse_runtime.dir/engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosparse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/cosparse_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cosparse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/cosparse_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
