# Empty compiler generated dependencies file for cosparse_runtime.
# This may be replaced when dependencies are built.
