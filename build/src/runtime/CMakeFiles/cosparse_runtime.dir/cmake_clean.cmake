file(REMOVE_RECURSE
  "CMakeFiles/cosparse_runtime.dir/calibrate.cpp.o"
  "CMakeFiles/cosparse_runtime.dir/calibrate.cpp.o.d"
  "CMakeFiles/cosparse_runtime.dir/decision.cpp.o"
  "CMakeFiles/cosparse_runtime.dir/decision.cpp.o.d"
  "CMakeFiles/cosparse_runtime.dir/engine.cpp.o"
  "CMakeFiles/cosparse_runtime.dir/engine.cpp.o.d"
  "libcosparse_runtime.a"
  "libcosparse_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
