
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/datasets.cpp" "src/sparse/CMakeFiles/cosparse_sparse.dir/datasets.cpp.o" "gcc" "src/sparse/CMakeFiles/cosparse_sparse.dir/datasets.cpp.o.d"
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/cosparse_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/cosparse_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/generate.cpp" "src/sparse/CMakeFiles/cosparse_sparse.dir/generate.cpp.o" "gcc" "src/sparse/CMakeFiles/cosparse_sparse.dir/generate.cpp.o.d"
  "/root/repo/src/sparse/graph.cpp" "src/sparse/CMakeFiles/cosparse_sparse.dir/graph.cpp.o" "gcc" "src/sparse/CMakeFiles/cosparse_sparse.dir/graph.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/cosparse_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/cosparse_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/serialize.cpp" "src/sparse/CMakeFiles/cosparse_sparse.dir/serialize.cpp.o" "gcc" "src/sparse/CMakeFiles/cosparse_sparse.dir/serialize.cpp.o.d"
  "/root/repo/src/sparse/vector.cpp" "src/sparse/CMakeFiles/cosparse_sparse.dir/vector.cpp.o" "gcc" "src/sparse/CMakeFiles/cosparse_sparse.dir/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosparse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
