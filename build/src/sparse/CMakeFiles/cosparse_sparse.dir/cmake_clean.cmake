file(REMOVE_RECURSE
  "CMakeFiles/cosparse_sparse.dir/datasets.cpp.o"
  "CMakeFiles/cosparse_sparse.dir/datasets.cpp.o.d"
  "CMakeFiles/cosparse_sparse.dir/formats.cpp.o"
  "CMakeFiles/cosparse_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/cosparse_sparse.dir/generate.cpp.o"
  "CMakeFiles/cosparse_sparse.dir/generate.cpp.o.d"
  "CMakeFiles/cosparse_sparse.dir/graph.cpp.o"
  "CMakeFiles/cosparse_sparse.dir/graph.cpp.o.d"
  "CMakeFiles/cosparse_sparse.dir/io.cpp.o"
  "CMakeFiles/cosparse_sparse.dir/io.cpp.o.d"
  "CMakeFiles/cosparse_sparse.dir/serialize.cpp.o"
  "CMakeFiles/cosparse_sparse.dir/serialize.cpp.o.d"
  "CMakeFiles/cosparse_sparse.dir/vector.cpp.o"
  "CMakeFiles/cosparse_sparse.dir/vector.cpp.o.d"
  "libcosparse_sparse.a"
  "libcosparse_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
