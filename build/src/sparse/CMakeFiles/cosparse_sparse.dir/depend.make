# Empty dependencies file for cosparse_sparse.
# This may be replaced when dependencies are built.
