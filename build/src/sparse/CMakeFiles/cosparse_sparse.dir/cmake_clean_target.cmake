file(REMOVE_RECURSE
  "libcosparse_sparse.a"
)
