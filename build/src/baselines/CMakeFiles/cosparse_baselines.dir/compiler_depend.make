# Empty compiler generated dependencies file for cosparse_baselines.
# This may be replaced when dependencies are built.
