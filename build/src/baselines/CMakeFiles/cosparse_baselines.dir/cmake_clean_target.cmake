file(REMOVE_RECURSE
  "libcosparse_baselines.a"
)
