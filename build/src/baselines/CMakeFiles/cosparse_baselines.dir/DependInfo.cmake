
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cpu_spmv.cpp" "src/baselines/CMakeFiles/cosparse_baselines.dir/cpu_spmv.cpp.o" "gcc" "src/baselines/CMakeFiles/cosparse_baselines.dir/cpu_spmv.cpp.o.d"
  "/root/repo/src/baselines/gpu_model.cpp" "src/baselines/CMakeFiles/cosparse_baselines.dir/gpu_model.cpp.o" "gcc" "src/baselines/CMakeFiles/cosparse_baselines.dir/gpu_model.cpp.o.d"
  "/root/repo/src/baselines/ligra/apps.cpp" "src/baselines/CMakeFiles/cosparse_baselines.dir/ligra/apps.cpp.o" "gcc" "src/baselines/CMakeFiles/cosparse_baselines.dir/ligra/apps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cosparse_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/cosparse_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
