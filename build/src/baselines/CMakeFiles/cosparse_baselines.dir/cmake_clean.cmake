file(REMOVE_RECURSE
  "CMakeFiles/cosparse_baselines.dir/cpu_spmv.cpp.o"
  "CMakeFiles/cosparse_baselines.dir/cpu_spmv.cpp.o.d"
  "CMakeFiles/cosparse_baselines.dir/gpu_model.cpp.o"
  "CMakeFiles/cosparse_baselines.dir/gpu_model.cpp.o.d"
  "CMakeFiles/cosparse_baselines.dir/ligra/apps.cpp.o"
  "CMakeFiles/cosparse_baselines.dir/ligra/apps.cpp.o.d"
  "libcosparse_baselines.a"
  "libcosparse_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
