file(REMOVE_RECURSE
  "CMakeFiles/cosparse_sim.dir/analytic.cpp.o"
  "CMakeFiles/cosparse_sim.dir/analytic.cpp.o.d"
  "CMakeFiles/cosparse_sim.dir/cache.cpp.o"
  "CMakeFiles/cosparse_sim.dir/cache.cpp.o.d"
  "CMakeFiles/cosparse_sim.dir/config.cpp.o"
  "CMakeFiles/cosparse_sim.dir/config.cpp.o.d"
  "CMakeFiles/cosparse_sim.dir/dram.cpp.o"
  "CMakeFiles/cosparse_sim.dir/dram.cpp.o.d"
  "CMakeFiles/cosparse_sim.dir/energy.cpp.o"
  "CMakeFiles/cosparse_sim.dir/energy.cpp.o.d"
  "CMakeFiles/cosparse_sim.dir/machine.cpp.o"
  "CMakeFiles/cosparse_sim.dir/machine.cpp.o.d"
  "CMakeFiles/cosparse_sim.dir/stats.cpp.o"
  "CMakeFiles/cosparse_sim.dir/stats.cpp.o.d"
  "libcosparse_sim.a"
  "libcosparse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
