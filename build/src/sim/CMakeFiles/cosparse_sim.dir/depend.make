# Empty dependencies file for cosparse_sim.
# This may be replaced when dependencies are built.
