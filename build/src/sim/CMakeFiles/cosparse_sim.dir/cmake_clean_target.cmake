file(REMOVE_RECURSE
  "libcosparse_sim.a"
)
