# Empty dependencies file for fig09_sssp_iters.
# This may be replaced when dependencies are built.
