file(REMOVE_RECURSE
  "CMakeFiles/fig09_sssp_iters.dir/fig09_sssp_iters.cpp.o"
  "CMakeFiles/fig09_sssp_iters.dir/fig09_sssp_iters.cpp.o.d"
  "fig09_sssp_iters"
  "fig09_sssp_iters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_sssp_iters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
