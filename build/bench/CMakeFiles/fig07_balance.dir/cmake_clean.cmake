file(REMOVE_RECURSE
  "CMakeFiles/fig07_balance.dir/fig07_balance.cpp.o"
  "CMakeFiles/fig07_balance.dir/fig07_balance.cpp.o.d"
  "fig07_balance"
  "fig07_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
