file(REMOVE_RECURSE
  "CMakeFiles/fig10_vs_ligra.dir/fig10_vs_ligra.cpp.o"
  "CMakeFiles/fig10_vs_ligra.dir/fig10_vs_ligra.cpp.o.d"
  "fig10_vs_ligra"
  "fig10_vs_ligra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_vs_ligra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
