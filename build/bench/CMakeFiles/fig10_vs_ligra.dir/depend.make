# Empty dependencies file for fig10_vs_ligra.
# This may be replaced when dependencies are built.
