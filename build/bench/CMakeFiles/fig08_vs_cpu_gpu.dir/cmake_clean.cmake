file(REMOVE_RECURSE
  "CMakeFiles/fig08_vs_cpu_gpu.dir/fig08_vs_cpu_gpu.cpp.o"
  "CMakeFiles/fig08_vs_cpu_gpu.dir/fig08_vs_cpu_gpu.cpp.o.d"
  "fig08_vs_cpu_gpu"
  "fig08_vs_cpu_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vs_cpu_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
