# Empty dependencies file for fig08_vs_cpu_gpu.
# This may be replaced when dependencies are built.
