# Empty dependencies file for spmv_micro.
# This may be replaced when dependencies are built.
