file(REMOVE_RECURSE
  "CMakeFiles/spmv_micro.dir/spmv_micro.cpp.o"
  "CMakeFiles/spmv_micro.dir/spmv_micro.cpp.o.d"
  "spmv_micro"
  "spmv_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
