# Empty compiler generated dependencies file for fig05_ip_hw.
# This may be replaced when dependencies are built.
