file(REMOVE_RECURSE
  "CMakeFiles/fig05_ip_hw.dir/fig05_ip_hw.cpp.o"
  "CMakeFiles/fig05_ip_hw.dir/fig05_ip_hw.cpp.o.d"
  "fig05_ip_hw"
  "fig05_ip_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_ip_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
