file(REMOVE_RECURSE
  "libcosparse_bench_util.a"
)
