# Empty compiler generated dependencies file for cosparse_bench_util.
# This may be replaced when dependencies are built.
