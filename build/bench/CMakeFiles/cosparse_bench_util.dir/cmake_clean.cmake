file(REMOVE_RECURSE
  "CMakeFiles/cosparse_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/cosparse_bench_util.dir/bench_util.cpp.o.d"
  "libcosparse_bench_util.a"
  "libcosparse_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosparse_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
