# Empty dependencies file for fig04_sw_crossover.
# This may be replaced when dependencies are built.
