file(REMOVE_RECURSE
  "CMakeFiles/fig04_sw_crossover.dir/fig04_sw_crossover.cpp.o"
  "CMakeFiles/fig04_sw_crossover.dir/fig04_sw_crossover.cpp.o.d"
  "fig04_sw_crossover"
  "fig04_sw_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_sw_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
