file(REMOVE_RECURSE
  "CMakeFiles/tab02_params.dir/tab02_params.cpp.o"
  "CMakeFiles/tab02_params.dir/tab02_params.cpp.o.d"
  "tab02_params"
  "tab02_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
