# Empty dependencies file for tab02_params.
# This may be replaced when dependencies are built.
