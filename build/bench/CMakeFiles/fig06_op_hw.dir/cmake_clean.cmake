file(REMOVE_RECURSE
  "CMakeFiles/fig06_op_hw.dir/fig06_op_hw.cpp.o"
  "CMakeFiles/fig06_op_hw.dir/fig06_op_hw.cpp.o.d"
  "fig06_op_hw"
  "fig06_op_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_op_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
