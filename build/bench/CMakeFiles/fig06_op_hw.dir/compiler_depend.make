# Empty compiler generated dependencies file for fig06_op_hw.
# This may be replaced when dependencies are built.
