# Empty dependencies file for tab03_datasets.
# This may be replaced when dependencies are built.
