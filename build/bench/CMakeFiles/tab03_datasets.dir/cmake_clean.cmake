file(REMOVE_RECURSE
  "CMakeFiles/tab03_datasets.dir/tab03_datasets.cpp.o"
  "CMakeFiles/tab03_datasets.dir/tab03_datasets.cpp.o.d"
  "tab03_datasets"
  "tab03_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
