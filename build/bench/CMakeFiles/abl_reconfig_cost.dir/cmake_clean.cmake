file(REMOVE_RECURSE
  "CMakeFiles/abl_reconfig_cost.dir/abl_reconfig_cost.cpp.o"
  "CMakeFiles/abl_reconfig_cost.dir/abl_reconfig_cost.cpp.o.d"
  "abl_reconfig_cost"
  "abl_reconfig_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reconfig_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
