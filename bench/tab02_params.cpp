// Table II reproduction: the microarchitectural parameters of the
// simulated hardware, printed from the actual SystemConfig defaults so the
// table can never drift from the implementation.
#include <iostream>

#include "bench_util.h"
#include "sim/energy.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("tab02_params", "Table II: microarchitectural parameters");
  cli.add_option("system", "AxB system", "16x16");
  bench::add_observability_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto sys = bench::parse_systems(cli.str("system")).front();

  std::cout << "Table II: microarchitectural parameters (as simulated), "
            << sys.name() << " system\n\n";

  Table t({"module", "parameter", "value"});
  auto row = [&](const char* m, const char* p, const std::string& v) {
    t.add_row({m, p, v});
  };

  row("PE/LCP", "core model",
      "1-issue in-order (MinorCPU-like), blocking memory ops");
  row("PE/LCP", "clock", Table::fmt(sys.freq_ghz, 1) + " GHz");
  row("PE/LCP", "count",
      std::to_string(sys.num_pes()) + " PEs + " +
          std::to_string(sys.num_tiles) + " LCPs");
  row("RCache", "bank size", std::to_string(sys.bank_bytes / 1024) + " kB");
  row("RCache", "cache mode",
      std::to_string(sys.associativity) + "-way set-assoc, " +
          std::to_string(sys.line_bytes) + " B lines, LRU, write-back, " +
          "stride prefetcher (depth " +
          std::to_string(sys.prefetch_depth) + ")");
  row("RCache", "SPM mode", "word-granular, deterministic " +
                                Table::fmt(sys.spm_latency, 0) + "-cycle");
  row("RCache", "L1 banks/tile", std::to_string(sys.l1_banks_per_tile()));
  row("RCache", "L2 banks/tile", std::to_string(sys.l2_banks_per_tile()));
  row("RXBar", "traversal", Table::fmt(sys.xbar_latency, 0) + " cycle");
  row("RXBar", "shared arbitration",
      "statistical: " + Table::fmt(sys.xbar_conflict_factor, 2) +
          " x (sharers-1)/banks cycles per access");
  row("RXBar", "private mode", "transparent, direct access");
  row("Main memory", "organization",
      std::to_string(sys.dram_channels) + " pseudo-channels @ " +
          Table::fmt(sys.dram_bytes_per_cycle_per_channel * sys.freq_ghz, 0) +
          " GB/s each");
  row("Main memory", "latency",
      Table::fmt(sys.dram_latency_min, 0) + "-" +
          Table::fmt(sys.dram_latency_max, 0) + " ns, utilization-dependent");
  row("Reconfiguration", "mode switch",
      Table::fmt(sys.reconfig_cycles, 0) + " cycles + dirty-line flush");
  row("LCP", "OP result handling",
      Table::fmt(sys.lcp_cycles_per_element(), 1) + " cycles/element (2 + 0.5/PE)");

  const sim::EnergyParams ep;
  row("Energy", "PE active", Table::fmt(ep.pe_active_pj, 1) + " pJ/cycle");
  row("Energy", "cache access", Table::fmt(ep.cache_access_pj, 1) + " pJ");
  row("Energy", "SPM access", Table::fmt(ep.spm_access_pj, 1) + " pJ");
  row("Energy", "crossbar hop", Table::fmt(ep.xbar_hop_pj, 1) + " pJ");
  row("Energy", "DRAM", Table::fmt(ep.dram_pj_per_byte, 1) + " pJ/B");

  bench::emit("tab02", t);

  std::cout << "On-chip capacity: " << sys.l1_bytes_per_tile() / 1024
            << " kB L1 per tile, " << sys.l2_bytes_total() / 1024
            << " kB L2 total; SCS SPM "
            << sys.scs_spm_bytes_per_tile() / 1024
            << " kB/tile; PS SPM " << sys.ps_spm_bytes_per_pe() / 1024
            << " kB/PE\n";
  return bench::finish_run();
}
