// Tile-parallel simulation benchmark: wall-clock vs --sim-threads.
//
// Runs the same auto-reconfiguring SpMV sequence (a density ramp that
// crosses the IP/OP boundary, so both kernels and a hardware
// reconfiguration are exercised) once per thread count on a 16-tile
// system, and
//   (a) asserts the serialized run report of every parallel leg is
//       byte-identical to the serial engine's (the DESIGN.md §11
//       guarantee, enforced here on every benchmark run), and
//   (b) records honest host wall-clock numbers in BENCH_parallel_sim.json.
// Speedup depends on the host: with fewer cores than threads the parallel
// legs cannot win (the log/replay machinery still costs a few percent),
// which is why the JSON records hardware_concurrency alongside the
// timings rather than a context-free speedup claim.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "runtime/report.h"
#include "sim/profile.h"
#include "sparse/generate.h"

using namespace cosparse;

namespace {

struct Leg {
  std::uint32_t threads = 0;
  double wall_ms = 0.0;
  /// Phase decomposition from the "sim.tile_fill_ms" / "sim.replay_ms"
  /// histograms (per rep; zero for the serial leg, which has no
  /// log/replay machinery). Localizes the replay bottleneck.
  double fill_ms = 0.0;
  double replay_ms = 0.0;
  /// Per-leg sampling CPU profile (cosparse.cpu_profile/v1: sample counts
  /// and per-phase shares). Null when sampling was unavailable — e.g. a
  /// process-wide --cpu-profile session already owns the SIGPROF timer.
  Json cpu_profile;
  std::string report;
  Cycles cycles = 0;
};

Leg run_leg(const sparse::Coo& m, const sim::SystemConfig& sys,
            std::uint32_t threads, int reps) {
  Leg leg;
  leg.threads = threads;
  const Index n = m.rows();
  // Cadence-disabled telemetry, attached to the *machine* only: it
  // harvests the fill/replay wall-time histograms without adding a
  // telemetry section to the run report (which must stay byte-identical
  // across legs).
  obs::Telemetry phase_times;
  // Per-leg host-CPU sampling: attributes each leg's wall time to the
  // sim.log_fill / sim.replay / kernel.* phases (the instrument ROADMAP
  // item 5 asks for). Skipped when a process-wide --cpu-profile session
  // already owns the ITIMER_PROF timer. Stopped (symbolization and all)
  // only after the timed region ends.
  obs::SampleProfiler sampler;
  const bool sampling =
      !obs::SampleProfiler::any_active() && sampler.start();
  const auto t0 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < reps; ++rep) {
    runtime::EngineOptions opts;  // deliberately not engine_options():
    opts.sim_threads = threads;   // the process executor must not override
    runtime::Engine eng(m, sys, opts);
    eng.machine().set_telemetry(&phase_times);
    sim::MemProfiler prof;
    eng.machine().set_profiler(&prof);
    std::uint64_t iter = 0;
    for (const double density :
         {0.0008, 0.003, 0.03, 0.3, 0.9, 0.02, 0.001}) {
      const auto x = sparse::random_sparse_vector(n, density, 31 + iter++);
      eng.spmv(runtime::Engine::Frontier::from_sparse(x),
               kernels::PlainSpmv{});
    }
    if (rep == 0) {
      leg.report = runtime::make_run_report(eng, "parallel_sim").to_string();
      leg.cycles = eng.total_cycles();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  leg.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
  if (sampling) {
    sampler.stop();
    leg.cpu_profile = sampler.report_json();
  }
  const auto sum_of = [&](const char* name) {
    const obs::StreamingHistogram* h = phase_times.find_histogram(name);
    return h == nullptr ? 0.0 : h->sum() / reps;
  };
  leg.fill_ms = sum_of("sim.tile_fill_ms");
  leg.replay_ms = sum_of("sim.replay_ms");
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("parallel_sim",
                "Wall-clock of the tile-parallel simulator vs thread count "
                "(simulated results are bit-identical by construction)");
  bench::add_observability_options(cli);
  cli.add_option("vertices", "matrix dimension", "8192");
  cli.add_option("edges", "matrix non-zeros", "131072");
  cli.add_option("system", "AxB system", "16x4");
  cli.add_option("threads", "sim thread counts (0 = serial)", "0,1,2,4,8");
  cli.add_option("reps", "timed repetitions per leg", "3");
  cli.add_option("json-out", "machine-readable results",
                 "BENCH_parallel_sim.json");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto n = static_cast<Index>(cli.integer("vertices"));
  const auto nnz = static_cast<std::uint64_t>(cli.integer("edges"));
  const auto sys = bench::parse_systems(cli.str("system")).front();
  const int reps = static_cast<int>(cli.integer("reps"));
  const auto m =
      sparse::uniform_random(n, n, nnz, 11, sparse::ValueDist::kUniform01);
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::cout << "parallel_sim: " << n << " vertices, " << nnz
            << " nnz on " << sys.name() << "; host has " << host_cores
            << " core(s)\n\n";

  std::vector<Leg> legs;
  for (const auto t : cli.int_list("threads")) {
    legs.push_back(run_leg(m, sys, static_cast<std::uint32_t>(t), reps));
  }
  const Leg& serial = legs.front();

  Table table({"sim-threads", "wall ms", "fill ms", "replay ms",
               "speedup vs serial", "report == serial"});
  bool all_identical = true;
  Json jlegs = Json::array();
  for (const Leg& leg : legs) {
    const bool same = leg.report == serial.report;
    all_identical = all_identical && same;
    const double speedup = leg.wall_ms > 0 ? serial.wall_ms / leg.wall_ms : 0;
    table.add_row({std::to_string(leg.threads), Table::fmt(leg.wall_ms, 2),
                   Table::fmt(leg.fill_ms, 2), Table::fmt(leg.replay_ms, 2),
                   Table::fmt_ratio(speedup), same ? "yes" : "NO"});
    Json o = Json::object();
    o["sim_threads"] = leg.threads;
    o["wall_ms"] = leg.wall_ms;
    o["log_fill_wall_ms"] = leg.fill_ms;
    o["replay_wall_ms"] = leg.replay_ms;
    o["speedup_vs_serial"] = speedup;
    o["report_identical_to_serial"] = same;
    if (leg.cpu_profile.is_object()) o["cpu_profile"] = leg.cpu_profile;
    jlegs.push_back(std::move(o));
  }
  bench::emit("parallel_sim", table);

  Json doc = Json::object();
  doc["schema"] = "cosparse.bench_parallel_sim/v1";
  doc["system"] = sys.name();
  doc["vertices"] = n;
  doc["edges"] = nnz;
  doc["iterations_per_leg"] = 7;
  doc["reps"] = reps;
  doc["host_cores"] = host_cores;
  doc["simulated_cycles"] = serial.cycles;
  doc["all_reports_identical"] = all_identical;
  doc["note"] =
      "wall_ms is host wall-clock on the machine named by host_cores; "
      "parallel speedup requires host_cores > 1. Simulated results are "
      "bit-identical across thread counts (asserted per run). "
      "log_fill_wall_ms / replay_wall_ms split the tile phases into the "
      "parallel log-fill part and the serial deterministic replay part "
      "(zero for the serial leg, which executes directly without a log). "
      "cpu_profile is each leg's sampling CPU profile: per-phase shares "
      "of host CPU samples (cosparse.cpu_profile/v1).";
  doc["legs"] = std::move(jlegs);
  std::ofstream out(cli.str("json-out"));
  out << doc.dump(1) << "\n";
  std::cout << "wrote " << cli.str("json-out") << "\n";

  const int exit_code = bench::finish_run();
  if (!all_identical) {
    std::cerr << "FAIL: a parallel leg diverged from the serial report\n";
    return 1;
  }
  return exit_code;
}
