// Native-vs-sim host benchmark (ROADMAP item 4, DESIGN.md §14).
//
// Runs the same auto-reconfiguring SpMV density ramp through the engine
// twice per sweep matrix — once cycle-accurately (exec_mode = sim) and
// once through the native host kernels (exec_mode = native) — asserting
// per leg that every output bit and every audited decision is identical,
// and records honest wall-clock numbers in BENCH_native_host.json. The
// gate: native must beat sim by --min-speedup (default 10x) on the
// largest (sparsest) power-law matrix of the paper's equal-nnz family.
// Native thread-scaling legs {1, 8} ride along; speedup there depends on
// host_cores, which the JSON records instead of a context-free claim.
// A BFS leg captures the per-iteration push/pull decision trail.
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/digest.h"
#include "graph/algorithms.h"
#include "native/decision.h"
#include "native/simd.h"
#include "runtime/report.h"
#include "sparse/generate.h"

using namespace cosparse;

namespace {

constexpr double kDensityRamp[] = {0.0008, 0.003, 0.03, 0.3, 0.9, 0.02,
                                   0.001};

struct LegResult {
  double wall_ms = 0.0;
  std::string digest;     ///< every output bit of every iteration
  std::string decisions;  ///< serialized decision audit (mode-independent)
};

/// One engine run over the density ramp; digests every output bit.
/// Engine construction (matrix partitioning — mode-independent work) and
/// frontier generation stay outside the timing window: wall_ms measures
/// the spmv() calls, i.e. the execution backends being compared.
LegResult run_ramp(const sparse::Coo& m, const sim::SystemConfig& sys,
                   native::ExecMode mode, std::uint32_t threads, int reps) {
  LegResult leg;
  const Index n = m.rows();
  std::vector<runtime::Engine::Frontier> frontiers;
  std::uint64_t iter = 0;
  for (const double density : kDensityRamp) {
    frontiers.push_back(runtime::Engine::Frontier::from_sparse(
        sparse::random_sparse_vector(n, density, 31 + iter++)));
  }
  for (int rep = 0; rep < reps; ++rep) {
    runtime::EngineOptions opts;  // deliberately not engine_options():
    opts.sim_threads = threads;   // each leg pins its own thread count
    opts.exec_mode = mode;
    runtime::Engine eng(m, sys, opts);
    Digest d;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& f : frontiers) {
      const auto out = eng.spmv(f, kernels::PlainSpmv{});
      d.update_u64(out.num_touched());
      out.for_each_touched(
          [&d](Index r, Value v) { d.update_index(r); d.update_value(v); });
    }
    const auto t1 = std::chrono::steady_clock::now();
    leg.wall_ms +=
        std::chrono::duration<double, std::milli>(t1 - t0).count() / reps;
    if (rep == 0) {
      leg.digest = d.hex();
      leg.decisions = eng.audit().to_json().dump(1);
    }
  }
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("native_host",
                "Native host-kernel wall-clock vs the cycle-accurate "
                "simulator (results are byte-identical by construction; "
                "asserted per leg)");
  bench::add_common_options(cli, "4");
  cli.add_option("system", "AxB system", "4x8");
  cli.add_option("reps", "timed repetitions per native leg", "3");
  cli.add_option("min-speedup",
                 "gate: minimum native-over-sim speedup on the largest "
                 "matrix (0 disables)",
                 "10");
  cli.add_option("json-out", "machine-readable results",
                 "BENCH_native_host.json");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto sys = bench::parse_systems(cli.str("system")).front();
  const int reps = static_cast<int>(cli.integer("reps"));
  const double min_speedup =
      static_cast<double>(cli.integer("min-speedup"));
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::cout << "native_host: power-law sweep at scale " << scale << " on "
            << sys.name() << "; host has " << host_cores << " core(s), simd "
            << native::to_string(native::simd_level()) << "\n\n";

  const auto sweep = bench::sweep_matrices(scale, /*power_law=*/true, seed);

  Table table({"matrix", "nnz", "sim ms", "native ms", "native ms (8t)",
               "speedup", "bit-identical"});
  Json jlegs = Json::array();
  bool all_identical = true;
  double largest_speedup = 0.0;
  for (const auto& [label, m] : sweep) {
    // Sim is the expensive leg: one rep. Native legs are cheap: `reps`.
    const LegResult sim = run_ramp(m, sys, native::ExecMode::kSim, 0, 1);
    const LegResult nat1 =
        run_ramp(m, sys, native::ExecMode::kNative, 1, reps);
    const LegResult nat8 =
        run_ramp(m, sys, native::ExecMode::kNative, 8, reps);
    const bool identical = sim.digest == nat1.digest &&
                           sim.digest == nat8.digest &&
                           sim.decisions == nat1.decisions;
    all_identical = all_identical && identical;
    const double speedup =
        nat1.wall_ms > 0.0 ? sim.wall_ms / nat1.wall_ms : 0.0;
    largest_speedup = speedup;  // sweep order: the last matrix is largest
    table.add_row({label, std::to_string(m.nnz()), Table::fmt(sim.wall_ms, 2),
                   Table::fmt(nat1.wall_ms, 2), Table::fmt(nat8.wall_ms, 2),
                   Table::fmt_ratio(speedup), identical ? "yes" : "NO"});
    Json o = Json::object();
    o["matrix"] = label;
    o["dimension"] = m.rows();
    o["nnz"] = m.nnz();
    o["sim_wall_ms"] = sim.wall_ms;
    o["native_wall_ms"] = nat1.wall_ms;
    o["native_wall_ms_8_threads"] = nat8.wall_ms;
    o["speedup_native_over_sim"] = speedup;
    o["bit_identical"] = identical;
    o["output_digest"] = sim.digest;
    jlegs.push_back(std::move(o));
  }
  bench::emit("native_host", table);

  // BFS leg: a real traversal under the native backend, recording the
  // per-iteration push/pull decision trail the audit keeps (identically
  // to sim mode — the differential harness enforces that).
  Json bfs_leg = Json::object();
  {
    const auto& m = sweep.front().matrix;
    runtime::EngineOptions opts;
    opts.exec_mode = native::ExecMode::kNative;
    opts.sim_threads = 0;
    runtime::Engine eng(m, sys, opts);
    const auto t0 = std::chrono::steady_clock::now();
    const auto bfs = graph::bfs(eng, /*source=*/0);
    const auto t1 = std::chrono::steady_clock::now();
    std::size_t reached = 0;
    for (auto l : bfs.level) reached += l >= 0 ? 1 : 0;
    bfs_leg["matrix"] = sweep.front().label;
    bfs_leg["wall_ms"] =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    bfs_leg["reached"] = reached;
    bfs_leg["iterations"] = bfs.stats.iterations;
    bfs_leg["pull_iterations"] = eng.native_decisions().pulls();
    bfs_leg["push_iterations"] = eng.native_decisions().pushes();
    Json iters = Json::array();
    for (const auto& it : eng.iterations()) {
      Json rec = Json::object();
      rec["index"] = it.index;
      rec["density"] = it.density;
      rec["kernel"] = it.sw == runtime::SwConfig::kIP ? "pull" : "push";
      rec["hw"] = sim::to_string(it.hw);
      iters.push_back(std::move(rec));
    }
    bfs_leg["per_iteration"] = std::move(iters);
    bfs_leg["decision_audit"] = eng.audit().to_json();
    std::cout << "\nBFS (native): reached " << reached << " vertices in "
              << bfs.stats.iterations << " iterations ("
              << eng.native_decisions().pulls() << " pull, "
              << eng.native_decisions().pushes() << " push)\n";
  }

  Json doc = Json::object();
  doc["schema"] = "cosparse.bench_native_host/v1";
  doc["system"] = sys.name();
  doc["scale"] = scale;
  doc["seed"] = seed;
  doc["reps"] = reps;
  doc["host_cores"] = host_cores;
  doc["cpu_model"] = native::cpu_model_string();
  doc["simd"] = std::string(native::to_string(native::simd_level()));
  doc["iterations_per_leg"] =
      static_cast<std::uint64_t>(std::size(kDensityRamp));
  doc["all_outputs_bit_identical"] = all_identical;
  doc["largest_matrix_speedup"] = largest_speedup;
  doc["note"] =
      "wall_ms is host wall-clock on the machine named by cpu_model / "
      "host_cores; speedup_native_over_sim compares the serial "
      "cycle-accurate simulator against the single-threaded native "
      "backend on the same density ramp (outputs asserted bit-identical "
      "per leg, decision audits included). native_wall_ms_8_threads only "
      "beats the 1-thread leg when host_cores > 1. simd names the "
      "dispatched kernel level (COSPARSE_NATIVE_SIMD=off forces scalar).";
  doc["legs"] = std::move(jlegs);
  doc["bfs"] = std::move(bfs_leg);
  std::ofstream out(cli.str("json-out"));
  out << doc.dump(1) << "\n";
  std::cout << "wrote " << cli.str("json-out") << "\n";

  const int exit_code = bench::finish_run();
  if (!all_identical) {
    std::cerr << "FAIL: a native leg diverged from the sim report\n";
    return 1;
  }
  if (min_speedup > 0.0 && largest_speedup < min_speedup) {
    std::cerr << "FAIL: native speedup " << largest_speedup
              << "x on the largest matrix is below the " << min_speedup
              << "x gate\n";
    return 1;
  }
  return exit_code;
}
