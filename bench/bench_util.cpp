#include "bench_util.h"

#include <filesystem>
#include <iostream>
#include <optional>
#include <sstream>
#include <thread>

#include <memory>

#include "common/error.h"
#include "kernels/address_map.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "native/simd.h"
#include "sim/parallel.h"
#include "sim/profile.h"
#include "sparse/generate.h"

namespace cosparse::bench {

Index vblock_cols_for(const sim::SystemConfig& cfg) {
  const double spm = static_cast<double>(cfg.scs_spm_bytes_per_tile());
  const auto cols = static_cast<Index>(spm / 8.0);
  return std::max<Index>(64, cols / 64 * 64);
}

KernelRun time_ip(const sparse::Coo& m, const kernels::DenseFrontier& x,
                  const sim::SystemConfig& cfg, sim::HwConfig hw,
                  bool nnz_balanced, bool vblocked) {
  sim::Machine machine(cfg, hw);
  machine.set_profiler(profiler());
  machine.set_executor(executor());
  machine.set_telemetry(telemetry());
  kernels::AddressMap amap(machine);
  const auto part = kernels::IpPartitionedMatrix::build(
      m, cfg.num_pes(), vblocked ? vblock_cols_for(cfg) : 0, nnz_balanced);
  {
    const obs::PhaseScope kp("kernel.ip");
    kernels::run_inner_product(machine, amap, part, x, kernels::PlainSpmv{});
  }
  KernelRun run;
  run.cycles = machine.cycles();
  run.energy_pj = machine.energy_pj();
  run.stats = machine.stats();
  run.load_imbalance = machine.load_imbalance();
  return run;
}

KernelRun time_op(const sparse::Coo& m, const sparse::SparseVector& x,
                  const sim::SystemConfig& cfg, sim::HwConfig hw,
                  bool nnz_balanced) {
  sim::Machine machine(cfg, hw);
  machine.set_profiler(profiler());
  machine.set_executor(executor());
  machine.set_telemetry(telemetry());
  kernels::AddressMap amap(machine);
  const auto striped =
      kernels::OpStripedMatrix::build(m, cfg.num_tiles, nnz_balanced);
  {
    const obs::PhaseScope kp("kernel.op");
    kernels::run_outer_product(machine, amap, striped, x, nullptr,
                               kernels::PlainSpmv{});
  }
  KernelRun run;
  run.cycles = machine.cycles();
  run.energy_pj = machine.energy_pj();
  run.stats = machine.stats();
  run.load_imbalance = machine.load_imbalance();
  return run;
}

std::vector<sim::SystemConfig> parse_systems(const std::string& list) {
  std::vector<sim::SystemConfig> out;
  std::string item;
  std::stringstream ss(list);
  while (std::getline(ss, item, ',')) {
    const auto x = item.find('x');
    COSPARSE_REQUIRE(x != std::string::npos,
                     "system spec must look like 4x8: " + item);
    const auto tiles = static_cast<std::uint32_t>(
        std::stoul(item.substr(0, x)));
    const auto pes =
        static_cast<std::uint32_t>(std::stoul(item.substr(x + 1)));
    out.push_back(sim::SystemConfig::transmuter(tiles, pes));
  }
  COSPARSE_REQUIRE(!out.empty(), "no systems given");
  return out;
}

std::vector<SweepMatrix> sweep_matrices(unsigned scale, bool power_law,
                                        std::uint64_t seed) {
  COSPARSE_REQUIRE(scale >= 1, "scale must be >= 1");
  // Paper family: N in {131k, 262k, 524k, 1M}, equal nnz (~4.19M), so the
  // largest matrix is also the sparsest (Fig. 5's observation).
  const std::vector<std::pair<std::string, Index>> dims = {
      {"N=131k", 131072},
      {"N=262k", 262144},
      {"N=524k", 524288},
      {"N=1M", 1048576},
  };
  const std::uint64_t nnz = 4194304 / scale;
  std::vector<SweepMatrix> out;
  std::uint64_t s = seed;
  for (const auto& [label, n] : dims) {
    const Index dim = n / scale;
    out.push_back(
        {label, power_law
                    ? sparse::power_law(dim, dim, nnz, 2.1, s,
                                        sparse::ValueDist::kUniform01)
                    : sparse::uniform_random(dim, dim, nnz, s,
                                             sparse::ValueDist::kUniform01)});
    ++s;
  }
  return out;
}

namespace {

/// Process-wide observability sinks shared by every harness binary. Armed
/// by init_observability(); all defaults are inert.
struct ObsState {
  std::string trace_path;
  std::string report_path;
  obs::Trace trace;  ///< disabled until a trace output is requested
  obs::MetricsRegistry metrics;
  obs::Report report{"bench"};
  std::unique_ptr<sim::MemProfiler> profiler;  ///< armed by --profile
  std::unique_ptr<sim::ParallelExecutor> executor;  ///< armed by --sim-threads
  /// Armed by --telemetry-interval / COSPARSE_TELEMETRY (cadence,
  /// exporter outputs, SLO watchdog).
  obs::TelemetrySession telemetry;
  /// Armed by --cpu-profile / COSPARSE_CPU_PROFILE (sampling CPU
  /// profiler; folded stacks + flamegraph + cpu_profile report section).
  obs::CpuProfileSession cpu_profile;
  /// --exec-mode / COSPARSE_EXEC_MODE resolution (default sim).
  native::ExecMode exec_mode = native::ExecMode::kSim;
};

ObsState& obs_state() {
  static ObsState s;
  return s;
}

}  // namespace

void emit(const std::string& name, const Table& table) {
  table.print(std::cout);
  std::cout << std::endl;
  std::filesystem::create_directories("bench_out");
  table.write_csv("bench_out/" + name + ".csv");

  // Mirror into the run report so --report-out captures the same rows the
  // CSV does.
  Json t = Json::object();
  Json header = Json::array();
  for (const auto& h : table.header()) header.push_back(h);
  t["header"] = std::move(header);
  Json rows = Json::array();
  for (const auto& row : table.data()) {
    Json r = Json::array();
    for (const auto& cell : row) r.push_back(cell);
    rows.push_back(std::move(r));
  }
  t["rows"] = std::move(rows);
  obs_state().report.root()["tables"][name] = std::move(t);
}

void add_common_options(CliParser& cli, const std::string& default_scale) {
  cli.add_option("scale", "size divisor (1 = paper-exact dimensions)",
                 default_scale);
  cli.add_option("seed", "base RNG seed", "1000");
  add_observability_options(cli);
}

void add_observability_options(CliParser& cli) {
  cli.add_option("report-out",
                 "write a machine-readable JSON run report to this path", "");
  cli.add_option("trace-out",
                 "write Perfetto trace-event JSON to this path "
                 "(COSPARSE_TRACE env var is the fallback)",
                 "");
  cli.add_flag("profile",
               "attach the region-attributed memory profiler (adds the "
               "memory_profile report section; see cosparse-prof)");
  cli.add_option("sim-threads",
                 "host threads for tile-parallel simulation (0 = serial; "
                 "COSPARSE_SIM_THREADS is the fallback; results are "
                 "bit-identical for any value)",
                 "");
  cli.add_option("exec-mode",
                 "execution backend: sim (cycle-accurate, the default) or "
                 "native (results-only host kernels, no cycle model; "
                 "COSPARSE_EXEC_MODE is the fallback; results are "
                 "byte-identical across modes)",
                 "");
  obs::TelemetrySession::add_cli_options(cli);
  obs::CpuProfileSession::add_cli_options(cli);
}

void init_observability(const CliParser& cli) {
  ObsState& st = obs_state();
  st.report = obs::Report(cli.program());
  st.report_path = cli.str("report-out");
  st.trace_path = cli.str("trace-out");
  if (st.trace_path.empty()) st.trace_path = obs::trace_path_from_env();
  if (!st.trace_path.empty()) st.trace = obs::Trace(true);
  if (cli.has("profile") && cli.flag("profile")) {
    st.profiler = std::make_unique<sim::MemProfiler>();
  }
  std::uint32_t sim_threads = sim::ParallelExecutor::threads_from_env();
  if (cli.has("sim-threads") && !cli.str("sim-threads").empty()) {
    sim_threads = static_cast<std::uint32_t>(cli.integer("sim-threads"));
  }
  if (sim_threads >= 1) {
    st.executor = std::make_unique<sim::ParallelExecutor>(sim_threads);
    // Recorded only when parallel simulation is on: the setting never
    // changes results, and serial reports stay byte-comparable across
    // hosts that do or don't set COSPARSE_SIM_THREADS.
    st.report.set("sim_threads", sim_threads);
  }
  // Runs are only reproducible with their seed; keep it in the report.
  if (cli.has("seed")) st.report.set("seed", cli.integer("seed"));
  std::optional<std::string> mode;
  if (cli.has("exec-mode") && !cli.str("exec-mode").empty()) {
    mode = cli.str("exec-mode");
  }
  st.exec_mode = native::resolve_exec_mode(mode);
  // Honest-machine stamp: committed BENCH JSONs must say what hardware and
  // execution mode produced them. (Machine-dependent by design — never
  // byte-compare a section that names the CPU.)
  Json host = Json::object();
  host["exec_mode"] = std::string(native::to_string(st.exec_mode));
  host["cpu_model"] = native::cpu_model_string();
  host["simd"] = std::string(native::to_string(native::simd_level()));
  host["host_cores"] = std::thread::hardware_concurrency();
  st.report.set("host", std::move(host));
  st.telemetry.init(cli, cli.program());
  st.cpu_profile.init(cli, cli.program());
}

obs::Trace* trace() { return &obs_state().trace; }

obs::MetricsRegistry& metrics() { return obs_state().metrics; }

sim::MemProfiler* profiler() { return obs_state().profiler.get(); }

sim::ParallelExecutor* executor() { return obs_state().executor.get(); }

obs::Telemetry* telemetry() { return obs_state().telemetry.telemetry(); }

native::ExecMode exec_mode() { return obs_state().exec_mode; }

runtime::EngineOptions engine_options() {
  runtime::EngineOptions o;
  o.trace = trace();
  o.metrics = &metrics();
  o.executor = executor();
  o.telemetry = telemetry();
  o.exec_mode = exec_mode();
  // A null executor must stay null: engine_options() callers already got
  // the process-wide resolution above, so suppress the engine's own
  // environment lookup.
  if (o.executor == nullptr) o.sim_threads = 0;
  return o;
}

void report_set(const std::string& key, Json value) {
  obs_state().report.set(key, std::move(value));
}

Json to_json(const KernelRun& run) {
  Json o = Json::object();
  o["cycles"] = run.cycles;
  o["energy_pj"] = run.energy_pj;
  o["load_imbalance"] = run.load_imbalance;
  o["stats"] = run.stats.to_json();
  return o;
}

int finish_run() {
  ObsState& st = obs_state();
  // Finalize before writing the report: the final flush snapshot and the
  // watchdog's verdict belong in the telemetry section.
  const int exit_code = st.telemetry.finalize();
  st.cpu_profile.finalize();  // stop sampling before the report is cut
  if (!st.report_path.empty()) {
    if (st.profiler != nullptr) {
      st.report.set("memory_profile", st.profiler->to_json());
    }
    st.report.set("metrics", st.metrics.to_json());
    if (st.telemetry.armed()) {
      st.report.set("telemetry", st.telemetry.telemetry()->report_json());
    }
    if (st.cpu_profile.armed()) {
      st.report.set("cpu_profile", st.cpu_profile.report());
    }
    st.report.write(st.report_path);
  }
  if (st.trace.enabled() && !st.trace_path.empty()) {
    st.trace.write(st.trace_path);
  }
  return exit_code;
}

}  // namespace cosparse::bench
