#include "bench_util.h"

#include <filesystem>
#include <iostream>
#include <sstream>

#include "common/error.h"
#include "kernels/address_map.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "sparse/generate.h"

namespace cosparse::bench {

Index vblock_cols_for(const sim::SystemConfig& cfg) {
  const double spm = static_cast<double>(cfg.scs_spm_bytes_per_tile());
  const auto cols = static_cast<Index>(spm / 8.0);
  return std::max<Index>(64, cols / 64 * 64);
}

KernelRun time_ip(const sparse::Coo& m, const kernels::DenseFrontier& x,
                  const sim::SystemConfig& cfg, sim::HwConfig hw,
                  bool nnz_balanced, bool vblocked) {
  sim::Machine machine(cfg, hw);
  kernels::AddressMap amap(machine);
  const auto part = kernels::IpPartitionedMatrix::build(
      m, cfg.num_pes(), vblocked ? vblock_cols_for(cfg) : 0, nnz_balanced);
  kernels::run_inner_product(machine, amap, part, x, kernels::PlainSpmv{});
  KernelRun run;
  run.cycles = machine.cycles();
  run.energy_pj = machine.energy_pj();
  run.stats = machine.stats();
  return run;
}

KernelRun time_op(const sparse::Coo& m, const sparse::SparseVector& x,
                  const sim::SystemConfig& cfg, sim::HwConfig hw,
                  bool nnz_balanced) {
  sim::Machine machine(cfg, hw);
  kernels::AddressMap amap(machine);
  const auto striped =
      kernels::OpStripedMatrix::build(m, cfg.num_tiles, nnz_balanced);
  kernels::run_outer_product(machine, amap, striped, x, nullptr,
                             kernels::PlainSpmv{});
  KernelRun run;
  run.cycles = machine.cycles();
  run.energy_pj = machine.energy_pj();
  run.stats = machine.stats();
  return run;
}

std::vector<sim::SystemConfig> parse_systems(const std::string& list) {
  std::vector<sim::SystemConfig> out;
  std::string item;
  std::stringstream ss(list);
  while (std::getline(ss, item, ',')) {
    const auto x = item.find('x');
    COSPARSE_REQUIRE(x != std::string::npos,
                     "system spec must look like 4x8: " + item);
    const auto tiles = static_cast<std::uint32_t>(
        std::stoul(item.substr(0, x)));
    const auto pes =
        static_cast<std::uint32_t>(std::stoul(item.substr(x + 1)));
    out.push_back(sim::SystemConfig::transmuter(tiles, pes));
  }
  COSPARSE_REQUIRE(!out.empty(), "no systems given");
  return out;
}

std::vector<SweepMatrix> sweep_matrices(unsigned scale, bool power_law,
                                        std::uint64_t seed) {
  COSPARSE_REQUIRE(scale >= 1, "scale must be >= 1");
  // Paper family: N in {131k, 262k, 524k, 1M}, equal nnz (~4.19M), so the
  // largest matrix is also the sparsest (Fig. 5's observation).
  const std::vector<std::pair<std::string, Index>> dims = {
      {"N=131k", 131072},
      {"N=262k", 262144},
      {"N=524k", 524288},
      {"N=1M", 1048576},
  };
  const std::uint64_t nnz = 4194304 / scale;
  std::vector<SweepMatrix> out;
  std::uint64_t s = seed;
  for (const auto& [label, n] : dims) {
    const Index dim = n / scale;
    out.push_back(
        {label, power_law
                    ? sparse::power_law(dim, dim, nnz, 2.1, s,
                                        sparse::ValueDist::kUniform01)
                    : sparse::uniform_random(dim, dim, nnz, s,
                                             sparse::ValueDist::kUniform01)});
    ++s;
  }
  return out;
}

void emit(const std::string& name, const Table& table) {
  table.print(std::cout);
  std::cout << std::endl;
  std::filesystem::create_directories("bench_out");
  table.write_csv("bench_out/" + name + ".csv");
}

void add_common_options(CliParser& cli, const std::string& default_scale) {
  cli.add_option("scale", "size divisor (1 = paper-exact dimensions)",
                 default_scale);
  cli.add_option("seed", "base RNG seed", "1000");
}

}  // namespace cosparse::bench
