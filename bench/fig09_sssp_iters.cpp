// Figure 9 reproduction: per-iteration execution of SSSP on pokec on a
// 16x16 system.
//
// For each SpMV iteration the harness reports the frontier density, the
// execution time of all five configurations (IP in SC/SCS; OP in SC, PC,
// PS) normalized to IP-in-SC, and the configuration CoSPARSE's decision
// tree picks — the same rows as the paper's figure. It closes with the
// net speedup of the reconfiguring run over the no-reconfiguration
// baseline (IP in SC only), which the paper reports as 1.51x for pokec
// (and up to 2.0x across workloads).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sparse/datasets.h"

using namespace cosparse;

namespace {

struct PerConfigTimes {
  double ip_sc = 0, ip_scs = 0, op_sc = 0, op_pc = 0, op_ps = 0;
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig09_sssp_iters",
                "Fig. 9: per-iteration SSSP configurations on pokec");
  bench::add_common_options(cli, "4");
  cli.add_option("system", "AxB system", "16x16");
  cli.add_option("graph", "dataset name", "pokec");
  cli.add_option("source", "SSSP source vertex", "0");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto sys = bench::parse_systems(cli.str("system")).front();
  const auto source = static_cast<Index>(cli.integer("source"));

  sparse::DatasetRegistry reg;
  const auto g = reg.load(cli.str("graph"), scale);
  const Index n = g.num_vertices();

  std::cout << "Figure 9: SSSP on " << cli.str("graph") << " (1/" << scale
            << " scale, |V|=" << n << ", |E|=" << g.num_edges() << ") on "
            << sys.name() << "\nPer-iteration execution time normalized to "
            << "IP in SC; * marks the fastest configuration.\n\n";

  // Built once: the transposed matrix in all three kernel layouts (plain
  // stream for SC, vblocked for SCS, row stripes for OP).
  const sparse::Coo mt = sparse::transpose(g.adjacency());
  const auto ip_part_sc =
      kernels::IpPartitionedMatrix::build(mt, sys.num_pes(), 0);
  const auto ip_part_scs = kernels::IpPartitionedMatrix::build(
      mt, sys.num_pes(), bench::vblock_cols_for(sys));
  const auto op_striped =
      kernels::OpStripedMatrix::build(mt, sys.num_tiles);
  const kernels::SsspSemiring sr;

  auto time_all = [&](const sparse::SparseVector& frontier,
                      kernels::OpResult* op_out) {
    PerConfigTimes t;
    const auto xf = kernels::DenseFrontier::from_sparse(
        frontier, sr.vector_identity());
    auto run_ip = [&](sim::HwConfig hw) {
      sim::Machine machine(sys, hw);
      kernels::AddressMap amap(machine);
      const auto& layout =
          hw == sim::HwConfig::kSCS ? ip_part_scs : ip_part_sc;
      kernels::run_inner_product(machine, amap, layout, xf, sr);
      return static_cast<double>(machine.cycles());
    };
    auto run_op = [&](sim::HwConfig hw, kernels::OpResult* keep) {
      sim::Machine machine(sys, hw);
      kernels::AddressMap amap(machine);
      auto out = kernels::run_outer_product(machine, amap, op_striped,
                                            frontier, nullptr, sr);
      if (keep != nullptr) *keep = std::move(out);
      return static_cast<double>(machine.cycles());
    };
    t.ip_sc = run_ip(sim::HwConfig::kSC);
    t.ip_scs = run_ip(sim::HwConfig::kSCS);
    t.op_sc = run_op(sim::HwConfig::kSC, nullptr);
    t.op_pc = run_op(sim::HwConfig::kPC, op_out);
    t.op_ps = run_op(sim::HwConfig::kPS, nullptr);
    return t;
  };

  Table t({"iter", "density", "IP SC", "IP SCS", "OP SC", "OP PC", "OP PS",
           "best SW", "best HW", "chosen"});

  runtime::DecisionEngine decider(sys);
  decider.set_metrics(&bench::metrics());
  std::vector<Value> dist(n, kernels::kInf);
  dist[source] = 0;
  sparse::SparseVector frontier(n);
  frontier.push_back(source, 0.0);

  double reconfig_total = 0, baseline_total = 0;
  for (std::uint32_t iter = 0; frontier.nnz() > 0 && iter < n; ++iter) {
    kernels::OpResult op_result;
    const auto times = time_all(frontier, &op_result);
    const double best = std::min({times.ip_sc, times.ip_scs, times.op_sc,
                                  times.op_pc, times.op_ps});
    const auto decision = decider.decide(n, g.density(), frontier.nnz());
    const double chosen_time =
        decision.sw == runtime::SwConfig::kIP
            ? (decision.hw == sim::HwConfig::kSCS ? times.ip_scs
                                                  : times.ip_sc)
            : (decision.hw == sim::HwConfig::kPS ? times.op_ps
                                                 : times.op_pc);
    reconfig_total += chosen_time;
    baseline_total += times.ip_sc;

    auto rel = [&](double v) {
      std::string s = Table::fmt(v / times.ip_sc, 3);
      if (v == best) s += "*";
      return s;
    };
    const char* best_sw =
        (best == times.ip_sc || best == times.ip_scs) ? "IP" : "OP";
    const char* best_hw = best == times.ip_sc    ? "SC"
                          : best == times.ip_scs ? "SCS"
                          : best == times.op_sc  ? "SC"
                          : best == times.op_pc  ? "PC"
                                                 : "PS";
    t.add_row({std::to_string(iter), Table::fmt_pct(decision.vector_density),
               rel(times.ip_sc), rel(times.ip_scs), rel(times.op_sc),
               rel(times.op_pc), rel(times.op_ps), best_sw, best_hw,
               std::string(to_string(decision.sw)) + "/" +
                   sim::to_string(decision.hw)});

    // Advance SSSP functionally using the OP result (exact semantics).
    sparse::SparseVector next(n);
    for (const auto& e : op_result.y.entries()) {
      if (e.value < dist[e.index]) {
        dist[e.index] = e.value;
        next.push_back(e.index, e.value);
      }
    }
    frontier = std::move(next);
  }
  bench::emit("fig09", t);

  std::cout << "Net speedup of co-reconfiguration over the IP-SC-only "
               "baseline: "
            << Table::fmt_ratio(baseline_total / reconfig_total)
            << " (paper: 1.51x on pokec; <= 2.0x across workloads)\n";
  return bench::finish_run();
}
