// Figure 4 reproduction: speedup of OP (PC) vs. IP (SC) across vector
// densities, matrix dimensions and system sizes.
//
// Paper shape to reproduce:
//   * IP wins for dense vectors, OP for sparse vectors, with a clear
//     crossover vector density (CVD);
//   * the CVD falls from ~2% to ~0.5% as PEs/tile grows from 8 to 32;
//   * sparser matrices shift the CVD (and OP's benefit) slightly up.
#include <iostream>

#include "bench_util.h"
#include "sparse/generate.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("fig04_sw_crossover",
                "Fig. 4: OP vs IP speedup over vector density");
  bench::add_common_options(cli, "1");
  cli.add_option("systems", "AxB system list",
                 "4x8,4x16,4x32,8x8,8x16,8x32");
  cli.add_option("densities", "vector densities",
                 "0.0025,0.005,0.01,0.02,0.04");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto systems = bench::parse_systems(cli.str("systems"));
  const auto densities = cli.real_list("densities");
  const auto matrices = bench::sweep_matrices(
      scale, /*power_law=*/false, static_cast<std::uint64_t>(cli.integer("seed")));

  std::cout << "Figure 4: speedup of OP (PC) vs IP (SC); values > 1 mean OP "
               "wins (scale=" << scale << ")\n\n";

  for (const auto& [label, m] : matrices) {
    Table t = [&] {
      std::vector<std::string> header = {"vec density"};
      for (const auto& sys : systems) header.push_back(sys.name());
      return Table(header);
    }();

    for (double d : densities) {
      const auto xs = sparse::random_sparse_vector(
          m.rows(), d, 77 + static_cast<std::uint64_t>(d * 1e6));
      const auto xf =
          kernels::DenseFrontier::from_sparse(xs, /*identity=*/0.0);
      std::vector<std::string> row = {Table::fmt(d, 4)};
      for (const auto& sys : systems) {
        const auto ip = bench::time_ip(m, xf, sys, sim::HwConfig::kSC,
                                       /*nnz_balanced=*/true,
                                       /*vblocked=*/false);
        const auto op = bench::time_op(m, xs, sys, sim::HwConfig::kPC);
        row.push_back(Table::fmt(static_cast<double>(ip.cycles) /
                                     static_cast<double>(op.cycles),
                                 2));
      }
      t.add_row(std::move(row));
    }
    std::cout << label << " (r=" << Table::fmt(m.density(), 10)
              << ", nnz=" << m.nnz() << ")\n";
    bench::emit("fig04_" + label.substr(2), t);
  }

  // Takeaway check: estimated CVD per PEs/tile (density where the speedup
  // crosses 1.0, interpolated on the first matrix).
  std::cout << "Takeaway (paper §III-C.1): CVD should fall as PEs/tile "
               "rises; expect ~2% at 8 PEs/tile -> ~0.5% at 32.\n";
  return bench::finish_run();
}
