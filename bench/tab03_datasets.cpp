// Table III reproduction: the real-world graph specifications, plus the
// measured properties of the synthetic stand-ins actually generated at the
// requested scale (so the substitution is auditable).
#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "sparse/datasets.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("tab03_datasets", "Table III: graph specifications");
  bench::add_common_options(cli, "16");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);
  const auto scale = static_cast<unsigned>(cli.integer("scale"));

  std::cout << "Table III: real-world graph specifications (paper values) "
               "and generated stand-ins at scale 1/" << scale << "\n\n";

  Table t({"graph", "|V| (paper)", "|E| (paper)", "directed", "density",
           "|V| (gen)", "|E| (gen)", "avg deg (gen)", "max deg (gen)"});

  sparse::DatasetRegistry reg;
  for (const auto& spec : sparse::DatasetRegistry::specs()) {
    const auto g = reg.load(spec.name, scale);
    const auto& deg = g.out_degrees();
    const Index max_deg =
        deg.empty() ? 0 : *std::max_element(deg.begin(), deg.end());
    t.add_row({spec.name, std::to_string(spec.vertices),
               std::to_string(spec.edges), spec.directed ? "yes" : "no",
               Table::fmt(spec.density, 9), std::to_string(g.num_vertices()),
               std::to_string(g.num_edges()),
               Table::fmt(g.average_degree(), 1), std::to_string(max_deg)});
  }
  bench::emit("tab03", t);
  std::cout << "Stand-ins: R-MAT (a=0.57,b=c=0.19) for the social networks, "
               "uniform for vsp; |V| and |E| divided by scale (average "
               "degree preserved). Set COSPARSE_DATA_DIR to load real SNAP "
               "edge lists instead.\n";
  return bench::finish_run();
}
