// Figure 8 reproduction: SpMV speedup and energy-efficiency gain of
// CoSPARSE (16x16) over the CPU and GPU baselines on real-world graphs,
// sweeping the input-vector density from 0.001 to 1.0.
//
// Paper shape to reproduce:
//   * gains grow as the vector gets sparser (the baselines do the full
//     dense-dataflow matrix pass regardless; CoSPARSE switches to OP below
//     the CVD and skips untouched columns);
//   * energy-efficiency gains are orders of magnitude (lightweight in-order
//     PEs vs. desktop/GPU package power);
//   * paper averages: 4.5x / 17.3x speedup and 282.5x / 730.6x energy
//     over CPU / GPU respectively.
//
// Substitutions (DESIGN.md §2): the CPU baseline is a native multithreaded
// CSR SpMV on *this* host (not an i7-6700K + MKL); the GPU is an analytic
// V100 model; the graphs are synthetic Table III stand-ins at --scale.
#include <cmath>
#include <iostream>

#include "baselines/cpu_spmv.h"
#include "baselines/gpu_model.h"
#include "bench_util.h"
#include "runtime/engine.h"
#include "sparse/datasets.h"
#include "sparse/generate.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("fig08_vs_cpu_gpu",
                "Fig. 8: CoSPARSE SpMV vs CPU and GPU baselines");
  bench::add_common_options(cli, "16");
  cli.add_option("system", "AxB system", "16x16");
  cli.add_option("graphs", "dataset list", "vsp,twitter,youtube,pokec");
  cli.add_option("densities", "vector densities", "0.001,0.01,0.1,1.0");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto sys = bench::parse_systems(cli.str("system")).front();
  const auto names = cli.str_list("graphs");
  const auto densities = cli.real_list("densities");

  std::cout << "Figure 8: CoSPARSE (" << sys.name()
            << ") SpMV vs CPU (native host SpMV @ i7 power) and GPU "
               "(analytic V100 model), dataset scale 1/" << scale << "\n\n";

  Table t({"graph", "density", "config", "vs CPU speedup", "vs CPU energy",
           "vs GPU speedup", "vs GPU energy"});

  double cpu_speed_log = 0, cpu_energy_log = 0, gpu_speed_log = 0,
         gpu_energy_log = 0;
  int samples = 0;

  sparse::DatasetRegistry reg;
  for (const auto& name : names) {
    const auto g = reg.load(name, scale);
    const Index n = g.num_vertices();
    runtime::Engine eng(g.adjacency(), sys, bench::engine_options());
    const auto csr_t =
        sparse::coo_to_csr(sparse::transpose(g.adjacency()));

    for (double d : densities) {
      const auto xs = sparse::random_sparse_vector(
          n, d, 31 + static_cast<std::uint64_t>(d * 1e6));

      // CoSPARSE: full runtime with automatic SW+HW selection. Hand the
      // frontier over in the representation matching its density so the
      // run isn't charged a conversion the real pipeline wouldn't do.
      const Cycles before = eng.total_cycles();
      const Picojoules e_before = eng.total_energy_pj();
      const auto decision =
          eng.decisions().decide(n, g.density(), xs.nnz());
      runtime::Engine::Frontier f =
          decision.sw == runtime::SwConfig::kIP
              ? runtime::Engine::Frontier::from_dense(
                    kernels::DenseFrontier::from_sparse(xs, 0.0))
              : runtime::Engine::Frontier::from_sparse(xs);
      const auto out = eng.spmv(f, kernels::PlainSpmv{});
      const double co_seconds =
          static_cast<double>(eng.total_cycles() - before) /
          (sys.freq_ghz * 1e9);
      const double co_joules = (eng.total_energy_pj() - e_before) * 1e-12;

      // CPU baseline: dense-dataflow CSR SpMV of the same operation.
      const auto xd = sparse::to_dense(xs, 0.0);
      const auto cpu = baselines::cpu_spmv(csr_t, xd);

      // GPU baseline: analytic csrmv model (density-independent).
      const auto gpu =
          baselines::gpu_spmv_model(n, n, g.num_edges());

      const double s_cpu = cpu.seconds / co_seconds;
      const double e_cpu = cpu.joules / co_joules;
      const double s_gpu = gpu.seconds / co_seconds;
      const double e_gpu = gpu.joules / co_joules;
      cpu_speed_log += std::log(s_cpu);
      cpu_energy_log += std::log(e_cpu);
      gpu_speed_log += std::log(s_gpu);
      gpu_energy_log += std::log(e_gpu);
      ++samples;

      t.add_row({name, Table::fmt(d, 3),
                 std::string(to_string(out.decision.sw)) + "/" +
                     sim::to_string(out.decision.hw),
                 Table::fmt_ratio(s_cpu), Table::fmt_ratio(e_cpu),
                 Table::fmt_ratio(s_gpu), Table::fmt_ratio(e_gpu)});
    }
  }
  bench::emit("fig08", t);

  const double inv = 1.0 / samples;
  std::cout << "Geomean: vs CPU "
            << Table::fmt_ratio(std::exp(cpu_speed_log * inv)) << " speed / "
            << Table::fmt_ratio(std::exp(cpu_energy_log * inv))
            << " energy; vs GPU "
            << Table::fmt_ratio(std::exp(gpu_speed_log * inv)) << " speed / "
            << Table::fmt_ratio(std::exp(gpu_energy_log * inv))
            << " energy\n"
            << "Paper averages: 4.5x / 282.5x (CPU), 17.3x / 730.6x (GPU); "
               "gains should grow as density falls.\n";
  return bench::finish_run();
}
