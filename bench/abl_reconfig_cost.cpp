// Ablation: sensitivity to the hardware reconfiguration overhead.
//
// The paper relies on Transmuter's <= 10-cycle runtime reconfiguration
// (§II-B, §III-D). This ablation reruns a reconfiguration-heavy workload
// (SSSP, whose frontier crosses the CVD twice) with the mode-switch cost
// swept from 0 to 1M cycles, showing how expensive reconfiguration would
// have to be before per-iteration co-reconfiguration stops paying off.
#include <iostream>

#include "bench_util.h"
#include "graph/algorithms.h"
#include "runtime/engine.h"
#include "sparse/datasets.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("abl_reconfig_cost",
                "Ablation: reconfiguration overhead sweep");
  bench::add_common_options(cli, "32");
  cli.add_option("system", "AxB system", "16x16");
  cli.add_option("graph", "dataset name", "pokec");
  cli.add_option("costs", "reconfig cycle costs",
                 "0,10,1000,100000,1000000");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto base_sys = bench::parse_systems(cli.str("system")).front();

  sparse::DatasetRegistry reg;
  const auto g = reg.load(cli.str("graph"), scale);

  // Baseline: no reconfiguration at all (IP in SC).
  runtime::EngineOptions fixed = bench::engine_options();
  fixed.sw_reconfig = false;
  fixed.hw_reconfig = false;
  fixed.fixed_sw = runtime::SwConfig::kIP;
  runtime::Engine baseline_eng(g.adjacency(), base_sys, fixed);
  const auto baseline = graph::sssp(baseline_eng, 0);

  std::cout << "Ablation: SSSP on " << cli.str("graph") << " (1/" << scale
            << " scale) on " << base_sys.name()
            << "; speedup of full co-reconfiguration over the IP-SC "
               "baseline as the mode-switch cost grows\n"
            << "(paper assumption: <= 10 cycles)\n\n";

  Table t({"reconfig cycles", "total Mcycles", "HW switches",
           "speedup vs no-reconfig"});
  for (const auto cost : cli.int_list("costs")) {
    sim::SystemConfig sys = base_sys;
    sys.reconfig_cycles = static_cast<double>(cost);
    runtime::Engine eng(g.adjacency(), sys, bench::engine_options());
    const auto run = graph::sssp(eng, 0);
    t.add_row({std::to_string(cost),
               Table::fmt(static_cast<double>(run.stats.cycles) / 1e6, 2),
               std::to_string(run.stats.hw_switches()),
               Table::fmt_ratio(static_cast<double>(baseline.stats.cycles) /
                                static_cast<double>(run.stats.cycles))});
  }
  bench::emit("abl_reconfig_cost", t);
  std::cout << "Expectation: the benefit is insensitive below ~1k cycles "
               "(switches are rare: 1-2 per run), so the <= 10-cycle "
               "Transmuter mechanism is far from being the bottleneck.\n";
  return bench::finish_run();
}
