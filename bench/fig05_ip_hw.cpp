// Figure 5 reproduction: speedup of SCS vs. SC for the inner product.
//
// Paper shape to reproduce:
//   * SCS gains grow with vector density (SPM-pinned values avoid the
//     evict-and-reload churn of SC) and can be negative at the sparsest
//     points (the per-vblock DMA fill isn't amortized);
//   * the largest/sparsest matrix sees the least speedup (least reuse,
//     Nreuse = N*r*PEs/tiles);
//   * gains shrink when tiles double (4x8 -> 8x8) since per-tile reuse
//     halves.
#include <iostream>

#include "bench_util.h"
#include "sparse/generate.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("fig05_ip_hw", "Fig. 5: SCS vs SC speedup for IP");
  bench::add_common_options(cli, "1");
  cli.add_option("systems", "AxB system list", "4x8,4x16,8x8,8x16");
  cli.add_option("densities", "vector densities",
                 "0.0025,0.005,0.01,0.02,0.04");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto systems = bench::parse_systems(cli.str("systems"));
  const auto densities = cli.real_list("densities");
  const auto matrices = bench::sweep_matrices(
      scale, /*power_law=*/false,
      static_cast<std::uint64_t>(cli.integer("seed")));

  std::cout << "Figure 5: speedup of SCS vs SC for IP, as a percentage "
               "(positive = SCS wins; scale=" << scale << ")\n\n";

  for (const auto& [label, m] : matrices) {
    Table t = [&] {
      std::vector<std::string> header = {"vec density"};
      for (const auto& sys : systems) header.push_back(sys.name());
      return Table(header);
    }();

    for (double d : densities) {
      const auto xs = sparse::random_sparse_vector(
          m.rows(), d, 99 + static_cast<std::uint64_t>(d * 1e6));
      const auto xf = kernels::DenseFrontier::from_sparse(xs, 0.0);
      std::vector<std::string> row = {Table::fmt(d, 4)};
      for (const auto& sys : systems) {
        const auto sc = bench::time_ip(m, xf, sys, sim::HwConfig::kSC,
                                       /*nnz_balanced=*/true,
                                       /*vblocked=*/false);
        const auto scs = bench::time_ip(m, xf, sys, sim::HwConfig::kSCS);
        const double speedup = static_cast<double>(sc.cycles) /
                                   static_cast<double>(scs.cycles) -
                               1.0;
        row.push_back(Table::fmt_pct(speedup));
      }
      t.add_row(std::move(row));
    }
    std::cout << label << " (r=" << Table::fmt(m.density(), 10) << ")\n";
    bench::emit("fig05_" + label.substr(2), t);
  }

  std::cout << "Takeaway (paper §III-C.2): SCS speedup is positively "
               "correlated with vector density and with SPM reuse.\n";
  return bench::finish_run();
}
