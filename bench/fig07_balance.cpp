// Figure 7 reproduction: workload-balancing evaluation.
//
// SpMV execution time on power-law matrices normalized to uniformly random
// matrices of the same dimension/density, with and without the static
// nnz-balanced partitioning, on an 8x16 system.
//
// Paper shape to reproduce:
//   (a) IP (vector density 1.0): balancing improves execution time by
//       ~7-30% and helps SC more than SCS;
//   (b) OP (vector density 0.1): power-law matrices run *faster* than
//       uniform ones (empty columns skip merge work); partitioning helps
//       both configs by up to ~10%.
#include <iostream>

#include "bench_util.h"
#include "sparse/generate.h"

using namespace cosparse;

namespace {

// Fig. 7 matrix family: constant average degree (~6.4), so nnz scales
// with N (labels in the paper: N=131k r=4.9e-05 ... N=1M r=6.7e-06).
std::vector<std::pair<std::string, Index>> fig7_dims() {
  return {{"N=131k", 131072},
          {"N=262k", 262144},
          {"N=524k", 524288},
          {"N=1M", 1048576}};
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("fig07_balance", "Fig. 7: workload balancing evaluation");
  bench::add_common_options(cli, "4");
  cli.add_option("system", "AxB system", "8x16");
  cli.add_option("ip-density", "IP vector density", "1.0");
  cli.add_option("op-density", "OP vector density", "0.1");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto sys = bench::parse_systems(cli.str("system")).front();
  const double ip_d = cli.real("ip-density");
  const double op_d = cli.real("op-density");
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  std::cout << "Figure 7: power-law SpMV time normalized to the uniform "
               "matrix (w/ partition, cache config) on " << sys.name()
            << " (scale=" << scale << ")\n"
            << "(a) inner product at vector density " << ip_d
            << "; (b) outer product at vector density " << op_d << "\n\n";

  Table ip_table({"matrix", "SC w/o part", "SC w/ part", "SCS w/o part",
                  "SCS w/ part"});
  Table op_table({"matrix", "PC w/o part", "PC w/ part", "PS w/o part",
                  "PS w/ part"});

  std::uint64_t s = seed;
  for (const auto& [label, n] : fig7_dims()) {
    const Index dim = n / scale;
    const std::uint64_t nnz = static_cast<std::uint64_t>(dim) * 64 / 10;
    const auto uniform = sparse::uniform_random(
        dim, dim, nnz, s, sparse::ValueDist::kUniform01);
    const auto skewed = sparse::power_law(dim, dim, nnz, 2.1, s,
                                          sparse::ValueDist::kUniform01);
    ++s;

    // --- (a) inner product ---
    {
      const auto xs = sparse::random_sparse_vector(dim, ip_d, s * 7 + 1);
      const auto xf = kernels::DenseFrontier::from_sparse(xs, 0.0);
      const double base = static_cast<double>(
          bench::time_ip(uniform, xf, sys, sim::HwConfig::kSC,
                         /*nnz_balanced=*/true)
              .cycles);
      auto norm = [&](sim::HwConfig hw, bool balanced) {
        return Table::fmt(
            static_cast<double>(
                bench::time_ip(skewed, xf, sys, hw, balanced).cycles) /
                base,
            3);
      };
      ip_table.add_row({label, norm(sim::HwConfig::kSC, false),
                        norm(sim::HwConfig::kSC, true),
                        norm(sim::HwConfig::kSCS, false),
                        norm(sim::HwConfig::kSCS, true)});
    }

    // --- (b) outer product ---
    {
      const auto xs = sparse::random_sparse_vector(dim, op_d, s * 11 + 3);
      const double base = static_cast<double>(
          bench::time_op(uniform, xs, sys, sim::HwConfig::kPC,
                         /*nnz_balanced=*/true)
              .cycles);
      auto norm = [&](sim::HwConfig hw, bool balanced) {
        return Table::fmt(
            static_cast<double>(
                bench::time_op(skewed, xs, sys, hw, balanced).cycles) /
                base,
            3);
      };
      op_table.add_row({label, norm(sim::HwConfig::kPC, false),
                        norm(sim::HwConfig::kPC, true),
                        norm(sim::HwConfig::kPS, false),
                        norm(sim::HwConfig::kPS, true)});
    }
  }

  std::cout << "(a) Inner product, normalized execution time\n";
  bench::emit("fig07_ip", ip_table);
  std::cout << "(b) Outer product, normalized execution time\n";
  bench::emit("fig07_op", op_table);

  std::cout << "Takeaway (paper §IV-B): balancing buys 7-30% for IP "
               "(more for SC than SCS); power-law OP beats uniform OP "
               "outright; partitioning adds up to ~10% for OP.\n";
  return bench::finish_run();
}
