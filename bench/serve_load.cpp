// Deterministic serving-load benchmark (ROADMAP item 1, DESIGN.md §16).
//
// Replays the same seeded traces — one Poisson, one bursty — through the
// cosparsed serving layer at --threads-list host thread counts, and
// records honest wall-clock throughput and request-latency percentiles in
// BENCH_serve.json. The gate: every leg of an arrival process must
// produce the same results_digest (the fold over every response id,
// status, virtual finish time and per-request output digest) — host
// threads may only change the wall-clock columns. The virtual schedule
// columns (admitted/rejected, virtual p50/p99) are pure functions of the
// config and therefore identical across legs by construction.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "native/simd.h"
#include "serve/config.h"
#include "serve/scheduler.h"
#include "serve/server.h"

using namespace cosparse;

namespace {

/// The committed trace shapes: same workload mix, same request count,
/// only the arrival process differs.
serve::ServeConfig base_config(unsigned scale, std::uint64_t seed,
                               std::uint32_t requests) {
  serve::ServeConfig cfg;
  cfg.scheduler_type = "same-dataset-batch";
  cfg.max_active_reqs = 64;
  cfg.max_batch_size = 8;
  cfg.virtual_workers = 2;
  cfg.scale = scale;
  cfg.traffic.request_interval_us = 800;
  cfg.traffic.request_total_cnt = requests;
  cfg.traffic.seed = seed;
  cfg.traffic.datasets = {"twitter", "vsp", "youtube"};
  cfg.traffic.algos = {"bfs", "sssp", "pagerank"};
  return cfg;
}

struct Leg {
  std::uint32_t threads = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::string results_digest;
  serve::ScheduleStats stats;
  std::uint64_t virtual_p50_us = 0;
  std::uint64_t virtual_p99_us = 0;
};

Leg run_leg(const serve::ServeConfig& cfg, std::uint32_t threads) {
  serve::ServerOptions opts;
  opts.serve_threads = threads;
  opts.telemetry = cosparse::bench::telemetry();
  serve::Server server(cfg, opts);
  const Json report = server.replay();
  Leg leg;
  leg.threads = threads;
  const Json& timing = *report.find("timing");
  leg.wall_ms = timing.find("total_wall_ms")->as_double();
  leg.throughput_rps = timing.find("throughput_rps")->as_double();
  leg.p50_ms = timing.find("request_ms_p50")->as_double();
  leg.p99_ms = timing.find("request_ms_p99")->as_double();
  leg.results_digest =
      report.find("results")->find("results_digest")->as_string();
  leg.stats = server.schedule().stats;
  leg.virtual_p50_us =
      serve::latency_percentile_us(server.schedule().responses, 50.0);
  leg.virtual_p99_us =
      serve::latency_percentile_us(server.schedule().responses, 99.0);
  return leg;
}

std::vector<std::uint32_t> parse_threads(const std::string& list) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(list);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty())
      out.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("serve_load",
                "Deterministic serving-load replay: Poisson and bursty "
                "traces through the cosparsed scheduler at several host "
                "thread counts (results_digest asserted identical per "
                "trace; only wall-clock may differ)");
  bench::add_common_options(cli, "64");
  cli.add_option("requests", "requests per trace", "200");
  cli.add_option("threads-list", "serve-thread legs", "1,2,8");
  cli.add_option("json-out", "machine-readable results",
                 "BENCH_serve.json");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto requests =
      static_cast<std::uint32_t>(cli.integer("requests"));
  const auto threads = parse_threads(cli.str("threads-list"));
  const unsigned host_cores = std::thread::hardware_concurrency();

  std::cout << "serve_load: " << requests << " requests/trace at scale "
            << scale << ", seed " << seed << "; host has " << host_cores
            << " core(s)\n\n";

  Table table({"trace", "threads", "wall ms", "req/s", "p50 ms", "p99 ms",
               "admitted", "rejected", "digest-identical"});
  Json jtraces = Json::array();
  bool all_identical = true;
  for (const std::string arrival : {"poisson", "bursty"}) {
    serve::ServeConfig cfg = base_config(scale, seed, requests);
    // Honor --exec-mode so the host section names the backend that
    // actually ran (the digests are identical either way — that is the
    // sim/native differential gate's job to prove).
    cfg.exec_mode = native::to_string(bench::exec_mode());
    cfg.traffic.arrival = arrival;
    Json jlegs = Json::array();
    std::string first_digest;
    for (const std::uint32_t t : threads) {
      const Leg leg = run_leg(cfg, t);
      if (first_digest.empty()) first_digest = leg.results_digest;
      const bool identical = leg.results_digest == first_digest;
      all_identical = all_identical && identical;
      table.add_row({arrival, std::to_string(t), Table::fmt(leg.wall_ms, 2),
                     Table::fmt(leg.throughput_rps, 1),
                     Table::fmt(leg.p50_ms, 3), Table::fmt(leg.p99_ms, 3),
                     std::to_string(leg.stats.admitted),
                     std::to_string(leg.stats.rejected),
                     identical ? "yes" : "NO"});
      Json o = Json::object();
      o["serve_threads"] = t;
      o["wall_ms"] = leg.wall_ms;
      o["throughput_rps"] = leg.throughput_rps;
      o["request_ms_p50"] = leg.p50_ms;
      o["request_ms_p99"] = leg.p99_ms;
      o["virtual_latency_p50_us"] = leg.virtual_p50_us;
      o["virtual_latency_p99_us"] = leg.virtual_p99_us;
      o["admitted"] = leg.stats.admitted;
      o["rejected"] = leg.stats.rejected;
      o["batches_digest_identical"] = identical;
      o["results_digest"] = leg.results_digest;
      jlegs.push_back(std::move(o));
    }
    Json jt = Json::object();
    jt["arrival"] = arrival;
    jt["config"] = cfg.to_json();
    jt["legs"] = std::move(jlegs);
    jtraces.push_back(std::move(jt));
  }
  bench::emit("serve_load", table);

  Json doc = Json::object();
  doc["schema"] = "cosparse.bench_serve/v1";
  doc["scale"] = scale;
  doc["seed"] = seed;
  doc["requests_per_trace"] = requests;
  Json host = Json::object();
  host["host_cores"] = host_cores;
  host["cpu_model"] = native::cpu_model_string();
  host["simd"] = std::string(native::to_string(native::simd_level()));
  host["exec_mode"] = std::string(native::to_string(bench::exec_mode()));
  doc["host"] = std::move(host);
  doc["all_digests_identical"] = all_identical;
  doc["note"] =
      "wall_ms / throughput_rps / request_ms_p50/p99 are host wall-clock "
      "on the machine named by host.cpu_model and depend on host.host_cores "
      "and concurrent load; serve_threads above host_cores cannot add "
      "speedup. virtual_latency_* and admitted/rejected come from the "
      "deterministic virtual schedule and are identical across legs by "
      "construction. results_digest folds every response id, status, "
      "virtual finish time and per-request output digest; the benchmark "
      "fails if any leg of a trace diverges.";
  doc["traces"] = std::move(jtraces);
  std::ofstream out(cli.str("json-out"));
  out << doc.dump(1) << "\n";
  std::cout << "wrote " << cli.str("json-out") << "\n";

  const int exit_code = bench::finish_run();
  if (!all_identical) {
    std::cerr << "FAIL: a leg's results_digest diverged across "
                 "serve-thread counts\n";
    return 1;
  }
  return exit_code;
}
