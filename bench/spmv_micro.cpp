// Kernel-level microbenchmarks (google-benchmark).
//
// These time the host-side building blocks — format conversions,
// partitioning, frontier conversions, the simulator's access path and the
// native baseline SpMV — so regressions in the reproduction's own
// performance are visible independently of the simulated results.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/cpu_spmv.h"
#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "sparse/generate.h"

namespace {

using namespace cosparse;

const sparse::Coo& test_matrix() {
  static const sparse::Coo m = sparse::uniform_random(
      1 << 16, 1 << 16, 1 << 20, 42, sparse::ValueDist::kUniform01);
  return m;
}

void BM_CooToCsr(benchmark::State& state) {
  const auto& m = test_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::coo_to_csr(m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_CooToCsr);

void BM_CooToCsc(benchmark::State& state) {
  const auto& m = test_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::coo_to_csc(m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_CooToCsc);

void BM_Transpose(benchmark::State& state) {
  const auto& m = test_matrix();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::transpose(m));
  }
}
BENCHMARK(BM_Transpose);

void BM_IpPartitionBuild(benchmark::State& state) {
  const auto& m = test_matrix();
  const auto pes = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kernels::IpPartitionedMatrix::build(m, pes, 4096));
  }
}
BENCHMARK(BM_IpPartitionBuild)->Arg(32)->Arg(256);

void BM_OpStripeBuild(benchmark::State& state) {
  const auto& m = test_matrix();
  const auto tiles = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::OpStripedMatrix::build(m, tiles));
  }
}
BENCHMARK(BM_OpStripeBuild)->Arg(4)->Arg(16);

void BM_FrontierSparseToDense(benchmark::State& state) {
  const auto sv = sparse::random_sparse_vector(1 << 20, 0.05, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::DenseFrontier::from_sparse(sv, 0.0));
  }
}
BENCHMARK(BM_FrontierSparseToDense);

void BM_SimCacheAccessPath(benchmark::State& state) {
  // Throughput of the simulator's hot path: one PE streaming reads.
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  sim::Machine machine(cfg, sim::HwConfig::kSC);
  const Addr base = machine.alloc(1 << 22, "bench.stream");
  Addr a = base;
  for (auto _ : state) {
    machine.mem_read(0, a, 8);
    a += 8;
    if (a >= base + (1 << 22)) a = base;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimCacheAccessPath);

void BM_SimIpKernel(benchmark::State& state) {
  const auto m = sparse::uniform_random(1 << 14, 1 << 14, 1 << 18, 5,
                                        sparse::ValueDist::kUniform01);
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const auto xf = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(1 << 14, 6));
  const auto part = kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), 4096);
  for (auto _ : state) {
    sim::Machine machine(cfg, sim::HwConfig::kSC);
    kernels::AddressMap amap(machine);
    benchmark::DoNotOptimize(kernels::run_inner_product(
        machine, amap, part, xf, kernels::PlainSpmv{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_SimIpKernel);

void BM_SimOpKernel(benchmark::State& state) {
  const auto m = sparse::uniform_random(1 << 14, 1 << 14, 1 << 18, 5,
                                        sparse::ValueDist::kUniform01);
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const auto xs = sparse::random_sparse_vector(1 << 14, 0.05, 8);
  const auto striped = kernels::OpStripedMatrix::build(m, cfg.num_tiles);
  for (auto _ : state) {
    sim::Machine machine(cfg, sim::HwConfig::kPS);
    kernels::AddressMap amap(machine);
    benchmark::DoNotOptimize(kernels::run_outer_product(
        machine, amap, striped, xs, nullptr, kernels::PlainSpmv{}));
  }
}
BENCHMARK(BM_SimOpKernel);

void BM_SimIpKernel16Tiles(benchmark::State& state) {
  // Tile-parallel executor on a 16-tile system; Arg is the host thread
  // count (0 = serial immediate mode). Results are bit-identical across
  // arguments (sim::Machine::for_tiles), so this measures pure wall-clock:
  // on a single-core host the parallel legs only show the log/replay
  // overhead.
  const auto m = sparse::uniform_random(1 << 14, 1 << 14, 1 << 18, 5,
                                        sparse::ValueDist::kUniform01);
  const auto cfg = sim::SystemConfig::transmuter(16, 4);
  const auto xf = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(1 << 14, 6));
  const auto part = kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), 4096);
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  std::unique_ptr<sim::ParallelExecutor> exec;
  if (threads >= 1) exec = std::make_unique<sim::ParallelExecutor>(threads);
  for (auto _ : state) {
    sim::Machine machine(cfg, sim::HwConfig::kSC);
    machine.set_executor(exec.get());
    kernels::AddressMap amap(machine);
    benchmark::DoNotOptimize(kernels::run_inner_product(
        machine, amap, part, xf, kernels::PlainSpmv{}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m.nnz()));
}
BENCHMARK(BM_SimIpKernel16Tiles)->Arg(0)->Arg(2)->Arg(8);

void BM_SimOpKernel16Tiles(benchmark::State& state) {
  const auto m = sparse::uniform_random(1 << 14, 1 << 14, 1 << 18, 5,
                                        sparse::ValueDist::kUniform01);
  const auto cfg = sim::SystemConfig::transmuter(16, 4);
  const auto xs = sparse::random_sparse_vector(1 << 14, 0.05, 8);
  const auto striped = kernels::OpStripedMatrix::build(m, cfg.num_tiles);
  const auto threads = static_cast<std::uint32_t>(state.range(0));
  std::unique_ptr<sim::ParallelExecutor> exec;
  if (threads >= 1) exec = std::make_unique<sim::ParallelExecutor>(threads);
  for (auto _ : state) {
    sim::Machine machine(cfg, sim::HwConfig::kPC);
    machine.set_executor(exec.get());
    kernels::AddressMap amap(machine);
    benchmark::DoNotOptimize(kernels::run_outer_product(
        machine, amap, striped, xs, nullptr, kernels::PlainSpmv{}));
  }
}
BENCHMARK(BM_SimOpKernel16Tiles)->Arg(0)->Arg(2)->Arg(8);

void BM_NativeCpuSpmv(benchmark::State& state) {
  const auto csr = sparse::coo_to_csr(test_matrix());
  const auto x = sparse::random_dense_vector(csr.cols(), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::cpu_spmv(csr, x, 1, 1));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.nnz()));
}
BENCHMARK(BM_NativeCpuSpmv);

}  // namespace

BENCHMARK_MAIN();
