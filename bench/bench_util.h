// Shared helpers for the figure/table reproduction harnesses.
//
// Every fig*/tab* binary prints the same rows/series the paper reports
// (as an aligned text table) and mirrors them to CSV under bench_out/.
// Sizes default to a documented scale divisor so the full suite runs on a
// laptop-class machine; pass --scale 1 for paper-exact dimensions.
#pragma once

#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "common/table.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "native/exec_mode.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "sim/machine.h"
#include "sparse/formats.h"
#include "sparse/vector.h"

namespace cosparse::bench {

struct KernelRun {
  Cycles cycles = 0;
  Picojoules energy_pj = 0;
  sim::Stats stats;
  double load_imbalance = 0.0;  ///< max/mean per-tile busy cycles

  [[nodiscard]] double seconds(double freq_ghz = 1.0) const {
    return static_cast<double>(cycles) / (freq_ghz * 1e9);
  }
  [[nodiscard]] double joules() const { return energy_pj * 1e-12; }
};

/// vblock width used by the IP kernel for this system (matches
/// runtime::Engine's choice).
Index vblock_cols_for(const sim::SystemConfig& cfg);

/// Times one inner-product SpMV on a fresh machine in `hw`.
KernelRun time_ip(const sparse::Coo& m, const kernels::DenseFrontier& x,
                  const sim::SystemConfig& cfg, sim::HwConfig hw,
                  bool nnz_balanced = true, bool vblocked = true);

/// Times one outer-product SpMV on a fresh machine in `hw`.
KernelRun time_op(const sparse::Coo& m, const sparse::SparseVector& x,
                  const sim::SystemConfig& cfg, sim::HwConfig hw,
                  bool nnz_balanced = true);

/// Parses "4x8,8x16" into system configs.
std::vector<sim::SystemConfig> parse_systems(const std::string& list);

/// The uniform sweep matrices of Figs. 4-6: dimensions {131k, 262k, 524k,
/// 1M} / scale with ~4.19M / scale non-zeros each (equal-nnz family).
struct SweepMatrix {
  std::string label;  ///< e.g. "N=131k" (paper labeling, pre-scale)
  sparse::Coo matrix;
};
std::vector<SweepMatrix> sweep_matrices(unsigned scale, bool power_law,
                                        std::uint64_t seed = 1000);

/// Prints the table, writes bench_out/<name>.csv (creating the dir) and
/// mirrors the rows into the run report's "tables" section.
void emit(const std::string& name, const Table& table);

/// Adds the standard options shared by all harnesses, including the
/// observability outputs --report-out and --trace-out.
void add_common_options(CliParser& cli, const std::string& default_scale);

/// Just the --report-out / --trace-out pair (for harnesses that do not
/// take --scale). Included in add_common_options().
void add_observability_options(CliParser& cli);

// ---- process-wide observability (one run report + trace per binary) ----

/// Reads --report-out / --trace-out (the trace path falls back to the
/// COSPARSE_TRACE environment variable) and arms the sinks below. Call
/// once right after cli.parse(); harmless to skip — the sinks then stay
/// disabled/unwritten.
void init_observability(const CliParser& cli);

/// The process-wide trace sink. Never nullptr, but disabled (null sink)
/// unless a trace output was requested. Pass into EngineOptions::trace or
/// sim::Machine::set_trace.
[[nodiscard]] obs::Trace* trace();

/// The process-wide metrics registry. Pass into EngineOptions::metrics.
[[nodiscard]] obs::MetricsRegistry& metrics();

/// The process-wide simulation executor, or nullptr when the run is
/// serial. Resolved from --sim-threads (falling back to the
/// COSPARSE_SIM_THREADS environment variable); time_ip/time_op attach it
/// automatically, and engine_options() forwards it. Thread count never
/// changes simulated results — only wall-clock time.
[[nodiscard]] sim::ParallelExecutor* executor();

/// The process-wide memory profiler, or nullptr unless --profile was
/// given. time_ip/time_op attach it automatically; harnesses driving a
/// runtime::Engine attach it with engine.machine().set_profiler(...)
/// (a nullptr is accepted and detaches). finish_run() folds the
/// accumulated per-region profile into the report's "memory_profile"
/// section.
[[nodiscard]] sim::MemProfiler* profiler();

/// The process-wide execution mode, resolved by init_observability() from
/// --exec-mode (COSPARSE_EXEC_MODE is the fallback; default sim).
/// engine_options() forwards it; harnesses timing raw kernels branch on it
/// themselves.
[[nodiscard]] native::ExecMode exec_mode();

/// The process-wide telemetry registry, or nullptr unless
/// --telemetry-interval / COSPARSE_TELEMETRY armed it. time_ip/time_op
/// and engine_options() attach it automatically; the cadence, exporter
/// outputs and SLO watchdog are wired by init_observability() through an
/// obs::TelemetrySession.
[[nodiscard]] obs::Telemetry* telemetry();

/// Default EngineOptions with the process-wide trace/metrics/telemetry
/// sinks already attached; harnesses adjust the remaining fields as usual.
[[nodiscard]] runtime::EngineOptions engine_options();

/// Sets a top-level section of the run report (e.g. "config", "dataset").
void report_set(const std::string& key, Json value);

/// Serializes one KernelRun for report sections: cycles, energy, stats,
/// load imbalance.
[[nodiscard]] Json to_json(const KernelRun& run);

/// Folds the metrics registry (and, when armed, the telemetry section)
/// into the report, then writes the report and trace to the paths
/// requested at init_observability() time (no-op for outputs that were
/// not requested). Finalizes the telemetry session — final snapshot,
/// exporter drain, SLO verdict — and returns the exit code the binary
/// should propagate: 0 normally, 3 when --slo-strict was given and a rule
/// was violated. Call `return bench::finish_run();` at the end of main().
[[nodiscard]] int finish_run();

}  // namespace cosparse::bench
