// Ablation: sensitivity to the software-reconfiguration threshold (CVD).
//
// DESIGN.md calls out the CVD model (cvd = 0.16 / PEs-per-tile, with a
// small matrix-density correction) as a calibrated design choice. This
// ablation sweeps the coefficient across two orders of magnitude and runs
// BFS + SSSP, showing a plateau around the calibrated value: too low and
// dense iterations run OP (merge blow-up), too high and sparse iterations
// run IP (full matrix pass for a near-empty frontier).
#include <iostream>

#include "bench_util.h"
#include "graph/algorithms.h"
#include "runtime/engine.h"
#include "sparse/datasets.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("abl_threshold", "Ablation: CVD coefficient sweep");
  bench::add_common_options(cli, "32");
  cli.add_option("system", "AxB system", "16x16");
  cli.add_option("graph", "dataset name", "pokec");
  cli.add_option("coefficients", "cvd_coefficient values",
                 "0.0,0.016,0.08,0.16,0.32,1.6,16.0");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto sys = bench::parse_systems(cli.str("system")).front();

  sparse::DatasetRegistry reg;
  const auto g = reg.load(cli.str("graph"), scale);

  std::cout << "Ablation: CVD coefficient sweep for BFS + SSSP on "
            << cli.str("graph") << " (1/" << scale << " scale) on "
            << sys.name() << " (default coefficient: 0.16 -> CVD "
            << Table::fmt(0.16 / sys.pes_per_tile * 100, 2)
            << "% at " << sys.pes_per_tile << " PEs/tile)\n"
            << "coefficient 0.0 = always-IP; 16.0 = effectively always-OP\n\n";

  Table t({"cvd coeff", "BFS Mcycles", "BFS IP iters", "SSSP Mcycles",
           "SSSP IP iters"});
  for (const double c : cli.real_list("coefficients")) {
    runtime::EngineOptions opts = bench::engine_options();
    opts.thresholds.cvd_coefficient = c;
    if (c == 0.0) opts.thresholds.cvd_min = 0.0;

    runtime::Engine bfs_eng(g.adjacency(), sys, opts);
    const auto b = graph::bfs(bfs_eng, 0);
    std::uint32_t bfs_ip = 0;
    for (const auto& r : b.stats.per_iteration) {
      bfs_ip += r.sw == runtime::SwConfig::kIP ? 1 : 0;
    }

    runtime::Engine sssp_eng(g.adjacency(), sys, opts);
    const auto s = graph::sssp(sssp_eng, 0);
    std::uint32_t sssp_ip = 0;
    for (const auto& r : s.stats.per_iteration) {
      sssp_ip += r.sw == runtime::SwConfig::kIP ? 1 : 0;
    }

    t.add_row({Table::fmt(c, 3),
               Table::fmt(static_cast<double>(b.stats.cycles) / 1e6, 2),
               std::to_string(bfs_ip) + "/" +
                   std::to_string(b.stats.iterations),
               Table::fmt(static_cast<double>(s.stats.cycles) / 1e6, 2),
               std::to_string(sssp_ip) + "/" +
                   std::to_string(s.stats.iterations)});
  }
  bench::emit("abl_threshold", t);
  std::cout << "Expectation: a broad optimum around the calibrated 0.16; "
               "the always-IP and always-OP extremes are clearly worse.\n";
  return bench::finish_run();
}
