// Figure 10 reproduction: speedup and energy-efficiency gain of CoSPARSE
// (16x16) over mini-Ligra for PR, CF, BFS and SSSP across the Table III
// graphs (PR/CF on all five, BFS/SSSP without livejournal — matching the
// paper's x-axis), plus the geomean.
//
// Paper shape to reproduce: CoSPARSE wins on performance in most cases
// (up to 3.5x; Ligra edges ahead slightly on pokec BFS/SSSP thanks to the
// Xeon's much larger memory system) and wins on energy by orders of
// magnitude (paper average 404.4x).
//
// Substitutions (DESIGN.md §2): mini-Ligra runs natively on this host, not
// a 48-core Xeon E7-4860, with energy = wall time x Xeon package power;
// graphs are synthetic stand-ins at --scale.
#include <cmath>
#include <iostream>

#include "baselines/ligra/apps.h"
#include "bench_util.h"
#include "graph/algorithms.h"
#include "runtime/engine.h"
#include "sparse/datasets.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("fig10_vs_ligra",
                "Fig. 10: CoSPARSE vs Ligra on graph algorithms");
  bench::add_common_options(cli, "16");
  cli.add_option("system", "AxB system", "16x16");
  cli.add_option("pr-graphs", "graphs for PR and CF",
                 "vsp,twitter,youtube,pokec,livejournal");
  cli.add_option("traversal-graphs", "graphs for BFS and SSSP",
                 "vsp,twitter,youtube,pokec");
  cli.add_option("pr-iters", "PageRank iterations", "10");
  cli.add_option("cf-iters", "CF iterations", "5");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto sys = bench::parse_systems(cli.str("system")).front();
  const auto pr_iters =
      static_cast<std::uint32_t>(cli.integer("pr-iters"));
  const auto cf_iters =
      static_cast<std::uint32_t>(cli.integer("cf-iters"));

  std::cout << "Figure 10: CoSPARSE (" << sys.name()
            << ") vs mini-Ligra (native host, Xeon-power energy model), "
               "dataset scale 1/" << scale << "\n\n";

  Table t({"algorithm", "graph", "CoSPARSE (ms)", "Ligra (ms)", "speedup",
           "energy gain"});
  double speed_log = 0, energy_log = 0;
  int samples = 0;

  auto record = [&](const std::string& algo, const std::string& graph,
                    double co_s, double co_j, double li_s, double li_j) {
    const double speedup = li_s / co_s;
    const double egain = li_j / co_j;
    speed_log += std::log(speedup);
    energy_log += std::log(egain);
    ++samples;
    t.add_row({algo, graph, Table::fmt(co_s * 1e3, 3),
               Table::fmt(li_s * 1e3, 3), Table::fmt_ratio(speedup),
               Table::fmt_ratio(egain)});
  };

  sparse::DatasetRegistry reg;

  for (const auto& name : cli.str_list("pr-graphs")) {
    const auto g = reg.load(name, scale);
    const auto lg = baselines::ligra::LigraGraph::build(g.adjacency());
    {
      runtime::Engine eng(g.adjacency(), sys, bench::engine_options());
      graph::PageRankOptions opts;
      opts.max_iterations = pr_iters;
      opts.tolerance = 0.0;
      const auto ours = graph::pagerank(eng, g.out_degrees(), opts);
      const auto theirs =
          baselines::ligra::ligra_pagerank(lg, 0.85, 0.0, pr_iters);
      record("PR", name, ours.stats.seconds(sys.freq_ghz),
             ours.stats.joules(), theirs.costs.seconds, theirs.costs.joules);
    }
    {
      runtime::Engine eng(g.adjacency(), sys, bench::engine_options());
      graph::CfOptions opts;
      opts.iterations = cf_iters;
      const auto ours = graph::cf(eng, g.adjacency(), opts);
      const auto theirs = baselines::ligra::ligra_cf(
          lg, cf_iters, opts.lambda, opts.beta, opts.seed);
      record("CF", name, ours.stats.seconds(sys.freq_ghz),
             ours.stats.joules(), theirs.costs.seconds, theirs.costs.joules);
    }
  }

  for (const auto& name : cli.str_list("traversal-graphs")) {
    const auto g = reg.load(name, scale);
    const auto lg = baselines::ligra::LigraGraph::build(g.adjacency());
    {
      runtime::Engine eng(g.adjacency(), sys, bench::engine_options());
      const auto ours = graph::bfs(eng, 0);
      const auto theirs = baselines::ligra::ligra_bfs(lg, 0);
      record("BFS", name, ours.stats.seconds(sys.freq_ghz),
             ours.stats.joules(), theirs.costs.seconds, theirs.costs.joules);
    }
    {
      runtime::Engine eng(g.adjacency(), sys, bench::engine_options());
      const auto ours = graph::sssp(eng, 0);
      const auto theirs = baselines::ligra::ligra_sssp(lg, 0);
      record("SSSP", name, ours.stats.seconds(sys.freq_ghz),
             ours.stats.joules(), theirs.costs.seconds, theirs.costs.joules);
    }
  }

  bench::emit("fig10", t);
  std::cout << "Geomean speedup "
            << Table::fmt_ratio(std::exp(speed_log / samples))
            << ", geomean energy gain "
            << Table::fmt_ratio(std::exp(energy_log / samples))
            << "\nPaper: max 3.5x speedup; average 404.4x energy gain; "
               "Ligra slightly ahead only on pokec BFS/SSSP.\n";
  return bench::finish_run();
}
