// Figure 6 reproduction: speedup of PS vs. PC for the outer product.
//
// Paper shape to reproduce:
//   * PS gains grow with vector density (longer sorted lists thrash PC's
//     4 kB private L1, while PS pins the heap's hot levels in SPM);
//   * PC wins when vector sparsity lets the whole sorted list fit in L1
//     (negative values at the sparsest points);
//   * gains grow with tile count (shorter columns make heap management,
//     not streaming, the bottleneck) and shrink with PEs/tile (smaller
//     per-PE lists fit PC's cache).
#include <iostream>

#include "bench_util.h"
#include "sparse/generate.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("fig06_op_hw", "Fig. 6: PS vs PC speedup for OP");
  bench::add_common_options(cli, "1");
  cli.add_option("systems", "AxB system list", "4x8,4x16,8x8,8x16");
  cli.add_option("densities", "vector densities",
                 "0.0025,0.005,0.01,0.02,0.04");
  if (!cli.parse(argc, argv)) return 1;
  bench::init_observability(cli);

  const auto scale = static_cast<unsigned>(cli.integer("scale"));
  const auto systems = bench::parse_systems(cli.str("systems"));
  const auto densities = cli.real_list("densities");
  const auto matrices = bench::sweep_matrices(
      scale, /*power_law=*/false,
      static_cast<std::uint64_t>(cli.integer("seed")));

  std::cout << "Figure 6: speedup of PS vs PC for OP, as a percentage "
               "(positive = PS wins; scale=" << scale << ")\n\n";

  for (const auto& [label, m] : matrices) {
    Table t = [&] {
      std::vector<std::string> header = {"vec density"};
      for (const auto& sys : systems) header.push_back(sys.name());
      return Table(header);
    }();

    for (double d : densities) {
      const auto xs = sparse::random_sparse_vector(
          m.rows(), d, 123 + static_cast<std::uint64_t>(d * 1e6));
      std::vector<std::string> row = {Table::fmt(d, 4)};
      for (const auto& sys : systems) {
        const auto pc = bench::time_op(m, xs, sys, sim::HwConfig::kPC);
        const auto ps = bench::time_op(m, xs, sys, sim::HwConfig::kPS);
        const double speedup = static_cast<double>(pc.cycles) /
                                   static_cast<double>(ps.cycles) -
                               1.0;
        row.push_back(Table::fmt_pct(speedup));
      }
      t.add_row(std::move(row));
    }
    std::cout << label << " (r=" << Table::fmt(m.density(), 10) << ")\n";
    bench::emit("fig06_" + label.substr(2), t);
  }

  std::cout << "Takeaway (paper §III-C.3): PS wins with more columns to "
               "merge or shorter columns; PS's edge shrinks with more "
               "PEs per tile.\n";
  return bench::finish_run();
}
