// Collaborative filtering as a recommender: factorizes a synthetic
// user-item rating matrix with the paper's rank-1 gradient-descent CF
// (Table I), shows the training loss falling per iteration, and prints a
// few sample predictions vs. held-out ground truth.
//
//   ./recommender_cf [--users 2000] [--items 2000] [--ratings 40000]
#include <iostream>

#include "common/cli.h"
#include "common/rng.h"
#include "graph/algorithms.h"
#include "native/exec_mode.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sim/profile.h"
#include "sparse/formats.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("recommender_cf", "rank-1 CF recommender demo");
  cli.add_option("users", "number of users", "2000");
  cli.add_option("items", "number of items", "2000");
  cli.add_option("ratings", "number of observed ratings", "40000");
  cli.add_option("iterations", "gradient iterations", "60");
  cli.add_option("seed", "RNG seed for the rating matrix", "2024");
  cli.add_flag("profile",
               "attach the region-attributed memory profiler (adds the "
               "memory_profile report section; see cosparse-prof)");
  cli.add_option("report-out", "write a JSON run report to this path", "");
  cli.add_option("sim-threads",
                 "host threads for tile-parallel simulation (0 = serial; "
                 "COSPARSE_SIM_THREADS is the fallback; results are "
                 "bit-identical for any value)",
                 "");
  cli.add_option("exec-mode",
                 "execution backend: sim (cycle-accurate, the default) or "
                 "native (results-only host kernels, no cycle model; "
                 "COSPARSE_EXEC_MODE is the fallback)",
                 "");
  obs::TelemetrySession::add_cli_options(cli);
  obs::CpuProfileSession::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto users = static_cast<Index>(cli.integer("users"));
  const auto items = static_cast<Index>(cli.integer("items"));
  const auto num_ratings = static_cast<std::size_t>(cli.integer("ratings"));
  const Index n = users + items;  // bipartite graph in one vertex space

  // Ground truth: every user/item has a hidden affinity factor; a rating
  // is the product of the two. CF must recover factors that reproduce it.
  Rng rng(seed);
  std::vector<double> hidden(n);
  for (Index v = 0; v < n; ++v) hidden[v] = 0.4 + 0.5 * rng.next_double();

  std::vector<sparse::Triplet> ratings;
  ratings.reserve(num_ratings);
  for (std::size_t k = 0; k < num_ratings; ++k) {
    const auto u = static_cast<Index>(rng.next_below(users));
    const auto i = static_cast<Index>(users + rng.next_below(items));
    ratings.push_back({u, i, hidden[u] * hidden[i]});
  }
  const sparse::Coo rating_matrix(n, n, std::move(ratings));

  std::cout << "CF recommender: " << users << " users x " << items
            << " items, " << rating_matrix.nnz() << " observed ratings\n\n";

  const auto system = sim::SystemConfig::transmuter(8, 8);
  runtime::EngineOptions eng_opts;
  if (!cli.str("sim-threads").empty()) {
    eng_opts.sim_threads =
        static_cast<std::uint32_t>(cli.integer("sim-threads"));
  }
  eng_opts.exec_mode = native::resolve_exec_mode(
      cli.str("exec-mode").empty()
          ? std::nullopt
          : std::optional<std::string>(cli.str("exec-mode")));
  obs::TelemetrySession telemetry;
  telemetry.init(cli, "recommender_cf");
  eng_opts.telemetry = telemetry.telemetry();
  obs::CpuProfileSession cpu_profile;
  cpu_profile.init(cli, "recommender_cf");
  runtime::Engine engine(rating_matrix, system, eng_opts);
  sim::MemProfiler profiler;
  if (cli.flag("profile")) engine.machine().set_profiler(&profiler);
  graph::CfOptions opts;
  opts.iterations = static_cast<std::uint32_t>(cli.integer("iterations"));
  opts.beta = 0.05;
  opts.lambda = 0.001;
  const auto model = graph::cf(engine, rating_matrix, opts);

  std::cout << "training loss:\n";
  for (std::size_t i = 0; i < model.loss_per_iteration.size();
       i += std::max<std::size_t>(1, model.loss_per_iteration.size() / 8)) {
    std::cout << "  iter " << i << ": " << model.loss_per_iteration[i]
              << "\n";
  }
  std::cout << "  final: " << model.loss_per_iteration.back() << "\n\n";

  std::cout << "sample predictions (user, item): predicted vs true\n";
  Rng pick(7);
  for (int s = 0; s < 6; ++s) {
    const auto u = static_cast<Index>(pick.next_below(users));
    const auto i = static_cast<Index>(users + pick.next_below(items));
    std::cout << "  (" << u << ", " << i - users << "): "
              << model.latent[u] * model.latent[i] << " vs "
              << hidden[u] * hidden[i] << "\n";
  }

  std::cout << "\nall " << model.stats.iterations
            << " iterations ran the dense inner-product dataflow ("
            << model.stats.hw_switches()
            << " hardware reconfigurations after warmup)";
  if (eng_opts.exec_mode == native::ExecMode::kNative) {
    std::cout << "; native mode, no cycle model\n";
  } else {
    std::cout << "; simulated "
              << model.stats.seconds(system.freq_ghz) * 1e3 << " ms, "
              << model.stats.joules() * 1e3 << " mJ\n";
  }

  // Finalize before the report so the final flush snapshot and SLO
  // verdict land in the telemetry section.
  const int exit_code = telemetry.finalize();
  cpu_profile.finalize();
  if (const std::string path = cli.str("report-out"); !path.empty()) {
    obs::Report report = runtime::make_run_report(engine, "recommender_cf");
    if (cpu_profile.armed()) report.set("cpu_profile", cpu_profile.report());
    Json dataset = Json::object();
    dataset["users"] = users;
    dataset["items"] = items;
    dataset["ratings"] = rating_matrix.nnz();
    dataset["seed"] = seed;
    report.set("dataset", std::move(dataset));
    report.write(path);
    std::cout << "wrote run report to " << path << "\n";
  }
  return exit_code;
}
