// PageRank over a social network (the workload the paper's intro
// motivates): ranks the twitter stand-in graph on the simulated 16x16
// system, prints the most influential vertices, and compares simulated
// cost against the native mini-Ligra baseline.
//
//   ./social_pagerank [--graph twitter] [--scale 16] [--iterations 20]
#include <algorithm>
#include <iostream>

#include "baselines/ligra/apps.h"
#include "common/cli.h"
#include "graph/algorithms.h"
#include "native/exec_mode.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sim/profile.h"
#include "sparse/datasets.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("social_pagerank", "PageRank on a Table III social graph");
  cli.add_option("graph", "dataset name (Table III)", "twitter");
  cli.add_option("scale", "dataset scale divisor", "16");
  cli.add_option("iterations", "PageRank iterations", "20");
  cli.add_option("system", "simulated system AxB", "16x16");
  cli.add_option("seed", "stand-in generator seed offset (0 = canonical)",
                 "0");
  cli.add_flag("profile",
               "attach the region-attributed memory profiler (adds the "
               "memory_profile report section; see cosparse-prof)");
  cli.add_option("report-out", "write a JSON run report to this path", "");
  cli.add_option("sim-threads",
                 "host threads for tile-parallel simulation (0 = serial; "
                 "COSPARSE_SIM_THREADS is the fallback; results are "
                 "bit-identical for any value)",
                 "");
  cli.add_option("exec-mode",
                 "execution backend: sim (cycle-accurate, the default) or "
                 "native (results-only host kernels, no cycle model; "
                 "COSPARSE_EXEC_MODE is the fallback)",
                 "");
  obs::TelemetrySession::add_cli_options(cli);
  obs::CpuProfileSession::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  sparse::DatasetRegistry registry;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto graph = registry.load(
      cli.str("graph"), static_cast<unsigned>(cli.integer("scale")), seed);
  std::cout << "PageRank on " << graph.name() << " stand-in: "
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges\n\n";

  const auto sys_spec = cli.str("system");
  const auto x = sys_spec.find('x');
  const auto system = sim::SystemConfig::transmuter(
      static_cast<std::uint32_t>(std::stoul(sys_spec.substr(0, x))),
      static_cast<std::uint32_t>(std::stoul(sys_spec.substr(x + 1))));

  runtime::EngineOptions eng_opts;
  if (!cli.str("sim-threads").empty()) {
    eng_opts.sim_threads =
        static_cast<std::uint32_t>(cli.integer("sim-threads"));
  }
  eng_opts.exec_mode = native::resolve_exec_mode(
      cli.str("exec-mode").empty()
          ? std::nullopt
          : std::optional<std::string>(cli.str("exec-mode")));
  const bool is_native = eng_opts.exec_mode == native::ExecMode::kNative;
  obs::TelemetrySession telemetry;
  telemetry.init(cli, "social_pagerank");
  eng_opts.telemetry = telemetry.telemetry();
  obs::CpuProfileSession cpu_profile;
  cpu_profile.init(cli, "social_pagerank");
  runtime::Engine engine(graph.adjacency(), system, eng_opts);
  sim::MemProfiler profiler;
  if (cli.flag("profile")) engine.machine().set_profiler(&profiler);
  graph::PageRankOptions opts;
  opts.max_iterations = static_cast<std::uint32_t>(cli.integer("iterations"));
  const auto result = graph::pagerank(engine, graph.out_degrees(), opts);

  // Top-10 vertices by rank.
  std::vector<Index> order(graph.num_vertices());
  for (Index v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](Index a, Index b) {
                      return result.rank[a] > result.rank[b];
                    });
  std::cout << "top vertices by rank:\n";
  for (int i = 0; i < 10; ++i) {
    const Index v = order[static_cast<std::size_t>(i)];
    std::cout << "  #" << i + 1 << "  vertex " << v << "  rank "
              << result.rank[v] << "  (in-degree-heavy hub)\n";
  }

  std::cout << "\nconverged to residual " << result.residual << " in "
            << result.stats.iterations << " iterations\n";
  if (is_native) {
    std::cout << "native mode: no cycle model (results are byte-identical "
                 "to sim mode)\n";
  } else {
    std::cout << "simulated: " << result.stats.seconds(system.freq_ghz) * 1e3
              << " ms, " << result.stats.joules() * 1e3 << " mJ at "
              << result.stats.watts(system.freq_ghz) << " W\n";

    // Native baseline for context (energy via Xeon package power).
    const auto lg = baselines::ligra::LigraGraph::build(graph.adjacency());
    const auto ligra = baselines::ligra::ligra_pagerank(
        lg, opts.damping, opts.tolerance, opts.max_iterations);
    std::cout << "mini-Ligra (native): " << ligra.costs.seconds * 1e3
              << " ms, " << ligra.costs.joules * 1e3 << " mJ -> CoSPARSE is "
              << ligra.costs.joules / result.stats.joules()
              << "x more energy-efficient here\n";
  }

  // Finalize before the report so the final flush snapshot and SLO
  // verdict land in the telemetry section.
  const int exit_code = telemetry.finalize();
  cpu_profile.finalize();
  if (const std::string path = cli.str("report-out"); !path.empty()) {
    obs::Report report = runtime::make_run_report(engine, "social_pagerank");
    if (cpu_profile.armed()) report.set("cpu_profile", cpu_profile.report());
    Json dataset = Json::object();
    dataset["graph"] = graph.name();
    dataset["vertices"] = graph.num_vertices();
    dataset["edges"] = graph.num_edges();
    dataset["seed"] = seed;
    report.set("dataset", std::move(dataset));
    report.write(path);
    std::cout << "wrote run report to " << path << "\n";
  }
  return exit_code;
}
