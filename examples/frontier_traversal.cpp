// Graph traversal with per-iteration reconfiguration: runs BFS and SSSP
// on a Table III stand-in and prints the iteration-by-iteration story —
// frontier density rising and collapsing, and the runtime flipping between
// the outer-product (sparse) and inner-product (dense) dataflows with the
// matching memory configuration, exactly the behaviour of paper Fig. 9.
//
//   ./frontier_traversal [--graph pokec] [--scale 32] [--source 0]
#include <cmath>
#include <iostream>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "graph/algorithms.h"
#include "native/exec_mode.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sim/profile.h"
#include "sparse/datasets.h"

using namespace cosparse;

namespace {

void print_iterations(const graph::AlgoStats& stats) {
  Table t({"iter", "frontier", "density", "dataflow", "memory", "switched",
           "Kcycles"});
  for (const auto& it : stats.per_iteration) {
    t.add_row({std::to_string(it.index), std::to_string(it.frontier_nnz),
               Table::fmt_pct(it.density), to_string(it.sw),
               sim::to_string(it.hw),
               it.hw_switched ? (it.sw_switched ? "SW+HW" : "HW")
                              : (it.sw_switched ? "SW" : "-"),
               Table::fmt(static_cast<double>(it.cycles) / 1e3, 1)});
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("frontier_traversal",
                "BFS + SSSP with per-iteration reconfiguration");
  cli.add_option("graph", "dataset name (Table III)", "pokec");
  cli.add_option("scale", "dataset scale divisor", "32");
  cli.add_option("source", "source vertex", "0");
  cli.add_option("seed", "stand-in generator seed offset (0 = canonical)",
                 "0");
  cli.add_flag("profile",
               "attach the region-attributed memory profiler (adds the "
               "memory_profile report section; see cosparse-prof)");
  cli.add_option("report-out", "write a JSON run report to this path", "");
  cli.add_option("sim-threads",
                 "host threads for tile-parallel simulation (0 = serial; "
                 "COSPARSE_SIM_THREADS is the fallback; results are "
                 "bit-identical for any value)",
                 "");
  cli.add_option("trace-out",
                 "write Perfetto trace-event JSON to this path "
                 "(COSPARSE_TRACE env var is the fallback)",
                 "");
  cli.add_option("exec-mode",
                 "execution backend: sim (cycle-accurate, the default) or "
                 "native (results-only host kernels, no cycle model; "
                 "COSPARSE_EXEC_MODE is the fallback)",
                 "");
  obs::TelemetrySession::add_cli_options(cli);
  obs::CpuProfileSession::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;

  sparse::DatasetRegistry registry;
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const auto graph = registry.load(
      cli.str("graph"), static_cast<unsigned>(cli.integer("scale")), seed);
  const auto source = static_cast<Index>(cli.integer("source"));
  const auto system = sim::SystemConfig::transmuter(16, 16);
  // One profiler spans all three traversal engines: region counters are
  // keyed by label, so BFS, CC and SSSP accumulate into one breakdown.
  sim::MemProfiler profiler;
  const bool profile = cli.flag("profile");

  // Shared observability sinks: all three traversal engines publish into
  // the same trace/metrics, so algo.bfs.*, algo.cc.* and algo.sssp.* land
  // in one registry and one timeline.
  std::string trace_path = cli.str("trace-out");
  if (trace_path.empty()) trace_path = obs::trace_path_from_env();
  obs::Trace trace(!trace_path.empty());
  obs::MetricsRegistry metrics;
  runtime::EngineOptions obs_opts;
  if (!cli.str("sim-threads").empty()) {
    obs_opts.sim_threads = static_cast<std::uint32_t>(cli.integer("sim-threads"));
  }
  obs_opts.exec_mode = native::resolve_exec_mode(
      cli.str("exec-mode").empty()
          ? std::nullopt
          : std::optional<std::string>(cli.str("exec-mode")));
  obs_opts.trace = &trace;
  obs_opts.metrics = &metrics;
  // One telemetry stream spans all three traversal engines, like the
  // trace/metrics sinks: algo.bfs.*, algo.cc.* and algo.sssp.* histograms
  // accumulate into the same snapshots.
  obs::TelemetrySession telemetry;
  telemetry.init(cli, "frontier_traversal");
  obs_opts.telemetry = telemetry.telemetry();
  // One CPU-profile likewise spans all three traversals: samples land in
  // graph.bfs / graph.cc / graph.sssp phases of a single flamegraph.
  obs::CpuProfileSession cpu_profile;
  cpu_profile.init(cli, "frontier_traversal");

  int exit_code = 0;
  std::cout << "Traversals on " << graph.name() << " stand-in ("
            << graph.num_vertices() << " vertices, " << graph.num_edges()
            << " edges), " << system.name() << " system\n\n";

  {
    runtime::Engine engine(graph.adjacency(), system, obs_opts);
    if (profile) engine.machine().set_profiler(&profiler);
    const auto bfs = graph::bfs(engine, source);
    std::size_t reached = 0;
    std::int64_t max_level = 0;
    for (auto l : bfs.level) {
      if (l >= 0) {
        ++reached;
        max_level = std::max(max_level, l);
      }
    }
    std::cout << "BFS from vertex " << source << ": reached " << reached
              << " vertices, eccentricity " << max_level << "\n";
    print_iterations(bfs.stats);
    std::cout << "total " << bfs.stats.cycles / 1000 << " Kcycles, "
              << bfs.stats.sw_switches() << " dataflow switches, "
              << bfs.stats.hw_switches() << " memory reconfigurations\n\n";
  }

  {
    // Connected components run on the symmetrized adjacency (weakly
    // connected components of the directed stand-in).
    runtime::Engine engine(sparse::symmetrize(graph.adjacency()), system,
                           obs_opts);
    if (profile) engine.machine().set_profiler(&profiler);
    const auto cc = graph::connected_components(engine);
    std::cout << "Connected components: " << cc.num_components
              << " components in " << cc.stats.iterations
              << " label-propagation iterations, "
              << cc.stats.cycles / 1000 << " Kcycles\n\n";
  }

  {
    runtime::Engine engine(graph.adjacency(), system, obs_opts);
    if (profile) engine.machine().set_profiler(&profiler);
    const auto sssp = graph::sssp(engine, source);
    double max_dist = 0;
    std::size_t reached = 0;
    for (auto d : sssp.dist) {
      if (!std::isinf(d)) {
        ++reached;
        max_dist = std::max(max_dist, d);
      }
    }
    std::cout << "SSSP from vertex " << source << ": reached " << reached
              << " vertices, farthest distance " << max_dist << "\n";
    print_iterations(sssp.stats);
    std::cout << "total " << sssp.stats.cycles / 1000 << " Kcycles, "
              << sssp.stats.sw_switches() << " dataflow switches, "
              << sssp.stats.hw_switches() << " memory reconfigurations\n";

    // The report covers the last engine's machine (the SSSP run) plus the
    // metrics registry all three traversals shared. Telemetry finalizes
    // first so its final snapshot and SLO verdict reach the report.
    exit_code = telemetry.finalize();
    cpu_profile.finalize();
    if (const std::string path = cli.str("report-out"); !path.empty()) {
      obs::Report report =
          runtime::make_run_report(engine, "frontier_traversal");
      if (cpu_profile.armed()) {
        report.set("cpu_profile", cpu_profile.report());
      }
      Json dataset = Json::object();
      dataset["graph"] = graph.name();
      dataset["vertices"] = graph.num_vertices();
      dataset["edges"] = graph.num_edges();
      dataset["seed"] = seed;
      report.set("dataset", std::move(dataset));
      report.write(path);
      std::cout << "wrote run report to " << path << "\n";
    }
  }
  if (trace.enabled()) {
    trace.write(trace_path);
    std::cout << "wrote trace to " << trace_path
              << " (open at ui.perfetto.dev)\n";
  }
  return exit_code;
}
