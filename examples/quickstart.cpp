// Quickstart: the CoSPARSE public API in ~60 lines.
//
// Builds a small random graph, runs two SpMV iterations through the
// reconfiguring engine — one sparse frontier, one dense — plus a BFS over
// the same graph, and shows the software/hardware configuration the
// runtime picked for each step, plus the simulated cost. With
// --report-out / --trace-out the same run emits a machine-readable JSON
// run report and a Perfetto-loadable trace.
//
//   ./quickstart [--vertices N] [--edges M] [--seed S] [--profile]
//                [--exec-mode sim|native]
//                [--report-out run.json] [--trace-out trace.json]
//                [--telemetry-interval 1i --telemetry-out t.jsonl
//                 --prom-out metrics.prom --slo 'p99.engine.iteration_ms<50']
#include <iostream>

#include "common/cli.h"
#include "common/digest.h"
#include "graph/algorithms.h"
#include "kernels/semiring.h"
#include "native/exec_mode.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "runtime/engine.h"
#include "runtime/report.h"
#include "sim/profile.h"
#include "sparse/generate.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("quickstart", "CoSPARSE API quickstart");
  cli.add_option("vertices", "number of vertices", "20000");
  cli.add_option("edges", "number of edges", "200000");
  cli.add_option("seed", "RNG seed for the graph and frontiers", "42");
  cli.add_flag("profile",
               "attach the region-attributed memory profiler (adds the "
               "memory_profile report section; see cosparse-prof)");
  cli.add_option("report-out", "write a JSON run report to this path", "");
  cli.add_option("sim-threads",
                 "host threads for tile-parallel simulation (0 = serial; "
                 "COSPARSE_SIM_THREADS is the fallback; results are "
                 "bit-identical for any value)",
                 "");
  cli.add_option("exec-mode",
                 "execution backend: sim (cycle-accurate, the default) or "
                 "native (results-only host kernels, no cycle model; "
                 "COSPARSE_EXEC_MODE is the fallback; results are "
                 "byte-identical across modes)",
                 "");
  cli.add_option("trace-out",
                 "write Perfetto trace-event JSON to this path "
                 "(COSPARSE_TRACE env var is the fallback)",
                 "");
  obs::TelemetrySession::add_cli_options(cli);
  obs::CpuProfileSession::add_cli_options(cli);
  if (!cli.parse(argc, argv)) return 1;
  const auto n = static_cast<Index>(cli.integer("vertices"));
  const auto m = static_cast<std::uint64_t>(cli.integer("edges"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));
  std::string trace_path = cli.str("trace-out");
  if (trace_path.empty()) trace_path = obs::trace_path_from_env();

  // 1. An input graph (any sparse::Coo adjacency works; see sparse/io.h
  //    for Matrix Market / SNAP edge-list loaders).
  const sparse::Coo adjacency =
      sparse::uniform_random(n, n, m, seed,
                             sparse::ValueDist::kUniform01);

  // 2. A simulated Transmuter-class system (Table II defaults) and the
  //    engine: it keeps both matrix layouts resident and reconfigures the
  //    memory hierarchy per SpMV invocation. The trace/metrics sinks are
  //    optional — without them the engine pays one pointer test per event.
  const auto system = sim::SystemConfig::transmuter(4, 8);
  obs::Trace trace(!trace_path.empty());
  obs::MetricsRegistry metrics;
  runtime::EngineOptions opts;
  if (!cli.str("sim-threads").empty()) {
    opts.sim_threads = static_cast<std::uint32_t>(cli.integer("sim-threads"));
  }
  opts.exec_mode = native::resolve_exec_mode(
      cli.str("exec-mode").empty()
          ? std::nullopt
          : std::optional<std::string>(cli.str("exec-mode")));
  opts.trace = &trace;
  opts.metrics = &metrics;
  // Continuous telemetry (off unless --telemetry-interval or
  // COSPARSE_TELEMETRY arms it): streaming histograms snapshotted to
  // JSONL/OpenMetrics, watched by the SLO rules. Tail the JSONL live with
  // cosparse-top.
  obs::TelemetrySession telemetry;
  telemetry.init(cli, "quickstart");
  opts.telemetry = telemetry.telemetry();
  // Host-CPU sampling profiler (off unless --cpu-profile names an output
  // path): folded stacks + flamegraph on exit, cpu_profile report section.
  obs::CpuProfileSession cpu_profile;
  cpu_profile.init(cli, "quickstart");
  runtime::Engine engine(adjacency, system, opts);

  // With --profile, every memory-hierarchy event is attributed to the
  // allocation region it touched; the breakdown lands in the report's
  // memory_profile section (inspect with cosparse-prof summarize/diff).
  sim::MemProfiler profiler;
  if (cli.flag("profile")) engine.machine().set_profiler(&profiler);

  // 3. SpMV with a *sparse* frontier (0.1% of vertices active): the
  //    decision tree picks the outer-product dataflow.
  const auto sparse_x = sparse::random_sparse_vector(n, 0.001, seed + 1);
  const auto out1 = engine.spmv(
      runtime::Engine::Frontier::from_sparse(sparse_x), kernels::PlainSpmv{});

  // 4. SpMV with a *dense* frontier: inner product, and a hardware
  //    reconfiguration on the way.
  const auto dense_x = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(n, seed + 2));
  const auto out2 = engine.spmv(
      runtime::Engine::Frontier::from_dense(dense_x), kernels::PlainSpmv{});

  // 5. A whole graph algorithm over the same engine: BFS drives SpMV until
  //    the frontier empties, reconfiguring as the density changes.
  const auto bfs = graph::bfs(engine, /*source=*/0);
  std::size_t reached = 0;
  for (auto l : bfs.level) reached += l >= 0 ? 1 : 0;

  const bool is_native = opts.exec_mode == native::ExecMode::kNative;
  std::cout << "CoSPARSE quickstart on a " << n << "-vertex, " << m
            << "-edge random graph, " << system.name() << " system ("
            << native::to_string(opts.exec_mode) << " mode)\n\n";
  for (const auto& it : engine.iterations()) {
    std::cout << "iteration " << it.index << ": frontier density "
              << it.density * 100 << "%, ran " << to_string(it.sw) << " in "
              << sim::to_string(it.hw)
              << (it.hw_switched ? " (reconfigured)" : "");
    if (!is_native) {
      std::cout << ", " << it.cycles << " cycles, " << it.energy_pj * 1e-6
                << " uJ";
    }
    std::cout << "\n";
  }
  std::cout << "\ntouched " << out1.num_touched() << " rows (sparse run), "
            << out2.num_touched() << " rows (dense run)\n"
            << "BFS from vertex 0: reached " << reached << " vertices in "
            << bfs.stats.iterations << " iterations\n";
  if (is_native) {
    std::cout << "native mode: no cycle model (results are byte-identical "
                 "to sim mode)\n";
  } else {
    std::cout << "total: " << engine.total_cycles() << " cycles, "
              << engine.total_energy_pj() * 1e-6 << " uJ, avg "
              << engine.machine().watts() << " W\n";
  }

  // 6. Machine-readable outputs: one JSON run report (global + per-tile
  //    stats, iteration records, metrics, telemetry) and a Perfetto
  //    trace. Finalize telemetry first so the final flush snapshot and
  //    SLO verdict land in the report's telemetry section; the returned
  //    code is nonzero only under --slo-strict with a violated rule.
  const int exit_code = telemetry.finalize();
  cpu_profile.finalize();  // stop sampling before the report is cut
  if (const std::string path = cli.str("report-out"); !path.empty()) {
    obs::Report report = runtime::make_run_report(engine, "quickstart");
    Json dataset = Json::object();
    dataset["vertices"] = n;
    dataset["edges"] = m;
    dataset["seed"] = seed;
    report.set("dataset", std::move(dataset));
    // Bitwise result digests: the same graph run under --exec-mode sim and
    // --exec-mode native must produce identical digests (the CI native
    // quickstart gates compare this section byte-for-byte; DESIGN.md §14).
    const auto digest_output = [](const runtime::Engine::Output& out) {
      Digest d;
      d.update_u64(out.num_touched());
      out.for_each_touched(
          [&d](Index r, Value v) { d.update_index(r); d.update_value(v); });
      return d.hex();
    };
    Digest bfs_digest;
    for (const auto l : bfs.level) {
      bfs_digest.update_u64(static_cast<std::uint64_t>(l));
    }
    Json results = Json::object();
    results["spmv_sparse_digest"] = digest_output(out1);
    results["spmv_dense_digest"] = digest_output(out2);
    results["bfs_levels_digest"] = bfs_digest.hex();
    results["bfs_reached"] = reached;
    results["bfs_iterations"] = bfs.stats.iterations;
    report.set("results", std::move(results));
    if (cpu_profile.armed()) {
      report.set("cpu_profile", cpu_profile.report());
    }
    report.write(path);
    std::cout << "wrote run report to " << path << "\n";
  }
  if (trace.enabled()) {
    trace.write(trace_path);
    std::cout << "wrote trace to " << trace_path
              << " (open at ui.perfetto.dev)\n";
  }
  return exit_code;
}
