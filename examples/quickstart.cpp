// Quickstart: the CoSPARSE public API in ~40 lines.
//
// Builds a small random graph, runs two SpMV iterations through the
// reconfiguring engine — one sparse frontier, one dense — and shows the
// software/hardware configuration the runtime picked for each, plus the
// simulated cost.
//
//   ./quickstart [--vertices N] [--edges M]
#include <iostream>

#include "common/cli.h"
#include "kernels/semiring.h"
#include "runtime/engine.h"
#include "sparse/generate.h"

using namespace cosparse;

int main(int argc, char** argv) {
  CliParser cli("quickstart", "CoSPARSE API quickstart");
  cli.add_option("vertices", "number of vertices", "20000");
  cli.add_option("edges", "number of edges", "200000");
  if (!cli.parse(argc, argv)) return 1;
  const auto n = static_cast<Index>(cli.integer("vertices"));
  const auto m = static_cast<std::uint64_t>(cli.integer("edges"));

  // 1. An input graph (any sparse::Coo adjacency works; see sparse/io.h
  //    for Matrix Market / SNAP edge-list loaders).
  const sparse::Coo adjacency =
      sparse::uniform_random(n, n, m, /*seed=*/42,
                             sparse::ValueDist::kUniform01);

  // 2. A simulated Transmuter-class system (Table II defaults) and the
  //    engine: it keeps both matrix layouts resident and reconfigures the
  //    memory hierarchy per SpMV invocation.
  const auto system = sim::SystemConfig::transmuter(4, 8);
  runtime::Engine engine(adjacency, system);

  // 3. SpMV with a *sparse* frontier (0.1% of vertices active): the
  //    decision tree picks the outer-product dataflow.
  const auto sparse_x = sparse::random_sparse_vector(n, 0.001, 7);
  const auto out1 = engine.spmv(
      runtime::Engine::Frontier::from_sparse(sparse_x), kernels::PlainSpmv{});

  // 4. SpMV with a *dense* frontier: inner product, and a hardware
  //    reconfiguration on the way.
  const auto dense_x = kernels::DenseFrontier::from_dense(
      sparse::random_dense_vector(n, 8));
  const auto out2 = engine.spmv(
      runtime::Engine::Frontier::from_dense(dense_x), kernels::PlainSpmv{});

  std::cout << "CoSPARSE quickstart on a " << n << "-vertex, " << m
            << "-edge random graph, " << system.name() << " system\n\n";
  for (const auto& it : engine.iterations()) {
    std::cout << "iteration " << it.index << ": frontier density "
              << it.density * 100 << "%, ran " << to_string(it.sw) << " in "
              << sim::to_string(it.hw) << (it.hw_switched ? " (reconfigured)" : "")
              << ", " << it.cycles << " cycles, "
              << it.energy_pj * 1e-6 << " uJ\n";
  }
  std::cout << "\ntouched " << out1.num_touched() << " rows (sparse run), "
            << out2.num_touched() << " rows (dense run)\n"
            << "total: " << engine.total_cycles() << " cycles, "
            << engine.total_energy_pj() * 1e-6 << " uJ, avg "
            << engine.machine().watts() << " W\n";
  return 0;
}
