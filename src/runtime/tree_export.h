// Exports the reconfiguration decision tree to an analyzable form.
//
// The runtime's tree (decision.h) is code; static analysis needs data. A
// DecisionTreeSpec is the tree flattened into axis-aligned rules over the
// two features every decision reduces to once the dataset is fixed:
//
//   * vector density  — frontier_nnz / dimension, in [0, 1];
//   * vector footprint — dense value array + bitmap bytes, in [0, inf).
//
// Each rule maps a half-open density × footprint box to one (SW, HW)
// configuration and carries a node name ("op.pc", "ip.scs", ...) used as
// the source location of decision-tree lint findings. export_decision_tree
// derives the spec from a Thresholds instance for a concrete dataset, so
// by construction it partitions the space exactly like DecisionEngine
// decides (cross-checked by tests/verify/test_tree_export.cpp); a run plan
// may instead carry a hand-written spec, which is what the gap/overlap
// analysis in src/verify/tree_lint.h exists to catch.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "runtime/decision.h"
#include "sim/config.h"

namespace cosparse::runtime {

/// Half-open interval [lo, hi); hi == infinity() means unbounded above.
struct FeatureInterval {
  double lo = 0.0;
  double hi = std::numeric_limits<double>::infinity();

  [[nodiscard]] bool contains(double x) const { return x >= lo && x < hi; }
  [[nodiscard]] bool empty() const { return lo >= hi; }
};

struct TreeRule {
  std::string node;  ///< tree-node name, the lint location ("ip.scs", ...)
  SwConfig sw = SwConfig::kIP;
  sim::HwConfig hw = sim::HwConfig::kSC;
  FeatureInterval density;    ///< vector density in [0, 1]
  FeatureInterval footprint;  ///< dense vector footprint in bytes

  [[nodiscard]] bool covers(double d, double fp) const {
    return density.contains(d) && footprint.contains(fp);
  }
};

struct DecisionTreeSpec {
  std::vector<TreeRule> rules;

  [[nodiscard]] Json to_json() const;
  /// Throws cosparse::Error on malformed documents.
  static DecisionTreeSpec from_json(const Json& j);
};

/// Dense vector footprint modeled by the decision tree: 8 B of values plus
/// 1 bit of bitmap per vertex (decision.cpp uses the same formula).
[[nodiscard]] std::size_t vector_footprint_bytes(Index dimension);

/// The density threshold (for `dimension`) above which the per-PE sorted
/// list of column heads no longer fits the PS budget — the OP half of the
/// tree expressed as a density breakpoint. Returns > 1 when PS is
/// unreachable at this dimension.
[[nodiscard]] double ps_density_threshold(const sim::SystemConfig& cfg,
                                          const Thresholds& t,
                                          Index dimension);

/// Flattens the tree for a concrete dataset. The returned rules partition
/// density [0, 1] × footprint [0, inf) exactly when the thresholds are
/// sane; degenerate thresholds produce empty-interval rules (kept, so the
/// lint can name the unreachable branch).
[[nodiscard]] DecisionTreeSpec export_decision_tree(
    const sim::SystemConfig& cfg, const Thresholds& t, Index dimension,
    double matrix_density);

}  // namespace cosparse::runtime
