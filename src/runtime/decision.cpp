#include "runtime/decision.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "runtime/audit.h"
#include "sim/analytic.h"

namespace cosparse::runtime {

const char* to_string(SwConfig c) {
  return c == SwConfig::kIP ? "IP" : "OP";
}

SwConfig sw_config_from_string(std::string_view s) {
  if (s == "IP") return SwConfig::kIP;
  if (s == "OP") return SwConfig::kOP;
  throw Error("unknown SwConfig name: " + std::string(s));
}

double Thresholds::cvd(std::uint32_t pes_per_tile,
                       double matrix_density) const {
  double v = cvd_coefficient / static_cast<double>(pes_per_tile);
  if (matrix_density > 0.0) {
    // Sparser matrix -> less IP vector reuse -> CVD rises slightly
    // (paper §III-C.1).
    v *= std::pow(matrix_density_reference / matrix_density,
                  matrix_density_exponent);
  }
  return std::clamp(v, cvd_min, cvd_max);
}

sim::HwConfig DecisionEngine::decide_hw_impl(SwConfig sw, Index dimension,
                                             std::size_t frontier_nnz,
                                             DecisionRecord* rec) const {
  if (sw == SwConfig::kIP) {
    const double density =
        dimension == 0 ? 0.0
                       : static_cast<double>(frontier_nnz) /
                             static_cast<double>(dimension);
    // Vector footprint: 8 B values + 1 bit of bitmap per vertex.
    const auto footprint = static_cast<std::size_t>(dimension) * 8 +
                           static_cast<std::size_t>(dimension) / 8;
    const bool fits_in_l1 = footprint <= cfg_.l1_bytes_per_tile();
    if (rec != nullptr) {
      rec->checks.push_back(ThresholdCheck{
          "ip_vector_exceeds_l1", static_cast<double>(footprint),
          static_cast<double>(cfg_.l1_bytes_per_tile()),
          static_cast<double>(footprint) -
              static_cast<double>(cfg_.l1_bytes_per_tile()),
          !fits_in_l1});
      rec->checks.push_back(ThresholdCheck{
          "scs_density", density, thresholds_.scs_density,
          density - thresholds_.scs_density,
          density >= thresholds_.scs_density});
    }
    if (!fits_in_l1 && density >= thresholds_.scs_density) {
      return sim::HwConfig::kSCS;
    }
    return sim::HwConfig::kSC;
  }
  // Outer product: size of the per-PE sorted list of column heads.
  const std::size_t per_pe =
      (frontier_nnz + cfg_.pes_per_tile - 1) / cfg_.pes_per_tile;
  const auto list_bytes = per_pe * kernels::kHeapNodeBytes;
  const double budget = thresholds_.ps_list_fraction *
                        static_cast<double>(cfg_.bank_bytes);
  const bool fits = static_cast<double>(list_bytes) <= budget;
  if (rec != nullptr) {
    rec->checks.push_back(ThresholdCheck{
        "op_list_exceeds_spm", static_cast<double>(list_bytes), budget,
        static_cast<double>(list_bytes) - budget, !fits});
  }
  return fits ? sim::HwConfig::kPC : sim::HwConfig::kPS;
}

sim::HwConfig DecisionEngine::decide_hw(SwConfig sw, Index dimension,
                                        std::size_t frontier_nnz) const {
  return decide_hw_impl(sw, dimension, frontier_nnz, nullptr);
}

void DecisionEngine::publish(const Decision& d) const {
  if (metrics_ == nullptr) return;
  metrics_->counter(std::string("decision.sw.") + to_string(d.sw)).inc();
  metrics_->counter(std::string("decision.hw.") + sim::to_string(d.hw)).inc();
}

Decision DecisionEngine::decide_impl(const SwConfig* forced, Index dimension,
                                     double matrix_density,
                                     std::size_t frontier_nnz) const {
  Decision d;
  d.vector_density = dimension == 0
                         ? 0.0
                         : static_cast<double>(frontier_nnz) /
                               static_cast<double>(dimension);
  d.cvd = thresholds_.cvd(cfg_.pes_per_tile, matrix_density);

  DecisionRecord rec;
  DecisionRecord* rp = audit_ == nullptr ? nullptr : &rec;
  if (rp != nullptr) {
    rec.forced_sw = forced != nullptr;
    rec.features.dimension = dimension;
    rec.features.matrix_density = matrix_density;
    rec.features.frontier_nnz = frontier_nnz;
    rec.features.vector_density = d.vector_density;
    rec.features.vector_footprint_bytes =
        static_cast<std::uint64_t>(dimension) * 8 +
        static_cast<std::uint64_t>(dimension) / 8;
    rec.features.l1_bytes_per_tile = cfg_.l1_bytes_per_tile();
    const std::size_t per_pe =
        (frontier_nnz + cfg_.pes_per_tile - 1) / cfg_.pes_per_tile;
    rec.features.op_list_bytes_per_pe = per_pe * kernels::kHeapNodeBytes;
    rec.features.op_list_budget_bytes = static_cast<std::uint64_t>(
        thresholds_.ps_list_fraction * static_cast<double>(cfg_.bank_bytes));
  }

  if (forced != nullptr) {
    d.sw = *forced;
  } else {
    d.sw = d.vector_density >= d.cvd ? SwConfig::kIP : SwConfig::kOP;
    if (rp != nullptr) {
      rec.checks.push_back(ThresholdCheck{
          "cvd", d.vector_density, d.cvd, d.vector_density - d.cvd,
          d.vector_density >= d.cvd});
    }
  }
  d.hw = decide_hw_impl(d.sw, dimension, frontier_nnz, rp);

  if (rp != nullptr) {
    rec.sw = d.sw;
    rec.hw = d.hw;
    rec.cvd = d.cvd;
    // Counterfactual costs for all four candidates (sim::analytic).
    sim::SpmvShape shape;
    shape.dimension = static_cast<std::uint64_t>(dimension);
    shape.matrix_nnz = static_cast<std::uint64_t>(
        matrix_density * static_cast<double>(dimension) *
        static_cast<double>(dimension));
    shape.frontier_nnz = frontier_nnz;
    shape.value_bytes = kernels::kValueBytes;
    const struct {
      SwConfig sw;
      sim::HwConfig hw;
    } candidates[] = {{SwConfig::kIP, sim::HwConfig::kSC},
                      {SwConfig::kIP, sim::HwConfig::kSCS},
                      {SwConfig::kOP, sim::HwConfig::kPC},
                      {SwConfig::kOP, sim::HwConfig::kPS}};
    for (const auto& c : candidates) {
      shape.matrix_elem_bytes = c.sw == SwConfig::kIP ? kernels::kIpElemBytes
                                                      : kernels::kOpElemBytes;
      const auto p =
          sim::estimate_spmv(cfg_, c.sw == SwConfig::kIP, c.hw, shape);
      rec.counterfactuals.push_back(
          Counterfactual{c.sw, c.hw, p.cycles,
                         c.sw == d.sw && c.hw == d.hw});
    }
    audit_->record(std::move(rec));
  }

  publish(d);
  return d;
}

Decision DecisionEngine::decide(Index dimension, double matrix_density,
                                std::size_t frontier_nnz) const {
  return decide_impl(nullptr, dimension, matrix_density, frontier_nnz);
}

Decision DecisionEngine::decide_forced_sw(SwConfig sw, Index dimension,
                                          double matrix_density,
                                          std::size_t frontier_nnz) const {
  return decide_impl(&sw, dimension, matrix_density, frontier_nnz);
}

}  // namespace cosparse::runtime
