#include "runtime/decision.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"
#include "kernels/op_spmv.h"

namespace cosparse::runtime {

const char* to_string(SwConfig c) {
  return c == SwConfig::kIP ? "IP" : "OP";
}

SwConfig sw_config_from_string(std::string_view s) {
  if (s == "IP") return SwConfig::kIP;
  if (s == "OP") return SwConfig::kOP;
  throw Error("unknown SwConfig name: " + std::string(s));
}

double Thresholds::cvd(std::uint32_t pes_per_tile,
                       double matrix_density) const {
  double v = cvd_coefficient / static_cast<double>(pes_per_tile);
  if (matrix_density > 0.0) {
    // Sparser matrix -> less IP vector reuse -> CVD rises slightly
    // (paper §III-C.1).
    v *= std::pow(matrix_density_reference / matrix_density,
                  matrix_density_exponent);
  }
  return std::clamp(v, cvd_min, cvd_max);
}

sim::HwConfig DecisionEngine::decide_hw(SwConfig sw, Index dimension,
                                        std::size_t frontier_nnz) const {
  if (sw == SwConfig::kIP) {
    const double density =
        dimension == 0 ? 0.0
                       : static_cast<double>(frontier_nnz) /
                             static_cast<double>(dimension);
    // Vector footprint: 8 B values + 1 bit of bitmap per vertex.
    const auto footprint = static_cast<std::size_t>(dimension) * 8 +
                           static_cast<std::size_t>(dimension) / 8;
    const bool fits_in_l1 = footprint <= cfg_.l1_bytes_per_tile();
    if (!fits_in_l1 && density >= thresholds_.scs_density) {
      return sim::HwConfig::kSCS;
    }
    return sim::HwConfig::kSC;
  }
  // Outer product: size of the per-PE sorted list of column heads.
  const std::size_t per_pe =
      (frontier_nnz + cfg_.pes_per_tile - 1) / cfg_.pes_per_tile;
  const auto list_bytes = per_pe * kernels::kHeapNodeBytes;
  const bool fits = static_cast<double>(list_bytes) <=
                    thresholds_.ps_list_fraction *
                        static_cast<double>(cfg_.bank_bytes);
  return fits ? sim::HwConfig::kPC : sim::HwConfig::kPS;
}

void DecisionEngine::publish(const Decision& d) const {
  if (metrics_ == nullptr) return;
  metrics_->counter(std::string("decision.sw.") + to_string(d.sw)).inc();
  metrics_->counter(std::string("decision.hw.") + sim::to_string(d.hw)).inc();
}

Decision DecisionEngine::decide(Index dimension, double matrix_density,
                                std::size_t frontier_nnz) const {
  Decision d;
  d.vector_density = dimension == 0
                         ? 0.0
                         : static_cast<double>(frontier_nnz) /
                               static_cast<double>(dimension);
  d.cvd = thresholds_.cvd(cfg_.pes_per_tile, matrix_density);
  d.sw = d.vector_density >= d.cvd ? SwConfig::kIP : SwConfig::kOP;
  d.hw = decide_hw(d.sw, dimension, frontier_nnz);
  publish(d);
  return d;
}

}  // namespace cosparse::runtime
