#include "runtime/tree_export.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "kernels/op_spmv.h"

namespace cosparse::runtime {

namespace {

Json interval_to_json(const FeatureInterval& iv) {
  Json o = Json::object();
  o["lo"] = iv.lo;
  if (std::isinf(iv.hi)) {
    o["hi"] = nullptr;
  } else {
    o["hi"] = iv.hi;
  }
  return o;
}

FeatureInterval interval_from_json(const Json& j, const char* what) {
  COSPARSE_REQUIRE(j.is_object(),
                   std::string(what) + " interval must be an object");
  FeatureInterval iv;
  if (const Json* lo = j.find("lo"); lo != nullptr) iv.lo = lo->as_double();
  if (const Json* hi = j.find("hi"); hi != nullptr && !hi->is_null()) {
    iv.hi = hi->as_double();
  }
  return iv;
}

}  // namespace

Json DecisionTreeSpec::to_json() const {
  Json o = Json::object();
  Json arr = Json::array();
  for (const auto& r : rules) {
    Json rule = Json::object();
    rule["node"] = r.node;
    rule["sw"] = to_string(r.sw);
    rule["hw"] = sim::to_string(r.hw);
    rule["density"] = interval_to_json(r.density);
    rule["footprint"] = interval_to_json(r.footprint);
    arr.push_back(std::move(rule));
  }
  o["rules"] = std::move(arr);
  return o;
}

DecisionTreeSpec DecisionTreeSpec::from_json(const Json& j) {
  COSPARSE_REQUIRE(j.is_object(), "decision tree must be a JSON object");
  const Json* rules = j.find("rules");
  COSPARSE_REQUIRE(rules != nullptr && rules->is_array(),
                   "decision tree missing array field: rules");
  DecisionTreeSpec spec;
  for (const Json& rj : rules->items()) {
    COSPARSE_REQUIRE(rj.is_object(), "decision tree rule must be an object");
    TreeRule r;
    if (const Json* node = rj.find("node"); node != nullptr) {
      r.node = node->as_string();
    }
    const Json* sw = rj.find("sw");
    const Json* hw = rj.find("hw");
    COSPARSE_REQUIRE(sw != nullptr && hw != nullptr,
                     "decision tree rule missing sw/hw");
    r.sw = sw_config_from_string(sw->as_string());
    r.hw = sim::hw_config_from_string(hw->as_string());
    if (const Json* d = rj.find("density"); d != nullptr) {
      r.density = interval_from_json(*d, "density");
    }
    if (const Json* fp = rj.find("footprint"); fp != nullptr) {
      r.footprint = interval_from_json(*fp, "footprint");
    }
    if (r.node.empty()) {
      r.node = std::string(to_string(r.sw)) + "." + sim::to_string(r.hw);
    }
    spec.rules.push_back(std::move(r));
  }
  return spec;
}

std::size_t vector_footprint_bytes(Index dimension) {
  return static_cast<std::size_t>(dimension) * 8 +
         static_cast<std::size_t>(dimension) / 8;
}

double ps_density_threshold(const sim::SystemConfig& cfg, const Thresholds& t,
                            Index dimension) {
  if (dimension == 0) return 2.0;
  const double budget =
      t.ps_list_fraction * static_cast<double>(cfg.bank_bytes);
  // fits  <=>  ceil(nnz / P) * kHeapNodeBytes <= budget
  //       <=>  nnz <= floor(budget / kHeapNodeBytes) * P
  const double max_fit_per_pe =
      std::floor(budget / static_cast<double>(kernels::kHeapNodeBytes));
  const double max_fit_nnz =
      std::max(0.0, max_fit_per_pe) * static_cast<double>(cfg.pes_per_tile);
  return (max_fit_nnz + 1.0) / static_cast<double>(dimension);
}

DecisionTreeSpec export_decision_tree(const sim::SystemConfig& cfg,
                                      const Thresholds& t, Index dimension,
                                      double matrix_density) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double cvd =
      std::clamp(t.cvd(cfg.pes_per_tile, matrix_density), 0.0, 1.0);
  const double d_ps = ps_density_threshold(cfg, t, dimension);
  // Footprint classes split at "fits in the tile's L1" (integer bytes, so
  // the half-open boundary sits one past the capacity).
  const double fp_split =
      static_cast<double>(cfg.l1_bytes_per_tile()) + 1.0;
  const double scs = t.scs_density;

  DecisionTreeSpec spec;
  // Outer product below the CVD: PC while the per-PE sorted list fits one
  // private bank, PS beyond. The footprint axis does not constrain OP.
  spec.rules.push_back({"op.pc", SwConfig::kOP, sim::HwConfig::kPC,
                        {0.0, std::min(cvd, d_ps)},
                        {0.0, kInf}});
  spec.rules.push_back({"op.ps", SwConfig::kOP, sim::HwConfig::kPS,
                        {std::min(cvd, d_ps), cvd},
                        {0.0, kInf}});
  // Inner product at/above the CVD: SC whenever the vector fits the tile's
  // L1; beyond L1 capacity, SCS once the frontier is dense enough to pay
  // for the per-vblock DMA fills.
  spec.rules.push_back({"ip.sc_l1fit", SwConfig::kIP, sim::HwConfig::kSC,
                        {cvd, kInf},
                        {0.0, fp_split}});
  spec.rules.push_back({"ip.sc_sparse", SwConfig::kIP, sim::HwConfig::kSC,
                        {cvd, std::max(cvd, scs)},
                        {fp_split, kInf}});
  spec.rules.push_back({"ip.scs", SwConfig::kIP, sim::HwConfig::kSCS,
                        {std::max(cvd, scs), kInf},
                        {fp_split, kInf}});
  return spec;
}

}  // namespace cosparse::runtime
