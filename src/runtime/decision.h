// The CoSPARSE reconfiguration decision tree (paper Fig. 2 and §III-C).
//
// Before every SpMV invocation the runtime picks:
//   1. software: inner product (dense dataflow) when the frontier density
//      is above the crossover vector density (CVD), outer product below it;
//   2. hardware: for IP, SCS when the frontier is dense enough that
//      SPM-pinned vector values pay for the per-vblock DMA fills *and* the
//      vector exceeds what the L1 cache could hold (otherwise SC); for OP,
//      PS when the per-PE sorted list of column heads outgrows the private
//      L1 bank (otherwise PC).
//
// Threshold provenance (§III-C takeaways):
//   * CVD falls from ~2% at 8 PEs/tile to ~0.5% at 32 — modeled as
//     cvd = cvd_coefficient / pes_per_tile (0.16/8 = 2%, 0.16/32 = 0.5%);
//   * sparser matrices shift the CVD slightly up (less vector reuse for
//     IP) — a small power-law correction around the densest Fig. 4 matrix;
//   * the SCS/SC split tracks Fig. 9: SCS wins at ~27-47% density, SC at
//     <= 12%.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/types.h"
#include "obs/metrics.h"
#include "sim/config.h"

namespace cosparse::runtime {

class AuditTrail;
struct DecisionRecord;

enum class SwConfig : std::uint8_t { kIP, kOP };

[[nodiscard]] const char* to_string(SwConfig c);
/// Inverse of to_string(); throws cosparse::Error on unknown names.
[[nodiscard]] SwConfig sw_config_from_string(std::string_view s);

struct Thresholds {
  // --- software (CVD) ---
  double cvd_coefficient = 0.16;
  double matrix_density_exponent = 0.10;
  double matrix_density_reference = 2.3e-4;  ///< densest Fig. 4 matrix
  double cvd_min = 0.002;
  double cvd_max = 0.08;

  // --- hardware, inner product ---
  double scs_density = 0.20;

  // --- hardware, outer product ---
  /// PS is selected once the per-PE sorted list exceeds this fraction of
  /// one private L1 bank.
  double ps_list_fraction = 1.0;

  /// Crossover vector density for a machine with `pes_per_tile` PEs per
  /// tile running a matrix of the given density.
  [[nodiscard]] double cvd(std::uint32_t pes_per_tile,
                           double matrix_density) const;
};

struct Decision {
  SwConfig sw = SwConfig::kIP;
  sim::HwConfig hw = sim::HwConfig::kSC;
  double vector_density = 0.0;
  double cvd = 0.0;  ///< the threshold that was applied
};

class DecisionEngine {
 public:
  explicit DecisionEngine(const sim::SystemConfig& cfg, Thresholds t = {})
      : cfg_(cfg), thresholds_(t) {}

  /// Full decision for one SpMV invocation.
  [[nodiscard]] Decision decide(Index dimension, double matrix_density,
                                std::size_t frontier_nnz) const;

  /// Like decide(), but with the software configuration pinned by the
  /// caller (the engine's sw_reconfig=false modes). The hardware half of
  /// the tree still runs, and the invocation is still audited (flagged
  /// forced_sw).
  [[nodiscard]] Decision decide_forced_sw(SwConfig sw, Index dimension,
                                          double matrix_density,
                                          std::size_t frontier_nnz) const;

  /// Hardware-only decision given a forced software choice (used by the
  /// ablation modes and by Fig. 9's per-configuration sweeps). Not
  /// audited and not published to metrics.
  [[nodiscard]] sim::HwConfig decide_hw(SwConfig sw, Index dimension,
                                        std::size_t frontier_nnz) const;

  [[nodiscard]] const Thresholds& thresholds() const { return thresholds_; }

  /// Attaches a metrics registry (not owned); each decision then bumps
  /// `decision.sw.<SW>` / `decision.hw.<HW>` counters. Pass nullptr to
  /// detach.
  void set_metrics(obs::MetricsRegistry* m) { metrics_ = m; }

  /// Attaches an audit trail (not owned); decide()/decide_forced_sw() then
  /// append one DecisionRecord per invocation (runtime/audit.h). Pass
  /// nullptr to detach.
  void set_audit(AuditTrail* a) { audit_ = a; }

 private:
  /// Bumps the decision.sw/.hw counters for one resolved decision (no-op
  /// without an attached registry).
  void publish(const Decision& d) const;
  /// The shared body of decide()/decide_forced_sw(); `forced` pins the
  /// software configuration when non-null.
  Decision decide_impl(const SwConfig* forced, Index dimension,
                       double matrix_density, std::size_t frontier_nnz) const;
  /// The hardware half of the tree; appends threshold checks to `rec`
  /// when auditing.
  sim::HwConfig decide_hw_impl(SwConfig sw, Index dimension,
                               std::size_t frontier_nnz,
                               DecisionRecord* rec) const;

  sim::SystemConfig cfg_;
  Thresholds thresholds_;
  obs::MetricsRegistry* metrics_ = nullptr;
  AuditTrail* audit_ = nullptr;
};

}  // namespace cosparse::runtime
