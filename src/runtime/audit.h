// Decision audit trail: why the decision tree chose what it chose.
//
// A DecisionEngine with an attached AuditTrail records, for every SpMV
// invocation it decides, one DecisionRecord:
//   * the feature vector the tree saw (frontier/vector density, the
//     vector's cache footprint vs the per-tile L1 capacity, the OP per-PE
//     sorted-list size vs its SPM budget);
//   * every threshold that was compared, with its value, threshold and
//     signed margin (value - threshold; the sign says which side won);
//   * the chosen SwConfig/HwConfig;
//   * counterfactual cycle estimates (sim::analytic::estimate_spmv) for
//     all four candidate configurations (IP/SC, IP/SCS, OP/PC, OP/PS),
//     the chosen one marked.
//
// Records are deterministic: the same inputs produce byte-identical
// records (asserted by tests/runtime/test_audit.cpp). The runtime::Engine
// owns one AuditTrail, always on — a record is a handful of numbers per
// SpMV, negligible next to the simulation itself — and serializes it as
// the "decision_audit" run-report section (DESIGN.md §9).
//
// Caveat: the record reflects the *decision engine's* choice. When the
// engine runs with hw_reconfig=false it overrides the hardware config
// after the decision; the iteration log shows the executed config, the
// audit shows the advised one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"
#include "sim/config.h"

namespace cosparse::runtime {

enum class SwConfig : std::uint8_t;
[[nodiscard]] const char* to_string(SwConfig c);

/// The feature vector of one decision (paper Fig. 2 inputs plus the
/// capacity comparisons of §III-C).
struct DecisionFeatures {
  Index dimension = 0;
  double matrix_density = 0.0;
  std::uint64_t frontier_nnz = 0;
  double vector_density = 0.0;
  /// IP dense-vector working set: 8 B values + 1 bit of bitmap per vertex.
  std::uint64_t vector_footprint_bytes = 0;
  std::uint64_t l1_bytes_per_tile = 0;
  /// OP per-PE sorted list of column heads (bytes)...
  std::uint64_t op_list_bytes_per_pe = 0;
  /// ...vs its budget (ps_list_fraction x one private L1 bank).
  std::uint64_t op_list_budget_bytes = 0;

  [[nodiscard]] Json to_json() const;
};

/// One threshold comparison inside the tree.
struct ThresholdCheck {
  std::string name;        ///< "cvd", "scs_density", "ip_l1_fit", "ps_list"
  double value = 0.0;      ///< feature value compared
  double threshold = 0.0;  ///< threshold it was compared against
  double margin = 0.0;     ///< value - threshold
  bool passed = false;     ///< true when value >= threshold

  [[nodiscard]] Json to_json() const;
};

/// Estimated cost of one candidate configuration.
struct Counterfactual {
  SwConfig sw;
  sim::HwConfig hw = sim::HwConfig::kSC;
  Cycles est_cycles = 0;
  bool chosen = false;

  [[nodiscard]] Json to_json() const;
};

struct DecisionRecord {
  std::uint32_t invocation = 0;  ///< sequential per AuditTrail
  bool forced_sw = false;        ///< SW was pinned by the caller, not decided
  DecisionFeatures features;
  std::vector<ThresholdCheck> checks;
  SwConfig sw;
  sim::HwConfig hw = sim::HwConfig::kSC;
  double cvd = 0.0;  ///< the applied crossover vector density
  std::vector<Counterfactual> counterfactuals;

  [[nodiscard]] Json to_json() const;
  /// Compact subset (density, cvd margin, chosen configs, estimates) for
  /// trace-span args.
  [[nodiscard]] Json to_span_args() const;
};

class AuditTrail {
 public:
  /// Assigns the record its sequential invocation id and stores it.
  void record(DecisionRecord rec);

  [[nodiscard]] const std::vector<DecisionRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool empty() const { return records_.empty(); }
  void clear();

  /// The "decision_audit" run-report section: {"invocations": [...]}.
  [[nodiscard]] Json to_json() const;

 private:
  std::vector<DecisionRecord> records_;
  std::uint32_t next_invocation_ = 0;
};

}  // namespace cosparse::runtime
