// Empirical threshold calibration (paper §III-C: "The thresholds used at
// each level of the reconfiguration decision tree is based on extensive
// experiments and analysis").
//
// The shipped Thresholds encode the paper's published operating points
// (2% -> 0.5% CVD as PEs/tile grow). For a *different* system configuration
// — other bank sizes, clock ratios, DRAM — those constants may be off;
// this module re-derives the crossover vector density by actually running
// both kernels on a synthetic matrix and bisecting for the break-even
// density, then fits the Thresholds model to the measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/decision.h"
#include "sim/config.h"

namespace cosparse::runtime {

struct CvdSample {
  double density = 0.0;
  Cycles ip_cycles = 0;  ///< inner product in SC
  Cycles op_cycles = 0;  ///< outer product in PC
  [[nodiscard]] double ratio() const {
    return op_cycles == 0 ? 0.0
                          : static_cast<double>(ip_cycles) /
                                static_cast<double>(op_cycles);
  }
};

struct CvdCalibration {
  /// Break-even frontier density: IP wins above, OP below.
  double cvd = 0.0;
  /// Every (density, IP, OP) measurement taken during the search.
  std::vector<CvdSample> samples;
};

struct CalibrationOptions {
  Index dimension = 65536;        ///< synthetic matrix dimension
  std::uint64_t nnz = 2097152;    ///< synthetic matrix non-zeros
  std::uint64_t seed = 424242;
  double density_lo = 1e-3;       ///< initial bracket (OP expected to win)
  double density_hi = 0.32;       ///< initial bracket (IP expected to win)
  std::uint32_t refinement_steps = 5;  ///< log-scale bisection steps
};

/// Measures one (IP, OP) pair at the given frontier density.
CvdSample measure_crossover_sample(const sim::SystemConfig& cfg,
                                   double density,
                                   const CalibrationOptions& opts = {});

/// Finds the crossover density by log-scale bisection. If one kernel wins
/// across the whole bracket, the corresponding bracket edge is returned.
CvdCalibration calibrate_cvd(const sim::SystemConfig& cfg,
                             CalibrationOptions opts = {});

/// Returns the default Thresholds with `cvd_coefficient` refitted so that
/// cvd(pes_per_tile, measured matrix density) equals the measured
/// crossover (clamps widened to admit the measurement).
Thresholds calibrate_thresholds(const sim::SystemConfig& cfg,
                                CalibrationOptions opts = {});

}  // namespace cosparse::runtime
