#include "runtime/report.h"

#include <utility>

#include "native/exec_mode.h"
#include "native/simd.h"
#include "obs/telemetry.h"
#include "sim/profile.h"

namespace cosparse::runtime {

obs::Report make_run_report(const Engine& eng, std::string tool) {
  obs::Report rep(std::move(tool));
  const sim::Machine& m = eng.machine();

  const bool is_native = eng.exec_mode() == native::ExecMode::kNative;

  Json config = eng.system().to_json();
  Json opts = Json::object();
  opts["exec_mode"] = std::string(native::to_string(eng.exec_mode()));
  opts["sw_reconfig"] = eng.options().sw_reconfig;
  opts["hw_reconfig"] = eng.options().hw_reconfig;
  opts["fixed_sw"] = to_string(eng.options().fixed_sw);
  if (eng.options().fixed_hw.has_value()) {
    opts["fixed_hw"] = sim::to_string(*eng.options().fixed_hw);
  }
  opts["nnz_balanced"] = eng.options().nnz_balanced;
  opts["vblocked"] = eng.options().vblocked;
  config["engine"] = std::move(opts);
  rep.set("config", std::move(config));

  Json iters = Json::array();
  for (const IterationRecord& rec : eng.iterations()) {
    iters.push_back(to_json(rec));
  }
  rep.set("iterations", std::move(iters));

  rep.set("decision_audit", eng.audit().to_json());

  if (is_native) {
    // No cycle model: the stats/tile_stats/derived/totals/memory_profile
    // sections would all be zeros, so they are omitted entirely —
    // cosparse-prof annotates their absence as "(native mode: no cycle
    // model)" instead of erroring. The "native" section records what ran.
    Json nat = eng.native_decisions().to_json();
    nat["simd"] = std::string(native::to_string(native::simd_level()));
    rep.set("native", std::move(nat));
  } else {
    rep.set("stats", m.stats().to_json());
    Json tiles = Json::array();
    for (const sim::Stats& ts : m.tile_stats()) tiles.push_back(ts.to_json());
    rep.set("tile_stats", std::move(tiles));

    Json derived = m.stats().derived_json();
    derived["load_imbalance"] = m.load_imbalance();
    rep.set("derived", std::move(derived));

    Json totals = Json::object();
    totals["cycles"] = m.cycles();
    totals["energy_pj"] = m.energy_pj();
    totals["watts"] = m.watts();
    totals["iterations"] = eng.iterations().size();
    rep.set("totals", std::move(totals));

    if (m.profiler() != nullptr) {
      rep.set("memory_profile", m.profiler()->to_json());
    }
  }

  if (eng.metrics() != nullptr) rep.set("metrics", eng.metrics()->to_json());

  // Telemetry is wall-clock-bearing, so it lives in its own section that
  // obs::results_subset() strips for the bit-neutrality comparison.
  if (eng.telemetry() != nullptr) {
    rep.set("telemetry", eng.telemetry()->report_json());
  }
  return rep;
}

}  // namespace cosparse::runtime
