// cosparse::runtime::Engine — the public entry point of the framework.
//
// An Engine owns (a) the simulated reconfigurable machine, (b) the
// resident matrix copies (plain COO for IP/SC, vblock-ordered COO for
// IP/SCS, row-striped CSC for OP — kept simultaneously to avoid matrix
// relayout at reconfiguration time, paper §III-D.2), and (c) the decision
// engine.
// Every spmv() call runs the full per-iteration CoSPARSE flow:
//
//   decide SW + HW  ->  reconfigure hardware if needed (flush + <=10 cyc)
//   ->  convert the frontier representation if the dataflow changed
//   ->  run the chosen kernel  ->  log the iteration record.
//
// The engine computes f_next = SpMV(G^T, f): it transposes the adjacency
// matrix once at construction (paper Fig. 2).
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "common/json.h"
#include "kernels/address_map.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "native/decision.h"
#include "native/exec_mode.h"
#include "native/spmv.h"
#include "runtime/audit.h"
#include "runtime/decision.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "sparse/formats.h"

namespace cosparse::obs {
class Telemetry;
}  // namespace cosparse::obs

namespace cosparse::runtime {

struct EngineOptions {
  /// Select IP/OP automatically per iteration (§III-C.1); when false, the
  /// engine always uses `fixed_sw`.
  bool sw_reconfig = true;
  /// Select the memory configuration automatically (§III-C.2/3); when
  /// false, IP runs in SC and OP runs in PC (the cache-only baselines),
  /// unless `fixed_hw` is set.
  bool hw_reconfig = true;
  SwConfig fixed_sw = SwConfig::kIP;
  std::optional<sim::HwConfig> fixed_hw;
  /// Static workload balancing (nnz-balanced row partitions, §III-B);
  /// false reproduces the naive equal-row splits of Fig. 7's baseline.
  bool nnz_balanced = true;
  /// Vertical blocking for IP (vblocks sized to the tile SPM).
  bool vblocked = true;
  Thresholds thresholds;
  /// Optional observability sinks (not owned; must outlive the engine).
  /// With a null/disabled trace and no registry the hot path only pays a
  /// pointer test per iteration.
  obs::Trace* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Continuous telemetry registry (obs/telemetry.h; not owned). The
  /// engine observes per-iteration wall/cycle/density histograms, attaches
  /// the registry to the machine for tile-phase fill/replay timing, and
  /// pulses the snapshot cadence once per spmv() call. Telemetry only
  /// reads simulator state, so results are bit-identical with it on or
  /// off (the differential harness enforces this).
  obs::Telemetry* telemetry = nullptr;
  /// Host threads for tile-parallel simulation. nullopt resolves
  /// COSPARSE_SIM_THREADS (unset/invalid -> serial); an explicit 0 forces
  /// serial simulation regardless of the environment; N >= 1 makes the
  /// engine own a pool of exactly N workers. Results are bit-identical for
  /// every setting (sim::Machine::for_tiles; DESIGN.md §11).
  std::optional<std::uint32_t> sim_threads;
  /// External executor to share across engines (not owned; must outlive
  /// the engine). Overrides `sim_threads` when set.
  sim::ParallelExecutor* executor = nullptr;
  /// Execution backend (ROADMAP item 4). kSim runs kernels through the
  /// cycle-accurate simulator; kNative runs the same kernel loops as plain
  /// host code (src/native/) — no event logs, no cache model, no cycle
  /// accounting — producing byte-identical results (the native
  /// differential harness and the CI byte-compare gate enforce this).
  /// Decisions are still made and audited identically; iteration records
  /// carry cycles = 0. The executor/sim_threads knobs parallelize native
  /// kernels over tiles exactly as they parallelize the simulator.
  native::ExecMode exec_mode = native::ExecMode::kSim;
};

/// One row of the Fig. 9-style iteration log.
struct IterationRecord {
  std::uint32_t index = 0;
  std::size_t frontier_nnz = 0;
  double density = 0.0;
  SwConfig sw = SwConfig::kIP;
  sim::HwConfig hw = sim::HwConfig::kSC;
  bool sw_switched = false;
  bool hw_switched = false;
  bool converted_frontier = false;
  Cycles cycles = 0;          ///< total for the iteration (incl. overheads)
  Cycles convert_cycles = 0;  ///< frontier format conversion share
  Picojoules energy_pj = 0;
};

/// Report/trace serialization of one iteration record. Field names are the
/// run-report schema ("iterations" array, DESIGN.md §8).
[[nodiscard]] Json to_json(const IterationRecord& rec);
/// Inverse of to_json(); throws cosparse::Error on missing/invalid fields.
[[nodiscard]] IterationRecord iteration_record_from_json(const Json& j);

class Engine {
 public:
  /// A frontier in whichever representation the previous step produced.
  struct Frontier {
    bool dense = false;
    kernels::DenseFrontier df;
    sparse::SparseVector sv;

    [[nodiscard]] std::size_t nnz() const {
      return dense ? df.num_active : sv.nnz();
    }
    static Frontier from_dense(kernels::DenseFrontier f) {
      Frontier fr;
      fr.dense = true;
      fr.df = std::move(f);
      return fr;
    }
    static Frontier from_sparse(sparse::SparseVector v) {
      Frontier fr;
      fr.dense = false;
      fr.sv = std::move(v);
      return fr;
    }
  };

  /// SpMV output in the producing kernel's natural representation.
  struct Output {
    bool dense = false;
    kernels::IpResult ip;   ///< valid when dense
    kernels::OpResult op;   ///< valid when !dense
    Decision decision;

    [[nodiscard]] std::size_t num_touched() const {
      return dense ? ip.num_touched : op.y.nnz();
    }
    /// Visits every touched (row, value) pair in ascending row order.
    template <class Fn>
    void for_each_touched(Fn&& fn) const {
      if (dense) {
        for (Index r = 0; r < ip.y.dimension(); ++r) {
          if (ip.touched[r]) fn(r, ip.y[r]);
        }
      } else {
        for (const auto& e : op.y.entries()) fn(e.index, e.value);
      }
    }
  };

  /// `adjacency`: A with A[u][v] = weight of edge u -> v.
  Engine(const sparse::Coo& adjacency, const sim::SystemConfig& cfg,
         EngineOptions opts = {});

  /// The per-iteration CoSPARSE SpMV (see file comment). `dst_old` supplies
  /// V_dst for semirings with kUsesDst (CF).
  template <kernels::Semiring S>
  Output spmv(const Frontier& f, const S& sr,
              const sparse::DenseVector* dst_old = nullptr);

  /// Charges a data-parallel host-side vector pass (Table I Vector_Op /
  /// frontier apply) of `elements` items to the PEs: streaming reads and
  /// writes of `bytes_per_element` plus `ops_per_element` ALU cycles.
  void charge_vector_pass(std::size_t elements, double ops_per_element,
                          std::uint32_t bytes_per_element);

  [[nodiscard]] Index dimension() const { return ip_matrix_sc_.rows(); }
  [[nodiscard]] double matrix_density() const { return matrix_density_; }
  [[nodiscard]] const sim::SystemConfig& system() const {
    return machine_.config();
  }
  [[nodiscard]] sim::Machine& machine() { return machine_; }
  [[nodiscard]] const sim::Machine& machine() const { return machine_; }
  [[nodiscard]] const DecisionEngine& decisions() const { return decider_; }
  [[nodiscard]] native::ExecMode exec_mode() const { return opts_.exec_mode; }
  /// Native kernel-family tally (pull/push iteration counts); meaningful
  /// only in native mode (all zero under simulation).
  [[nodiscard]] const native::DecisionEngine& native_decisions() const {
    return native_decider_;
  }
  /// Per-invocation decision audit (always on; serialized into the
  /// "decision_audit" run-report section).
  [[nodiscard]] const AuditTrail& audit() const { return audit_; }
  [[nodiscard]] const EngineOptions& options() const { return opts_; }
  /// The metrics registry the engine publishes into (nullptr when none was
  /// attached); graph algorithms use it for their own counters.
  [[nodiscard]] obs::MetricsRegistry* metrics() const { return metrics_; }
  [[nodiscard]] obs::Trace* trace() const { return trace_; }
  /// The continuous-telemetry registry (nullptr when none was attached);
  /// report.cpp folds its digests into the run report's telemetry section.
  [[nodiscard]] obs::Telemetry* telemetry() const { return telemetry_; }

  [[nodiscard]] const std::vector<IterationRecord>& iterations() const {
    return log_;
  }
  [[nodiscard]] Cycles total_cycles() const { return machine_.cycles(); }
  [[nodiscard]] Picojoules total_energy_pj() const {
    return machine_.energy_pj();
  }
  void clear_iteration_log() { log_.clear(); }

 private:
  /// Frontier conversions, charged to the machine (lightweight vector
  /// conversion of §III-D.2). Fill the engine-owned staging buffer and
  /// return it.
  const kernels::DenseFrontier& convert_to_dense(
      const sparse::SparseVector& sv, Value identity, Cycles* cost);
  const sparse::SparseVector& convert_to_sparse(
      const kernels::DenseFrontier& df, Cycles* cost);

  /// Pass-through staging (no conversion, no simulated cost): copy the
  /// caller's frontier into the engine-owned buffer so the kernel always
  /// reads from stable host storage.
  const kernels::DenseFrontier& stage_dense(const kernels::DenseFrontier& df);
  const sparse::SparseVector& stage_sparse(const sparse::SparseVector& sv);

  /// Functional halves of the frontier conversions: refill the staging
  /// buffers with no machine charges. convert_to_dense/convert_to_sparse
  /// delegate to these after charging; the native path calls them
  /// directly, so both modes run the identical conversion code.
  const kernels::DenseFrontier& fill_dense_staging(
      const sparse::SparseVector& sv, Value identity);
  const sparse::SparseVector& fill_sparse_staging(
      const kernels::DenseFrontier& df);

  Decision resolve_decision(std::size_t frontier_nnz) const;

  /// Publishes the finished iteration into the attached trace/metrics
  /// sinks (no-op without sinks). Lives in engine.cpp so the template
  /// above stays lean.
  void record_iteration(const IterationRecord& rec, Cycles iter_begin,
                        Cycles kernel_begin, Cycles kernel_end,
                        double wall_ms);

  /// Native-mode body of spmv() (engine.h bottom); same decision flow,
  /// charge-free kernels, wall-clock-only observability.
  template <kernels::Semiring S>
  Output spmv_native(const Frontier& f, const S& sr,
                     const sparse::DenseVector* dst_old);

  EngineOptions opts_;
  std::unique_ptr<sim::ParallelExecutor> owned_exec_;  ///< see sim_threads
  sim::Machine machine_;
  kernels::AddressMap amap_;
  AuditTrail audit_;
  DecisionEngine decider_;
  /// Native mode's view of the decided hardware config. The simulated
  /// machine's hierarchy is never reconfigured in native mode (there is
  /// nothing to flush); this mirror keeps hw_switched in the iteration
  /// records identical to sim mode and selects the matching IP layout.
  sim::HwConfig native_hw_;
  native::DecisionEngine native_decider_;
  // Two IP layouts stay resident: SC streams plain nnz-balanced row
  // partitions, SCS needs the vblocked ordering so the vector segment of
  // the active vblock fits the tile scratchpad (paper Fig. 3). Keeping
  // both avoids relayout at reconfiguration time, like the COO+CSC pair.
  kernels::IpPartitionedMatrix ip_matrix_sc_;
  kernels::IpPartitionedMatrix ip_matrix_scs_;
  kernels::OpStripedMatrix op_matrix_;
  // Frontier staging buffers, allocated once at construction and refilled
  // in place each iteration. AddressMap memoizes simulated regions by host
  // pointer, so every pointer the kernels map must stay stable for the
  // engine's lifetime — otherwise a freed per-iteration buffer whose host
  // address malloc later recycles would alias a stale simulated region,
  // making cycle counts depend on process heap history (DESIGN.md §11).
  // They model the fixed device-resident frontier regions a real runtime
  // would DMA into.
  kernels::DenseFrontier staged_dense_;
  sparse::SparseVector staged_sparse_;
  double matrix_density_ = 0.0;
  std::vector<IterationRecord> log_;
  std::uint32_t next_iteration_ = 0;
  std::optional<SwConfig> last_sw_;
  obs::Trace* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
};

// ---- template implementation ----

template <kernels::Semiring S>
Engine::Output Engine::spmv(const Frontier& f, const S& sr,
                            const sparse::DenseVector* dst_old) {
  if (opts_.exec_mode == native::ExecMode::kNative) {
    return spmv_native(f, sr, dst_old);
  }
  const obs::PhaseScope phase("engine.spmv");
  const auto wall_begin = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
  const Cycles start_cycles = machine_.cycles();
  const sim::Stats start_stats = machine_.stats();

  IterationRecord rec;
  rec.index = next_iteration_++;
  rec.frontier_nnz = f.nnz();
  rec.density = dimension() == 0 ? 0.0
                                 : static_cast<double>(rec.frontier_nnz) /
                                       static_cast<double>(dimension());

  const Decision d = resolve_decision(rec.frontier_nnz);
  rec.sw = d.sw;
  rec.hw = d.hw;
  rec.sw_switched = last_sw_.has_value() && *last_sw_ != d.sw;
  last_sw_ = d.sw;

  // Hardware reconfiguration (LCP-triggered; flush + <= 10 cycles).
  if (machine_.hw() != d.hw) {
    machine_.reconfigure(d.hw);
    rec.hw_switched = true;
  }

  Output out;
  out.decision = d;
  Cycles kernel_begin = 0;
  Cycles kernel_end = 0;
  if (d.sw == SwConfig::kIP) {
    out.dense = true;
    Cycles conv = 0;
    const auto& layout = d.hw == sim::HwConfig::kSCS ? ip_matrix_scs_
                                                     : ip_matrix_sc_;
    if (f.dense) {
      const kernels::DenseFrontier& df = stage_dense(f.df);
      kernel_begin = machine_.cycles();
      {
        const obs::PhaseScope kp("kernel.ip");
        out.ip = kernels::run_inner_product(machine_, amap_, layout, df, sr);
      }
    } else {
      const kernels::DenseFrontier& df =
          convert_to_dense(f.sv, sr.vector_identity(), &conv);
      rec.converted_frontier = true;
      kernel_begin = machine_.cycles();
      {
        const obs::PhaseScope kp("kernel.ip");
        out.ip = kernels::run_inner_product(machine_, amap_, layout, df, sr);
      }
    }
    kernel_end = machine_.cycles();
    rec.convert_cycles = conv;
  } else {
    out.dense = false;
    Cycles conv = 0;
    if (f.dense) {
      const sparse::SparseVector& sv = convert_to_sparse(f.df, &conv);
      rec.converted_frontier = true;
      kernel_begin = machine_.cycles();
      {
        const obs::PhaseScope kp("kernel.op");
        out.op = kernels::run_outer_product(machine_, amap_, op_matrix_, sv,
                                            dst_old, sr);
      }
    } else {
      const sparse::SparseVector& sv = stage_sparse(f.sv);
      kernel_begin = machine_.cycles();
      {
        const obs::PhaseScope kp("kernel.op");
        out.op = kernels::run_outer_product(machine_, amap_, op_matrix_, sv,
                                            dst_old, sr);
      }
    }
    kernel_end = machine_.cycles();
    rec.convert_cycles = conv;
  }

  rec.cycles = machine_.cycles() - start_cycles;
  rec.energy_pj = sim::EnergyModel{}.total(
      machine_.config(), machine_.stats() - start_stats, rec.cycles);
  log_.push_back(rec);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -  // cosparse-lint: allow(determinism)
                             wall_begin)
                             .count();
  record_iteration(rec, start_cycles, kernel_begin, kernel_end, wall_ms);
  return out;
}

template <kernels::Semiring S>
Engine::Output Engine::spmv_native(const Frontier& f, const S& sr,
                                   const sparse::DenseVector* dst_old) {
  const obs::PhaseScope phase("native.spmv");
  const auto wall_begin = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)

  IterationRecord rec;
  rec.index = next_iteration_++;
  rec.frontier_nnz = f.nnz();
  rec.density = dimension() == 0 ? 0.0
                                 : static_cast<double>(rec.frontier_nnz) /
                                       static_cast<double>(dimension());

  // Same audited decision as sim mode: features, threshold margins and
  // counterfactual estimates are pure functions of the (identical)
  // frontier sequence, so the decision_audit section stays byte-identical.
  const Decision d = resolve_decision(rec.frontier_nnz);
  rec.sw = d.sw;
  rec.hw = d.hw;
  rec.sw_switched = last_sw_.has_value() && *last_sw_ != d.sw;
  last_sw_ = d.sw;
  if (native_hw_ != d.hw) {
    native_hw_ = d.hw;
    rec.hw_switched = true;
  }

  Output out;
  out.decision = d;
  const native::KernelKind kind =
      native_decider_.select(d.sw == SwConfig::kIP);
  if (kind == native::KernelKind::kPull) {
    out.dense = true;
    // The decided hw config still selects the matching resident layout
    // (SCS streams the vblocked ordering), so element visit order — and
    // therefore every accumulation — matches the sim run exactly.
    const auto& layout = d.hw == sim::HwConfig::kSCS ? ip_matrix_scs_
                                                     : ip_matrix_sc_;
    const kernels::DenseFrontier* df = nullptr;
    if (f.dense) {
      df = &stage_dense(f.df);
    } else {
      df = &fill_dense_staging(f.sv, sr.vector_identity());
      rec.converted_frontier = true;
    }
    out.ip = native::pull_spmv(machine_.config(), native_hw_,
                               machine_.executor(), layout, *df, sr);
  } else {
    out.dense = false;
    const sparse::SparseVector* sv = nullptr;
    if (f.dense) {
      sv = &fill_sparse_staging(f.df);
      rec.converted_frontier = true;
    } else {
      sv = &stage_sparse(f.sv);
    }
    out.op = native::push_spmsv(machine_.config(), native_hw_,
                                machine_.executor(), op_matrix_, *sv, dst_old,
                                sr);
  }

  // No cycle model in native mode: records keep the schema (lint requires
  // the cycles key) with zeroed cycle/energy fields.
  rec.cycles = 0;
  rec.convert_cycles = 0;
  rec.energy_pj = 0;
  log_.push_back(rec);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() -  // cosparse-lint: allow(determinism)
                             wall_begin)
                             .count();
  record_iteration(rec, 0, 0, 0, wall_ms);
  return out;
}

}  // namespace cosparse::runtime
