#include "runtime/calibrate.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "sparse/generate.h"

namespace cosparse::runtime {
namespace {

/// Shared state for a calibration run: the synthetic matrix in both kernel
/// layouts, built once.
struct CalibrationContext {
  sparse::Coo matrix;
  kernels::IpPartitionedMatrix ip_layout;
  kernels::OpStripedMatrix op_layout;

  CalibrationContext(const sim::SystemConfig& cfg,
                     const CalibrationOptions& opts)
      : matrix(sparse::uniform_random(opts.dimension, opts.dimension,
                                      opts.nnz, opts.seed,
                                      sparse::ValueDist::kUniform01)),
        ip_layout(kernels::IpPartitionedMatrix::build(matrix, cfg.num_pes(),
                                                      /*vblock_cols=*/0)),
        op_layout(kernels::OpStripedMatrix::build(matrix, cfg.num_tiles)) {}
};

CvdSample measure(const sim::SystemConfig& cfg,
                  const CalibrationContext& ctx, double density,
                  std::uint64_t seed) {
  CvdSample s;
  s.density = density;
  const auto xs = sparse::random_sparse_vector(ctx.matrix.rows(), density,
                                               seed);
  const auto xf = kernels::DenseFrontier::from_sparse(xs, 0.0);
  const kernels::PlainSpmv sr;
  {
    sim::Machine m(cfg, sim::HwConfig::kSC);
    kernels::AddressMap amap(m);
    kernels::run_inner_product(m, amap, ctx.ip_layout, xf, sr);
    s.ip_cycles = m.cycles();
  }
  {
    sim::Machine m(cfg, sim::HwConfig::kPC);
    kernels::AddressMap amap(m);
    kernels::run_outer_product(m, amap, ctx.op_layout, xs, nullptr, sr);
    s.op_cycles = m.cycles();
  }
  return s;
}

}  // namespace

CvdSample measure_crossover_sample(const sim::SystemConfig& cfg,
                                   double density,
                                   const CalibrationOptions& opts) {
  const CalibrationContext ctx(cfg, opts);
  return measure(cfg, ctx, density, opts.seed ^ 0x5bd1e995ULL);
}

CvdCalibration calibrate_cvd(const sim::SystemConfig& cfg,
                             CalibrationOptions opts) {
  COSPARSE_REQUIRE(opts.density_lo > 0 && opts.density_hi > opts.density_lo &&
                       opts.density_hi <= 1.0,
                   "calibration density bracket invalid");
  const CalibrationContext ctx(cfg, opts);
  CvdCalibration cal;

  auto probe = [&](double d) {
    const CvdSample s = measure(cfg, ctx, d, opts.seed ^ 0x9e3779b9ULL);
    cal.samples.push_back(s);
    return s.ratio();  // > 1: OP faster (keep OP below this density)
  };

  double lo = opts.density_lo, hi = opts.density_hi;
  const double r_lo = probe(lo);
  const double r_hi = probe(hi);
  if (r_lo <= 1.0) {
    // IP already wins at the sparse edge: crossover below the bracket.
    cal.cvd = lo;
    return cal;
  }
  if (r_hi >= 1.0) {
    // OP still wins at the dense edge: crossover above the bracket.
    cal.cvd = hi;
    return cal;
  }
  // Log-scale bisection on the ratio's crossing of 1.0.
  for (std::uint32_t step = 0; step < opts.refinement_steps; ++step) {
    const double mid = std::sqrt(lo * hi);
    if (probe(mid) > 1.0) {
      lo = mid;  // OP still winning: crossover is denser
    } else {
      hi = mid;
    }
  }
  cal.cvd = std::sqrt(lo * hi);
  return cal;
}

Thresholds calibrate_thresholds(const sim::SystemConfig& cfg,
                                CalibrationOptions opts) {
  const CvdCalibration cal = calibrate_cvd(cfg, opts);
  Thresholds t;
  // Invert the model cvd = coeff / P * (r_ref / r)^alpha at the synthetic
  // matrix's density to recover the coefficient.
  const double r = static_cast<double>(opts.nnz) /
                   (static_cast<double>(opts.dimension) *
                    static_cast<double>(opts.dimension));
  const double correction =
      std::pow(t.matrix_density_reference / r, t.matrix_density_exponent);
  t.cvd_coefficient =
      cal.cvd * static_cast<double>(cfg.pes_per_tile) / correction;
  // Widen the clamps so the measured point is representable.
  t.cvd_min = std::min(t.cvd_min, cal.cvd / 4.0);
  t.cvd_max = std::max(t.cvd_max, cal.cvd * 4.0);
  return t;
}

}  // namespace cosparse::runtime
