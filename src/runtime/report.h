// Run-report assembly for Engine-based runs.
//
// make_run_report() snapshots everything an Engine knows — system config,
// per-iteration records, global and per-tile simulator stats, derived
// rates, totals and the attached metrics registry — into one
// cosparse.run_report/v1 document (schema in DESIGN.md §8). Callers add
// tool-specific sections ("dataset", "tables", ...) on top and write().
#pragma once

#include <string>

#include "obs/report.h"
#include "runtime/engine.h"

namespace cosparse::runtime {

/// Builds a report from the engine's current state. `tool` names the
/// producing binary (e.g. "quickstart"). Per-tile stats are included such
/// that their element-wise sum equals the "stats" section exactly.
[[nodiscard]] obs::Report make_run_report(const Engine& eng, std::string tool);

}  // namespace cosparse::runtime
