#include "runtime/audit.h"

#include <utility>

namespace cosparse::runtime {

Json DecisionFeatures::to_json() const {
  Json o = Json::object();
  o["dimension"] = dimension;
  o["matrix_density"] = matrix_density;
  o["frontier_nnz"] = frontier_nnz;
  o["vector_density"] = vector_density;
  o["vector_footprint_bytes"] = vector_footprint_bytes;
  o["l1_bytes_per_tile"] = l1_bytes_per_tile;
  o["op_list_bytes_per_pe"] = op_list_bytes_per_pe;
  o["op_list_budget_bytes"] = op_list_budget_bytes;
  return o;
}

Json ThresholdCheck::to_json() const {
  Json o = Json::object();
  o["name"] = name;
  o["value"] = value;
  o["threshold"] = threshold;
  o["margin"] = margin;
  o["passed"] = passed;
  return o;
}

Json Counterfactual::to_json() const {
  Json o = Json::object();
  o["sw"] = to_string(sw);
  o["hw"] = sim::to_string(hw);
  o["est_cycles"] = est_cycles;
  o["chosen"] = chosen;
  return o;
}

Json DecisionRecord::to_json() const {
  Json o = Json::object();
  o["invocation"] = invocation;
  o["forced_sw"] = forced_sw;
  o["features"] = features.to_json();
  Json cs = Json::array();
  for (const ThresholdCheck& c : checks) cs.push_back(c.to_json());
  o["checks"] = std::move(cs);
  o["sw"] = to_string(sw);
  o["hw"] = sim::to_string(hw);
  o["cvd"] = cvd;
  Json cf = Json::array();
  for (const Counterfactual& c : counterfactuals) cf.push_back(c.to_json());
  o["counterfactuals"] = std::move(cf);
  return o;
}

Json DecisionRecord::to_span_args() const {
  Json o = Json::object();
  o["invocation"] = invocation;
  o["vector_density"] = features.vector_density;
  o["cvd"] = cvd;
  o["sw"] = to_string(sw);
  o["hw"] = sim::to_string(hw);
  Json cs = Json::object();
  for (const ThresholdCheck& c : checks) cs[c.name] = c.margin;
  o["margins"] = std::move(cs);
  Json cf = Json::object();
  for (const Counterfactual& c : counterfactuals) {
    cf[std::string(to_string(c.sw)) + "/" + sim::to_string(c.hw)] =
        c.est_cycles;
  }
  o["est_cycles"] = std::move(cf);
  return o;
}

void AuditTrail::record(DecisionRecord rec) {
  rec.invocation = next_invocation_++;
  records_.push_back(std::move(rec));
}

void AuditTrail::clear() {
  records_.clear();
  next_invocation_ = 0;
}

Json AuditTrail::to_json() const {
  Json o = Json::object();
  Json arr = Json::array();
  for (const DecisionRecord& r : records_) arr.push_back(r.to_json());
  o["invocations"] = std::move(arr);
  return o;
}

}  // namespace cosparse::runtime
