#include "runtime/engine.h"

#include <algorithm>

#include "common/error.h"
#include "kernels/region_plan.h"
#include "obs/telemetry.h"

namespace cosparse::runtime {

Engine::Engine(const sparse::Coo& adjacency, const sim::SystemConfig& cfg,
               EngineOptions opts)
    : opts_(opts),
      machine_(cfg, opts.fixed_hw.value_or(sim::HwConfig::kSC)),
      amap_(machine_),
      decider_(cfg, opts.thresholds),
      native_hw_(opts.fixed_hw.value_or(sim::HwConfig::kSC)),
      trace_(opts.trace),
      metrics_(opts.metrics),
      telemetry_(opts.telemetry) {
  machine_.set_trace(trace_);
  machine_.set_telemetry(telemetry_);
  if (telemetry_ != nullptr &&
      opts_.exec_mode == native::ExecMode::kNative) {
    // Stamp native streams so consumers (cosparse-top) can tell there is
    // no tile/cycle data behind them; sim streams are left untouched.
    telemetry_->set_header("exec_mode",
                           Json(std::string(to_string(opts_.exec_mode))));
  }
  // Tile-parallel simulation: an external executor wins; otherwise resolve
  // sim_threads (nullopt -> COSPARSE_SIM_THREADS) and own the pool. Thread
  // count never changes results (sim::Machine::for_tiles).
  if (opts_.executor != nullptr) {
    machine_.set_executor(opts_.executor);
  } else {
    const std::uint32_t threads =
        opts_.sim_threads.has_value()
            ? *opts_.sim_threads
            : sim::ParallelExecutor::threads_from_env();
    if (threads >= 1) {
      owned_exec_ = std::make_unique<sim::ParallelExecutor>(threads);
      machine_.set_executor(owned_exec_.get());
    }
  }
  decider_.set_metrics(metrics_);
  decider_.set_audit(&audit_);
  // f_next = SpMV(G^T, f): build the resident copies of G^T. SC streams a
  // plain nnz-balanced layout; SCS additionally needs vblocking so vector
  // segments fit the scratchpad (the SC/SCS trade-off of Fig. 5 hinges on
  // exactly this difference).
  const sparse::Coo mt = sparse::transpose(adjacency);
  matrix_density_ = mt.density();
  ip_matrix_sc_ = kernels::IpPartitionedMatrix::build(mt, cfg.num_pes(), 0,
                                                      opts_.nnz_balanced);
  const Index vb = opts_.vblocked ? kernels::default_vblock_cols(cfg) : 0;
  ip_matrix_scs_ = kernels::IpPartitionedMatrix::build(mt, cfg.num_pes(), vb,
                                                       opts_.nnz_balanced);
  op_matrix_ =
      kernels::OpStripedMatrix::build(mt, cfg.num_tiles, opts_.nnz_balanced);
  // Frontier staging buffers (see engine.h): allocate the worst-case
  // storage once so their host pointers never change over the engine's
  // lifetime. nnz is bounded by the dimension, so reserving `dim` entries
  // means the sparse buffer never reallocates either.
  const Index dim = dimension();
  staged_dense_ = kernels::DenseFrontier(dim, 0);
  staged_sparse_ = sparse::SparseVector(dim);
  staged_sparse_.reserve(dim);
}

const kernels::DenseFrontier& Engine::stage_dense(
    const kernels::DenseFrontier& df) {
  staged_dense_.values.values().assign(df.values.values().begin(),
                                       df.values.values().end());
  staged_dense_.active.assign(df.active.begin(), df.active.end());
  staged_dense_.num_active = df.num_active;
  return staged_dense_;
}

const sparse::SparseVector& Engine::stage_sparse(
    const sparse::SparseVector& sv) {
  staged_sparse_.clear();
  for (const auto& e : sv.entries()) staged_sparse_.push_back(e.index, e.value);
  return staged_sparse_;
}

Decision Engine::resolve_decision(std::size_t frontier_nnz) const {
  Decision d;
  if (opts_.sw_reconfig) {
    d = decider_.decide(dimension(), matrix_density_, frontier_nnz);
  } else {
    d = decider_.decide_forced_sw(opts_.fixed_sw, dimension(),
                                  matrix_density_, frontier_nnz);
  }
  if (!opts_.hw_reconfig) {
    // Cache-only baseline mapping unless the caller pinned a config.
    d.hw = opts_.fixed_hw.value_or(
        d.sw == SwConfig::kIP ? sim::HwConfig::kSC : sim::HwConfig::kPC);
  }
  return d;
}

void Engine::charge_vector_pass(std::size_t elements, double ops_per_element,
                                std::uint32_t bytes_per_element) {
  // Native mode has no cycle model; the vector pass itself already ran as
  // plain host code in the algorithm layer.
  if (opts_.exec_mode == native::ExecMode::kNative) return;
  if (elements == 0) return;
  const std::uint32_t pes = machine_.num_pes();
  const std::size_t per_pe = (elements + pes - 1) / pes;
  // Streaming pass: ALU ops charged per element; memory traffic is
  // sequential, so it moves at prefetched-stream cost — modeled as DMA
  // traffic plus 2 issue cycles per element.
  for (std::uint32_t pe = 0; pe < pes; ++pe) {
    const std::size_t mine =
        std::min(per_pe, elements - std::min(elements,
                                             static_cast<std::size_t>(pe) *
                                                 per_pe));
    if (mine == 0) break;
    machine_.compute(pe, static_cast<double>(mine) * (ops_per_element + 2.0));
  }
  machine_.dma_traffic(elements * bytes_per_element, /*write=*/false);
  machine_.dma_traffic(elements * bytes_per_element, /*write=*/true);
  machine_.global_barrier();
}

Json to_json(const IterationRecord& rec) {
  Json o = Json::object();
  o["index"] = rec.index;
  o["frontier_nnz"] = rec.frontier_nnz;
  o["density"] = rec.density;
  o["sw"] = to_string(rec.sw);
  o["hw"] = sim::to_string(rec.hw);
  o["sw_switched"] = rec.sw_switched;
  o["hw_switched"] = rec.hw_switched;
  o["converted_frontier"] = rec.converted_frontier;
  o["cycles"] = rec.cycles;
  o["convert_cycles"] = rec.convert_cycles;
  o["energy_pj"] = rec.energy_pj;
  return o;
}

IterationRecord iteration_record_from_json(const Json& j) {
  COSPARSE_REQUIRE(j.is_object(), "iteration record must be a JSON object");
  const auto need = [&](const char* key) -> const Json& {
    const Json* v = j.find(key);
    COSPARSE_REQUIRE(v != nullptr,
                     std::string("iteration record missing field: ") + key);
    return *v;
  };
  IterationRecord rec;
  rec.index = static_cast<std::uint32_t>(need("index").as_int());
  rec.frontier_nnz = static_cast<std::size_t>(need("frontier_nnz").as_int());
  rec.density = need("density").as_double();
  rec.sw = sw_config_from_string(need("sw").as_string());
  rec.hw = sim::hw_config_from_string(need("hw").as_string());
  rec.sw_switched = need("sw_switched").as_bool();
  rec.hw_switched = need("hw_switched").as_bool();
  rec.converted_frontier = need("converted_frontier").as_bool();
  rec.cycles = static_cast<Cycles>(need("cycles").as_int());
  rec.convert_cycles = static_cast<Cycles>(need("convert_cycles").as_int());
  rec.energy_pj = need("energy_pj").as_double();
  return rec;
}

void Engine::record_iteration(const IterationRecord& rec, Cycles iter_begin,
                              Cycles kernel_begin, Cycles kernel_end,
                              double wall_ms) {
  const bool is_native = opts_.exec_mode == native::ExecMode::kNative;
  if (telemetry_ != nullptr) {
    telemetry_->histogram("engine.iteration_ms").observe(wall_ms);
    if (!is_native) {
      telemetry_->histogram("engine.iteration_cycles")
          .observe(static_cast<double>(rec.cycles));
      telemetry_->histogram("engine.kernel_cycles")
          .observe(static_cast<double>(kernel_end - kernel_begin));
    }
    telemetry_->histogram("engine.frontier_density").observe(rec.density);
    if (!is_native && rec.converted_frontier) {
      telemetry_->histogram("engine.convert_cycles")
          .observe(static_cast<double>(rec.convert_cycles));
    }
    // Snapshot pulse. The extra sampler runs only when the cadence fires:
    // per-tile busy cycles feed cosparse-top's tile bars. Native snapshots
    // carry no tile_busy_cycles (there is no cycle model behind them);
    // cosparse-top suppresses its tile panel for such streams.
    telemetry_->tick(rec.index + 1, [this, is_native, &rec] {
      Json ex = Json::object();
      if (is_native) {
        ex["exec_mode"] = std::string(native::to_string(opts_.exec_mode));
        ex["hw"] = sim::to_string(rec.hw);
        return ex;
      }
      Json tiles = Json::array();
      for (const sim::Stats& t : machine_.tile_stats()) {
        tiles.push_back(t.pe_compute_cycles + t.pe_mem_stall_cycles);
      }
      ex["tile_busy_cycles"] = std::move(tiles);
      ex["load_imbalance"] = machine_.load_imbalance();
      ex["hw"] = sim::to_string(machine_.hw());
      return ex;
    });
  }
  if (metrics_ != nullptr) {
    metrics_->counter("engine.iterations").inc();
    if (rec.sw_switched) metrics_->counter("engine.sw_switches").inc();
    if (rec.hw_switched) metrics_->counter("engine.hw_switches").inc();
    if (rec.converted_frontier)
      metrics_->counter("engine.frontier_conversions").inc();
    if (is_native) {
      metrics_
          ->counter(std::string("native.kernel.") +
                    (rec.sw == SwConfig::kIP ? "pull" : "push"))
          .inc();
    } else {
      metrics_->counter(std::string("engine.cycles.") + sim::to_string(rec.hw))
          .inc(rec.cycles);
    }
    metrics_->histogram("engine.frontier_density").observe(rec.density);
  }
  if (is_native) return;  // trace spans live in the simulated-cycle domain
  if (trace_ != nullptr && trace_->enabled()) {
    Json args = Json::object();
    args["iteration"] = rec.index;
    args["sw"] = to_string(rec.sw);
    args["hw"] = sim::to_string(rec.hw);
    args["frontier_nnz"] = rec.frontier_nnz;
    args["density"] = rec.density;
    args["reconfigured"] = rec.hw_switched;
    if (!audit_.empty()) {
      // One decision is audited per spmv() call, so the latest record is
      // this iteration's.
      args["decision"] = audit_.records().back().to_span_args();
    }
    const double end = static_cast<double>(machine_.cycles());
    trace_->add_span("engine",
                     std::string("spmv ") + to_string(rec.sw) + "/" +
                         sim::to_string(rec.hw),
                     static_cast<double>(iter_begin), end, std::move(args));
    trace_->add_span("kernels",
                     rec.sw == SwConfig::kIP ? "IP kernel" : "OP kernel",
                     static_cast<double>(kernel_begin),
                     static_cast<double>(kernel_end));
    trace_->add_counter("engine", "frontier_density",
                        static_cast<double>(iter_begin), rec.density);
  }
}

const kernels::DenseFrontier& Engine::fill_dense_staging(
    const sparse::SparseVector& sv, Value identity) {
  // Reset the staging buffer in place (stable host storage, see engine.h),
  // then scatter the entries.
  kernels::DenseFrontier& df = staged_dense_;
  std::fill(df.values.values().begin(), df.values.values().end(), identity);
  std::fill(df.active.begin(), df.active.end(), std::uint8_t{0});
  df.num_active = 0;
  for (const auto& e : sv.entries()) df.set(e.index, e.value);
  return df;
}

const sparse::SparseVector& Engine::fill_sparse_staging(
    const kernels::DenseFrontier& df) {
  staged_sparse_.clear();
  for (Index i = 0; i < df.dimension(); ++i) {
    if (df.active[i]) staged_sparse_.push_back(i, df.values[i]);
  }
  return staged_sparse_;
}

const kernels::DenseFrontier& Engine::convert_to_dense(
    const sparse::SparseVector& sv, Value identity, Cycles* cost) {
  const obs::PhaseScope phase("engine.frontier");
  const Cycles start = machine_.cycles();
  // Bulk-initialize the value array and bitmap (DMA), then scatter the
  // entries across the PEs. Charges depend only on sizes, so the
  // functional refill (fill_dense_staging below) is safely factored out.
  machine_.dma_traffic(static_cast<std::size_t>(sv.dimension()) * 8 +
                           sv.dimension() / 8,
                       /*write=*/true);
  const std::uint32_t pes = machine_.num_pes();
  const std::size_t per_pe = (sv.nnz() + pes - 1) / pes;
  for (std::size_t k = 0; k < sv.nnz(); ++k) {
    const auto pe = static_cast<std::uint32_t>(per_pe == 0 ? 0 : k / per_pe);
    machine_.compute(pe, 2);  // entry decode + bit set
  }
  // Entry stream reads + scattered value/bit writes.
  machine_.dma_traffic(sv.nnz() * 12, /*write=*/false);
  machine_.dma_traffic(sv.nnz() * 9, /*write=*/true);
  machine_.global_barrier();
  if (cost != nullptr) *cost = machine_.cycles() - start;
  if (trace_ != nullptr && trace_->enabled()) {
    Json args = Json::object();
    args["entries"] = sv.nnz();
    trace_->add_span("kernels", "convert sparse->dense",
                     static_cast<double>(start),
                     static_cast<double>(machine_.cycles()), std::move(args));
  }
  return fill_dense_staging(sv, identity);
}

const sparse::SparseVector& Engine::convert_to_sparse(
    const kernels::DenseFrontier& df, Cycles* cost) {
  const obs::PhaseScope phase("engine.frontier");
  const Cycles start = machine_.cycles();
  // Scan the bitmap (one 64-bit word covers 64 vertices), emit entries for
  // set bits. Per-PE ranges keep the output ordered.
  const std::uint32_t pes = machine_.num_pes();
  const Index n = df.dimension();
  const std::size_t words = (static_cast<std::size_t>(n) + 63) / 64;
  const std::size_t words_per_pe = (words + pes - 1) / pes;
  for (std::uint32_t pe = 0; pe < pes; ++pe) {
    const std::size_t mine = std::min(
        words_per_pe,
        words - std::min(words, static_cast<std::size_t>(pe) * words_per_pe));
    if (mine == 0) break;
    machine_.compute(pe, static_cast<double>(mine) * 2.0);
  }
  machine_.dma_traffic(words * 8, /*write=*/false);   // bitmap scan
  machine_.dma_traffic(df.num_active * 8, false);     // value gather
  machine_.dma_traffic(df.num_active * 12, true);     // entry stream out
  // Compaction work proportional to emitted entries.
  const std::size_t per_pe = (df.num_active + pes - 1) / pes;
  for (std::uint32_t pe = 0; pe < pes; ++pe) {
    const std::size_t mine =
        std::min(per_pe, df.num_active -
                             std::min(df.num_active,
                                      static_cast<std::size_t>(pe) * per_pe));
    if (mine == 0) break;
    machine_.compute(pe, static_cast<double>(mine) * 2.0);
  }
  machine_.global_barrier();
  if (cost != nullptr) *cost = machine_.cycles() - start;
  if (trace_ != nullptr && trace_->enabled()) {
    Json args = Json::object();
    args["entries"] = df.num_active;
    trace_->add_span("kernels", "convert dense->sparse",
                     static_cast<double>(start),
                     static_cast<double>(machine_.cycles()), std::move(args));
  }
  return fill_sparse_staging(df);
}

}  // namespace cosparse::runtime
