// Per-dataset matrix cache for the serving daemon.
//
// Loading (or synthesizing) a Table III graph is the dominant cold-start
// cost of a request, so cosparsed keeps loaded graphs resident under a
// byte budget with LRU eviction. Two invariants the property harness
// enforces:
//   1. an entry with outstanding Leases (in-flight queries) is NEVER
//      evicted — eviction only considers unpinned entries, and when every
//      resident entry is pinned the cache runs over budget (counted in
//      stats.over_budget_loads) rather than fail or evict pinned data;
//   2. eviction order among unpinned entries is strict LRU by last
//      acquire.
// Thread-safe: batches on different serve threads acquire concurrently;
// the map is mutex-protected and loads happen outside the lock only for
// distinct datasets (a per-entry load latch serializes duplicate loads).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/json.h"
#include "sparse/datasets.h"
#include "sparse/graph.h"

namespace cosparse::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// Loads that had to overrun the byte budget because every resident
  /// entry was pinned by in-flight queries.
  std::uint64_t over_budget_loads = 0;
  std::uint64_t bytes_resident = 0;
  std::uint64_t peak_bytes_resident = 0;

  [[nodiscard]] Json to_json() const;
};

class MatrixCache {
 public:
  /// `registry` must outlive the cache. `scale`/`dataset_seed` pin the
  /// stand-in generation parameters for every load.
  MatrixCache(const sparse::DatasetRegistry* registry,
              std::uint64_t budget_bytes, unsigned scale,
              std::uint64_t dataset_seed);
  ~MatrixCache();  // out of line: CacheEntry is complete only in cache.cpp

  MatrixCache(const MatrixCache&) = delete;
  MatrixCache& operator=(const MatrixCache&) = delete;

  /// RAII pin on one resident dataset. The graph reference stays valid —
  /// and the entry unevictable — for the lease's lifetime.
  class Lease {
   public:
    Lease() = default;
    Lease(MatrixCache* cache, struct CacheEntry* entry)
        : cache_(cache), entry_(entry) {}
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] bool valid() const { return entry_ != nullptr; }
    [[nodiscard]] const sparse::Graph& graph() const;

    void release();

   private:
    MatrixCache* cache_ = nullptr;
    struct CacheEntry* entry_ = nullptr;
  };

  /// Loads on miss (evicting LRU unpinned entries to fit the budget) and
  /// pins the entry. Throws cosparse::Error for unknown dataset names —
  /// callers validate against the registry before scheduling, so this
  /// only fires on programming errors.
  [[nodiscard]] Lease acquire(const std::string& dataset);

  /// Whether the dataset is currently resident (test/introspection).
  [[nodiscard]] bool resident(const std::string& dataset) const;
  [[nodiscard]] std::uint64_t budget_bytes() const { return budget_; }
  [[nodiscard]] CacheStats stats() const;

  /// Approximate resident footprint of one loaded graph (adjacency
  /// triplets + degree vector); the unit the byte budget is charged in.
  [[nodiscard]] static std::uint64_t graph_bytes(const sparse::Graph& g);

 private:
  void release_entry(CacheEntry* entry);
  /// Evicts LRU unpinned entries until `need` more bytes fit the budget;
  /// stops (over budget) when only pinned entries remain. Caller holds
  /// mu_.
  void make_room(std::uint64_t need);

  const sparse::DatasetRegistry* registry_;
  std::uint64_t budget_;
  unsigned scale_;
  std::uint64_t dataset_seed_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<CacheEntry>> entries_;
  std::uint64_t lru_clock_ = 0;
  CacheStats stats_;

  friend class Lease;
};

}  // namespace cosparse::serve
