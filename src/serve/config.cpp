#include "serve/config.h"

#include <limits>

#include "common/error.h"

namespace cosparse::serve {

namespace {

[[noreturn]] void bad(const std::string& field, const std::string& why) {
  throw Error("serve_config: field '" + field + "' " + why);
}

std::uint64_t get_u64(const Json& v, const std::string& field) {
  if (v.type() != Json::Type::kInt) bad(field, "must be an integer");
  const std::int64_t raw = v.as_int();
  if (raw < 0) bad(field, "must be >= 0");
  return static_cast<std::uint64_t>(raw);
}

std::uint32_t get_u32(const Json& v, const std::string& field) {
  const std::uint64_t wide = get_u64(v, field);
  if (wide > std::numeric_limits<std::uint32_t>::max())
    bad(field, "is out of range");
  return static_cast<std::uint32_t>(wide);
}

double get_real(const Json& v, const std::string& field) {
  if (!v.is_number()) bad(field, "must be a number");
  return v.as_double();
}

std::string get_string(const Json& v, const std::string& field) {
  if (!v.is_string()) bad(field, "must be a string");
  return v.as_string();
}

std::vector<std::string> get_string_list(const Json& v,
                                         const std::string& field) {
  if (!v.is_array()) bad(field, "must be an array of strings");
  std::vector<std::string> out;
  for (const Json& item : v.items()) {
    if (!item.is_string()) bad(field, "must be an array of strings");
    out.push_back(item.as_string());
  }
  return out;
}

TrafficConfig traffic_from_json(const Json& doc) {
  if (!doc.is_object()) bad("traffic", "must be an object");
  TrafficConfig t;
  for (const auto& [key, value] : doc.members()) {
    const std::string path = "traffic." + key;
    if (key == "arrival") {
      t.arrival = get_string(value, path);
    } else if (key == "request_interval_us") {
      t.request_interval_us = get_u64(value, path);
    } else if (key == "request_total_cnt") {
      t.request_total_cnt = get_u32(value, path);
    } else if (key == "burst_factor") {
      t.burst_factor = get_real(value, path);
    } else if (key == "burst_fraction") {
      t.burst_fraction = get_real(value, path);
    } else if (key == "burst_period_us") {
      t.burst_period_us = get_u64(value, path);
    } else if (key == "seed") {
      t.seed = get_u64(value, path);
    } else if (key == "datasets") {
      t.datasets = get_string_list(value, path);
    } else if (key == "algos") {
      t.algos = get_string_list(value, path);
    } else if (key == "tenants") {
      t.tenants = get_u32(value, path);
    } else {
      bad(path, "is not a known traffic field");
    }
  }
  return t;
}

}  // namespace

ServeConfig ServeConfig::from_json(const Json& doc) {
  if (!doc.is_object()) throw Error("serve_config: document is not an object");
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string())
    bad("schema", "is missing (expected \"" +
                      std::string(kServeConfigSchema) + "\")");
  if (schema->as_string() != kServeConfigSchema)
    bad("schema", "has unexpected value '" + schema->as_string() + "'");

  ServeConfig cfg;
  bool saw_traffic = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "schema") {
      continue;
    } else if (key == "scheduler_type") {
      cfg.scheduler_type = get_string(value, key);
    } else if (key == "max_active_reqs") {
      cfg.max_active_reqs = get_u32(value, key);
    } else if (key == "max_batch_size") {
      cfg.max_batch_size = get_u32(value, key);
    } else if (key == "virtual_workers") {
      cfg.virtual_workers = get_u32(value, key);
    } else if (key == "cache_budget_bytes") {
      cfg.cache_budget_bytes = get_u64(value, key);
    } else if (key == "exec_mode") {
      cfg.exec_mode = get_string(value, key);
    } else if (key == "system") {
      cfg.system = get_string(value, key);
    } else if (key == "scale") {
      cfg.scale = get_u32(value, key);
    } else if (key == "dataset_seed") {
      cfg.dataset_seed = get_u64(value, key);
    } else if (key == "traffic") {
      cfg.traffic = traffic_from_json(value);
      saw_traffic = true;
    } else {
      bad(key, "is not a known serve_config field");
    }
  }
  (void)saw_traffic;  // traffic is optional; defaults serve a smoke mix

  // Range checks (the same invariants serve_lint reports as findings).
  if (cfg.scheduler_type != "fcfs" &&
      cfg.scheduler_type != "same-dataset-batch")
    bad("scheduler_type", "must be \"fcfs\" or \"same-dataset-batch\"");
  if (cfg.max_active_reqs == 0) bad("max_active_reqs", "must be >= 1");
  if (cfg.max_batch_size == 0) bad("max_batch_size", "must be >= 1");
  if (cfg.virtual_workers == 0) bad("virtual_workers", "must be >= 1");
  if (cfg.scale == 0) bad("scale", "must be >= 1");
  if (cfg.exec_mode != "sim" && cfg.exec_mode != "native")
    bad("exec_mode", "must be \"sim\" or \"native\"");
  if (cfg.traffic.arrival != "poisson" && cfg.traffic.arrival != "bursty")
    bad("traffic.arrival", "must be \"poisson\" or \"bursty\"");
  if (cfg.traffic.request_interval_us == 0)
    bad("traffic.request_interval_us", "must be >= 1");
  if (cfg.traffic.burst_factor < 1.0)
    bad("traffic.burst_factor", "must be >= 1");
  if (cfg.traffic.burst_fraction <= 0.0 || cfg.traffic.burst_fraction >= 1.0)
    bad("traffic.burst_fraction", "must be in (0, 1)");
  if (cfg.traffic.burst_period_us == 0)
    bad("traffic.burst_period_us", "must be >= 1");
  if (cfg.traffic.datasets.empty())
    bad("traffic.datasets", "must name at least one dataset");
  if (cfg.traffic.algos.empty())
    bad("traffic.algos", "must name at least one algorithm");
  if (cfg.traffic.tenants == 0) bad("traffic.tenants", "must be >= 1");
  return cfg;
}

Json ServeConfig::to_json() const {
  Json j = Json::object();
  j["schema"] = std::string(kServeConfigSchema);
  j["scheduler_type"] = scheduler_type;
  j["max_active_reqs"] = max_active_reqs;
  j["max_batch_size"] = max_batch_size;
  j["virtual_workers"] = virtual_workers;
  j["cache_budget_bytes"] = cache_budget_bytes;
  j["exec_mode"] = exec_mode;
  j["system"] = system;
  j["scale"] = scale;
  j["dataset_seed"] = dataset_seed;
  Json t = Json::object();
  t["arrival"] = traffic.arrival;
  t["request_interval_us"] = traffic.request_interval_us;
  t["request_total_cnt"] = traffic.request_total_cnt;
  t["burst_factor"] = traffic.burst_factor;
  t["burst_fraction"] = traffic.burst_fraction;
  t["burst_period_us"] = traffic.burst_period_us;
  t["seed"] = traffic.seed;
  Json datasets = Json::array();
  for (const std::string& d : traffic.datasets) datasets.push_back(d);
  t["datasets"] = std::move(datasets);
  Json algos = Json::array();
  for (const std::string& a : traffic.algos) algos.push_back(a);
  t["algos"] = std::move(algos);
  t["tenants"] = traffic.tenants;
  j["traffic"] = std::move(t);
  return j;
}

}  // namespace cosparse::serve
