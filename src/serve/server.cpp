#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "common/digest.h"
#include "common/error.h"
#include "graph/algorithms.h"
#include "native/exec_mode.h"
#include "obs/report.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "runtime/engine.h"
#include "serve/trace.h"
#include "sim/parallel.h"

namespace cosparse::serve {

namespace {

/// Parses the config's "AxB" system spec (same grammar as the bench
/// suite's --system option).
sim::SystemConfig parse_system(const std::string& spec) {
  const auto x = spec.find('x');
  if (x == std::string::npos || x == 0 || x + 1 >= spec.size())
    throw Error("serve: system spec must look like 8x8: " + spec);
  const auto tiles =
      static_cast<std::uint32_t>(std::stoul(spec.substr(0, x)));
  const auto pes =
      static_cast<std::uint32_t>(std::stoul(spec.substr(x + 1)));
  return sim::SystemConfig::transmuter(tiles, pes);
}

/// Executes one request on an engine already holding its dataset;
/// returns the digest over every result bit.
void run_request(runtime::Engine& eng, const sparse::Graph& g,
                 const QueryRequest& req, QueryResponse& resp) {
  const Index dim = eng.dimension();
  const Index source = dim == 0 ? 0 : req.source % dim;
  Digest d;
  switch (req.algo) {
    case Algo::kBfs: {
      const graph::BfsResult res = graph::bfs(eng, source);
      for (const std::int64_t level : res.level)
        d.update_u64(static_cast<std::uint64_t>(level));
      resp.result_elems = res.level.size();
      resp.algo_iterations = res.stats.iterations;
      break;
    }
    case Algo::kSssp: {
      const graph::SsspResult res = graph::sssp(eng, source, req.iterations);
      for (const Value dist : res.dist) d.update_value(dist);
      resp.result_elems = res.dist.size();
      resp.algo_iterations = res.stats.iterations;
      break;
    }
    case Algo::kPagerank: {
      graph::PageRankOptions opts;
      if (req.iterations != 0) opts.max_iterations = req.iterations;
      const graph::PageRankResult res =
          graph::pagerank(eng, g.out_degrees(), opts);
      for (const Value rank : res.rank) d.update_value(rank);
      d.update_value(res.residual);
      resp.result_elems = res.rank.size();
      resp.algo_iterations = res.stats.iterations;
      break;
    }
    case Algo::kCf: {
      graph::CfOptions opts;
      if (req.iterations != 0) opts.iterations = req.iterations;
      opts.seed = req.seed;
      const graph::CfResult res = graph::cf(eng, g.adjacency(), opts);
      for (const Value v : res.latent) d.update_value(v);
      for (const double loss : res.loss_per_iteration) d.update_value(loss);
      resp.result_elems = res.latent.size();
      resp.algo_iterations = res.stats.iterations;
      break;
    }
  }
  resp.digest = d.hex();
}

double percentile_ms(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  auto idx = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  if (idx > 0) --idx;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

}  // namespace

Server::Server(ServeConfig cfg, ServerOptions opts)
    : cfg_(std::move(cfg)), opts_(std::move(opts)),
      registry_(opts_.data_dir) {
  if (opts_.serve_threads == 0) opts_.serve_threads = 1;
}

Json Server::replay() { return serve(generate_trace(cfg_.traffic)); }

Json Server::serve(const std::vector<QueryRequest>& trace,
                   std::vector<QueryResponse> pre_errors) {
  schedule_ = build_schedule(cfg_, trace);
  execute(trace);
  return make_report(std::move(pre_errors));
}

void Server::execute(const std::vector<QueryRequest>& trace) {
  const obs::PhaseScope phase("serve.execute");
  const native::ExecMode mode = cfg_.exec_mode == "native"
                                    ? native::ExecMode::kNative
                                    : native::ExecMode::kSim;
  const sim::SystemConfig system = parse_system(cfg_.system);

  MatrixCache cache(&registry_, cfg_.cache_budget_bytes, cfg_.scale,
                    cfg_.dataset_seed);
  batch_wall_ms_.assign(schedule_.batches.size(), 0.0);

  const auto run_batch = [&](std::uint32_t b) {
    const obs::PhaseScope batch_phase("serve.batch");
    const auto b0 = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
    const BatchPlan& batch = schedule_.batches[b];
    try {
      const MatrixCache::Lease lease = cache.acquire(batch.dataset);
      const sparse::Graph& g = lease.graph();
      // One fresh engine per batch: same-dataset requests amortize the
      // matrix partitioning. Engine decisions are pure functions of each
      // request's own frontier sequence, so results are independent of
      // what ran before on this engine (the batched-vs-alone property
      // test pins this). Simulation stays serial inside a batch —
      // parallelism is batch-level, across serve threads.
      runtime::EngineOptions eopts;
      eopts.exec_mode = mode;
      eopts.sim_threads = 0;
      runtime::Engine eng(g.adjacency(), system, eopts);
      for (const std::size_t idx : batch.request_indices) {
        const auto r0 = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
        run_request(eng, g, trace[idx], schedule_.responses[idx]);
        schedule_.responses[idx].wall_service_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - r0)  // cosparse-lint: allow(determinism)
                .count();
      }
    } catch (const std::exception& e) {
      // Execution failure: every request of the batch reports the same
      // deterministic error string; the daemon never crashes.
      for (const std::size_t idx : batch.request_indices) {
        QueryResponse& resp = schedule_.responses[idx];
        resp.status = Status::kError;
        resp.error = std::string("execution failed: ") + e.what();
        resp.digest.clear();
      }
    }
    batch_wall_ms_[b] =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - b0)  // cosparse-lint: allow(determinism)
            .count();
  };

  const auto t0 = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
  if (!schedule_.batches.empty()) {
    sim::ParallelExecutor pool(opts_.serve_threads);
    pool.run(static_cast<std::uint32_t>(schedule_.batches.size()),
             run_batch);
  }
  total_wall_ms_ = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)  // cosparse-lint: allow(determinism)
                       .count();
  cache_stats_ = cache.stats();

  // Post-join telemetry: histograms are observed on this (the producing)
  // thread only, per the obs/telemetry.h threading contract. Workers
  // recorded wall times into their disjoint response/batch slots above.
  if (opts_.telemetry != nullptr) {
    obs::Telemetry& t = *opts_.telemetry;
    std::uint64_t done = 0;
    for (const QueryResponse& resp : schedule_.responses) {
      if (resp.status != Status::kOk) continue;
      t.histogram("serve.request_ms").observe(resp.wall_service_ms);
      t.histogram("serve.queue_wait_us")
          .observe(static_cast<double>(resp.dispatch_us - resp.arrival_us));
      t.tick(++done);
    }
    for (const double ms : batch_wall_ms_)
      t.histogram("serve.batch_ms").observe(ms);
    for (const QueueSample& s : schedule_.queue_depth)
      t.histogram("serve.queue_depth").observe(
          static_cast<double>(s.waiting));
  }
}

Json Server::make_report(std::vector<QueryResponse> pre_errors) {
  // Merge executed responses with upstream parse-error responses, id
  // ascending, so the report covers every submitted line exactly once.
  std::vector<const QueryResponse*> ordered;
  ordered.reserve(schedule_.responses.size() + pre_errors.size());
  for (const QueryResponse& r : schedule_.responses) ordered.push_back(&r);
  for (const QueryResponse& r : pre_errors) ordered.push_back(&r);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const QueryResponse* a, const QueryResponse* b) {
                     return a->id < b->id;
                   });

  Json responses = Json::array();
  Digest results_digest;
  for (const QueryResponse* r : ordered) {
    responses.push_back(results_json(*r));
    results_digest.update_u64(r->id);
    results_digest.update_u64(static_cast<std::uint64_t>(r->status));
    results_digest.update_u64(r->finish_us);
    if (!r->digest.empty())
      results_digest.update_u64(std::stoull(r->digest, nullptr, 16));
  }

  obs::Report report("cosparsed");
  report.set("seed", Json(cfg_.traffic.seed));
  Json datasets = Json::array();
  for (const std::string& d : cfg_.traffic.datasets) datasets.push_back(d);
  report.set("dataset", std::move(datasets));
  report.set("config", cfg_.to_json());

  // Everything in "results" is deterministic: response subsets (virtual
  // clock only), the schedule summary and the fold-of-everything digest.
  // This is the section the 1-vs-N serve-threads byte-compare gates diff.
  Json results = Json::object();
  results["responses"] = std::move(responses);
  results["results_digest"] = results_digest.hex();
  results["schedule"] = schedule_json(schedule_);
  report.set("results", std::move(results));

  // Host wall-clock truth lives here (and in telemetry), excluded from
  // the functional byte-compare by construction.
  Json timing = Json::object();
  timing["serve_threads"] = opts_.serve_threads;
  timing["total_wall_ms"] = total_wall_ms_;
  std::vector<double> request_ms;
  for (const QueryResponse& r : schedule_.responses)
    if (r.status == Status::kOk) request_ms.push_back(r.wall_service_ms);
  timing["requests_executed"] =
      static_cast<std::uint64_t>(request_ms.size());
  timing["request_ms_p50"] = percentile_ms(request_ms, 50.0);
  timing["request_ms_p99"] = percentile_ms(request_ms, 99.0);
  timing["throughput_rps"] =
      total_wall_ms_ > 0.0
          ? static_cast<double>(request_ms.size()) * 1000.0 / total_wall_ms_
          : 0.0;
  timing["host_cache"] = cache_stats_.to_json();
  report.set("timing", std::move(timing));

  if (opts_.telemetry != nullptr)
    report.set("telemetry", opts_.telemetry->report_json());
  return report.root();
}

}  // namespace cosparse::serve
