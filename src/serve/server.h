// cosparsed's serving core: schedule deterministically, execute in
// parallel, report.
//
// Server::replay() runs the full pipeline for one ServeConfig:
//
//   generate_trace()       — seeded arrivals + workload mix (trace.h)
//   build_schedule()       — single-threaded virtual-time DES: admission,
//                            batching, virtual latencies (scheduler.h)
//   execute()              — the scheduled batches run for real, spread
//                            over --serve-threads host threads; each batch
//                            leases its dataset from the MatrixCache and
//                            runs its requests back-to-back on one fresh
//                            Engine (sim or native per config.exec_mode)
//   report()               — cosparse.run_report/v1 document
//
// Determinism contract (DESIGN.md §16): the schedule is fixed before any
// host thread starts, engine decisions are pure functions of the frontier
// sequence, and per-request results depend only on (dataset, algo,
// source, iterations, seed) — so the report's functional subset (schema /
// tool / seed / dataset / results, `cosparse-prof extract --functional`)
// is byte-identical for every --serve-threads value. Host wall time goes
// in the "timing" section and telemetry only; both are excluded from the
// byte-compare.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/cache.h"
#include "serve/config.h"
#include "serve/request.h"
#include "serve/scheduler.h"
#include "sparse/datasets.h"

namespace cosparse::obs {
class Telemetry;
}  // namespace cosparse::obs

namespace cosparse::serve {

struct ServerOptions {
  /// Host threads executing scheduled batches (>= 1). Changes wall time
  /// only, never results.
  std::uint32_t serve_threads = 1;
  /// Continuous-telemetry registry (not owned; may be null). Histograms
  /// are observed post-join on the calling thread only, honoring the
  /// obs/telemetry.h threading contract.
  obs::Telemetry* telemetry = nullptr;
  /// Optional real-edge-list directory for the DatasetRegistry.
  std::string data_dir;
};

class Server {
 public:
  explicit Server(ServeConfig cfg, ServerOptions opts = {});

  /// Trace generation + scheduling + execution + report for the config's
  /// traffic section.
  [[nodiscard]] Json replay();

  /// Serves an explicit request list (e.g. parsed from a --requests JSONL
  /// stream). `pre_errors` are responses manufactured upstream — JSONL
  /// lines that failed to parse — merged into the report by id.
  [[nodiscard]] Json serve(const std::vector<QueryRequest>& trace,
                           std::vector<QueryResponse> pre_errors = {});

  /// Introspection for tests: the last run's schedule and host-side cache
  /// counters.
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }
  [[nodiscard]] const CacheStats& cache_stats() const { return cache_stats_; }
  [[nodiscard]] const ServeConfig& config() const { return cfg_; }

 private:
  /// Runs every scheduled batch across opts_.serve_threads workers,
  /// filling digests / iteration counts / wall times into
  /// schedule_.responses (disjoint slots per batch; no locking).
  void execute(const std::vector<QueryRequest>& trace);
  [[nodiscard]] Json make_report(std::vector<QueryResponse> pre_errors);

  ServeConfig cfg_;
  ServerOptions opts_;
  sparse::DatasetRegistry registry_;
  Schedule schedule_;
  CacheStats cache_stats_;
  std::vector<double> batch_wall_ms_;
  double total_wall_ms_ = 0.0;
};

}  // namespace cosparse::serve
