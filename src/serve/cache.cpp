#include "serve/cache.h"

#include <condition_variable>

#include "common/error.h"
#include "sparse/formats.h"

namespace cosparse::serve {

/// One resident dataset. pins > 0 means in-flight queries hold Leases on
/// it; loading means the graph is still being produced by the first
/// acquirer (later acquirers wait on `loaded_cv`).
struct CacheEntry {
  std::string name;
  sparse::Graph graph;
  std::uint64_t bytes = 0;
  std::uint32_t pins = 0;
  std::uint64_t lru_seq = 0;
  bool loading = true;
  bool failed = false;  ///< load threw; waiters rethrow instead of leasing
  std::condition_variable loaded_cv;
};

Json CacheStats::to_json() const {
  Json j = Json::object();
  j["hits"] = hits;
  j["misses"] = misses;
  j["evictions"] = evictions;
  j["over_budget_loads"] = over_budget_loads;
  j["bytes_resident"] = bytes_resident;
  j["peak_bytes_resident"] = peak_bytes_resident;
  return j;
}

MatrixCache::Lease& MatrixCache::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    cache_ = other.cache_;
    entry_ = other.entry_;
    other.cache_ = nullptr;
    other.entry_ = nullptr;
  }
  return *this;
}

const sparse::Graph& MatrixCache::Lease::graph() const {
  COSPARSE_CHECK(entry_ != nullptr);
  return entry_->graph;
}

void MatrixCache::Lease::release() {
  if (cache_ != nullptr && entry_ != nullptr) cache_->release_entry(entry_);
  cache_ = nullptr;
  entry_ = nullptr;
}

MatrixCache::~MatrixCache() = default;

MatrixCache::MatrixCache(const sparse::DatasetRegistry* registry,
                         std::uint64_t budget_bytes, unsigned scale,
                         std::uint64_t dataset_seed)
    : registry_(registry),
      budget_(budget_bytes),
      scale_(scale),
      dataset_seed_(dataset_seed) {
  COSPARSE_CHECK(registry_ != nullptr);
}

std::uint64_t MatrixCache::graph_bytes(const sparse::Graph& g) {
  return g.num_edges() * sizeof(sparse::Triplet) +
         static_cast<std::uint64_t>(g.num_vertices()) * sizeof(Index);
}

MatrixCache::Lease MatrixCache::acquire(const std::string& dataset) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(dataset);
  if (it != entries_.end()) {
    CacheEntry* entry = it->second.get();
    ++entry->pins;  // pin before any wait so eviction can never race in
    entry->lru_seq = ++lru_clock_;
    while (entry->loading) entry->loaded_cv.wait(lock);
    if (entry->failed) {
      const std::string name = entry->name;
      if (--entry->pins == 0) entries_.erase(name);
      throw Error("matrix cache: load of dataset '" + name +
                  "' failed in a concurrent acquire");
    }
    ++stats_.hits;
    return Lease(this, entry);
  }

  // Miss: insert a pinned loading placeholder, load outside the lock
  // (other datasets keep flowing), then charge bytes and evict to fit.
  ++stats_.misses;
  auto owned = std::make_unique<CacheEntry>();
  CacheEntry* entry = owned.get();
  entry->name = dataset;
  entry->pins = 1;
  entry->lru_seq = ++lru_clock_;
  entries_.emplace(dataset, std::move(owned));

  lock.unlock();
  sparse::Graph graph;
  try {
    graph = registry_->load(dataset, scale_, dataset_seed_);
  } catch (...) {
    // Unknown dataset / IO failure: withdraw the placeholder so a later
    // acquire can retry, wake any waiters, and rethrow.
    lock.lock();
    entry->loading = false;
    entry->failed = true;
    entry->loaded_cv.notify_all();
    if (--entry->pins == 0) entries_.erase(dataset);
    throw;
  }

  lock.lock();
  entry->bytes = graph_bytes(graph);
  entry->graph = std::move(graph);
  entry->loading = false;
  entry->loaded_cv.notify_all();

  make_room(entry->bytes);
  stats_.bytes_resident += entry->bytes;
  if (stats_.bytes_resident > budget_) ++stats_.over_budget_loads;
  if (stats_.bytes_resident > stats_.peak_bytes_resident)
    stats_.peak_bytes_resident = stats_.bytes_resident;
  return Lease(this, entry);
}

void MatrixCache::make_room(std::uint64_t need) {
  // Evict strict-LRU among unpinned, fully-loaded entries until `need`
  // fits; never touch pinned entries (in-flight queries read them).
  while (stats_.bytes_resident + need > budget_) {
    CacheEntry* victim = nullptr;
    for (const auto& [name, entry] : entries_) {
      if (entry->pins > 0 || entry->loading) continue;
      if (victim == nullptr || entry->lru_seq < victim->lru_seq)
        victim = entry.get();
    }
    if (victim == nullptr) return;  // everything pinned: run over budget
    stats_.bytes_resident -= victim->bytes;
    ++stats_.evictions;
    const std::string victim_name = victim->name;
    entries_.erase(victim_name);
  }
}

void MatrixCache::release_entry(CacheEntry* entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  COSPARSE_CHECK(entry->pins > 0);
  --entry->pins;
  if (entry->pins == 0 && entry->failed) entries_.erase(entry->name);
}

bool MatrixCache::resident(const std::string& dataset) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return entries_.find(dataset) != entries_.end();
}

CacheStats MatrixCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace cosparse::serve
