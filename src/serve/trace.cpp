#include "serve/trace.h"

#include <cmath>

#include "common/rng.h"

namespace cosparse::serve {

namespace {

/// Exponential inter-arrival draw with the given mean, floored at 1 µs so
/// the virtual clock always advances between distinct draws.
std::uint64_t exp_gap_us(Rng& rng, double mean_us) {
  const double u = rng.next_double();
  const double gap = -std::log(1.0 - u) * mean_us;
  if (gap <= 1.0) return 1;
  if (gap >= 9.0e15) return 9'000'000'000'000'000ULL;
  return static_cast<std::uint64_t>(gap);
}

/// Whether virtual time `t` falls in the burst window of its period.
bool in_burst(std::uint64_t t, const TrafficConfig& cfg) {
  const std::uint64_t phase = t % cfg.burst_period_us;
  const auto window = static_cast<std::uint64_t>(
      cfg.burst_fraction * static_cast<double>(cfg.burst_period_us));
  return phase < window;
}

}  // namespace

std::vector<QueryRequest> generate_trace(const TrafficConfig& cfg) {
  std::vector<QueryRequest> trace;
  trace.reserve(cfg.request_total_cnt);

  // Independent sub-streams: arrival jitter must not perturb the workload
  // mix (and vice versa) when one knob changes.
  Rng arrivals(cfg.seed, "serve.arrivals");
  Rng mix(cfg.seed, "serve.mix");

  const auto mean_us = static_cast<double>(cfg.request_interval_us);
  std::uint64_t now_us = 0;
  for (std::uint32_t i = 0; i < cfg.request_total_cnt; ++i) {
    if (cfg.arrival == "bursty") {
      // On/off-modulated Poisson: inside the burst window of each period
      // arrivals come burst_factor× faster. The modulation is evaluated
      // at the draw's start time, so the process stays a pure function of
      // (seed, config).
      const double mean = in_burst(now_us, cfg) ? mean_us / cfg.burst_factor
                                                : mean_us;
      now_us += exp_gap_us(arrivals, mean);
    } else {
      now_us += exp_gap_us(arrivals, mean_us);
    }

    QueryRequest req;
    req.id = i + 1;
    req.arrival_us = now_us;
    req.tenant =
        "tenant-" + std::to_string(mix.next_below(cfg.tenants));
    req.dataset = cfg.datasets[static_cast<std::size_t>(
        mix.next_below(cfg.datasets.size()))];
    req.algo = algo_from_string(cfg.algos[static_cast<std::size_t>(
        mix.next_below(cfg.algos.size()))]);
    // Source vertices draw from a wide range and are reduced modulo the
    // loaded graph's dimension at execution time, so the trace does not
    // depend on dataset scaling.
    req.source = static_cast<Index>(mix.next_below(1ULL << 20));
    req.iterations = 0;  // algorithm defaults
    // Keep the per-request seed within int64 range: the JSON layer stores
    // larger values as doubles, which would not survive a trace-out /
    // --requests round trip bit-exactly.
    req.seed = mix.next() >> 1;
    trace.push_back(std::move(req));
  }
  return trace;
}

Json trace_json(const std::vector<QueryRequest>& trace) {
  Json arr = Json::array();
  for (const QueryRequest& r : trace) arr.push_back(to_json(r));
  return arr;
}

}  // namespace cosparse::serve
