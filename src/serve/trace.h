// Deterministic load-trace generation for the serving daemon.
//
// generate_trace() expands a TrafficConfig into a concrete request
// schedule: arrival times from a seeded Poisson (or deterministically
// burst-modulated Poisson) process on the virtual clock, and a workload
// mix (dataset, algorithm, tenant, source vertex) drawn from independent
// named sub-streams of the same seed (common/rng.h). The schedule is a
// pure function of the config — same (seed, trace-config) in, byte-equal
// schedule out — which is what makes the whole serving pipeline
// replayable and the serve-threads differential gates possible.
#pragma once

#include <vector>

#include "serve/config.h"
#include "serve/request.h"

namespace cosparse::serve {

/// Expands the traffic config into request_total_cnt requests, ids
/// assigned in arrival order starting at 1, arrival_us nondecreasing.
[[nodiscard]] std::vector<QueryRequest> generate_trace(
    const TrafficConfig& cfg);

/// Serializes a schedule for inspection/goldens: one request object per
/// entry, in arrival order.
[[nodiscard]] Json trace_json(const std::vector<QueryRequest>& trace);

}  // namespace cosparse::serve
