// cosparse.serve_config/v1 — the cosparsed serving-daemon configuration.
//
// The shape follows NeuPIMs' SimulationConfig client/scheduler split
// (SNIPPETS.md snippet 2): the scheduler block carries scheduler_type /
// max_active_reqs, the traffic block carries request_interval /
// request_total_cnt plus the arrival-process and workload-mix knobs the
// deterministic load generator replays (serve/trace.h). Everything that
// influences the *virtual* schedule lives here — host-side execution
// knobs (--serve-threads) deliberately do not, so the schedule and every
// per-request result digest are a pure function of this document
// (DESIGN.md §16).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace cosparse::serve {

inline constexpr std::string_view kServeConfigSchema =
    "cosparse.serve_config/v1";

/// Arrival process + workload mix for the load generator.
struct TrafficConfig {
  /// "poisson" (exponential inter-arrivals) or "bursty" (a deterministic
  /// on/off modulation of the Poisson rate: bursts arrive burst_factor×
  /// faster for burst_fraction of every burst_period_us).
  std::string arrival = "poisson";
  /// Mean inter-arrival time in virtual microseconds (NeuPIMs
  /// request_interval).
  std::uint64_t request_interval_us = 1000;
  /// Total requests in the trace (NeuPIMs request_total_cnt).
  std::uint32_t request_total_cnt = 100;
  double burst_factor = 8.0;    ///< in-burst rate multiplier (bursty only)
  double burst_fraction = 0.2;  ///< duty cycle of the burst phase
  std::uint64_t burst_period_us = 20000;  ///< burst cycle length
  std::uint64_t seed = 1;       ///< drives arrivals AND the workload mix
  /// Dataset mix (DatasetRegistry names); requests draw uniformly.
  std::vector<std::string> datasets = {"twitter", "vsp"};
  /// Algorithm mix ("bfs"/"sssp"/"pagerank"/"cf"); uniform draw.
  std::vector<std::string> algos = {"bfs", "pagerank"};
  std::uint32_t tenants = 4;    ///< tenant-<i> round-draw population
};

struct ServeConfig {
  // ---- scheduler (NeuPIMs naming) ----
  /// "fcfs" (one request per dispatch, strict arrival order) or
  /// "same-dataset-batch" (coalesce queued requests for the oldest
  /// waiter's dataset, up to max_batch_size).
  std::string scheduler_type = "same-dataset-batch";
  /// Admission bound on ready + running requests; arrivals beyond it are
  /// rejected with a structured response, never queued unboundedly.
  std::uint32_t max_active_reqs = 64;
  std::uint32_t max_batch_size = 8;
  /// Virtual service parallelism of the modeled daemon. Part of the
  /// schedule semantics (NOT the host thread count): keeping it in the
  /// config is what makes the schedule identical for every
  /// --serve-threads value.
  std::uint32_t virtual_workers = 2;

  // ---- matrix cache ----
  std::uint64_t cache_budget_bytes = 256ULL << 20;

  // ---- execution ----
  std::string exec_mode = "native";  ///< default backend ("sim"/"native")
  std::string system = "8x8";        ///< simulated system for sim mode
  std::uint32_t scale = 64;          ///< dataset scale divisor
  std::uint64_t dataset_seed = 0;    ///< stand-in generator seed offset

  TrafficConfig traffic;

  /// Strict parse of a cosparse.serve_config/v1 document. Throws
  /// cosparse::Error naming the offending field on wrong schema, type
  /// mismatches, unknown fields or out-of-range values. (serve_lint.h
  /// runs the same checks as findings for CI.)
  [[nodiscard]] static ServeConfig from_json(const Json& doc);
  /// Inverse of from_json (schema tag included).
  [[nodiscard]] Json to_json() const;
};

}  // namespace cosparse::serve
