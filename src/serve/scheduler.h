// Deterministic admission + batching scheduler for the serving daemon.
//
// The scheduler is a single-threaded discrete-event simulation on the
// virtual clock: it consumes a trace (serve/trace.h) and a ServeConfig
// and produces the complete serving schedule — which requests are
// admitted or rejected, how admitted requests coalesce into batches,
// which virtual worker runs each batch, and every virtual dispatch /
// finish timestamp. Nothing in here reads the wall clock or depends on
// --serve-threads (modeled parallelism is config.virtual_workers), so
// the schedule is a pure function of (config, trace). Real execution
// (serve/server.h) then replays the batch plan on however many host
// threads the operator asked for; because the plan is already fixed,
// per-request results and the report's results section are byte-equal
// across thread counts (DESIGN.md §16).
//
// Scheduling policies (config.scheduler_type):
//   fcfs               — single-request dispatch in strict arrival order.
//   same-dataset-batch — the oldest waiting request picks the dataset;
//                        up to max_batch_size waiters on that dataset
//                        coalesce onto one engine instance. Because the
//                        oldest waiter always drives selection, no
//                        request waits forever (starvation-freedom, see
//                        tests/serve/test_serve_properties.cpp).
//
// Admission control: a request arriving while (waiting + running)
// >= max_active_reqs is rejected immediately. Unknown datasets become
// kError responses without entering the queue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/config.h"
#include "serve/request.h"

namespace cosparse::serve {

/// Deterministic virtual-time cost model. Costs are pure integer
/// functions of the (scaled) Table III dataset specs and the algorithm —
/// they model relative magnitudes (CF > PageRank > SSSP > BFS; load ~
/// edge count) rather than measured wall time, which lives in the
/// report's timing section instead.
struct CostModel {
  unsigned scale = 64;

  /// Resident bytes the virtual cache charges for a dataset (mirrors
  /// MatrixCache::graph_bytes over the scaled spec).
  [[nodiscard]] std::uint64_t bytes(const std::string& dataset) const;
  /// Cold-load cost charged once per virtual cache miss.
  [[nodiscard]] std::uint64_t load_us(const std::string& dataset) const;
  /// Per-request service cost on an already-resident dataset.
  [[nodiscard]] std::uint64_t service_us(const std::string& dataset,
                                         Algo algo) const;
};

/// One scheduled batch: the unit real execution parallelizes over.
struct BatchPlan {
  std::uint32_t id = 0;  ///< 1-based, in dispatch order
  std::string dataset;
  /// Indices into the trace (NOT request ids), in arrival order.
  std::vector<std::size_t> request_indices;
  std::uint64_t dispatch_us = 0;
  std::uint64_t finish_us = 0;  ///< virtual worker becomes free here
  std::uint32_t worker = 0;     ///< virtual worker id in [0, virtual_workers)
  bool cache_miss = false;      ///< virtual cache model predicted a load
};

/// Queue depth observed after each simulation event (soak tests assert
/// the cumulative counters derived from these are monotone).
struct QueueSample {
  std::uint64_t t_us = 0;
  std::uint32_t waiting = 0;
  std::uint32_t running = 0;
};

struct ScheduleStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t errored = 0;  ///< unknown dataset at admission
  std::uint32_t peak_active = 0;
  std::uint32_t peak_queue_depth = 0;
  std::uint64_t makespan_us = 0;    ///< last virtual finish
  std::uint64_t max_wait_us = 0;    ///< max dispatch - arrival
  std::uint64_t cache_hits = 0;     ///< virtual cache model
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_over_budget = 0;

  [[nodiscard]] Json to_json() const;
};

/// The full deterministic schedule. `responses` is in trace order with
/// status/virtual-time fields filled in; digests stay empty until real
/// execution (serve/server.h) runs the batch plan.
struct Schedule {
  std::vector<QueryResponse> responses;
  std::vector<BatchPlan> batches;
  std::vector<QueueSample> queue_depth;
  ScheduleStats stats;
};

/// Runs the discrete-event simulation. Pure: same (config, trace) in,
/// identical schedule out.
[[nodiscard]] Schedule build_schedule(const ServeConfig& cfg,
                                      const std::vector<QueryRequest>& trace);

/// Virtual-latency percentile over kOk responses using the sorted-index
/// method (ceil(p/100 * n) - 1); deterministic, no interpolation.
/// Returns 0 when no response completed.
[[nodiscard]] std::uint64_t latency_percentile_us(
    const std::vector<QueryResponse>& responses, double p);

/// Deterministic "serve" report section: stats, batch plan summary and
/// queue-depth samples (everything virtual-clock, nothing wall-clock).
[[nodiscard]] Json schedule_json(const Schedule& schedule);

}  // namespace cosparse::serve
