// Graph-query requests and responses for the cosparsed serving layer.
//
// A QueryRequest names one algorithm run (BFS/SSSP/PageRank/CF) over one
// registered dataset; requests arrive from many tenants and carry a
// virtual arrival timestamp so the whole serving schedule is a pure
// function of the trace (DESIGN.md §16). Parsing is strict and total:
// malformed, truncated or unknown-field documents never throw out of
// parse_request() — they produce a structured error (field + message)
// that the daemon turns into an error response, so a hostile client can
// never crash the service.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/json.h"
#include "common/types.h"

namespace cosparse::serve {

/// The four Table I workloads the daemon serves.
enum class Algo : std::uint8_t { kBfs, kSssp, kPagerank, kCf };

[[nodiscard]] const char* to_string(Algo a);
/// Throws cosparse::Error on unknown names.
[[nodiscard]] Algo algo_from_string(std::string_view s);

struct QueryRequest {
  std::uint64_t id = 0;         ///< assigned by the daemon (arrival order)
  std::uint64_t arrival_us = 0; ///< virtual-clock arrival (microseconds)
  std::string tenant;           ///< client identity (multi-tenant fairness)
  std::string dataset;          ///< DatasetRegistry name (Table III)
  Algo algo = Algo::kBfs;
  /// BFS/SSSP source vertex; reduced modulo the loaded graph's dimension
  /// at execution time so any value is servable.
  Index source = 0;
  /// PageRank/CF iteration budget; 0 keeps the algorithm default.
  std::uint32_t iterations = 0;
  /// CF latent-factor initialization seed.
  std::uint64_t seed = 1;
};

/// Full round-trip serialization (every field, including id/arrival_us).
[[nodiscard]] Json to_json(const QueryRequest& r);

/// Outcome of parsing one request document: either a request or a
/// structured error naming the offending field.
struct ParsedRequest {
  std::optional<QueryRequest> request;
  std::string error;        ///< empty on success
  std::string error_field;  ///< offending field path (may be empty)

  [[nodiscard]] bool ok() const { return request.has_value(); }
};

/// Strict parse of a request object: "dataset" and "algo" are mandatory,
/// unknown fields are errors (they usually mean a client schema drift),
/// and every type mismatch is reported with its field name. Never throws.
[[nodiscard]] ParsedRequest parse_request(const Json& doc);

/// parse_request() over one JSONL line; JSON syntax errors (truncated
/// documents, trailing garbage) become structured errors too.
[[nodiscard]] ParsedRequest parse_request_line(std::string_view line);

// ---- responses ----

enum class Status : std::uint8_t {
  kOk,        ///< executed; digest present
  kRejected,  ///< admission control turned the request away
  kError,     ///< malformed request / unknown dataset / execution failure
};

[[nodiscard]] const char* to_string(Status s);

struct QueryResponse {
  std::uint64_t id = 0;
  Status status = Status::kOk;
  std::string error;        ///< deterministic reason for rejected/error
  std::string error_field;  ///< parse errors: offending field
  // Echoed request identity (responses must be self-describing on the
  // wire; tenants never see each other's requests).
  std::string tenant;
  std::string dataset;
  std::string algo;
  /// FNV-1a-64 digest over every result bit (common/digest.h); the
  /// instrument behind the serve-threads byte-compare gates.
  std::string digest;
  std::uint64_t result_elems = 0;     ///< result vector length
  std::uint32_t algo_iterations = 0;  ///< SpMV iterations the run took
  // Deterministic virtual-clock times (µs since trace start).
  std::uint64_t arrival_us = 0;
  std::uint64_t dispatch_us = 0;  ///< batch dispatch (0 for rejected)
  std::uint64_t finish_us = 0;
  std::uint32_t batch = 0;        ///< 1-based batch id (0 = never batched)
  /// Host wall-clock service time. NOT serialized by results_json() —
  /// wall time is nondeterministic and lives in the report's timing and
  /// telemetry sections only.
  double wall_service_ms = 0.0;

  [[nodiscard]] std::uint64_t latency_us() const {
    return finish_us >= arrival_us ? finish_us - arrival_us : 0;
  }
};

/// The deterministic subset of a response: identity, status, digest,
/// iteration count and virtual-clock times — everything except wall
/// clock. This is what the run report's "results" section carries, so
/// the section is byte-identical for any --serve-threads value.
[[nodiscard]] Json results_json(const QueryResponse& r);

/// Full wire form: results_json() plus wall_service_ms (what cosparsed
/// --responses-out emits; not byte-stable across hosts by design).
[[nodiscard]] Json wire_json(const QueryResponse& r);

}  // namespace cosparse::serve
