#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <map>

#include "common/error.h"
#include "sparse/datasets.h"
#include "sparse/formats.h"

namespace cosparse::serve {

namespace {

constexpr std::size_t kNoBatch = std::numeric_limits<std::size_t>::max();

std::uint64_t scaled_vertices(const sparse::DatasetSpec& spec,
                              unsigned scale) {
  const std::uint64_t v = spec.vertices / scale;
  return v == 0 ? 1 : v;
}

std::uint64_t scaled_edges(const sparse::DatasetSpec& spec, unsigned scale) {
  const std::uint64_t e = spec.edges / scale;
  return e == 0 ? 1 : e;
}

bool known_dataset(const std::string& name) {
  for (const sparse::DatasetSpec& spec : sparse::DatasetRegistry::specs())
    if (spec.name == name) return true;
  return false;
}

}  // namespace

std::uint64_t CostModel::bytes(const std::string& dataset) const {
  const sparse::DatasetSpec& spec = sparse::DatasetRegistry::spec(dataset);
  return scaled_edges(spec, scale) * sizeof(sparse::Triplet) +
         scaled_vertices(spec, scale) * sizeof(Index);
}

std::uint64_t CostModel::load_us(const std::string& dataset) const {
  const sparse::DatasetSpec& spec = sparse::DatasetRegistry::spec(dataset);
  return 100 + scaled_edges(spec, scale) / 64;
}

std::uint64_t CostModel::service_us(const std::string& dataset,
                                    Algo algo) const {
  const sparse::DatasetSpec& spec = sparse::DatasetRegistry::spec(dataset);
  const std::uint64_t e = scaled_edges(spec, scale);
  // Relative magnitudes follow the iteration structure of each workload:
  // BFS touches each edge a handful of times frontier-by-frontier, SSSP
  // iterates until distances settle, PageRank sweeps all edges for ~20
  // dense rounds, CF adds the factor-update passes on top.
  switch (algo) {
    case Algo::kBfs:
      return 20 + e / 256;
    case Algo::kSssp:
      return 30 + e / 128;
    case Algo::kPagerank:
      return 50 + e / 16;
    case Algo::kCf:
      return 80 + e / 8;
  }
  return 20 + e / 256;  // unreachable
}

Json ScheduleStats::to_json() const {
  Json j = Json::object();
  j["admitted"] = admitted;
  j["rejected"] = rejected;
  j["errored"] = errored;
  j["peak_active"] = peak_active;
  j["peak_queue_depth"] = peak_queue_depth;
  j["makespan_us"] = makespan_us;
  j["max_wait_us"] = max_wait_us;
  Json cache = Json::object();
  cache["hits"] = cache_hits;
  cache["misses"] = cache_misses;
  cache["evictions"] = cache_evictions;
  cache["over_budget_loads"] = cache_over_budget;
  j["virtual_cache"] = std::move(cache);
  return j;
}

Schedule build_schedule(const ServeConfig& cfg,
                        const std::vector<QueryRequest>& trace) {
  Schedule out;
  out.responses.resize(trace.size());

  const CostModel cost{cfg.scale};

  // Virtual replica of the MatrixCache: LRU by last dispatch, pinned
  // while a batch over the dataset is running on a virtual worker.
  struct VirtualEntry {
    std::uint64_t bytes = 0;
    std::uint64_t lru_seq = 0;
    std::uint32_t pins = 0;
  };
  std::map<std::string, VirtualEntry> vcache;
  std::uint64_t vcache_bytes = 0;
  std::uint64_t lru_clock = 0;

  struct VirtualWorker {
    std::uint64_t busy_until = 0;
    std::size_t batch = kNoBatch;  ///< index into out.batches
  };
  std::vector<VirtualWorker> workers(cfg.virtual_workers);

  std::vector<std::size_t> ready;  // trace indices in arrival order
  std::uint32_t running_reqs = 0;
  std::size_t next_arrival = 0;
  std::uint64_t now = 0;

  // Seed the identity fields so even rejected/errored responses are
  // self-describing on the wire.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    QueryResponse& resp = out.responses[i];
    resp.id = trace[i].id;
    resp.tenant = trace[i].tenant;
    resp.dataset = trace[i].dataset;
    resp.algo = to_string(trace[i].algo);
    resp.arrival_us = trace[i].arrival_us;
  }

  const auto active = [&] {
    return static_cast<std::uint64_t>(ready.size()) + running_reqs;
  };

  const auto dispatch_batch = [&](std::uint32_t worker_id) {
    // Select requests for this worker. fcfs takes the single oldest
    // waiter; same-dataset-batch lets the oldest waiter pick the dataset
    // and coalesces up to max_batch_size waiters on it (oldest-first, so
    // no dataset can be starved — the head of the queue always wins).
    std::vector<std::size_t> selected;
    if (cfg.scheduler_type == "fcfs") {
      selected.push_back(ready.front());
      ready.erase(ready.begin());
    } else {
      const std::string& dataset = trace[ready.front()].dataset;
      std::vector<std::size_t> remaining;
      remaining.reserve(ready.size());
      for (const std::size_t idx : ready) {
        if (trace[idx].dataset == dataset &&
            selected.size() < cfg.max_batch_size) {
          selected.push_back(idx);
        } else {
          remaining.push_back(idx);
        }
      }
      ready = std::move(remaining);
    }

    const std::string& dataset = trace[selected.front()].dataset;

    // Virtual cache: hit pins the resident entry; miss charges the load
    // cost and evicts LRU unpinned entries to fit (never pinned ones —
    // mirror of MatrixCache::make_room).
    bool miss = false;
    auto it = vcache.find(dataset);
    if (it != vcache.end()) {
      ++out.stats.cache_hits;
      ++it->second.pins;
      it->second.lru_seq = ++lru_clock;
    } else {
      miss = true;
      ++out.stats.cache_misses;
      const std::uint64_t need = cost.bytes(dataset);
      while (vcache_bytes + need > cfg.cache_budget_bytes) {
        auto victim = vcache.end();
        for (auto cand = vcache.begin(); cand != vcache.end(); ++cand) {
          if (cand->second.pins > 0) continue;
          if (victim == vcache.end() ||
              cand->second.lru_seq < victim->second.lru_seq)
            victim = cand;
        }
        if (victim == vcache.end()) break;  // everything pinned
        vcache_bytes -= victim->second.bytes;
        ++out.stats.cache_evictions;
        vcache.erase(victim);
      }
      VirtualEntry entry;
      entry.bytes = need;
      entry.lru_seq = ++lru_clock;
      entry.pins = 1;
      vcache.emplace(dataset, entry);
      vcache_bytes += need;
      if (vcache_bytes > cfg.cache_budget_bytes)
        ++out.stats.cache_over_budget;
    }

    BatchPlan batch;
    batch.id = static_cast<std::uint32_t>(out.batches.size() + 1);
    batch.dataset = dataset;
    batch.request_indices = selected;
    batch.dispatch_us = now;
    batch.worker = worker_id;
    batch.cache_miss = miss;

    // Requests in a batch run back-to-back on the virtual worker; a miss
    // pays the load cost before the first one starts.
    std::uint64_t t = now + (miss ? cost.load_us(dataset) : 0);
    for (const std::size_t idx : selected) {
      t += cost.service_us(dataset, trace[idx].algo);
      QueryResponse& resp = out.responses[idx];
      resp.status = Status::kOk;  // provisional until real execution
      resp.dispatch_us = now;
      resp.finish_us = t;
      resp.batch = batch.id;
      const std::uint64_t wait = now - trace[idx].arrival_us;
      if (wait > out.stats.max_wait_us) out.stats.max_wait_us = wait;
    }
    batch.finish_us = t;
    if (t > out.stats.makespan_us) out.stats.makespan_us = t;

    workers[worker_id].busy_until = t;
    workers[worker_id].batch = out.batches.size();
    running_reqs += static_cast<std::uint32_t>(selected.size());
    out.batches.push_back(std::move(batch));
  };

  while (true) {
    // Next event: the earliest virtual completion or the next arrival.
    std::uint64_t next_completion =
        std::numeric_limits<std::uint64_t>::max();
    for (const VirtualWorker& w : workers)
      if (w.batch != kNoBatch && w.busy_until < next_completion)
        next_completion = w.busy_until;
    const std::uint64_t next_arr =
        next_arrival < trace.size()
            ? trace[next_arrival].arrival_us
            : std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t t = std::min(next_completion, next_arr);
    if (t == std::numeric_limits<std::uint64_t>::max()) break;
    now = t;

    // 1. Completions first (worker id ascending): freed capacity is
    //    visible to admissions and dispatches at the same tick.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      if (workers[w].batch == kNoBatch || workers[w].busy_until != now)
        continue;
      const BatchPlan& done = out.batches[workers[w].batch];
      auto it = vcache.find(done.dataset);
      COSPARSE_CHECK(it != vcache.end() && it->second.pins > 0);
      --it->second.pins;
      running_reqs -=
          static_cast<std::uint32_t>(done.request_indices.size());
      workers[w].batch = kNoBatch;
    }

    // 2. Arrivals (id ascending — the trace is already in that order).
    while (next_arrival < trace.size() &&
           trace[next_arrival].arrival_us == now) {
      const std::size_t i = next_arrival++;
      QueryResponse& resp = out.responses[i];
      if (!known_dataset(trace[i].dataset)) {
        resp.status = Status::kError;
        resp.error = "unknown dataset '" + trace[i].dataset + "'";
        ++out.stats.errored;
      } else if (active() >= cfg.max_active_reqs) {
        resp.status = Status::kRejected;
        resp.error = "admission control: max_active_reqs reached";
        ++out.stats.rejected;
      } else {
        ready.push_back(i);
        ++out.stats.admitted;
      }
    }

    // Peaks are sampled after arrivals, before dispatch drains the queue.
    if (active() > out.stats.peak_active)
      out.stats.peak_active = static_cast<std::uint32_t>(active());
    if (ready.size() > out.stats.peak_queue_depth)
      out.stats.peak_queue_depth = static_cast<std::uint32_t>(ready.size());

    // 3. Dispatch onto free virtual workers (lowest id first).
    for (std::uint32_t w = 0;
         w < static_cast<std::uint32_t>(workers.size()) && !ready.empty();
         ++w) {
      if (workers[w].batch == kNoBatch) dispatch_batch(w);
    }

    QueueSample sample;
    sample.t_us = now;
    sample.waiting = static_cast<std::uint32_t>(ready.size());
    sample.running = running_reqs;
    out.queue_depth.push_back(sample);
  }

  return out;
}

std::uint64_t latency_percentile_us(
    const std::vector<QueryResponse>& responses, double p) {
  std::vector<std::uint64_t> lat;
  lat.reserve(responses.size());
  for (const QueryResponse& r : responses)
    if (r.status == Status::kOk) lat.push_back(r.latency_us());
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  const auto n = static_cast<double>(lat.size());
  auto idx = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  if (idx > 0) --idx;
  if (idx >= lat.size()) idx = lat.size() - 1;
  return lat[idx];
}

Json schedule_json(const Schedule& schedule) {
  Json j = Json::object();
  j["stats"] = schedule.stats.to_json();

  Json lat = Json::object();
  lat["p50_us"] = latency_percentile_us(schedule.responses, 50.0);
  lat["p99_us"] = latency_percentile_us(schedule.responses, 99.0);
  j["virtual_latency"] = std::move(lat);

  Json batches = Json::array();
  for (const BatchPlan& b : schedule.batches) {
    Json bj = Json::object();
    bj["id"] = b.id;
    bj["dataset"] = b.dataset;
    Json ids = Json::array();
    for (const std::size_t idx : b.request_indices)
      ids.push_back(schedule.responses[idx].id);
    bj["request_ids"] = std::move(ids);
    bj["dispatch_us"] = b.dispatch_us;
    bj["finish_us"] = b.finish_us;
    bj["worker"] = b.worker;
    bj["cache_miss"] = b.cache_miss;
    batches.push_back(std::move(bj));
  }
  j["batches"] = std::move(batches);

  // Queue samples are summarized (peaks live in stats); the raw series
  // can be large for soak traces and adds nothing to the byte-compare.
  j["queue_samples"] = static_cast<std::uint64_t>(
      schedule.queue_depth.size());
  return j;
}

}  // namespace cosparse::serve
