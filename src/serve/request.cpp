#include "serve/request.h"

#include <limits>

#include "common/error.h"

namespace cosparse::serve {

namespace {

/// Reads a non-negative integer field into `slot`; reports type errors
/// and negative values through `out`. Returns false when the parse
/// already failed (caller stops).
template <class T>
bool read_uint(const Json& v, const char* field, T& slot,
               ParsedRequest& out) {
  if (v.type() != Json::Type::kInt) {
    out.error = std::string("field '") + field + "' must be an integer";
    out.error_field = field;
    return false;
  }
  const std::int64_t raw = v.as_int();
  if (raw < 0) {
    out.error = std::string("field '") + field + "' must be >= 0";
    out.error_field = field;
    return false;
  }
  const auto wide = static_cast<std::uint64_t>(raw);
  if (wide > static_cast<std::uint64_t>(std::numeric_limits<T>::max())) {
    out.error = std::string("field '") + field + "' is out of range";
    out.error_field = field;
    return false;
  }
  slot = static_cast<T>(wide);
  return true;
}

bool read_string(const Json& v, const char* field, std::string& slot,
                 ParsedRequest& out) {
  if (!v.is_string()) {
    out.error = std::string("field '") + field + "' must be a string";
    out.error_field = field;
    return false;
  }
  slot = v.as_string();
  return true;
}

}  // namespace

const char* to_string(Algo a) {
  switch (a) {
    case Algo::kBfs: return "bfs";
    case Algo::kSssp: return "sssp";
    case Algo::kPagerank: return "pagerank";
    case Algo::kCf: return "cf";
  }
  return "bfs";
}

Algo algo_from_string(std::string_view s) {
  if (s == "bfs") return Algo::kBfs;
  if (s == "sssp") return Algo::kSssp;
  if (s == "pagerank") return Algo::kPagerank;
  if (s == "cf") return Algo::kCf;
  throw Error("unknown algo: '" + std::string(s) +
              "' (expected bfs/sssp/pagerank/cf)");
}

Json to_json(const QueryRequest& r) {
  Json j = Json::object();
  j["id"] = r.id;
  j["arrival_us"] = r.arrival_us;
  j["tenant"] = r.tenant;
  j["dataset"] = r.dataset;
  j["algo"] = to_string(r.algo);
  j["source"] = r.source;
  j["iterations"] = r.iterations;
  j["seed"] = r.seed;
  return j;
}

ParsedRequest parse_request(const Json& doc) {
  ParsedRequest out;
  if (!doc.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }
  QueryRequest req;
  bool saw_dataset = false;
  bool saw_algo = false;
  for (const auto& [key, value] : doc.members()) {
    if (key == "id") {
      if (!read_uint(value, "id", req.id, out)) return out;
    } else if (key == "arrival_us") {
      if (!read_uint(value, "arrival_us", req.arrival_us, out)) return out;
    } else if (key == "tenant") {
      if (!read_string(value, "tenant", req.tenant, out)) return out;
    } else if (key == "dataset") {
      if (!read_string(value, "dataset", req.dataset, out)) return out;
      saw_dataset = true;
    } else if (key == "algo") {
      std::string name;
      if (!read_string(value, "algo", name, out)) return out;
      try {
        req.algo = algo_from_string(name);
      } catch (const Error& e) {
        out.error = e.what();
        out.error_field = "algo";
        return out;
      }
      saw_algo = true;
    } else if (key == "source") {
      if (!read_uint(value, "source", req.source, out)) return out;
    } else if (key == "iterations") {
      if (!read_uint(value, "iterations", req.iterations, out)) return out;
    } else if (key == "seed") {
      if (!read_uint(value, "seed", req.seed, out)) return out;
    } else {
      // Unknown fields are hard errors: silently dropping them would turn
      // a client schema drift into silently-wrong answers.
      out.error = "unknown field '" + key + "'";
      out.error_field = key;
      return out;
    }
  }
  if (!saw_dataset || req.dataset.empty()) {
    out.error = "missing mandatory field 'dataset'";
    out.error_field = "dataset";
    return out;
  }
  if (!saw_algo) {
    out.error = "missing mandatory field 'algo'";
    out.error_field = "algo";
    return out;
  }
  out.request = std::move(req);
  return out;
}

ParsedRequest parse_request_line(std::string_view line) {
  Json doc;
  try {
    doc = Json::parse(line);
  } catch (const Error& e) {
    ParsedRequest out;
    out.error = std::string("bad request JSON: ") + e.what();
    return out;
  }
  return parse_request(doc);
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kError: return "error";
  }
  return "error";
}

Json results_json(const QueryResponse& r) {
  Json j = Json::object();
  j["id"] = r.id;
  j["status"] = to_string(r.status);
  if (!r.error.empty()) j["error"] = r.error;
  if (!r.error_field.empty()) j["error_field"] = r.error_field;
  j["tenant"] = r.tenant;
  j["dataset"] = r.dataset;
  j["algo"] = r.algo;
  if (r.status == Status::kOk) {
    j["digest"] = r.digest;
    j["result_elems"] = r.result_elems;
    j["algo_iterations"] = r.algo_iterations;
  }
  j["arrival_us"] = r.arrival_us;
  j["dispatch_us"] = r.dispatch_us;
  j["finish_us"] = r.finish_us;
  j["latency_us"] = r.latency_us();
  j["batch"] = r.batch;
  return j;
}

Json wire_json(const QueryResponse& r) {
  Json j = results_json(r);
  j["wall_service_ms"] = r.wall_service_ms;
  return j;
}

}  // namespace cosparse::serve
