// Per-iteration kernel-family selection for the native backend.
//
// The calibrated push/pull choice itself is made by the audited
// runtime::DecisionEngine — the same thresholds over the same frontier
// density features in both exec modes, so the decision_audit section of a
// native run is byte-identical to the sim run's and cosparse-lint's
// tree-coverage pass keeps working unchanged. This class maps the audited
// SW decision onto the native kernel family (IP -> row-parallel pull SpMV,
// OP -> column-merge push SpMSpV) and keeps the running tally that the run
// report's "native" section and the engine metrics publish.
#pragma once

#include <cstdint>

#include "common/json.h"

namespace cosparse::native {

enum class KernelKind : std::uint8_t {
  kPull,  ///< dense-frontier CSR-style pull SpMV (IP dataflow)
  kPush,  ///< sparse-frontier CSC-style push SpMSpV (OP dataflow)
};

[[nodiscard]] inline const char* to_string(KernelKind k) {
  return k == KernelKind::kPull ? "pull" : "push";
}

class DecisionEngine {
 public:
  /// `pull_decided` is the audited SW decision (sw == kIP).
  KernelKind select(bool pull_decided) {
    const KernelKind k = pull_decided ? KernelKind::kPull : KernelKind::kPush;
    if (k == KernelKind::kPull) {
      ++pulls_;
    } else {
      ++pushes_;
    }
    return k;
  }

  [[nodiscard]] std::uint64_t pulls() const { return pulls_; }
  [[nodiscard]] std::uint64_t pushes() const { return pushes_; }

  [[nodiscard]] Json to_json() const {
    Json o = Json::object();
    o["pull_iterations"] = pulls_;
    o["push_iterations"] = pushes_;
    return o;
  }

 private:
  std::uint64_t pulls_ = 0;
  std::uint64_t pushes_ = 0;
};

}  // namespace cosparse::native
