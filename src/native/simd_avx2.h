// AVX2 pull-SpMV specialization for the arithmetic semiring (PlainSpmv).
//
// Only the elementwise edge products are vectorized (_mm256_mul_pd over
// 4-element blocks of the COO stream, frontier values fetched by gather);
// the reductions stay scalar, in exactly the templated kernel's order.
// IEEE-754 multiplication is elementwise — a vector lane multiply returns
// the same bits as the scalar multiply of the same operands (the TU is
// compiled with -ffp-contract=off, so no FMA ever fuses a product into an
// add) — and since every add happens on the same values in the same order,
// the result is bit-identical to the scalar kernel (DESIGN.md §14). The
// differential suite and the CI scalar-forced leg both enforce this.
//
// Declared unconditionally; defined only when the build carries the AVX2
// translation unit (COSPARSE_HAVE_AVX2), and called only behind the
// runtime simd_level() dispatch in native/spmv.h.
#pragma once

#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/partition.h"
#include "sim/parallel.h"

namespace cosparse::native {

/// Row-parallel pull SpMV over the nnz-balanced PE partitions; `exec`
/// (optional, not owned) runs PE ranges concurrently — rows are
/// PE-exclusive, so any thread count produces identical bytes.
[[nodiscard]] kernels::IpResult avx2_pull_plain(
    const kernels::IpPartitionedMatrix& A, const kernels::DenseFrontier& x,
    sim::ParallelExecutor* exec);

}  // namespace cosparse::native
