// Runtime SIMD capability detection for the native backend.
//
// The AVX2 pull-SpMV specialization (simd_avx2.cpp) is compiled into its
// own translation unit with -mavx2 whenever the compiler supports the flag
// (COSPARSE_HAVE_AVX2); whether it *runs* is decided here, once, from
// CPUID — so one binary serves both old and new hosts, and CI can force
// the scalar fallback on an AVX2 machine with COSPARSE_NATIVE_SIMD=off to
// prove both paths produce identical bytes.
#pragma once

#include <cstdint>
#include <string>

namespace cosparse::native {

enum class SimdLevel : std::uint8_t {
  kScalar,  ///< portable templated kernels only
  kAvx2,    ///< AVX2 specialization eligible for the arithmetic semiring
};

[[nodiscard]] const char* to_string(SimdLevel level);

/// The level native kernels dispatch on: kAvx2 iff the binary carries the
/// AVX2 translation unit, the CPU reports the feature, and the
/// COSPARSE_NATIVE_SIMD environment variable is not "off"/"scalar"/"0".
/// Detected once (first call) and cached.
[[nodiscard]] SimdLevel simd_level();

/// Human-readable CPU model ("model name" from /proc/cpuinfo, or "unknown")
/// for the honest-machine stamp in bench report "host" sections.
[[nodiscard]] std::string cpu_model_string();

}  // namespace cosparse::native
