// Native (results-only) SpMV entry points — ROADMAP item 4.
//
// Both functions run the *same templated kernel loops* as the simulator,
// instantiated with the charge-free HostMachine/NullAddressMap pair, so
// outputs are bit-identical to sim mode by construction (DESIGN.md §14).
// The pull path additionally dispatches to the AVX2 specialization for the
// arithmetic semiring when the CPU supports it (native/simd.h); the
// specialization is bit-identical too (only elementwise multiplies are
// vectorized; reduction order is untouched).
#pragma once

#include <type_traits>

#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "native/host_machine.h"
#include "native/simd.h"
#include "native/simd_avx2.h"
#include "obs/sampler.h"

namespace cosparse::native {

/// Row-parallel pull SpMV over a dense frontier (IP dataflow). `hw`
/// selects the layout semantics the caller already chose (SCS layouts are
/// vblocked); `exec` (optional, not owned) parallelizes over tiles/PEs.
template <kernels::Semiring S>
kernels::IpResult pull_spmv(const sim::SystemConfig& cfg, sim::HwConfig hw,
                            sim::ParallelExecutor* exec,
                            const kernels::IpPartitionedMatrix& A,
                            const kernels::DenseFrontier& x, const S& sr) {
  const obs::PhaseScope phase("native.kernel.pull");
#ifdef COSPARSE_HAVE_AVX2
  if constexpr (std::is_same_v<S, kernels::PlainSpmv>) {
    if (simd_level() == SimdLevel::kAvx2) return avx2_pull_plain(A, x, exec);
  }
#endif
  HostMachine m(cfg, hw, exec);
  NullAddressMap amap;
  return kernels::run_inner_product(m, amap, A, x, sr);
}

/// Push SpMSpV over a sparse frontier (OP dataflow): per-PE column merge
/// with thread-local accumulators, merged per tile in row order.
template <kernels::Semiring S>
kernels::OpResult push_spmsv(const sim::SystemConfig& cfg, sim::HwConfig hw,
                             sim::ParallelExecutor* exec,
                             const kernels::OpStripedMatrix& A,
                             const sparse::SparseVector& x,
                             const sparse::DenseVector* x_dst_old,
                             const S& sr) {
  const obs::PhaseScope phase("native.kernel.push");
  HostMachine m(cfg, hw, exec);
  NullAddressMap amap;
  return kernels::run_outer_product(m, amap, A, x, x_dst_old, sr);
}

}  // namespace cosparse::native
