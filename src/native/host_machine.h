// A charge-free stand-in for sim::Machine (DESIGN.md §14).
//
// The SpMV kernels are templates over their machine type: handed a
// sim::Machine they are functional *and* timed; handed a HostMachine every
// timing call inlines to nothing and the compiler strips the address
// arithmetic feeding it, leaving exactly the functional loop — same
// operations, same order, same doubles. That shared-source construction is
// the native mode equivalence argument: there is no second kernel
// implementation to drift.
//
// Topology queries answer from the real SystemConfig so partition-shape
// checks and SPM-capacity branches take the same paths as under
// simulation (those branches select between charge calls, which are all
// no-ops here, so they cannot affect results — but taking the same path
// keeps control flow identical, which is what makes the equivalence easy
// to believe and cheap to audit).
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/config.h"
#include "sim/parallel.h"

namespace cosparse::native {

class HostMachine {
 public:
  /// `exec` is optional (nullptr = serial tile loop) and not owned.
  HostMachine(const sim::SystemConfig& cfg, sim::HwConfig hw,
              sim::ParallelExecutor* exec)
      : cfg_(&cfg), hw_(hw), exec_(exec) {}

  [[nodiscard]] const sim::SystemConfig& config() const { return *cfg_; }
  [[nodiscard]] sim::HwConfig hw() const { return hw_; }
  [[nodiscard]] std::uint32_t num_pes() const { return cfg_->num_pes(); }
  [[nodiscard]] std::uint32_t num_tiles() const { return cfg_->num_tiles; }
  [[nodiscard]] std::uint32_t pes_per_tile() const {
    return cfg_->pes_per_tile;
  }
  [[nodiscard]] std::uint32_t tile_of(std::uint32_t pe) const {
    return pe / cfg_->pes_per_tile;
  }

  // ---- timing surface: every charge is a no-op ----
  Addr alloc(std::size_t /*bytes*/, std::string_view /*label*/ = "") {
    return 0;
  }
  void compute(std::uint32_t /*pe*/, double /*cycles*/) {}
  void mem_read(std::uint32_t /*pe*/, Addr /*addr*/, std::uint32_t /*b*/) {}
  void mem_write(std::uint32_t /*pe*/, Addr /*addr*/, std::uint32_t /*b*/) {}
  void spm_read(std::uint32_t /*pe*/, std::uint32_t /*bytes*/) {}
  void spm_write(std::uint32_t /*pe*/, std::uint32_t /*bytes*/) {}
  void spm_fill_tile(std::uint32_t /*tile*/, Addr /*src*/,
                     std::size_t /*bytes*/) {}
  void dma_traffic(std::size_t /*bytes*/, bool /*write*/) {}
  void lcp_emit(std::uint32_t /*pe*/, std::uint32_t /*bytes*/) {}
  void tile_barrier(std::uint32_t /*tile*/) {}
  void global_barrier() {}
  void reconfigure(sim::HwConfig next) { hw_ = next; }

  /// Same capacity answers as the simulated machine under `hw` — the OP
  /// kernel's heap-placement branch and the SCS vblock sizing read these.
  [[nodiscard]] std::size_t spm_bytes_per_tile() const {
    return hw_ == sim::HwConfig::kSCS ? cfg_->scs_spm_bytes_per_tile() : 0;
  }
  [[nodiscard]] std::size_t spm_bytes_per_pe() const {
    return hw_ == sim::HwConfig::kPS ? cfg_->ps_spm_bytes_per_pe() : 0;
  }

  [[nodiscard]] sim::ParallelExecutor* executor() const { return exec_; }

  /// Tile bodies run concurrently when an executor is attached, serially
  /// otherwise. Kernel tile bodies only write tile/PE-exclusive output
  /// slots (the same discipline the tile-parallel simulator enforces), so
  /// results are bit-identical for every thread count.
  template <class Fn>
  void for_tiles(Fn&& fn) {
    if (exec_ != nullptr) {
      exec_->run(cfg_->num_tiles, fn);
    } else {
      for (std::uint32_t t = 0; t < cfg_->num_tiles; ++t) fn(t);
    }
  }

 private:
  const sim::SystemConfig* cfg_;
  sim::HwConfig hw_;
  sim::ParallelExecutor* exec_;
};

/// Address-map stand-in: native kernels charge nothing, so host arrays
/// need no simulated placement. of() keeps the real AddressMap's shape
/// (callers still guard zero-sized regions) but performs no bookkeeping.
class NullAddressMap {
 public:
  Addr of(const void* /*host*/, std::size_t /*bytes*/,
          std::string_view /*label*/) {
    return 0;
  }
};

}  // namespace cosparse::native
