// See simd_avx2.h for the bit-exactness argument. This translation unit is
// compiled with -mavx2 -ffp-contract=off and must never execute on a CPU
// without AVX2 — native/spmv.h guards every call with simd_level().
#include "native/simd_avx2.h"

#include <immintrin.h>

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "kernels/semiring.h"

namespace cosparse::native {

namespace {

// One PE partition's share of the stream, vblock-major — the same element
// order kernels::run_inner_product walks. `y`/`touched` rows are exclusive
// to this PE; returns the count of newly touched rows.
std::size_t pull_partition_avx2(
    const kernels::IpPartitionedMatrix& A, const kernels::DenseFrontier& x,
    const kernels::IpPartitionedMatrix::PePartition& part,
                                sparse::DenseVector& y,
                                std::vector<std::uint8_t>& touched) {
  const kernels::PlainSpmv sr;
  const bool all_active = x.all_active();
  const double* xval = x.values.values().data();
  const Index n_rows = A.rows();
  std::size_t my_touched = 0;

  Index cur_row = n_rows;  // sentinel: no open row
  Value acc = sr.reduce_identity();
  bool acc_open = false;

  const auto flush_row = [&] {
    if (!acc_open) return;
    y[cur_row] = sr.reduce(y[cur_row], acc);
    if (!touched[cur_row]) {
      touched[cur_row] = 1;
      ++my_touched;
    }
    acc = sr.reduce_identity();
    acc_open = false;
  };

  // Accumulates the already-formed product of element `k` (row-change
  // flush + activity gate + ordered scalar add, identical to the scalar
  // kernel's per-element tail).
  const auto accumulate = [&](Offset k, Value prod) {
    const auto& e = A.elems()[k];
    if (e.row != cur_row) {
      flush_row();
      cur_row = e.row;
    }
    if (!all_active && x.active[e.col] == 0) return;
    acc = sr.reduce(acc, prod);
    acc_open = true;
  };

  for (std::uint32_t vb = 0; vb < A.num_vblocks(); ++vb) {
    auto [k, k_end] = part.vblocks[vb];
    cur_row = n_rows;
    acc = sr.reduce_identity();
    acc_open = false;

    // 4-wide blocks: SIMD multiply, scalar ordered accumulation.
    for (; k + 4 <= k_end; k += 4) {
      const auto* e = &A.elems()[k];
      const __m256d a = _mm256_setr_pd(e[0].value, e[1].value, e[2].value,
                                       e[3].value);
      const __m128i cols =
          _mm_setr_epi32(static_cast<int>(e[0].col), static_cast<int>(e[1].col),
                         static_cast<int>(e[2].col),
                         static_cast<int>(e[3].col));
      const __m256d xv = _mm256_i32gather_pd(xval, cols, 8);
      alignas(32) double prod[4];
      _mm256_store_pd(prod, _mm256_mul_pd(a, xv));
      for (int j = 0; j < 4; ++j) {
        accumulate(k + static_cast<Offset>(j), prod[j]);
      }
    }
    // Tail (< 4 elements): scalar multiply — same IEEE operation.
    for (; k < k_end; ++k) {
      const auto& e = A.elems()[k];
      accumulate(k, sr.edge(e.value, xval[e.col], 0));
    }
    flush_row();
  }
  return my_touched;
}

}  // namespace

kernels::IpResult avx2_pull_plain(const kernels::IpPartitionedMatrix& A,
                                  const kernels::DenseFrontier& x,
                                  sim::ParallelExecutor* exec) {
  COSPARSE_CHECK_MSG(A.cols() == x.dimension(),
                     "IP: matrix/vector dimension mismatch");
  const kernels::PlainSpmv sr;
  kernels::IpResult out;
  out.y = sparse::DenseVector(A.rows(), sr.reduce_identity());
  out.touched.assign(A.rows(), 0);

  const auto& parts = A.partitions();
  const auto pes = static_cast<std::uint32_t>(parts.size());
  std::vector<std::size_t> pe_touched(pes, 0);
  const auto body = [&](std::uint32_t pe) {
    pe_touched[pe] = pull_partition_avx2(A, x, parts[pe], out.y, out.touched);
  };
  if (exec != nullptr) {
    exec->run(pes, body);
  } else {
    for (std::uint32_t pe = 0; pe < pes; ++pe) body(pe);
  }
  for (const std::size_t t : pe_touched) out.num_touched += t;
  return out;
}

}  // namespace cosparse::native
