// Engine execution modes (ROADMAP item 4: fast functional mode).
//
// `kSim` runs every kernel through the cycle-accurate tile simulator;
// `kNative` runs the same kernel loops as plain host code — no event logs,
// no cache model, no cycle accounting — at native speed. The two modes are
// results-equivalent by construction (DESIGN.md §14): the native backend
// executes the *same* templated kernels with a no-op machine, so every
// floating-point operation happens in the same order on the same values.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>

#include "common/error.h"

namespace cosparse::native {

enum class ExecMode : std::uint8_t {
  kSim,     ///< cycle-accurate simulation (the default)
  kNative,  ///< results-only host execution
};

[[nodiscard]] inline const char* to_string(ExecMode m) {
  return m == ExecMode::kNative ? "native" : "sim";
}

/// Parses "sim"/"native" (exact); throws cosparse::Error on other input.
[[nodiscard]] inline ExecMode exec_mode_from_string(const std::string& name) {
  if (name == "sim") return ExecMode::kSim;
  if (name == "native") return ExecMode::kNative;
  throw Error("unknown exec mode: '" + name + "' (expected sim|native)");
}

/// CLI/environment resolution used by every bench/example: an explicit
/// --exec-mode value wins; otherwise COSPARSE_EXEC_MODE; otherwise sim.
/// Unset/empty environment means sim; a malformed value throws (a typo'd
/// mode silently simulating for hours is the failure this rejects).
[[nodiscard]] inline ExecMode resolve_exec_mode(
    const std::optional<std::string>& cli_value) {
  if (cli_value.has_value()) return exec_mode_from_string(*cli_value);
  // NOLINTNEXTLINE(concurrency-mt-unsafe): resolved once at startup.
  const char* env = std::getenv("COSPARSE_EXEC_MODE");
  if (env == nullptr || *env == '\0') return ExecMode::kSim;
  return exec_mode_from_string(env);
}

}  // namespace cosparse::native
