#include "native/simd.h"

#include <cstdlib>
#include <fstream>
#include <string>

namespace cosparse::native {

const char* to_string(SimdLevel level) {
  return level == SimdLevel::kAvx2 ? "avx2" : "scalar";
}

namespace {

bool simd_disabled_by_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at first dispatch.
  const char* env = std::getenv("COSPARSE_NATIVE_SIMD");
  if (env == nullptr) return false;
  const std::string v(env);
  return v == "off" || v == "scalar" || v == "0";
}

SimdLevel detect() {
#ifdef COSPARSE_HAVE_AVX2
  if (!simd_disabled_by_env() && __builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel simd_level() {
  static const SimdLevel level = detect();
  return level;
}

std::string cpu_model_string() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto key_end = line.find(':');
    if (key_end == std::string::npos) continue;
    if (line.compare(0, 10, "model name") != 0) continue;
    std::size_t v = key_end + 1;
    while (v < line.size() && (line[v] == ' ' || line[v] == '\t')) ++v;
    if (v < line.size()) return line.substr(v);
  }
  return "unknown";
}

}  // namespace cosparse::native
