// Host thread pool for tile-parallel simulation (sim::Machine::for_tiles).
//
// The executor is deliberately dumb: run(count, fn) hands the indices
// [0, count) to a fixed pool of worker threads and blocks until every task
// finished. Determinism is the Machine's job — tile phases log their
// events and the machine replays the logs serially in ascending tile-ID
// order (DESIGN.md §11) — so the executor only provides raw concurrency,
// and any thread count, including 1, produces bit-identical simulation
// results.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cosparse::sim {

class ParallelExecutor {
 public:
  /// Spawns exactly `threads` workers (at least 1). The calling thread
  /// never executes tasks itself, so threads == 1 still exercises the full
  /// cross-thread dispatch path (useful for tests and TSan).
  explicit ParallelExecutor(std::uint32_t threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] std::uint32_t num_threads() const {
    return static_cast<std::uint32_t>(threads_.size());
  }

  /// Runs fn(i) for every i in [0, count) across the pool and waits for
  /// completion. Not reentrant. The first exception a task throws is
  /// rethrown here (remaining tasks still drain).
  void run(std::uint32_t count, const std::function<void(std::uint32_t)>& fn);

  /// COSPARSE_SIM_THREADS resolution: the parsed value clamped to
  /// [0, 256], or 0 when the variable is unset/empty/non-numeric
  /// (0 means "simulate serially").
  [[nodiscard]] static std::uint32_t threads_from_env();

 private:
  void worker();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint32_t)>* job_ = nullptr;
  std::uint32_t next_ = 0;
  std::uint32_t count_ = 0;
  std::uint32_t pending_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cosparse::sim
