#include "sim/profile.h"

#include <algorithm>
#include <limits>

#include "common/log.h"

namespace cosparse::sim {

namespace {

constexpr std::uint64_t kClosedRow = std::numeric_limits<std::uint64_t>::max();
constexpr std::size_t kReuseBuckets = 40;  ///< 2^40 demand accesses is ample

constexpr const char* kUnlabeled = "unlabeled";

}  // namespace

RegionCounters& RegionCounters::operator+=(const RegionCounters& o) {
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  spm_accesses += o.spm_accesses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  prefetch_lines += o.prefetch_lines;
  writeback_lines += o.writeback_lines;
  xbar_transfers += o.xbar_transfers;
  flushed_dirty_lines += o.flushed_dirty_lines;
  l1_evictions += o.l1_evictions;
  l2_evictions += o.l2_evictions;
  dram_row_hits += o.dram_row_hits;
  dram_row_misses += o.dram_row_misses;
  xbar_stall_cycles += o.xbar_stall_cycles;
  return *this;
}

void RegionCounters::for_each_counter(
    const std::function<void(std::string_view, double)>& fn) const {
  fn("l1_hits", static_cast<double>(l1_hits));
  fn("l1_misses", static_cast<double>(l1_misses));
  fn("spm_accesses", static_cast<double>(spm_accesses));
  fn("l2_hits", static_cast<double>(l2_hits));
  fn("l2_misses", static_cast<double>(l2_misses));
  fn("dram_read_bytes", static_cast<double>(dram_read_bytes));
  fn("dram_write_bytes", static_cast<double>(dram_write_bytes));
  fn("prefetch_lines", static_cast<double>(prefetch_lines));
  fn("writeback_lines", static_cast<double>(writeback_lines));
  fn("xbar_transfers", static_cast<double>(xbar_transfers));
  fn("flushed_dirty_lines", static_cast<double>(flushed_dirty_lines));
  fn("l1_evictions", static_cast<double>(l1_evictions));
  fn("l2_evictions", static_cast<double>(l2_evictions));
  fn("dram_row_hits", static_cast<double>(dram_row_hits));
  fn("dram_row_misses", static_cast<double>(dram_row_misses));
  fn("xbar_stall_cycles", xbar_stall_cycles);
}

Json RegionCounters::to_json() const {
  Json o = Json::object();
  o["l1_hits"] = l1_hits;
  o["l1_misses"] = l1_misses;
  o["spm_accesses"] = spm_accesses;
  o["l2_hits"] = l2_hits;
  o["l2_misses"] = l2_misses;
  o["dram_read_bytes"] = dram_read_bytes;
  o["dram_write_bytes"] = dram_write_bytes;
  o["prefetch_lines"] = prefetch_lines;
  o["writeback_lines"] = writeback_lines;
  o["xbar_transfers"] = xbar_transfers;
  o["flushed_dirty_lines"] = flushed_dirty_lines;
  o["l1_evictions"] = l1_evictions;
  o["l2_evictions"] = l2_evictions;
  o["dram_row_hits"] = dram_row_hits;
  o["dram_row_misses"] = dram_row_misses;
  o["xbar_stall_cycles"] = xbar_stall_cycles;
  return o;
}

MemProfiler::MemProfiler(std::uint32_t sample_period)
    : sample_period_(std::max(1u, sample_period)) {}

void MemProfiler::begin_machine(std::uint32_t num_tiles,
                                std::uint32_t line_bytes,
                                std::uint32_t dram_channels) {
  num_tiles_ = std::max(1u, num_tiles);
  line_bytes_ = std::max(1u, line_bytes);
  dram_channels_ = std::max(1u, dram_channels);
  ranges_.clear();
  open_row_.assign(dram_channels_, kClosedRow);
  last_use_.clear();
  // Existing regions keep their counters but must cover the new tile
  // count; a region never shrinks.
  for (Region& r : regions_) {
    if (r.per_tile.size() < num_tiles_) r.per_tile.resize(num_tiles_);
  }
}

std::uint32_t MemProfiler::bucket_of(std::string_view label) {
  const std::string key(label.empty() ? std::string_view(kUnlabeled) : label);
  const auto it = by_label_.find(key);
  if (it != by_label_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(regions_.size());
  Region r;
  r.label = key;
  r.per_tile.resize(num_tiles_);
  r.reuse_buckets.assign(kReuseBuckets, 0);
  regions_.push_back(std::move(r));
  by_label_.emplace(key, id);
  return id;
}

void MemProfiler::add_region(Addr base, std::size_t bytes,
                             std::string_view label) {
  if (label.empty() && !warned_unlabeled_) {
    warned_unlabeled_ = true;
    log::debug("unlabeled simulated allocation; profiler attributes it to "
               "the \"unlabeled\" region",
               log::kv("base", base), log::kv("bytes", bytes));
  }
  const std::uint32_t id = bucket_of(label);
  // Machine::alloc hands out monotonically increasing bases, so appending
  // keeps ranges_ sorted; tolerate out-of-order registration anyway.
  Range r{base, base + bytes, id};
  const auto pos = std::upper_bound(
      ranges_.begin(), ranges_.end(), r,
      [](const Range& a, const Range& b) { return a.base < b.base; });
  ranges_.insert(pos, r);
}

std::uint32_t MemProfiler::resolve(Addr addr) {
  // Last range with base <= addr.
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), addr,
      [](Addr a, const Range& r) { return a < r.base; });
  if (it != ranges_.begin()) {
    --it;
    if (addr < it->end) return it->region;
  }
  return bucket_of(kUnlabeled);
}

RegionCounters& MemProfiler::counters(std::uint32_t region,
                                      std::uint32_t tile) {
  return regions_[region].per_tile[std::min(tile, num_tiles_ - 1)];
}

void MemProfiler::l1_access(std::uint32_t tile, Addr addr, bool hit) {
  RegionCounters& c = counters(resolve(addr), tile);
  if (hit) {
    ++c.l1_hits;
  } else {
    ++c.l1_misses;
  }
}

void MemProfiler::l2_access(std::uint32_t tile, Addr addr, bool hit) {
  RegionCounters& c = counters(resolve(addr), tile);
  if (hit) {
    ++c.l2_hits;
  } else {
    ++c.l2_misses;
  }
}

void MemProfiler::l1_writeback(std::uint32_t tile, Addr addr) {
  RegionCounters& c = counters(resolve(addr), tile);
  ++c.writeback_lines;
  ++c.l1_evictions;
}

void MemProfiler::l2_writeback(std::uint32_t tile, Addr addr) {
  RegionCounters& c = counters(resolve(addr), tile);
  ++c.writeback_lines;
  ++c.l2_evictions;
}

void MemProfiler::prefetch_line(std::uint32_t tile, Addr addr) {
  ++counters(resolve(addr), tile).prefetch_lines;
}

void MemProfiler::xbar_transfer(std::uint32_t tile, Addr addr,
                                double arb_cycles) {
  RegionCounters& c = counters(resolve(addr), tile);
  ++c.xbar_transfers;
  c.xbar_stall_cycles += arb_cycles;
}

void MemProfiler::spm_access(std::uint32_t tile) {
  ++counters(bucket_of("spm"), tile).spm_accesses;
}

void MemProfiler::dram(std::uint32_t tile, Addr addr, std::uint64_t bytes,
                       bool write) {
  RegionCounters& c = counters(resolve(addr), tile);
  if (write) {
    c.dram_write_bytes += bytes;
  } else {
    c.dram_read_bytes += bytes;
  }
  // Row-buffer model: lines interleave round-robin across pseudo-channels;
  // a channel's consecutive lines fill kRowBytes rows.
  const std::uint64_t line = addr / line_bytes_;
  const auto channel = static_cast<std::size_t>(line % dram_channels_);
  const std::uint64_t lines_per_row = std::max<std::uint64_t>(
      1, kRowBytes / line_bytes_);
  const std::uint64_t row = line / dram_channels_ / lines_per_row;
  if (open_row_[channel] == row) {
    ++c.dram_row_hits;
  } else {
    ++c.dram_row_misses;
    open_row_[channel] = row;
  }
}

void MemProfiler::dram_bulk(std::uint32_t tile, std::uint64_t bytes,
                            bool write, std::string_view bucket) {
  RegionCounters& c = counters(bucket_of(bucket), tile);
  if (write) {
    c.dram_write_bytes += bytes;
  } else {
    c.dram_read_bytes += bytes;
  }
}

void MemProfiler::flushed_line(std::uint32_t tile, Addr addr) {
  ++counters(resolve(addr), tile).flushed_dirty_lines;
  dram(tile, addr, line_bytes_, /*write=*/true);
}

void MemProfiler::reuse_sample(Addr addr) {
  const std::uint64_t tick = ++demand_tick_;
  const std::uint64_t line = addr / line_bytes_;
  if (line % sample_period_ != 0) return;
  const std::uint32_t region = resolve(addr);
  const auto it = last_use_.find(line);
  if (it != last_use_.end()) {
    const std::uint64_t distance = tick - it->second;
    std::size_t bucket = 0;
    while ((1ull << (bucket + 1)) <= distance && bucket + 1 < kReuseBuckets) {
      ++bucket;
    }
    Region& r = regions_[region];
    ++r.reuse_buckets[bucket];
    ++r.reuse_samples;
    it->second = tick;
  } else {
    last_use_.emplace(line, tick);
  }
}

RegionCounters MemProfiler::Region::total() const {
  RegionCounters t;
  for (const RegionCounters& c : per_tile) t += c;
  return t;
}

std::vector<const MemProfiler::Region*> MemProfiler::regions() const {
  std::vector<const Region*> out;
  out.reserve(regions_.size());
  for (const Region& r : regions_) out.push_back(&r);
  std::sort(out.begin(), out.end(),
            [](const Region* a, const Region* b) { return a->label < b->label; });
  return out;
}

const MemProfiler::Region* MemProfiler::find_region(
    std::string_view label) const {
  const auto it = by_label_.find(std::string(label));
  return it == by_label_.end() ? nullptr : &regions_[it->second];
}

RegionCounters MemProfiler::total() const {
  RegionCounters t;
  for (const Region& r : regions_) t += r.total();
  return t;
}

Json MemProfiler::to_json() const {
  Json doc = Json::object();
  doc["sample_period"] = sample_period_;
  doc["row_bytes"] = kRowBytes;
  Json regions = Json::object();
  for (const Region* r : this->regions()) {
    Json entry = Json::object();
    entry["counters"] = r->total().to_json();
    Json tiles = Json::array();
    for (const RegionCounters& c : r->per_tile) tiles.push_back(c.to_json());
    entry["per_tile"] = std::move(tiles);
    // Trim trailing empty buckets so small runs stay compact.
    std::size_t top = r->reuse_buckets.size();
    while (top > 0 && r->reuse_buckets[top - 1] == 0) --top;
    Json reuse = Json::object();
    reuse["samples"] = r->reuse_samples;
    Json bounds = Json::array();
    Json counts = Json::array();
    for (std::size_t b = 0; b < top; ++b) {
      bounds.push_back(std::uint64_t{1} << b);
      counts.push_back(r->reuse_buckets[b]);
    }
    reuse["bucket_lower_bounds"] = std::move(bounds);
    reuse["counts"] = std::move(counts);
    entry["reuse_distance"] = std::move(reuse);
    regions[r->label] = std::move(entry);
  }
  doc["regions"] = std::move(regions);
  doc["totals"] = total().to_json();
  return doc;
}

}  // namespace cosparse::sim
