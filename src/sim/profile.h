// Region-attributed memory-system profiler.
//
// A MemProfiler attaches to a sim::Machine (Machine::set_profiler) and
// attributes every memory-hierarchy event — L1/L2 hits, misses and dirty
// evictions, prefetch and writeback line movement, crossbar transfers with
// their arbitration stall share, DRAM traffic with a row-buffer hit/miss
// model — to the labeled allocation region the access touched (labels flow
// from Machine::alloc via kernels::AddressMap: "matrix.elems",
// "vector.dense", ...). Counters are kept per (region, tile); events with
// no simulated address land in synthetic regions ("spm", "dma",
// "lcp.writeback"), and allocations with an empty label in "unlabeled"
// (reported via a debug log line once, see satellite note in ISSUE/DESIGN).
//
// Invariant (asserted by tests/sim/test_profile.cpp and the check_report
// validator): for every counter name shared with sim::Stats, the sum over
// all regions and tiles equals the global Stats value bit-exactly — the
// profiler observes the exact same increments Machine applies to Stats,
// just keyed by region.
//
// Each region additionally carries a *sampled reuse-distance histogram*:
// every (sample_period)-th cache line of the region is tracked, and on
// every demand access to a tracked line the distance since its previous
// use — measured in demand accesses, a time-distance approximation of
// stack reuse distance — is recorded into log2 buckets. Detached profiling
// (the default) costs one pointer test per event site.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/json.h"
#include "common/types.h"

namespace cosparse::sim {

struct Stats;

/// Counters accumulated per (region, tile). The first group mirrors
/// sim::Stats counter names one-to-one (same increment sites, so region
/// sums reproduce the global Stats); the second group is profiler-only
/// detail with no Stats counterpart.
struct RegionCounters {
  // ---- mirrored in sim::Stats (summable to the global counters) ----
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t spm_accesses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  std::uint64_t prefetch_lines = 0;
  std::uint64_t writeback_lines = 0;
  std::uint64_t xbar_transfers = 0;
  std::uint64_t flushed_dirty_lines = 0;

  // ---- profiler-only detail ----
  std::uint64_t l1_evictions = 0;  ///< dirty lines evicted from L1
  std::uint64_t l2_evictions = 0;  ///< dirty lines evicted from L2
  std::uint64_t dram_row_hits = 0;
  std::uint64_t dram_row_misses = 0;
  double xbar_stall_cycles = 0.0;  ///< arbitration share of xbar traversals

  RegionCounters& operator+=(const RegionCounters& o);

  /// Visits every counter as (name, value-as-double); mirrored counters
  /// first, under exactly their sim::Stats names.
  void for_each_counter(
      const std::function<void(std::string_view, double)>& fn) const;

  /// Ordered JSON object; integer counters stay exact.
  [[nodiscard]] Json to_json() const;
};

class MemProfiler {
 public:
  /// `sample_period`: every N-th cache line of a region is reuse-tracked
  /// (1 = every line; larger values bound tracking memory on big arrays).
  explicit MemProfiler(std::uint32_t sample_period = 64);

  // ---- wiring (called by sim::Machine) ----
  /// (Re)binds the profiler to a machine: drops the address-range index of
  /// any previous machine (simulated address spaces restart at zero, so
  /// stale ranges would shadow new ones) while *keeping* all per-label
  /// counters, so sequential machines profiled by one MemProfiler
  /// accumulate by region label. One profiler observes one machine at a
  /// time.
  void begin_machine(std::uint32_t num_tiles, std::uint32_t line_bytes,
                     std::uint32_t dram_channels);
  /// Registers a line-aligned allocation; empty labels bucket into
  /// "unlabeled".
  void add_region(Addr base, std::size_t bytes, std::string_view label);

  // ---- events (called by sim::Machine when attached) ----
  void l1_access(std::uint32_t tile, Addr addr, bool hit);
  void l2_access(std::uint32_t tile, Addr addr, bool hit);
  /// Dirty line evicted from L1 (drains into L2).
  void l1_writeback(std::uint32_t tile, Addr addr);
  /// Dirty line evicted from L2 (drains into DRAM).
  void l2_writeback(std::uint32_t tile, Addr addr);
  /// A line moved by a prefetcher (either level; mirrors prefetch_lines).
  void prefetch_line(std::uint32_t tile, Addr addr);
  /// One crossbar traversal; `arb_cycles` is the expected arbitration
  /// serialization charged on top of the 1-cycle hop.
  void xbar_transfer(std::uint32_t tile, Addr addr, double arb_cycles);
  void spm_access(std::uint32_t tile);
  /// DRAM transfer with a known simulated address: attributed to the
  /// address's region and run through the row-buffer model.
  void dram(std::uint32_t tile, Addr addr, std::uint64_t bytes, bool write);
  /// Address-less DRAM transfer (bulk DMA, LCP writeback): attributed to
  /// the named synthetic region; the row-buffer model is skipped.
  void dram_bulk(std::uint32_t tile, std::uint64_t bytes, bool write,
                 std::string_view bucket);
  /// One dirty line written back by a reconfiguration flush: bumps
  /// flushed_dirty_lines *and* dram_write_bytes (the flush drain moves the
  /// line to DRAM; Machine routes the aggregate Stats bytes separately).
  void flushed_line(std::uint32_t tile, Addr addr);
  /// One PE demand access (any configuration): feeds the sampled
  /// reuse-distance histogram of the address's region.
  void reuse_sample(Addr addr);

  // ---- results ----
  struct Region {
    std::string label;
    std::vector<RegionCounters> per_tile;
    /// log2-bucketed reuse distances: bucket b counts distances in
    /// [2^b, 2^(b+1)); measured in demand accesses between uses of the
    /// same sampled line.
    std::vector<std::uint64_t> reuse_buckets;
    std::uint64_t reuse_samples = 0;

    [[nodiscard]] RegionCounters total() const;
  };

  /// All regions with any attributed activity, sorted by label.
  [[nodiscard]] std::vector<const Region*> regions() const;
  [[nodiscard]] const Region* find_region(std::string_view label) const;
  /// Element-wise sum over every region and tile; the mirrored fields
  /// reproduce the global sim::Stats of the observed activity bit-exactly.
  [[nodiscard]] RegionCounters total() const;
  [[nodiscard]] std::uint32_t sample_period() const { return sample_period_; }

  /// The "memory_profile" run-report section: sample parameters plus, per
  /// region (label-sorted), summed counters, the per-tile breakdown and
  /// the reuse histogram. Deterministic member order.
  [[nodiscard]] Json to_json() const;

 private:
  struct Range {
    Addr base = 0;
    Addr end = 0;
    std::uint32_t region = 0;
  };

  std::uint32_t bucket_of(std::string_view label);
  std::uint32_t resolve(Addr addr);
  RegionCounters& counters(std::uint32_t region, std::uint32_t tile);

  std::uint32_t sample_period_;
  std::uint32_t num_tiles_ = 1;
  std::uint32_t line_bytes_ = kCacheLineBytes;
  std::uint32_t dram_channels_ = 16;

  std::vector<Range> ranges_;  ///< sorted by base (allocs are monotonic)
  std::vector<Region> regions_;
  std::unordered_map<std::string, std::uint32_t> by_label_;
  bool warned_unlabeled_ = false;

  // Row-buffer state: last open row per pseudo-channel. Lines interleave
  // across channels; a channel's consecutive lines fill 2 kB rows.
  static constexpr std::uint64_t kRowBytes = 2048;
  std::vector<std::uint64_t> open_row_;  ///< per channel; ~0 = closed

  // Reuse tracking: per sampled line, the demand-access tick of its last
  // use (keyed by line index, valid for the current machine's ranges).
  std::uint64_t demand_tick_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> last_use_;
};

}  // namespace cosparse::sim
