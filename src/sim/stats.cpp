#include "sim/stats.h"

#include <ostream>

namespace cosparse::sim {
namespace {

/// The canonical field list. Every name-dependent view of Stats
/// (operator+=, operator-, print, to_json, for_each_counter) is derived
/// from this single visitation, so counter naming cannot drift between
/// text tables, JSON reports and traces.
template <class A, class B, class Fn>
void visit_fields(A& a, B& b, Fn&& fn) {
  fn("pe_compute_cycles", a.pe_compute_cycles, b.pe_compute_cycles);
  fn("pe_mem_stall_cycles", a.pe_mem_stall_cycles, b.pe_mem_stall_cycles);
  fn("l1_hits", a.l1_hits, b.l1_hits);
  fn("l1_misses", a.l1_misses, b.l1_misses);
  fn("spm_accesses", a.spm_accesses, b.spm_accesses);
  fn("l2_hits", a.l2_hits, b.l2_hits);
  fn("l2_misses", a.l2_misses, b.l2_misses);
  fn("dram_read_bytes", a.dram_read_bytes, b.dram_read_bytes);
  fn("dram_write_bytes", a.dram_write_bytes, b.dram_write_bytes);
  fn("prefetch_lines", a.prefetch_lines, b.prefetch_lines);
  fn("writeback_lines", a.writeback_lines, b.writeback_lines);
  fn("xbar_transfers", a.xbar_transfers, b.xbar_transfers);
  fn("lcp_elements", a.lcp_elements, b.lcp_elements);
  fn("barriers", a.barriers, b.barriers);
  fn("reconfigurations", a.reconfigurations, b.reconfigurations);
  fn("flushed_dirty_lines", a.flushed_dirty_lines, b.flushed_dirty_lines);
}

}  // namespace

Stats& Stats::operator+=(const Stats& o) {
  visit_fields(*this, o, [](std::string_view, auto& a, const auto& b) {
    a += b;
  });
  return *this;
}

Stats operator-(Stats a, const Stats& b) {
  visit_fields(a, b, [](std::string_view, auto& x, const auto& y) {
    x -= y;
  });
  return a;
}

void Stats::for_each_counter(
    const std::function<void(std::string_view, double)>& fn) const {
  visit_fields(*this, *this,
               [&](std::string_view name, const auto& v, const auto&) {
                 fn(name, static_cast<double>(v));
               });
}

Json Stats::to_json() const {
  Json o = Json::object();
  visit_fields(*this, *this,
               [&](std::string_view name, const auto& v, const auto&) {
                 o[name] = v;
               });
  return o;
}

Json Stats::derived_json() const {
  Json o = Json::object();
  o["l1_hit_rate"] = l1_hit_rate();
  o["l2_hit_rate"] = l2_hit_rate();
  o["dram_bytes"] = dram_bytes();
  return o;
}

void Stats::print(std::ostream& os) const {
  // One `name = value` line per raw counter (canonical names), then the
  // derived hit-rate/traffic summary the benches quote.
  visit_fields(*this, *this,
               [&](std::string_view name, const auto& v, const auto&) {
                 os << name << " = " << v << "\n";
               });
  os << "L1 hit rate " << l1_hit_rate() * 100.0 << "%, L2 hit rate "
     << l2_hit_rate() * 100.0 << "%, DRAM " << dram_bytes()
     << " B total\n";
}

}  // namespace cosparse::sim
