#include "sim/stats.h"

#include <ostream>

namespace cosparse::sim {

Stats& Stats::operator+=(const Stats& o) {
  pe_compute_cycles += o.pe_compute_cycles;
  pe_mem_stall_cycles += o.pe_mem_stall_cycles;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  spm_accesses += o.spm_accesses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  dram_read_bytes += o.dram_read_bytes;
  dram_write_bytes += o.dram_write_bytes;
  prefetch_lines += o.prefetch_lines;
  writeback_lines += o.writeback_lines;
  xbar_transfers += o.xbar_transfers;
  lcp_elements += o.lcp_elements;
  barriers += o.barriers;
  reconfigurations += o.reconfigurations;
  flushed_dirty_lines += o.flushed_dirty_lines;
  return *this;
}

Stats operator-(Stats a, const Stats& b) {
  a.pe_compute_cycles -= b.pe_compute_cycles;
  a.pe_mem_stall_cycles -= b.pe_mem_stall_cycles;
  a.l1_hits -= b.l1_hits;
  a.l1_misses -= b.l1_misses;
  a.spm_accesses -= b.spm_accesses;
  a.l2_hits -= b.l2_hits;
  a.l2_misses -= b.l2_misses;
  a.dram_read_bytes -= b.dram_read_bytes;
  a.dram_write_bytes -= b.dram_write_bytes;
  a.prefetch_lines -= b.prefetch_lines;
  a.writeback_lines -= b.writeback_lines;
  a.xbar_transfers -= b.xbar_transfers;
  a.lcp_elements -= b.lcp_elements;
  a.barriers -= b.barriers;
  a.reconfigurations -= b.reconfigurations;
  a.flushed_dirty_lines -= b.flushed_dirty_lines;
  return a;
}

void Stats::print(std::ostream& os) const {
  os << "L1: " << l1_hits << " hits / " << l1_misses << " misses ("
     << l1_hit_rate() * 100.0 << "% hit)\n"
     << "SPM accesses: " << spm_accesses << "\n"
     << "L2: " << l2_hits << " hits / " << l2_misses << " misses ("
     << l2_hit_rate() * 100.0 << "% hit)\n"
     << "DRAM: " << dram_read_bytes << " B read, " << dram_write_bytes
     << " B written\n"
     << "prefetched lines: " << prefetch_lines
     << ", writebacks: " << writeback_lines << "\n"
     << "PE compute cycles: " << pe_compute_cycles
     << ", mem stall cycles: " << pe_mem_stall_cycles << "\n"
     << "LCP elements: " << lcp_elements << ", barriers: " << barriers
     << ", reconfigurations: " << reconfigurations << "\n";
}

}  // namespace cosparse::sim
