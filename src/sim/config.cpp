#include "sim/config.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::sim {

const char* to_string(HwConfig c) {
  switch (c) {
    case HwConfig::kSC: return "SC";
    case HwConfig::kSCS: return "SCS";
    case HwConfig::kPC: return "PC";
    case HwConfig::kPS: return "PS";
  }
  return "?";
}

HwConfig hw_config_from_string(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  if (up == "SC") return HwConfig::kSC;
  if (up == "SCS") return HwConfig::kSCS;
  if (up == "PC") return HwConfig::kPC;
  if (up == "PS") return HwConfig::kPS;
  throw Error("unknown hardware configuration '" + name +
              "' (expected SC, SCS, PC or PS)");
}

SystemConfig SystemConfig::transmuter(std::uint32_t tiles, std::uint32_t pes) {
  COSPARSE_REQUIRE(tiles >= 1 && pes >= 2,
                   "a Transmuter system needs >= 1 tile and >= 2 PEs/tile");
  COSPARSE_REQUIRE(pes % 2 == 0,
                   "pes_per_tile must be even so SCS can split L1 banks");
  SystemConfig cfg;
  cfg.num_tiles = tiles;
  cfg.pes_per_tile = pes;
  return cfg;
}

std::string SystemConfig::name() const {
  return std::to_string(num_tiles) + "x" + std::to_string(pes_per_tile);
}

}  // namespace cosparse::sim
