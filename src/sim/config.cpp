#include "sim/config.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::sim {

const char* to_string(HwConfig c) {
  switch (c) {
    case HwConfig::kSC: return "SC";
    case HwConfig::kSCS: return "SCS";
    case HwConfig::kPC: return "PC";
    case HwConfig::kPS: return "PS";
  }
  return "?";
}

HwConfig hw_config_from_string(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  if (up == "SC") return HwConfig::kSC;
  if (up == "SCS") return HwConfig::kSCS;
  if (up == "PC") return HwConfig::kPC;
  if (up == "PS") return HwConfig::kPS;
  throw Error("unknown hardware configuration '" + name +
              "' (expected SC, SCS, PC or PS)");
}

SystemConfig SystemConfig::transmuter(std::uint32_t tiles, std::uint32_t pes) {
  COSPARSE_REQUIRE(tiles >= 1 && pes >= 2,
                   "a Transmuter system needs >= 1 tile and >= 2 PEs/tile");
  COSPARSE_REQUIRE(pes % 2 == 0,
                   "pes_per_tile must be even so SCS can split L1 banks");
  SystemConfig cfg;
  cfg.num_tiles = tiles;
  cfg.pes_per_tile = pes;
  return cfg;
}

std::string SystemConfig::name() const {
  return std::to_string(num_tiles) + "x" + std::to_string(pes_per_tile);
}

Json SystemConfig::to_json() const {
  Json o = Json::object();
  o["system"] = name();
  o["num_tiles"] = num_tiles;
  o["pes_per_tile"] = pes_per_tile;
  o["freq_ghz"] = freq_ghz;
  o["bank_bytes"] = bank_bytes;
  o["line_bytes"] = line_bytes;
  o["associativity"] = associativity;
  o["prefetch_depth"] = prefetch_depth;
  o["l1_bytes_per_tile"] = l1_bytes_per_tile();
  o["l2_bytes_total"] = l2_bytes_total();
  o["dram_channels"] = dram_channels;
  o["dram_peak_bytes_per_cycle"] = dram_peak_bytes_per_cycle();
  o["reconfig_cycles"] = reconfig_cycles;
  return o;
}

SystemConfig system_config_from_json(const Json& j,
                                     std::vector<std::string>* unknown) {
  COSPARSE_REQUIRE(j.is_object(), "system config must be a JSON object");
  SystemConfig cfg;
  const auto u32 = [](const Json& v) {
    return static_cast<std::uint32_t>(v.as_int());
  };
  for (const auto& [key, value] : j.members()) {
    if (key == "num_tiles") {
      cfg.num_tiles = u32(value);
    } else if (key == "pes_per_tile") {
      cfg.pes_per_tile = u32(value);
    } else if (key == "freq_ghz") {
      cfg.freq_ghz = value.as_double();
    } else if (key == "bank_bytes") {
      cfg.bank_bytes = u32(value);
    } else if (key == "line_bytes") {
      cfg.line_bytes = u32(value);
    } else if (key == "associativity") {
      cfg.associativity = u32(value);
    } else if (key == "prefetch_depth") {
      cfg.prefetch_depth = u32(value);
    } else if (key == "xbar_latency") {
      cfg.xbar_latency = value.as_double();
    } else if (key == "xbar_conflict_factor") {
      cfg.xbar_conflict_factor = value.as_double();
    } else if (key == "l1_bank_latency") {
      cfg.l1_bank_latency = value.as_double();
    } else if (key == "l2_bank_latency") {
      cfg.l2_bank_latency = value.as_double();
    } else if (key == "spm_latency") {
      cfg.spm_latency = value.as_double();
    } else if (key == "spm_mgmt_cycles") {
      cfg.spm_mgmt_cycles = value.as_double();
    } else if (key == "refill_overhead") {
      cfg.refill_overhead = value.as_double();
    } else if (key == "dram_channels") {
      cfg.dram_channels = u32(value);
    } else if (key == "dram_bytes_per_cycle_per_channel") {
      cfg.dram_bytes_per_cycle_per_channel = value.as_double();
    } else if (key == "dram_latency_min") {
      cfg.dram_latency_min = value.as_double();
    } else if (key == "dram_latency_max") {
      cfg.dram_latency_max = value.as_double();
    } else if (key == "reconfig_cycles") {
      cfg.reconfig_cycles = value.as_double();
    } else if (key == "lcp_base_cycles") {
      cfg.lcp_base_cycles = value.as_double();
    } else if (key == "lcp_cycles_per_pe") {
      cfg.lcp_cycles_per_pe = value.as_double();
    } else if (key == "system" || key == "l1_bytes_per_tile" ||
               key == "l2_bytes_total" || key == "dram_peak_bytes_per_cycle") {
      // Derived to_json() outputs; recomputed, never set.
    } else if (unknown != nullptr) {
      unknown->push_back(key);
    }
  }
  return cfg;
}

}  // namespace cosparse::sim
