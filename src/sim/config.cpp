#include "sim/config.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::sim {

const char* to_string(HwConfig c) {
  switch (c) {
    case HwConfig::kSC: return "SC";
    case HwConfig::kSCS: return "SCS";
    case HwConfig::kPC: return "PC";
    case HwConfig::kPS: return "PS";
  }
  return "?";
}

HwConfig hw_config_from_string(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  if (up == "SC") return HwConfig::kSC;
  if (up == "SCS") return HwConfig::kSCS;
  if (up == "PC") return HwConfig::kPC;
  if (up == "PS") return HwConfig::kPS;
  throw Error("unknown hardware configuration '" + name +
              "' (expected SC, SCS, PC or PS)");
}

SystemConfig SystemConfig::transmuter(std::uint32_t tiles, std::uint32_t pes) {
  COSPARSE_REQUIRE(tiles >= 1 && pes >= 2,
                   "a Transmuter system needs >= 1 tile and >= 2 PEs/tile");
  COSPARSE_REQUIRE(pes % 2 == 0,
                   "pes_per_tile must be even so SCS can split L1 banks");
  SystemConfig cfg;
  cfg.num_tiles = tiles;
  cfg.pes_per_tile = pes;
  return cfg;
}

std::string SystemConfig::name() const {
  return std::to_string(num_tiles) + "x" + std::to_string(pes_per_tile);
}

Json SystemConfig::to_json() const {
  Json o = Json::object();
  o["system"] = name();
  o["num_tiles"] = num_tiles;
  o["pes_per_tile"] = pes_per_tile;
  o["freq_ghz"] = freq_ghz;
  o["bank_bytes"] = bank_bytes;
  o["line_bytes"] = line_bytes;
  o["associativity"] = associativity;
  o["prefetch_depth"] = prefetch_depth;
  o["l1_bytes_per_tile"] = l1_bytes_per_tile();
  o["l2_bytes_total"] = l2_bytes_total();
  o["dram_channels"] = dram_channels;
  o["dram_peak_bytes_per_cycle"] = dram_peak_bytes_per_cycle();
  o["reconfig_cycles"] = reconfig_cycles;
  return o;
}

}  // namespace cosparse::sim
