#include "sim/energy.h"

namespace cosparse::sim {

Picojoules EnergyModel::total(const SystemConfig& cfg, const Stats& stats,
                              Cycles elapsed) const {
  const auto& p = params_;
  double pj = 0.0;
  // Dynamic: PE activity (compute issue slots; stalled cycles burn only
  // leakage).
  pj += p.pe_active_pj * stats.pe_compute_cycles;
  // Memory events.
  pj += p.cache_access_pj *
        static_cast<double>(stats.l1_accesses() + stats.l2_accesses() +
                            stats.prefetch_lines + stats.writeback_lines);
  pj += p.spm_access_pj * static_cast<double>(stats.spm_accesses);
  pj += p.xbar_hop_pj * static_cast<double>(stats.xbar_transfers);
  pj += p.dram_pj_per_byte * static_cast<double>(stats.dram_bytes());
  pj += p.lcp_element_pj * static_cast<double>(stats.lcp_elements);
  // Static: every PE/LCP and every bank leaks for the whole run. Each tile
  // has one LCP (counted with the PEs) and 2x pes_per_tile banks (L1 + L2).
  const double cores = static_cast<double>(cfg.num_pes() + cfg.num_tiles);
  const double banks = static_cast<double>(cfg.num_pes()) * 2.0;
  pj += (p.pe_static_pj_per_cycle * cores +
         p.bank_static_pj_per_cycle * banks) *
        static_cast<double>(elapsed);
  return pj;
}

double EnergyModel::watts(const SystemConfig& cfg, const Stats& stats,
                          Cycles elapsed) const {
  if (elapsed == 0) return 0.0;
  const double seconds =
      static_cast<double>(elapsed) / (cfg.freq_ghz * 1e9);
  return total(cfg, stats, elapsed) * 1e-12 / seconds;
}

}  // namespace cosparse::sim
