#include "sim/cache.h"

#include <tuple>

#include "common/error.h"

namespace cosparse::sim {

CacheArray::CacheArray(std::uint32_t num_banks, std::uint32_t bank_bytes,
                       std::uint32_t line_bytes, std::uint32_t associativity,
                       std::uint32_t prefetch_depth,
                       std::uint32_t num_requesters)
    : num_banks_(num_banks),
      bank_bytes_(bank_bytes),
      line_bytes_(line_bytes),
      associativity_(associativity),
      prefetch_depth_(prefetch_depth),
      sets_per_bank_(bank_bytes / (line_bytes * associativity)),
      lines_(static_cast<std::size_t>(num_banks) * sets_per_bank_ *
             associativity),
      streams_(static_cast<std::size_t>(num_requesters) *
               kStreamsPerRequester) {
  COSPARSE_CHECK(num_banks_ >= 1);
  COSPARSE_CHECK(sets_per_bank_ >= 1);
  COSPARSE_CHECK(prefetch_depth_ + 1 <= kMaxFetchedLines);
}

std::size_t CacheArray::set_base(std::uint64_t line) const {
  const std::uint64_t bank = line % num_banks_;
  const std::uint64_t set = (line / num_banks_) % sets_per_bank_;
  return static_cast<std::size_t>((bank * sets_per_bank_ + set) *
                                  associativity_);
}

CacheArray::Line* CacheArray::find(std::uint64_t line) {
  const std::size_t base = set_base(line);
  for (std::uint32_t w = 0; w < associativity_; ++w) {
    Line& l = lines_[base + w];
    if (l.valid && l.line_addr == line) return &l;
  }
  return nullptr;
}

const CacheArray::Line* CacheArray::find(std::uint64_t line) const {
  return const_cast<CacheArray*>(this)->find(line);
}

CacheArray::Line& CacheArray::victim(std::uint64_t line) {
  const std::size_t base = set_base(line);
  // Victim order: invalid ways, then not-yet-used prefetched lines (they
  // were inserted at low priority so prefetch streams evict each other
  // instead of polluting demand-hot lines), then true LRU.
  Line* best = &lines_[base];
  for (std::uint32_t w = 0; w < associativity_; ++w) {
    Line& l = lines_[base + w];
    if (!l.valid) return l;
    const auto cand_key = std::make_pair(!l.prefetched, l.last_use);
    const auto best_key = std::make_pair(!best->prefetched, best->last_use);
    if (cand_key < best_key) best = &l;
  }
  return *best;
}

bool CacheArray::install_line(std::uint64_t line, bool prefetched,
                              Addr* writeback) {
  Line& v = victim(line);
  const bool wb = v.valid && v.dirty;
  if (wb && writeback != nullptr) {
    *writeback = v.line_addr * line_bytes_;
  }
  v.line_addr = line;
  v.valid = true;
  v.dirty = false;
  v.prefetched = prefetched;
  v.last_use = ++tick_;
  return wb;
}

CacheArray::Outcome CacheArray::access(std::uint32_t requester, Addr addr,
                                       bool write, bool low_priority) {
  Outcome out;
  const std::uint64_t line = addr / line_bytes_;

  if (low_priority) {
    // Fill on behalf of an upper level's speculation: hit bumps nothing,
    // miss installs at prefetch priority, the prefetcher stays untrained.
    Line* resident = find(line);
    if (resident != nullptr) {
      out.hit = true;
      if (write) resident->dirty = true;
      return out;
    }
    Addr wb_lp = 0;
    const bool had_wb_lp = install_line(line, /*prefetched=*/true, &wb_lp);
    out.fetched_lines[out.num_fetched++] = line * line_bytes_;
    if (write) find(line)->dirty = true;
    if (had_wb_lp) out.writeback_lines[out.num_writebacks++] = wb_lp;
    return out;
  }

  // --- stride detection (runs on every demand access) ---
  // Match the access against the requester's stream table by proximity;
  // allocate the LRU entry for accesses that belong to no known stream.
  StreamState* match = nullptr;
  {
    StreamState* base = &streams_[static_cast<std::size_t>(requester) *
                                  kStreamsPerRequester];
    StreamState* victim = base;
    for (std::uint32_t s = 0; s < kStreamsPerRequester; ++s) {
      StreamState& cand = base[s];
      if (cand.valid) {
        const auto delta = static_cast<std::int64_t>(line) -
                           static_cast<std::int64_t>(cand.last_line);
        if (delta >= -kStreamMatchWindow && delta <= kStreamMatchWindow) {
          match = &cand;
          break;
        }
      }
      // Victim selection prefers unconfirmed entries: random access
      // patterns churn among themselves instead of evicting a confirmed
      // stream (the behaviour a PC-indexed prefetcher gets for free).
      if (!cand.valid ||
          std::tie(cand.confidence, cand.last_use) <
              std::tie(victim->confidence, victim->last_use)) {
        victim = &cand;
      }
    }
    if (match == nullptr) {
      *victim = StreamState{};
      victim->valid = true;
      victim->last_line = line;
      victim->last_use = ++tick_;
    }
  }
  bool stride_confirmed = false;
  std::int64_t stride = 0;
  if (match != nullptr) {
    StreamState& st = *match;
    st.last_use = ++tick_;
    const auto delta = static_cast<std::int64_t>(line) -
                       static_cast<std::int64_t>(st.last_line);
    if (delta != 0) {
      if (delta == st.stride) {
        if (st.confidence < 4) ++st.confidence;
      } else {
        st.stride = delta;
        st.confidence = 1;
      }
      st.last_line = line;
    }
    stride_confirmed = st.confidence >= 2 && st.stride != 0;
    stride = st.stride;
  }

  auto issue_prefetch = [&](std::uint64_t pf_line) {
    if (find(pf_line) != nullptr) return;  // already resident
    if (out.num_fetched >= kMaxFetchedLines) return;
    Addr wb = 0;
    const bool had_wb = install_line(pf_line, /*prefetched=*/true, &wb);
    out.fetched_lines[out.num_fetched++] = pf_line * line_bytes_;
    ++out.num_prefetched;
    if (had_wb) out.writeback_lines[out.num_writebacks++] = wb;
  };

  Line* hit_line = find(line);
  if (hit_line != nullptr) {
    out.hit = true;
    hit_line->last_use = ++tick_;
    if (write) hit_line->dirty = true;
    // Tagged prefetch: the first demand hit on a prefetched line promotes
    // it to normal priority and extends the stream by one more line,
    // keeping steady-state streams resident.
    if (hit_line->prefetched) {
      hit_line->prefetched = false;
      if (stride_confirmed) {
        const std::int64_t next =
            static_cast<std::int64_t>(line) +
            stride * static_cast<std::int64_t>(prefetch_depth_);
        if (next > 0) issue_prefetch(static_cast<std::uint64_t>(next));
      }
    }
    return out;
  }

  // Demand miss: fetch the line itself...
  Addr wb = 0;
  const bool had_wb = install_line(line, /*prefetched=*/false, &wb);
  out.fetched_lines[out.num_fetched++] = line * line_bytes_;
  if (had_wb) out.writeback_lines[out.num_writebacks++] = wb;
  if (write) find(line)->dirty = true;
  // ...and run the stride prefetcher ahead of it.
  if (stride_confirmed) {
    for (std::uint32_t i = 1; i <= prefetch_depth_; ++i) {
      const std::int64_t next =
          static_cast<std::int64_t>(line) + stride * static_cast<std::int64_t>(i);
      if (next > 0) issue_prefetch(static_cast<std::uint64_t>(next));
    }
  }
  return out;
}

std::uint32_t CacheArray::install(Addr addr, Addr* writeback_out) {
  Addr wb = 0;
  const bool had_wb =
      install_line(addr / line_bytes_, /*prefetched=*/false, &wb);
  if (had_wb && writeback_out != nullptr) *writeback_out = wb;
  return had_wb ? 1u : 0u;
}

bool CacheArray::probe(Addr addr) const {
  return find(addr / line_bytes_) != nullptr;
}

std::uint64_t CacheArray::flush(std::vector<Addr>* dirty_lines) {
  std::uint64_t dirty = 0;
  for (Line& l : lines_) {
    if (l.valid && l.dirty) {
      ++dirty;
      if (dirty_lines != nullptr) {
        dirty_lines->push_back(l.line_addr * line_bytes_);
      }
    }
    l = Line{};
  }
  for (StreamState& s : streams_) s = StreamState{};
  tick_ = 0;
  return dirty;
}

}  // namespace cosparse::sim
