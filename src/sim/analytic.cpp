#include "sim/analytic.h"

#include <algorithm>

namespace cosparse::sim {

AnalyticPrediction extrapolate(const SystemConfig& measured_cfg,
                               const Stats& stats, Cycles measured_cycles,
                               const SystemConfig& target_cfg) {
  AnalyticPrediction p;

  // --- serial component: barriers + reconfiguration drains ---
  // Charged once per event regardless of system size; the flush drain is
  // bandwidth-limited, so it carries over via the DRAM bound instead.
  const double serial_per_barrier = 20.0;  // sync fan-in/fan-out
  p.serial_cycles =
      static_cast<double>(stats.barriers) * serial_per_barrier +
      static_cast<double>(stats.reconfigurations) *
          target_cfg.reconfig_cycles;

  // --- PE bound ---
  // Total PE work on the measured system, redistributed over the target's
  // PEs. Shared-mode arbitration is the only latency component that
  // changes shape with the topology: re-scale it by the sharers/banks
  // ratio (banks == PEs per tile in every configuration, so the per-access
  // penalty is ~conflict_factor x (P-1)/P, nearly constant — kept for
  // generality with non-default bank counts).
  const double measured_arb =
      measured_cfg.xbar_conflict_factor *
      static_cast<double>(measured_cfg.pes_per_tile - 1) /
      static_cast<double>(measured_cfg.l1_banks_per_tile());
  const double target_arb = target_cfg.xbar_conflict_factor *
                            static_cast<double>(target_cfg.pes_per_tile - 1) /
                            static_cast<double>(target_cfg.l1_banks_per_tile());
  const double arb_delta =
      (target_arb - measured_arb) * static_cast<double>(stats.l1_accesses());
  const double total_pe_work =
      stats.pe_compute_cycles + stats.pe_mem_stall_cycles + arb_delta;
  p.pe_bound = total_pe_work / static_cast<double>(target_cfg.num_pes());

  // --- DRAM bound ---
  p.dram_bound = static_cast<double>(stats.dram_bytes()) /
                 target_cfg.dram_peak_bytes_per_cycle();

  // --- LCP bound ---
  // Merged elements distribute across tiles; each tile's LCP serializes
  // its share at the target's per-element cost.
  p.lcp_bound = static_cast<double>(stats.lcp_elements) /
                static_cast<double>(target_cfg.num_tiles) *
                target_cfg.lcp_cycles_per_element();

  const double bound =
      std::max({p.pe_bound, p.dram_bound, p.lcp_bound}) + p.serial_cycles;
  // Never predict below what pure bandwidth already cost the measured run
  // (the roofline is system-size independent for the same trace).
  p.cycles = static_cast<Cycles>(std::max(bound, 1.0));
  (void)measured_cycles;
  return p;
}

}  // namespace cosparse::sim
