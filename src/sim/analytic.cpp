#include "sim/analytic.h"

#include <algorithm>

namespace cosparse::sim {

AnalyticPrediction extrapolate(const SystemConfig& measured_cfg,
                               const Stats& stats, Cycles measured_cycles,
                               const SystemConfig& target_cfg) {
  AnalyticPrediction p;

  // --- serial component: barriers + reconfiguration drains ---
  // Charged once per event regardless of system size; the flush drain is
  // bandwidth-limited, so it carries over via the DRAM bound instead.
  const double serial_per_barrier = 20.0;  // sync fan-in/fan-out
  p.serial_cycles =
      static_cast<double>(stats.barriers) * serial_per_barrier +
      static_cast<double>(stats.reconfigurations) *
          target_cfg.reconfig_cycles;

  // --- PE bound ---
  // Total PE work on the measured system, redistributed over the target's
  // PEs. Shared-mode arbitration is the only latency component that
  // changes shape with the topology: re-scale it by the sharers/banks
  // ratio (banks == PEs per tile in every configuration, so the per-access
  // penalty is ~conflict_factor x (P-1)/P, nearly constant — kept for
  // generality with non-default bank counts).
  const double measured_arb =
      measured_cfg.xbar_conflict_factor *
      static_cast<double>(measured_cfg.pes_per_tile - 1) /
      static_cast<double>(measured_cfg.l1_banks_per_tile());
  const double target_arb = target_cfg.xbar_conflict_factor *
                            static_cast<double>(target_cfg.pes_per_tile - 1) /
                            static_cast<double>(target_cfg.l1_banks_per_tile());
  const double arb_delta =
      (target_arb - measured_arb) * static_cast<double>(stats.l1_accesses());
  const double total_pe_work =
      stats.pe_compute_cycles + stats.pe_mem_stall_cycles + arb_delta;
  p.pe_bound = total_pe_work / static_cast<double>(target_cfg.num_pes());

  // --- DRAM bound ---
  p.dram_bound = static_cast<double>(stats.dram_bytes()) /
                 target_cfg.dram_peak_bytes_per_cycle();

  // --- LCP bound ---
  // Merged elements distribute across tiles; each tile's LCP serializes
  // its share at the target's per-element cost.
  p.lcp_bound = static_cast<double>(stats.lcp_elements) /
                static_cast<double>(target_cfg.num_tiles) *
                target_cfg.lcp_cycles_per_element();

  const double bound =
      std::max({p.pe_bound, p.dram_bound, p.lcp_bound}) + p.serial_cycles;
  // Never predict below what pure bandwidth already cost the measured run
  // (the roofline is system-size independent for the same trace).
  p.cycles = static_cast<Cycles>(std::max(bound, 1.0));
  (void)measured_cycles;
  return p;
}

AnalyticPrediction estimate_spmv(const SystemConfig& cfg, bool inner_product,
                                 HwConfig hw, const SpmvShape& shape) {
  AnalyticPrediction p;
  const auto pes = static_cast<double>(cfg.num_pes());
  const double density =
      shape.dimension == 0 ? 0.0
                           : static_cast<double>(shape.frontier_nnz) /
                                 static_cast<double>(shape.dimension);
  const double arb = cfg.xbar_conflict_factor *
                     static_cast<double>(cfg.pes_per_tile - 1) /
                     static_cast<double>(cfg.l1_banks_per_tile());

  if (inner_product) {
    // IP scans every matrix element (bitmap-filtered), so PE work tracks
    // the full nnz; the vector access rides the SPM in SCS (deterministic
    // latency + management cycles) or the shared L1 in SC (arbitrated).
    const double vec_access = hw == HwConfig::kSCS
                                  ? cfg.spm_latency + cfg.spm_mgmt_cycles
                                  : 1.0 + arb;
    const double per_elem = 2.0 + vec_access;
    p.pe_bound = static_cast<double>(shape.matrix_nnz) * per_elem / pes;
    // Matrix stream + one pass over the dense vector + output writeback;
    // SCS re-reads the vector segments through the vblock DMA fills.
    double bytes =
        static_cast<double>(shape.matrix_nnz) * shape.matrix_elem_bytes +
        static_cast<double>(shape.dimension) * shape.value_bytes *
            (hw == HwConfig::kSCS ? 2.0 : 1.0) +
        static_cast<double>(shape.dimension) * shape.value_bytes;
    p.dram_bound = bytes / cfg.dram_peak_bytes_per_cycle();
    p.lcp_bound = 0.0;
  } else {
    // OP touches only the active columns' elements (expected share of nnz
    // at uniform column density) and serializes every produced element
    // through the tile LCPs.
    const double active_nnz =
        static_cast<double>(shape.matrix_nnz) * std::min(1.0, density);
    const double heap_access = hw == HwConfig::kPS
                                   ? cfg.spm_latency + cfg.spm_mgmt_cycles
                                   : 1.0;
    const double per_elem = 3.0 + heap_access;
    p.pe_bound = active_nnz * per_elem / pes;
    p.lcp_bound = active_nnz / static_cast<double>(cfg.num_tiles) *
                  cfg.lcp_cycles_per_element();
    const double bytes =
        active_nnz * shape.matrix_elem_bytes +
        static_cast<double>(shape.frontier_nnz) * 12.0 +  // x entry stream
        active_nnz * shape.value_bytes;                   // LCP writeback
    p.dram_bound = bytes / cfg.dram_peak_bytes_per_cycle();
  }
  p.serial_cycles = cfg.dram_latency_min;
  const double bound =
      std::max({p.pe_bound, p.dram_bound, p.lcp_bound}) + p.serial_cycles;
  p.cycles = static_cast<Cycles>(std::max(bound, 1.0));
  return p;
}

}  // namespace cosparse::sim
