// Trace-based analytic model for large systems.
//
// The paper's methodology note (§IV-A): "For systems larger than 8x16, the
// simulation resources required become prohibitive and a trace-based
// simulation model is used." This module is our rendering of that second
// model: take the event trace (Stats) and elapsed cycles measured by the
// execution-driven simulator on a *reference* system, and extrapolate the
// execution time on a *target* system from first-principles bounds:
//
//   pe bound   — total PE work (compute + memory stalls) spread over the
//                target's PEs, with the shared-mode arbitration term
//                re-scaled to the target's sharers/banks ratio;
//   dram bound — bytes moved / peak bandwidth (topology-independent);
//   lcp bound  — merged elements / target tiles x the target's per-element
//                LCP cost (outer-product runs only);
//   serial     — barriers and reconfigurations do not parallelize.
//
// The prediction is max(bounds) + serial. It is a *conservative* (upper)
// estimate: per-event stall costs are carried over from the measured
// system, so it cannot see the target's larger caches cutting miss rates.
// Accuracy is validated against the execution-driven simulator in
// tests/sim/test_analytic.cpp — right order of magnitude and correct
// scaling directions, which is what a roofline-style extrapolation can
// promise, and is how the paper's >8x16 systems would be estimated if
// execution-driven simulation were prohibitive.
#pragma once

#include "sim/config.h"
#include "sim/stats.h"

namespace cosparse::sim {

struct AnalyticPrediction {
  Cycles cycles = 0;        ///< max(bounds) + serial overhead
  double pe_bound = 0.0;    ///< cycles if PE work were the only limit
  double dram_bound = 0.0;  ///< cycles if bandwidth were the only limit
  double lcp_bound = 0.0;   ///< cycles if LCP serialization were the limit
  double serial_cycles = 0.0;
};

/// Extrapolates a run measured on `measured_cfg` to `target_cfg`.
/// `measured_cycles` is what the execution-driven simulator reported.
AnalyticPrediction extrapolate(const SystemConfig& measured_cfg,
                               const Stats& stats, Cycles measured_cycles,
                               const SystemConfig& target_cfg);

/// Shape of one SpMV invocation, as known *before* running it — exactly
/// the features the runtime decision tree sees. Element byte sizes are
/// parameters because the kernels own those constants (sim cannot depend
/// on kernels).
struct SpmvShape {
  std::uint64_t dimension = 0;
  std::uint64_t matrix_nnz = 0;
  std::uint64_t frontier_nnz = 0;
  std::uint32_t matrix_elem_bytes = 16;  ///< kernels::kIpElemBytes
  std::uint32_t value_bytes = 8;
};

/// First-principles cycle estimate for one SpMV invocation under a given
/// dataflow (`inner_product`) and memory configuration — the same
/// pe/dram/lcp bound structure as extrapolate(), but derived from the
/// invocation's shape instead of a measured trace. Used by the decision
/// audit trail (runtime/audit.h) to attach counterfactual costs to the
/// configurations the decision tree rejected. Deterministic; not
/// calibrated against the execution-driven simulator — only relative
/// ordering across configurations is meaningful.
AnalyticPrediction estimate_spmv(const SystemConfig& cfg, bool inner_product,
                                 HwConfig hw, const SpmvShape& shape);

}  // namespace cosparse::sim
