// System configuration of the simulated reconfigurable hardware.
//
// Models the Transmuter-like substrate of the paper (Table II): an A x B
// system has A tiles with B processing elements (PEs) each; every PE/LCP is
// a 1 GHz in-order core; each level of the two-level on-chip memory is
// built from 4 kB reconfigurable banks (one L1 bank per PE, one L2 bank per
// PE) joined by reconfigurable crossbars. Each level can be configured as
// shared/private and (L1) as cache/scratchpad, giving the four
// configurations CoSPARSE uses (paper Fig. 2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/types.h"

namespace cosparse::sim {

/// The four memory-hierarchy configurations of paper Fig. 2.
enum class HwConfig : std::uint8_t {
  kSC,   ///< L1 shared cache,           L2 shared cache   (inner product)
  kSCS,  ///< L1 shared cache+SPM split,  L2 shared cache   (inner product)
  kPC,   ///< L1 private cache per PE,    L2 per-tile cache (outer product)
  kPS,   ///< L1 private SPM per PE,      L2 per-tile cache (outer product)
};

[[nodiscard]] const char* to_string(HwConfig c);
/// Parses "SC"/"SCS"/"PC"/"PS" (case-insensitive); throws on other input.
[[nodiscard]] HwConfig hw_config_from_string(const std::string& name);

/// True for the two inner-product configurations (shared memory).
[[nodiscard]] constexpr bool is_shared(HwConfig c) {
  return c == HwConfig::kSC || c == HwConfig::kSCS;
}
/// True when the L1 level contains scratchpad capacity.
[[nodiscard]] constexpr bool has_l1_spm(HwConfig c) {
  return c == HwConfig::kSCS || c == HwConfig::kPS;
}

struct SystemConfig {
  // ---- topology ----
  std::uint32_t num_tiles = 4;
  std::uint32_t pes_per_tile = 8;

  // ---- clocks ----
  double freq_ghz = 1.0;  ///< PE/LCP clock (Table II: 1.0 GHz)

  // ---- reconfigurable cache banks (Table II "RCache") ----
  std::uint32_t bank_bytes = 4096;   ///< 4 kB per bank
  std::uint32_t line_bytes = 64;     ///< 64 B blocks
  std::uint32_t associativity = 4;   ///< 4-way set associative
  std::uint32_t prefetch_depth = 4;  ///< stride prefetcher lookahead (lines)

  // ---- crossbar (Table II "RXBar") ----
  double xbar_latency = 1.0;  ///< cycles per traversal (1-cycle response)
  /// Average serialization charged per shared-mode access, expressed as a
  /// fraction of (sharers-1)/banks. Models "0 to (Nsrc-1) serialization
  /// latency depending upon number of conflicts" statistically; see
  /// sim/machine.h for the approximation note.
  double xbar_conflict_factor = 0.5;

  // ---- latency components (cycles) ----
  double l1_bank_latency = 1.0;
  double l2_bank_latency = 2.0;
  double spm_latency = 1.0;     ///< word-granular, software managed
  /// Software scratchpad management overhead per access (explicit address
  /// computation / bounds handling by the PE). This is what lets a private
  /// *cache* outperform a private SPM when the working set fits in L1
  /// (paper §III-C.3: "PC does not have SPM management overhead").
  double spm_mgmt_cycles = 0.5;
  double refill_overhead = 2.0; ///< MSHR/refill management per miss level

  // ---- main memory (Table II: 1 HBM2 stack) ----
  std::uint32_t dram_channels = 16;        ///< 64-bit pseudo-channels
  double dram_bytes_per_cycle_per_channel = 8.0;  ///< 8000 MB/s @ 1 GHz
  double dram_latency_min = 80.0;          ///< cycles (80 ns)
  double dram_latency_max = 150.0;         ///< cycles (150 ns)

  // ---- reconfiguration ----
  double reconfig_cycles = 10.0;  ///< paper §II-B: runtime switch <= 10 cyc

  // ---- LCP (local control processor) ----
  /// The tile's LCP serializes outer-product results: per merged element it
  /// polls/arbitrates the PEs' output queues, combines same-row partials
  /// and issues the writeback (paper Fig. 3 steps 3-4). The cost therefore
  /// has a fixed part plus a part that grows with the number of queues
  /// (PEs) it services — this serialization is why OP scales worse than IP
  /// as PEs/tile grows, the mechanism behind the falling crossover density
  /// of Fig. 4 (§III-C.1 takeaway).
  double lcp_base_cycles = 2.0;
  double lcp_cycles_per_pe = 0.5;

  [[nodiscard]] double lcp_cycles_per_element() const {
    return lcp_base_cycles + lcp_cycles_per_pe * pes_per_tile;
  }

  /// Transmuter-style A x B system with all Table II defaults.
  static SystemConfig transmuter(std::uint32_t tiles, std::uint32_t pes);

  // ---- derived quantities ----
  [[nodiscard]] std::uint32_t num_pes() const {
    return num_tiles * pes_per_tile;
  }
  /// L1 banks per tile (one per PE, paper §III-C.3).
  [[nodiscard]] std::uint32_t l1_banks_per_tile() const {
    return pes_per_tile;
  }
  /// L2 banks per tile (one per PE).
  [[nodiscard]] std::uint32_t l2_banks_per_tile() const {
    return pes_per_tile;
  }
  [[nodiscard]] std::size_t l1_bytes_per_tile() const {
    return static_cast<std::size_t>(l1_banks_per_tile()) * bank_bytes;
  }
  [[nodiscard]] std::size_t l2_bytes_total() const {
    return static_cast<std::size_t>(num_tiles) * l2_banks_per_tile() *
           bank_bytes;
  }
  /// SCS splits each tile's L1 banks evenly between SPM and cache.
  [[nodiscard]] std::size_t scs_spm_bytes_per_tile() const {
    return static_cast<std::size_t>(l1_banks_per_tile() / 2) * bank_bytes;
  }
  /// PS gives each PE its own L1 bank as private SPM.
  [[nodiscard]] std::size_t ps_spm_bytes_per_pe() const { return bank_bytes; }
  [[nodiscard]] double dram_peak_bytes_per_cycle() const {
    return dram_channels * dram_bytes_per_cycle_per_channel;
  }
  [[nodiscard]] std::string name() const;  ///< e.g. "16x16"
  /// Topology + memory/bandwidth parameters for run reports.
  [[nodiscard]] Json to_json() const;
};

/// Introspection hook for run plans (src/verify): builds a SystemConfig
/// from a JSON object, starting from the defaults and overriding any field
/// present. Derived to_json() outputs ("system", "l1_bytes_per_tile",
/// "l2_bytes_total", "dram_peak_bytes_per_cycle") are accepted and
/// ignored; names that are neither settable nor derived are appended to
/// `unknown` (when given) so a linter can flag typos instead of silently
/// dropping them. No legality checks — cosparse-lint owns those, so an
/// illegal config can still be represented and analyzed.
[[nodiscard]] SystemConfig system_config_from_json(
    const Json& j, std::vector<std::string>* unknown = nullptr);

}  // namespace cosparse::sim
