#include "sim/dram.h"

#include <algorithm>

namespace cosparse::sim {

double Dram::access(std::uint64_t bytes, bool write, double now,
                    Stats& stats, Stats* tile_stats) {
  traffic(bytes, write, stats, tile_stats);
  const double peak = cfg_->dram_peak_bytes_per_cycle();
  const double util =
      now <= 1.0 ? 0.0
                 : std::clamp(static_cast<double>(total_bytes_) / (now * peak),
                              0.0, 1.0);
  return cfg_->dram_latency_min +
         (cfg_->dram_latency_max - cfg_->dram_latency_min) * util;
}

void Dram::traffic(std::uint64_t bytes, bool write, Stats& stats,
                   Stats* tile_stats) {
  total_bytes_ += bytes;
  if (write) {
    stats.dram_write_bytes += bytes;
    if (tile_stats != nullptr) tile_stats->dram_write_bytes += bytes;
  } else {
    stats.dram_read_bytes += bytes;
    if (tile_stats != nullptr) tile_stats->dram_read_bytes += bytes;
  }
}

}  // namespace cosparse::sim
