// HBM2-like main memory model (Table II).
//
// One HBM2 stack with 16 pseudo-channels at 8 GB/s each and an 80-150 ns
// access latency. Two effects are modeled:
//   1. per-access latency that rises from `dram_latency_min` towards
//      `dram_latency_max` with estimated bandwidth utilization, and
//   2. an aggregate bandwidth *roofline* applied by Machine::cycles():
//      total kernel time can never undercut total bytes moved divided by
//      peak bandwidth, which is what bounds prefetch-heavy streaming.
//
// Approximation note: PEs are simulated with per-PE local clocks (see
// sim/machine.h), so exact per-channel queueing is not observable; the
// utilization estimate uses bytes-moved-so-far over the requester's local
// time, which tracks the true utilization closely because PEs progress at
// similar rates under balanced workloads (the imbalanced cases are exactly
// what the roofline catches).
#pragma once

#include <cstdint>

#include "sim/config.h"
#include "sim/stats.h"

namespace cosparse::sim {

class Dram {
 public:
  explicit Dram(const SystemConfig& cfg) : cfg_(&cfg) {}

  /// Demand access: records traffic and returns the latency (cycles) the
  /// requester stalls. `now` is the requester's local clock. When
  /// `tile_stats` is non-null the byte counters are mirrored into it
  /// (per-tile attribution; see Machine::tile_stats()).
  double access(std::uint64_t bytes, bool write, double now, Stats& stats,
                Stats* tile_stats = nullptr);

  /// Traffic that does not stall a PE (prefetch fills, writebacks, DMA).
  void traffic(std::uint64_t bytes, bool write, Stats& stats,
               Stats* tile_stats = nullptr);

  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Lower bound on elapsed cycles from bandwidth alone.
  [[nodiscard]] double bandwidth_floor_cycles() const {
    return static_cast<double>(total_bytes_) /
           cfg_->dram_peak_bytes_per_cycle();
  }

  void reset() { total_bytes_ = 0; }

 private:
  const SystemConfig* cfg_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace cosparse::sim
