// The simulated machine: tiles x PEs over a reconfigurable two-level
// memory hierarchy, plus DRAM, with per-PE cycle accounting.
//
// Execution model (and its approximations, referenced from DESIGN.md §5):
// kernels run *functionally* on host data while charging cycles to the PE
// that architecturally performs each operation. Each PE owns a local
// double-precision clock; barriers equalize clocks; Machine::cycles()
// returns the max clock, floored by the DRAM bandwidth roofline.
//
// PEs within a tile are simulated serially rather than interleaved
// per-cycle. Two consequences, both documented approximations:
//   * shared-cache contents are warmed in PE order rather than true
//     interleaved order — reuse *statistics* are preserved;
//   * crossbar bank conflicts are charged statistically: every shared-mode
//     access pays `xbar_conflict_factor * (sharers - 1) / banks` cycles of
//     expected serialization on top of the 1-cycle traversal (Table II:
//     "0 to (Nsrc-1) serialization latency depending upon number of
//     conflicts").
//
// Tiles may be simulated on parallel host threads (set_executor +
// for_tiles): tile bodies advance only tile-private array state and log
// their events; the logs are replayed serially in tile-ID order, so the
// numbers are bit-identical to the serial engine for any thread count
// (DESIGN.md §11).
//
// Hierarchy wiring per HwConfig (paper Fig. 2):
//   SC : per-tile shared L1 cache (P banks)           -> global shared L2
//   SCS: per-tile L1 split: P/2 cache banks + P/2 SPM -> global shared L2
//   PC : per-PE private L1 cache (1 bank)             -> per-tile L2
//   PS : per-PE private L1 SPM (1 bank), no L1 cache  -> per-tile L2
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "sim/cache.h"
#include "sim/config.h"
#include "sim/dram.h"
#include "sim/energy.h"
#include "sim/stats.h"

namespace cosparse::obs {
class Telemetry;
}  // namespace cosparse::obs

namespace cosparse::sim {

class MemProfiler;
class ParallelExecutor;

class Machine {
 public:
  Machine(const SystemConfig& cfg, HwConfig initial);

  [[nodiscard]] const SystemConfig& config() const { return cfg_; }
  [[nodiscard]] HwConfig hw() const { return hw_; }
  [[nodiscard]] std::uint32_t num_pes() const { return cfg_.num_pes(); }
  [[nodiscard]] std::uint32_t num_tiles() const { return cfg_.num_tiles; }
  [[nodiscard]] std::uint32_t pes_per_tile() const {
    return cfg_.pes_per_tile;
  }
  [[nodiscard]] std::uint32_t tile_of(std::uint32_t pe) const {
    return pe / cfg_.pes_per_tile;
  }

  // ---- simulated address space ----
  /// Reserves a line-aligned range of the simulated physical address space.
  /// Stable across reconfigurations. The label names the region for the
  /// memory profiler ("matrix.elems", "vector.dense", ...); empty labels
  /// land in the profiler's "unlabeled" bucket.
  Addr alloc(std::size_t bytes, std::string_view label = "");

  struct AllocRecord {
    Addr base;
    std::size_t bytes;
    std::string label;
  };
  /// Every allocation made so far, in allocation order — the introspection
  /// hook behind AddressMap::for_each_region and the cosparse-lint
  /// address-map pass (regions are also replayed into late-attached
  /// profilers from this record).
  [[nodiscard]] const std::vector<AllocRecord>& allocations() const {
    return allocs_;
  }

  // ---- PE-side operations (called by kernels) ----
  /// Charges `cycles` of ALU/issue work to a PE.
  void compute(std::uint32_t pe, double cycles);

  /// Demand load/store of `bytes` at `addr` through the configured
  /// hierarchy; the PE stalls for the full latency (in-order MinorCPU-like
  /// cores with blocking memory ops).
  void mem_read(std::uint32_t pe, Addr addr, std::uint32_t bytes);
  void mem_write(std::uint32_t pe, Addr addr, std::uint32_t bytes);

  /// L1 scratchpad access. Legal only in SCS (per-tile shared SPM) and PS
  /// (per-PE private SPM); capacity policy is the kernel's job — the
  /// machine charges deterministic SPM latency.
  void spm_read(std::uint32_t pe, std::uint32_t bytes);
  void spm_write(std::uint32_t pe, std::uint32_t bytes);

  /// Capacity available to kernels for SPM placement under the current
  /// configuration (0 when L1 has no SPM personality).
  [[nodiscard]] std::size_t spm_bytes_per_tile() const;
  [[nodiscard]] std::size_t spm_bytes_per_pe() const;

  /// Bulk DMA of `bytes` at `src` into a tile's shared SPM (SCS vblock
  /// refill, paper Fig. 3 step 1). The fill streams *through the shared
  /// L2*: the first tile to fill a segment pulls it from DRAM, later tiles
  /// hit L2 — the same inter-tile sharing the SC path enjoys. Implies a
  /// tile barrier; all PEs of the tile resume after the fill.
  void spm_fill_tile(std::uint32_t tile, Addr src, std::size_t bytes);

  /// Bulk DMA traffic with no PE involvement (e.g. output-buffer
  /// initialization): consumes DRAM bandwidth (caught by the roofline) but
  /// stalls nobody.
  void dma_traffic(std::size_t bytes, bool write);

  /// Outer-product result element handed to the tile's LCP, which
  /// serializes `bytes` of writeback to main memory (paper Fig. 3 step 4).
  /// The issuing PE is charged one send cycle; LCP occupancy accumulates
  /// and is folded in at barriers.
  void lcp_emit(std::uint32_t pe, std::uint32_t bytes);

  // ---- synchronization ----
  void tile_barrier(std::uint32_t tile);
  void global_barrier();

  // ---- tile-parallel execution ----
  /// Attaches a host thread pool (not owned; nullptr detaches; must
  /// outlive the machine while attached). With an executor, for_tiles()
  /// runs the tile bodies concurrently as a *tile phase*: each body may
  /// only touch tile-private simulator state (its tile's L1/L2 arrays) and
  /// every timing-bearing event is appended to a per-tile log. When all
  /// bodies finish, the machine replays the logs serially in ascending
  /// tile-ID order, performing all clock/Stats/DRAM/profiler arithmetic in
  /// exactly the order the serial engine uses — so cycle counts, Stats,
  /// profiler attribution and run reports are bit-identical for every
  /// thread count (determinism argument: DESIGN.md §11).
  void set_executor(ParallelExecutor* exec);
  [[nodiscard]] ParallelExecutor* executor() const { return exec_; }

  /// Runs fn(tile) for every tile in [0, num_tiles). Without an executor
  /// this is a plain serial loop (the immediate mode every pre-existing
  /// caller gets); with one, bodies run as a tile phase (see
  /// set_executor). Inside a body, PE-side operations are legal only for
  /// PEs of that tile; alloc(), dma_traffic(), global_barrier(),
  /// reconfigure(), cycles() and sink (re)attachment are phase-illegal.
  void for_tiles(const std::function<void(std::uint32_t)>& fn);

  // ---- reconfiguration (paper §III-D: LCP-triggered, <= 10 cycles) ----
  /// Global barrier, write-back flush of all dirty cache lines, the <= 10
  /// cycle mode switch, then the hierarchy is rebuilt cold in `next` mode.
  void reconfigure(HwConfig next);

  // ---- observability ----
  /// Attaches a trace sink; reconfigure() then records flush spans on the
  /// "machine" track. Pass nullptr (the default state) to detach — the
  /// only cost of detached tracing is one pointer test per event site.
  void set_trace(obs::Trace* trace) { trace_ = trace; }

  /// Attaches a region-attributed memory profiler (sim/profile.h). The
  /// machine rebinds it (MemProfiler::begin_machine) and replays every
  /// allocation made so far, so attaching after kernel setup still
  /// attributes correctly. Pass nullptr to detach; detached profiling costs
  /// one pointer test per event site.
  void set_profiler(MemProfiler* prof);
  [[nodiscard]] MemProfiler* profiler() const { return prof_; }

  /// Attaches a telemetry registry (obs/telemetry.h). With an executor
  /// attached, every for_tiles() phase then observes host wall time into
  /// three histograms — "sim.tile_fill_ms" (one sample per tile body, the
  /// log-fill running on worker threads), "sim.replay_ms" (one sample per
  /// tile, the serial replay) and "sim.phase_ms" (one sample per phase) —
  /// the ROADMAP item 5 replay-bottleneck breakdown. Workers only write
  /// their own slot of a per-tile scratch vector; histograms are observed
  /// after the phase joins, on the calling thread, so telemetry never
  /// races and never perturbs simulated state (wall time is host-side).
  /// Pass nullptr to detach.
  void set_telemetry(obs::Telemetry* telemetry);
  [[nodiscard]] obs::Telemetry* telemetry() const { return telemetry_; }

  // ---- results ----
  /// Elapsed cycles: max over PE/LCP clocks, floored by the DRAM bandwidth
  /// roofline (total bytes moved / peak bandwidth).
  [[nodiscard]] Cycles cycles() const;
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Per-tile breakdown of stats(). Every counter increment is attributed
  /// to exactly one tile, so the element-wise sum over tiles equals the
  /// global Stats (bit-exact for integer counters; cycle doubles agree up
  /// to summation order). Attribution rules: PE-side events go to the
  /// issuing PE's tile; tile-less DMA and shared-L2 flush traffic is split
  /// evenly across tiles (remainder to tile 0); whole-machine control
  /// events (global barriers, reconfigurations) land on tile 0.
  [[nodiscard]] const std::vector<Stats>& tile_stats() const {
    return tile_stats_;
  }
  /// Load-imbalance metric over tiles (paper Fig. 7): max per-tile busy
  /// cycles (compute + mem stall) divided by the mean. 1.0 = perfectly
  /// balanced; 0.0 when nothing ran yet.
  [[nodiscard]] double load_imbalance() const;
  /// Simulated total energy / average power under the default EnergyModel.
  [[nodiscard]] Picojoules energy_pj() const;
  [[nodiscard]] double watts() const;

 private:
  struct Level;

  void rebuild_hierarchy();
  /// Shared-mode arbitration penalty for a level shared by `sharers`
  /// requesters over `banks` banks.
  [[nodiscard]] double arb_penalty(std::uint32_t sharers,
                                   std::uint32_t banks) const;
  /// Routes one demand access; returns the latency charged to the PE.
  double route_access(std::uint32_t pe, Addr addr, bool write);
  /// L2-level access (demand or traffic-only); returns demand latency.
  double access_l2(std::uint32_t pe, Addr addr, bool write, bool demand);
  /// Timing/stats/profiler half of an L1 access whose array outcome is
  /// already known; `l2(addr, write, demand)` propagates fills/writebacks
  /// to the next level (array access in immediate mode, logged outcome in
  /// replay) and returns the demand latency. Shared between the serial
  /// path and tile-phase replay so the two execute identical arithmetic
  /// in identical order.
  template <class L2Fn>
  double finish_l1(std::uint32_t pe, Addr addr, double l1_latency,
                   const CacheArray::Outcome& out, L2Fn&& l2);
  /// Timing/stats/profiler half of an L2 access with a known outcome.
  double finish_l2(std::uint32_t pe, Addr addr, bool demand,
                   const CacheArray::Outcome& out);
  /// Stall/issue cost applied to the issuing PE after routing an access.
  void apply_mem_latency(std::uint32_t pe, bool write, double latency);
  /// Tile-phase half of mem_read/mem_write: advances the tile-private
  /// array state and logs the outcome(s) for replay.
  void phase_mem(std::uint32_t pe, Addr addr, bool write);
  /// Replays one tile's phase log (serial, called in tile-ID order).
  void replay_tile(std::uint32_t tile);

  /// Applies one mutation to the global stats and the owning tile's slice,
  /// keeping the two views additive by construction.
  template <class Fn>
  void bump(std::uint32_t tile, Fn&& fn) {
    fn(stats_);
    fn(tile_stats_[tile]);
  }
  /// Tile-less DRAM traffic split evenly across tiles (remainder to 0).
  /// `profile_bucket` names the profiler's synthetic region for the bytes;
  /// pass nullptr when the caller already attributed them (flush drains).
  void spread_traffic(std::uint64_t bytes, bool write,
                      const char* profile_bucket);

  SystemConfig cfg_;
  HwConfig hw_;
  Stats stats_;
  std::vector<Stats> tile_stats_;  ///< per tile; sums to stats_
  Dram dram_;
  EnergyModel energy_;
  obs::Trace* trace_ = nullptr;
  MemProfiler* prof_ = nullptr;
  obs::Telemetry* telemetry_ = nullptr;
  ParallelExecutor* exec_ = nullptr;
  bool phase_active_ = false;  ///< a for_tiles() phase is running on workers
  std::vector<std::vector<std::uint64_t>> tile_log_;  ///< per-tile event logs
  std::vector<double> tile_fill_ms_;  ///< per-tile body wall ms, slot-private

  std::vector<AllocRecord> allocs_;  ///< replayed into late-attached profilers

  std::vector<double> pe_clock_;   ///< per global PE id
  std::vector<double> lcp_clock_;  ///< per tile

  // Hierarchy state (rebuilt on reconfigure()).
  std::vector<std::unique_ptr<CacheArray>> l1_tile_;  ///< SC/SCS: per tile
  std::vector<std::unique_ptr<CacheArray>> l1_pe_;    ///< PC: per PE
  std::unique_ptr<CacheArray> l2_global_;             ///< SC/SCS
  std::vector<std::unique_ptr<CacheArray>> l2_tile_;  ///< PC/PS: per tile

  Addr next_addr_ = 0;
};

}  // namespace cosparse::sim
