#include "sim/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"

namespace cosparse::sim {

ParallelExecutor::ParallelExecutor(std::uint32_t threads) {
  const std::uint32_t n = std::max<std::uint32_t>(1, threads);
  threads_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    const std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelExecutor::run(std::uint32_t count,
                           const std::function<void(std::uint32_t)>& fn) {
  if (count == 0) return;
  std::unique_lock<std::mutex> lk(mu_);
  COSPARSE_CHECK_MSG(job_ == nullptr, "ParallelExecutor::run is not reentrant");
  job_ = &fn;
  next_ = 0;
  count_ = count;
  pending_ = count;
  error_ = nullptr;
  work_cv_.notify_all();
  done_cv_.wait(lk, [&] { return pending_ == 0; });
  job_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ParallelExecutor::worker() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk,
                  [&] { return stop_ || (job_ != nullptr && next_ < count_); });
    if (stop_) return;
    while (job_ != nullptr && next_ < count_) {
      const std::uint32_t i = next_++;
      const auto* fn = job_;
      lk.unlock();
      std::exception_ptr err;
      try {
        (*fn)(i);
      } catch (...) {
        err = std::current_exception();
      }
      lk.lock();
      if (err != nullptr && error_ == nullptr) error_ = err;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

std::uint32_t ParallelExecutor::threads_from_env() {
  const char* v = std::getenv("COSPARSE_SIM_THREADS");
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(v, &end, 10);
  if (end == v || *end != '\0') return 0;
  return static_cast<std::uint32_t>(std::min<unsigned long>(n, 256));
}

}  // namespace cosparse::sim
