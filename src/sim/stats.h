// Event counters collected while simulating a kernel.
//
// The energy model (sim/energy.h) converts these counts to picojoules; the
// benchmark harness prints selected counters (hit rates, DRAM traffic) to
// explain the shapes of the reproduced figures, and the observability layer
// (src/obs) exports them into traces and machine-readable run reports.
//
// Counter *names* have a single source of truth: the field list in
// stats.cpp. print(), to_json() and for_each_counter() all derive from it,
// so a counter appears under the same name in text tables, JSON reports and
// trace args.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string_view>

#include "common/json.h"
#include "common/types.h"

namespace cosparse::sim {

struct Stats {
  // PE activity
  double pe_compute_cycles = 0;  ///< ALU/issue cycles across all PEs
  double pe_mem_stall_cycles = 0;

  // L1 level
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t spm_accesses = 0;

  // L2 level
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;

  // traffic
  std::uint64_t dram_read_bytes = 0;
  std::uint64_t dram_write_bytes = 0;
  std::uint64_t prefetch_lines = 0;
  std::uint64_t writeback_lines = 0;

  // crossbar traversals (shared-mode arbitrated transfers)
  std::uint64_t xbar_transfers = 0;

  // control
  std::uint64_t lcp_elements = 0;
  std::uint64_t barriers = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t flushed_dirty_lines = 0;

  [[nodiscard]] std::uint64_t l1_accesses() const { return l1_hits + l1_misses; }
  [[nodiscard]] std::uint64_t l2_accesses() const { return l2_hits + l2_misses; }
  [[nodiscard]] double l1_hit_rate() const {
    const auto a = l1_accesses();
    return a == 0 ? 0.0 : static_cast<double>(l1_hits) / static_cast<double>(a);
  }
  [[nodiscard]] double l2_hit_rate() const {
    const auto a = l2_accesses();
    return a == 0 ? 0.0 : static_cast<double>(l2_hits) / static_cast<double>(a);
  }
  [[nodiscard]] std::uint64_t dram_bytes() const {
    return dram_read_bytes + dram_write_bytes;
  }

  /// Visits every raw counter as (name, value-as-double) in the canonical
  /// order. The names are the ones print()/to_json() emit.
  void for_each_counter(
      const std::function<void(std::string_view, double)>& fn) const;

  /// Raw counters only (no derived rates), as an ordered JSON object.
  /// Integer counters stay exact. Key names match for_each_counter().
  [[nodiscard]] Json to_json() const;

  /// Derived rates/aggregates (l1_hit_rate, l2_hit_rate, dram_bytes) — kept
  /// out of to_json() so per-tile stats sum exactly to the global object.
  [[nodiscard]] Json derived_json() const;

  Stats& operator+=(const Stats& o);
  friend Stats operator-(Stats a, const Stats& b);

  void print(std::ostream& os) const;
};

}  // namespace cosparse::sim
