// Event-based energy model.
//
// The paper builds a power model "based on the static and dynamic power of
// each individual component of the system and cross-verified with a
// fabricated chip prototype [8]" (40 nm Transmuter-class silicon), with
// CACTI-derived cache energy. That silicon is not available here, so this
// model uses representative 40 nm-class per-event energies (documented on
// each constant). Because every comparison in the paper is a *ratio*
// between configurations or platforms, the shapes reproduce as long as the
// constants have the right relative magnitudes: DRAM touch >> cache access
// > SPM access > crossbar hop ~ PE cycle.
#pragma once

#include "sim/config.h"
#include "sim/stats.h"

namespace cosparse::sim {

struct EnergyParams {
  // ---- dynamic energy, picojoules per event ----
  double pe_active_pj = 12.0;   ///< per active PE cycle (Cortex-M4F-class,
                                ///< ~12 uW/MHz in 40LP)
  double cache_access_pj = 10.0;  ///< 4 kB SRAM bank read/write (CACTI-class)
  double spm_access_pj = 4.0;     ///< same bank, no tag/LRU lookup
  double xbar_hop_pj = 2.0;       ///< one crossbar traversal
  double dram_pj_per_byte = 31.0; ///< HBM2 ~3.9 pJ/bit
  double lcp_element_pj = 15.0;   ///< LCP handling of one merged element

  // ---- static (leakage) power, picojoules per cycle per component ----
  double pe_static_pj_per_cycle = 0.06;
  double bank_static_pj_per_cycle = 0.02;
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyParams params = {}) : params_(params) {}

  /// Total energy (pJ) for a run that took `elapsed` cycles with the given
  /// event counts on the given system.
  [[nodiscard]] Picojoules total(const SystemConfig& cfg, const Stats& stats,
                                 Cycles elapsed) const;

  /// Average power in watts at the configured clock.
  [[nodiscard]] double watts(const SystemConfig& cfg, const Stats& stats,
                             Cycles elapsed) const;

  [[nodiscard]] const EnergyParams& params() const { return params_; }

 private:
  EnergyParams params_;
};

}  // namespace cosparse::sim
