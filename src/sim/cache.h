// Reconfigurable cache bank array (Table II "RCache", cache personality).
//
// A CacheArray models a group of 4 kB banks that act as one
// address-interleaved cache: line address modulo #banks selects the bank,
// each bank is 4-way set-associative with true LRU, write-back and
// write-allocate. Each bank group carries per-requester tagged stride
// prefetchers (Table II: "stride prefetcher"): a confirmed stride issues
// `prefetch_depth` line fetches on a miss, and a demand hit on a
// prefetched line issues one more line to sustain the stream.
//
// The array reports which line addresses it fetched so the owning
// MemoryHierarchy can propagate demand/prefetch fills to the next level and
// to DRAM; it performs no timing itself.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cosparse::sim {

class CacheArray {
 public:
  /// `num_requesters` bounds the requester ids passed to access() and sizes
  /// the prefetcher state table.
  CacheArray(std::uint32_t num_banks, std::uint32_t bank_bytes,
             std::uint32_t line_bytes, std::uint32_t associativity,
             std::uint32_t prefetch_depth, std::uint32_t num_requesters);

  static constexpr std::uint32_t kMaxFetchedLines = 1 + 8;

  struct Outcome {
    bool hit = false;                    ///< demand access hit in the array
    std::uint32_t num_fetched = 0;       ///< lines to fill from next level
    std::uint32_t num_prefetched = 0;    ///< subset of num_fetched that are prefetches
    std::uint32_t num_writebacks = 0;    ///< dirty lines evicted by the fills
    Addr fetched_lines[kMaxFetchedLines] = {};   ///< line-aligned byte addrs, demand first
    Addr writeback_lines[kMaxFetchedLines] = {}; ///< line-aligned byte addrs
  };

  /// Performs an access at byte address `addr` (the containing line is
  /// used). `write` marks the line dirty. `low_priority` marks fills on
  /// behalf of an upper level's prefetcher/writeback: they install at
  /// prefetch (victim-preferred) priority and do not train this level's
  /// prefetcher, so speculative streams cannot flush demand-hot data.
  /// Never performs next-level accesses itself — the caller propagates
  /// `fetched_lines`.
  Outcome access(std::uint32_t requester, Addr addr, bool write,
                 bool low_priority = false);

  /// Installs a line that was filled by the *next* level on behalf of this
  /// one (used for inclusive fills from a peer path). Returns the number of
  /// dirty writebacks caused (line addresses appended to `out`).
  std::uint32_t install(Addr addr, Addr* writeback_out);

  /// True if the containing line is present (testing/diagnostics only).
  [[nodiscard]] bool probe(Addr addr) const;

  /// Writes back everything: returns the number of dirty lines and clears
  /// the array (used at reconfiguration boundaries). When `dirty_lines` is
  /// non-null the line-aligned byte address of every dirty line is appended
  /// to it (profiler attribution of flush writebacks).
  std::uint64_t flush(std::vector<Addr>* dirty_lines = nullptr);

  [[nodiscard]] std::size_t total_bytes() const {
    return static_cast<std::size_t>(num_banks_) * bank_bytes_;
  }
  [[nodiscard]] std::uint32_t num_banks() const { return num_banks_; }

 private:
  struct Line {
    std::uint64_t line_addr = 0;  ///< line index (byte addr / line_bytes)
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
  };

  // Each requester tracks a few concurrent streams, matched by line
  // proximity — a PE interleaves accesses to several arrays (matrix
  // stream, frontier bitmap, output), and a single per-requester stride
  // register would see alternating jumps and never confirm. Real stride
  // prefetchers are PC- or region-indexed for exactly this reason.
  static constexpr std::uint32_t kStreamsPerRequester = 4;
  static constexpr std::int64_t kStreamMatchWindow = 64;  ///< lines

  struct StreamState {
    std::uint64_t last_line = 0;
    std::int64_t stride = 0;
    std::uint32_t confidence = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  [[nodiscard]] std::size_t set_base(std::uint64_t line) const;
  Line* find(std::uint64_t line);
  [[nodiscard]] const Line* find(std::uint64_t line) const;
  /// Picks a victim way in the line's set (invalid first, then LRU).
  Line& victim(std::uint64_t line);
  /// Installs `line` (evicting if needed); returns evicted dirty line addr
  /// or 0 with `dirty=false`.
  bool install_line(std::uint64_t line, bool prefetched, Addr* writeback);

  std::uint32_t num_banks_;
  std::uint32_t bank_bytes_;
  std::uint32_t line_bytes_;
  std::uint32_t associativity_;
  std::uint32_t prefetch_depth_;
  std::uint32_t sets_per_bank_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;          ///< [bank][set][way] flattened
  std::vector<StreamState> streams_; ///< [requester][stream] flattened
};

}  // namespace cosparse::sim
