#include "sim/machine.h"

#include <algorithm>
#include <bit>
#include <chrono>

#include "common/error.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"
#include "sim/parallel.h"
#include "sim/profile.h"

namespace cosparse::sim {
namespace {

// ---- tile-phase event log encoding (DESIGN.md §11) ----
//
// During a tile phase every timing-bearing Machine call appends one record
// to the issuing tile's log instead of touching clocks/Stats/DRAM/profiler
// (those are shared across tiles). Replay walks the logs serially in
// ascending tile order and performs exactly the arithmetic — in exactly
// the order — the serial engine would have used.
//
// Record = one header word, then tag-specific payload words. Header:
// [63:56] tag, [55:32] aux (flag bits or a byte count), [31:0] tile-local
// PE index.
enum : std::uint64_t {
  kTagCompute = 1,  // + 1 word: double bit pattern (cycles)
  kTagMemFast = 2,  // + 1 word: addr. Pure L1 (or PS L2) hit, no line moves.
  kTagMem = 3,      // + addr + L1 outcome [+ private-L2 outcomes, walk order]
  kTagSpm = 4,      // SPM read/write (symmetric cost)
  kTagLcp = 5,      // aux = writeback bytes
  kTagBarrier = 6,  // tile barrier
  kTagSpmFill = 7,  // + 2 words: src addr, bytes
};
// Aux flag bits for kTagMemFast / kTagMem.
constexpr std::uint32_t kMemWrite = 1u;     // store (store-buffer cost)
constexpr std::uint32_t kMemDirectL2 = 2u;  // PS: no L1, outcome is the L2's

constexpr std::uint64_t make_header(std::uint64_t tag, std::uint32_t pe_local,
                                    std::uint32_t aux24) {
  return (tag << 56) | (static_cast<std::uint64_t>(aux24) << 32) | pe_local;
}
constexpr std::uint64_t tag_of(std::uint64_t h) { return h >> 56; }
constexpr std::uint32_t aux_of(std::uint64_t h) {
  return static_cast<std::uint32_t>((h >> 32) & 0xffffffu);
}
constexpr std::uint32_t pe_local_of(std::uint64_t h) {
  return static_cast<std::uint32_t>(h & 0xffffffffu);
}

void push_outcome(std::vector<std::uint64_t>& log,
                  const CacheArray::Outcome& o) {
  log.push_back(static_cast<std::uint64_t>(o.hit ? 1 : 0) |
                (static_cast<std::uint64_t>(o.num_fetched) << 8) |
                (static_cast<std::uint64_t>(o.num_prefetched) << 16) |
                (static_cast<std::uint64_t>(o.num_writebacks) << 24));
  for (std::uint32_t i = 0; i < o.num_fetched; ++i) {
    log.push_back(o.fetched_lines[i]);
  }
  for (std::uint32_t i = 0; i < o.num_writebacks; ++i) {
    log.push_back(o.writeback_lines[i]);
  }
}

CacheArray::Outcome pop_outcome(const std::vector<std::uint64_t>& log,
                                std::size_t& cur) {
  CacheArray::Outcome o;
  const std::uint64_t w = log[cur++];
  o.hit = (w & 1u) != 0;
  o.num_fetched = static_cast<std::uint32_t>((w >> 8) & 0xffu);
  o.num_prefetched = static_cast<std::uint32_t>((w >> 16) & 0xffu);
  o.num_writebacks = static_cast<std::uint32_t>((w >> 24) & 0xffu);
  for (std::uint32_t i = 0; i < o.num_fetched; ++i) {
    o.fetched_lines[i] = log[cur++];
  }
  for (std::uint32_t i = 0; i < o.num_writebacks; ++i) {
    o.writeback_lines[i] = log[cur++];
  }
  return o;
}

/// The one propagation order both the phase (array state) and replay
/// (timing/stats) walk for an L1 outcome: fetched lines first — the
/// demand fill, when the access missed, is fetched_lines[0] — then the
/// dirty victims.
template <class Fn>
void walk_propagation(const CacheArray::Outcome& o, Fn&& fn) {
  for (std::uint32_t i = 0; i < o.num_fetched; ++i) {
    fn(o.fetched_lines[i], /*write=*/false, /*demand=*/!o.hit && i == 0);
  }
  for (std::uint32_t i = 0; i < o.num_writebacks; ++i) {
    fn(o.writeback_lines[i], /*write=*/true, /*demand=*/false);
  }
}

/// Tile whose phase body the current worker thread is executing.
constexpr std::uint32_t kNoTile = 0xffffffffu;
thread_local std::uint32_t t_phase_tile = kNoTile;

}  // namespace

Machine::Machine(const SystemConfig& cfg, HwConfig initial)
    : cfg_(cfg),
      hw_(initial),
      tile_stats_(cfg.num_tiles),
      dram_(cfg_),
      pe_clock_(cfg.num_pes(), 0.0),
      lcp_clock_(cfg.num_tiles, 0.0) {
  rebuild_hierarchy();
}

Addr Machine::alloc(std::size_t bytes, std::string_view label) {
  COSPARSE_CHECK_MSG(!phase_active_,
                     "alloc() is phase-illegal: hoist allocations before "
                     "for_tiles()");
  const Addr base = next_addr_;
  const Addr aligned =
      (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  // Pad with one guard line so distinct arrays never share a cache line.
  next_addr_ += aligned + kCacheLineBytes;
  allocs_.push_back(AllocRecord{base, bytes, std::string(label)});
  if (prof_ != nullptr) prof_->add_region(base, bytes, label);
  return base;
}

void Machine::set_profiler(MemProfiler* prof) {
  COSPARSE_CHECK_MSG(!phase_active_, "set_profiler() is phase-illegal");
  prof_ = prof;
  if (prof_ == nullptr) return;
  prof_->begin_machine(cfg_.num_tiles, cfg_.line_bytes, cfg_.dram_channels);
  for (const AllocRecord& a : allocs_) {
    prof_->add_region(a.base, a.bytes, a.label);
  }
}

void Machine::set_executor(ParallelExecutor* exec) {
  COSPARSE_CHECK_MSG(!phase_active_, "set_executor() is phase-illegal");
  exec_ = exec;
}

void Machine::set_telemetry(obs::Telemetry* telemetry) {
  COSPARSE_CHECK_MSG(!phase_active_, "set_telemetry() is phase-illegal");
  telemetry_ = telemetry;
}

namespace {

double wall_ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)  // cosparse-lint: allow(determinism)
      .count();
}

}  // namespace

void Machine::for_tiles(const std::function<void(std::uint32_t)>& fn) {
  COSPARSE_CHECK_MSG(!phase_active_, "for_tiles() does not nest");
  const std::uint32_t T = cfg_.num_tiles;
  if (exec_ == nullptr) {
    // Immediate mode: the pre-existing serial code path, untouched.
    const obs::PhaseScope phase("sim.exec");
    for (std::uint32_t t = 0; t < T; ++t) fn(t);
    return;
  }
  // Phase timing (ROADMAP item 5: localize the replay bottleneck). Workers
  // write only their own slot of tile_fill_ms_; histograms are observed
  // after the join, on this thread — telemetry reads wall clocks only, so
  // the simulated event stream is identical with or without it.
  const bool timed = telemetry_ != nullptr;
  const auto phase_t0 = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
  if (timed) tile_fill_ms_.assign(T, 0.0);
  tile_log_.assign(T, {});
  phase_active_ = true;
  try {
    exec_->run(T, [&](std::uint32_t t) {
      const obs::PhaseScope phase("sim.log_fill");
      t_phase_tile = t;
      if (timed) {
        const auto t0 = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
        fn(t);
        tile_fill_ms_[t] = wall_ms_since(t0);
      } else {
        fn(t);
      }
      t_phase_tile = kNoTile;
    });
  } catch (...) {
    phase_active_ = false;
    tile_log_.clear();
    throw;
  }
  phase_active_ = false;
  // Deterministic merge: replay in ascending tile order — the exact order
  // the serial engine interleaves tiles in.
  const obs::PhaseScope replay_phase("sim.replay");
  if (timed) {
    auto& fill_hist = telemetry_->histogram("sim.tile_fill_ms");
    for (std::uint32_t t = 0; t < T; ++t) fill_hist.observe(tile_fill_ms_[t]);
    auto& replay_hist = telemetry_->histogram("sim.replay_ms");
    for (std::uint32_t t = 0; t < T; ++t) {
      const auto t0 = std::chrono::steady_clock::now();  // cosparse-lint: allow(determinism)
      replay_tile(t);
      replay_hist.observe(wall_ms_since(t0));
    }
    telemetry_->histogram("sim.phase_ms").observe(wall_ms_since(phase_t0));
  } else {
    for (std::uint32_t t = 0; t < T; ++t) replay_tile(t);
  }
  tile_log_.clear();
}

void Machine::compute(std::uint32_t pe, double cycles) {
  if (phase_active_) {
    const std::uint32_t tile = tile_of(pe);
    COSPARSE_CHECK_MSG(tile == t_phase_tile,
                       "cross-tile compute in a tile phase");
    auto& log = tile_log_[tile];
    log.push_back(make_header(kTagCompute, pe % cfg_.pes_per_tile, 0));
    log.push_back(std::bit_cast<std::uint64_t>(cycles));
    return;
  }
  pe_clock_[pe] += cycles;
  bump(tile_of(pe), [&](Stats& s) { s.pe_compute_cycles += cycles; });
}

void Machine::rebuild_hierarchy() {
  l1_tile_.clear();
  l1_pe_.clear();
  l2_global_.reset();
  l2_tile_.clear();

  const std::uint32_t T = cfg_.num_tiles;
  const std::uint32_t P = cfg_.pes_per_tile;

  switch (hw_) {
    case HwConfig::kSC:
      for (std::uint32_t t = 0; t < T; ++t) {
        l1_tile_.push_back(std::make_unique<CacheArray>(
            P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/P));
      }
      l2_global_ = std::make_unique<CacheArray>(
          T * P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
          cfg_.prefetch_depth, /*requesters=*/T * P);
      break;
    case HwConfig::kSCS:
      for (std::uint32_t t = 0; t < T; ++t) {
        l1_tile_.push_back(std::make_unique<CacheArray>(
            std::max(1u, P / 2), cfg_.bank_bytes, cfg_.line_bytes,
            cfg_.associativity, cfg_.prefetch_depth, /*requesters=*/P));
      }
      l2_global_ = std::make_unique<CacheArray>(
          T * P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
          cfg_.prefetch_depth, /*requesters=*/T * P);
      break;
    case HwConfig::kPC:
      for (std::uint32_t pe = 0; pe < T * P; ++pe) {
        l1_pe_.push_back(std::make_unique<CacheArray>(
            1, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/1));
      }
      for (std::uint32_t t = 0; t < T; ++t) {
        l2_tile_.push_back(std::make_unique<CacheArray>(
            P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/P));
      }
      break;
    case HwConfig::kPS:
      // L1 is all-SPM; demand traffic goes straight to the per-tile L2.
      for (std::uint32_t t = 0; t < T; ++t) {
        l2_tile_.push_back(std::make_unique<CacheArray>(
            P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/P));
      }
      break;
  }
}

double Machine::arb_penalty(std::uint32_t sharers,
                            std::uint32_t banks) const {
  if (sharers <= 1) return 0.0;
  return cfg_.xbar_conflict_factor * static_cast<double>(sharers - 1) /
         static_cast<double>(banks);
}

double Machine::finish_l2(std::uint32_t pe, Addr addr, bool demand,
                          const CacheArray::Outcome& out) {
  const std::uint32_t tile = tile_of(pe);
  const CacheArray* l2 = l2_global_ ? l2_global_.get() : l2_tile_[tile].get();
  const std::uint32_t sharers =
      l2_global_ ? cfg_.num_pes() : cfg_.pes_per_tile;

  const double arb = arb_penalty(sharers, l2->num_banks());
  double latency = cfg_.xbar_latency + arb + cfg_.l2_bank_latency;
  bump(tile, [](Stats& s) { ++s.xbar_transfers; });
  if (prof_ != nullptr) prof_->xbar_transfer(tile, addr, arb);

  if (out.hit) {
    bump(tile, [](Stats& s) { ++s.l2_hits; });
  } else {
    bump(tile, [](Stats& s) { ++s.l2_misses; });
  }
  if (prof_ != nullptr) prof_->l2_access(tile, addr, out.hit);
  // Every fetched line (demand fill + prefetches) comes from DRAM.
  for (std::uint32_t i = 0; i < out.num_fetched; ++i) {
    const bool is_demand_fill = (i == 0 && !out.hit);
    if (is_demand_fill) {
      latency += cfg_.refill_overhead +
                 dram_.access(cfg_.line_bytes, /*write=*/false,
                              pe_clock_[pe] + latency, stats_,
                              &tile_stats_[tile]);
      if (prof_ != nullptr) {
        prof_->dram(tile, out.fetched_lines[i], cfg_.line_bytes,
                    /*write=*/false);
      }
    } else {
      dram_.traffic(cfg_.line_bytes, /*write=*/false, stats_,
                    &tile_stats_[tile]);
      bump(tile, [](Stats& s) { ++s.prefetch_lines; });
      if (prof_ != nullptr) {
        prof_->dram(tile, out.fetched_lines[i], cfg_.line_bytes,
                    /*write=*/false);
        prof_->prefetch_line(tile, out.fetched_lines[i]);
      }
    }
  }
  for (std::uint32_t i = 0; i < out.num_writebacks; ++i) {
    dram_.traffic(cfg_.line_bytes, /*write=*/true, stats_,
                  &tile_stats_[tile]);
    bump(tile, [](Stats& s) { ++s.writeback_lines; });
    if (prof_ != nullptr) {
      prof_->dram(tile, out.writeback_lines[i], cfg_.line_bytes,
                  /*write=*/true);
      prof_->l2_writeback(tile, out.writeback_lines[i]);
    }
  }
  return demand ? latency : 0.0;
}

double Machine::access_l2(std::uint32_t pe, Addr addr, bool write,
                          bool demand) {
  const std::uint32_t tile = tile_of(pe);
  CacheArray* l2 = nullptr;
  std::uint32_t requester = 0;
  if (l2_global_) {
    l2 = l2_global_.get();
    requester = pe;
  } else {
    l2 = l2_tile_[tile].get();
    requester = pe % cfg_.pes_per_tile;
  }
  const auto out = l2->access(requester, addr, write, /*low_priority=*/!demand);
  return finish_l2(pe, addr, demand, out);
}

template <class L2Fn>
double Machine::finish_l1(std::uint32_t pe, Addr addr, double l1_latency,
                          const CacheArray::Outcome& out, L2Fn&& l2) {
  const std::uint32_t tile = tile_of(pe);
  double latency = l1_latency;
  if (prof_ != nullptr) prof_->l1_access(tile, addr, out.hit);
  if (out.hit) {
    bump(tile, [](Stats& s) { ++s.l1_hits; });
  } else {
    bump(tile, [](Stats& s) { ++s.l1_misses; });
  }
  walk_propagation(out, [&](Addr a, bool w, bool demand) {
    if (demand) {
      // The demand fill exposes the full next-level latency.
      latency += cfg_.refill_overhead + l2(a, /*write=*/false, /*demand=*/true);
    } else if (!w) {
      // Tagged/miss prefetches move lines without stalling the PE.
      l2(a, /*write=*/false, /*demand=*/false);
      bump(tile, [](Stats& s) { ++s.prefetch_lines; });
      if (prof_ != nullptr) prof_->prefetch_line(tile, a);
    } else {
      // Dirty L1 victims drain into L2 (no PE stall).
      l2(a, /*write=*/true, /*demand=*/false);
      bump(tile, [](Stats& s) { ++s.writeback_lines; });
      if (prof_ != nullptr) prof_->l1_writeback(tile, a);
    }
  });
  return latency;
}

double Machine::route_access(std::uint32_t pe, Addr addr, bool write) {
  const std::uint32_t tile = tile_of(pe);
  if (prof_ != nullptr) prof_->reuse_sample(addr);

  // L1 hits are modeled as pipelined: a 1-issue in-order core with
  // software-pipelined kernels hides the load-to-use latency of hits, so a
  // hit costs one issue slot (plus shared-mode arbitration); only misses
  // expose the full hierarchy latency. Without this, per-element SpMV cost
  // lands ~3x above what MAC loops achieve on real in-order cores.
  CacheArray* l1 = nullptr;
  std::uint32_t requester = 0;
  double l1_latency = 0.0;
  if (!l1_tile_.empty()) {
    // Shared L1 within the tile (SC/SCS).
    l1 = l1_tile_[tile].get();
    requester = pe % cfg_.pes_per_tile;
    const double arb = arb_penalty(cfg_.pes_per_tile, l1->num_banks());
    l1_latency = 1.0 + arb;
    bump(tile, [](Stats& s) { ++s.xbar_transfers; });
    if (prof_ != nullptr) prof_->xbar_transfer(tile, addr, arb);
  } else if (!l1_pe_.empty()) {
    // Private L1 (PC): transparent crossbar, direct access.
    l1 = l1_pe_[pe].get();
    requester = 0;
    l1_latency = 1.0;
  } else {
    // PS: no L1 cache — straight to the per-tile L2.
    return access_l2(pe, addr, write, /*demand=*/true);
  }

  const auto out = l1->access(requester, addr, write);
  return finish_l1(pe, addr, l1_latency, out,
                   [&](Addr a, bool w, bool demand) {
                     return access_l2(pe, a, w, demand);
                   });
}

void Machine::phase_mem(std::uint32_t pe, Addr addr, bool write) {
  const std::uint32_t tile = tile_of(pe);
  COSPARSE_CHECK_MSG(tile == t_phase_tile,
                     "cross-tile memory access in a tile phase");
  auto& log = tile_log_[tile];
  const std::uint32_t lp = pe % cfg_.pes_per_tile;
  const std::uint32_t wflag = write ? kMemWrite : 0u;

  if (l1_tile_.empty() && l1_pe_.empty()) {
    // PS: the demand access goes straight to the tile-private L2. Array
    // state advances now; timing/stats/DRAM happen at replay.
    const auto out =
        l2_tile_[tile]->access(lp, addr, write, /*low_priority=*/false);
    if (out.hit && out.num_fetched == 0 && out.num_writebacks == 0) {
      log.push_back(make_header(kTagMemFast, lp, wflag | kMemDirectL2));
      log.push_back(addr);
      return;
    }
    log.push_back(make_header(kTagMem, lp, wflag | kMemDirectL2));
    log.push_back(addr);
    push_outcome(log, out);
    return;
  }

  CacheArray* l1 = !l1_tile_.empty() ? l1_tile_[tile].get() : l1_pe_[pe].get();
  const std::uint32_t requester = !l1_tile_.empty() ? lp : 0;
  const auto out = l1->access(requester, addr, write);
  if (out.hit && out.num_fetched == 0 && out.num_writebacks == 0) {
    // The common case: a pure hit moves no lines — 2 log words.
    log.push_back(make_header(kTagMemFast, lp, wflag));
    log.push_back(addr);
    return;
  }
  log.push_back(make_header(kTagMem, lp, wflag));
  log.push_back(addr);
  push_outcome(log, out);
  if (!l2_tile_.empty()) {
    // PC: the tile-private L2's state advances now, in the same
    // propagation order replay consumes the logged outcomes in. The
    // shared L2 of SC/SCS is NOT touched here — replay performs those
    // array accesses serially, preserving the serial warming order.
    walk_propagation(out, [&](Addr a, bool w, bool demand) {
      push_outcome(log,
                   l2_tile_[tile]->access(lp, a, w, /*low_priority=*/!demand));
    });
  }
}

void Machine::apply_mem_latency(std::uint32_t pe, bool write, double latency) {
  if (write) {
    // Stores drain through a store buffer: the PE spends one issue slot and
    // does not wait for the (write-allocate) fill — cache state and traffic
    // are still updated, and sustained store misses are bounded by the DRAM
    // roofline rather than per-store latency.
    pe_clock_[pe] += 1.0;
    bump(tile_of(pe), [](Stats& s) { s.pe_mem_stall_cycles += 1.0; });
  } else {
    pe_clock_[pe] += latency;
    bump(tile_of(pe), [&](Stats& s) { s.pe_mem_stall_cycles += latency; });
  }
}

void Machine::replay_tile(std::uint32_t tile) {
  const std::vector<std::uint64_t>& log = tile_log_[tile];
  const std::uint32_t P = cfg_.pes_per_tile;
  std::size_t cur = 0;
  while (cur < log.size()) {
    const std::uint64_t h = log[cur++];
    const std::uint32_t pe = tile * P + pe_local_of(h);
    switch (tag_of(h)) {
      case kTagCompute:
        compute(pe, std::bit_cast<double>(log[cur++]));
        break;
      case kTagMemFast: {
        const Addr addr = log[cur++];
        const std::uint32_t aux = aux_of(h);
        if (prof_ != nullptr) prof_->reuse_sample(addr);
        double lat = 0.0;
        if ((aux & kMemDirectL2) != 0) {
          const double arb = arb_penalty(P, l2_tile_[tile]->num_banks());
          lat = cfg_.xbar_latency + arb + cfg_.l2_bank_latency;
          bump(tile, [](Stats& s) { ++s.xbar_transfers; });
          if (prof_ != nullptr) prof_->xbar_transfer(tile, addr, arb);
          bump(tile, [](Stats& s) { ++s.l2_hits; });
          if (prof_ != nullptr) prof_->l2_access(tile, addr, true);
        } else if (!l1_tile_.empty()) {
          const double arb = arb_penalty(P, l1_tile_[tile]->num_banks());
          lat = 1.0 + arb;
          bump(tile, [](Stats& s) { ++s.xbar_transfers; });
          if (prof_ != nullptr) prof_->xbar_transfer(tile, addr, arb);
          bump(tile, [](Stats& s) { ++s.l1_hits; });
          if (prof_ != nullptr) prof_->l1_access(tile, addr, true);
        } else {
          lat = 1.0;
          bump(tile, [](Stats& s) { ++s.l1_hits; });
          if (prof_ != nullptr) prof_->l1_access(tile, addr, true);
        }
        apply_mem_latency(pe, (aux & kMemWrite) != 0, lat);
        break;
      }
      case kTagMem: {
        const Addr addr = log[cur++];
        const std::uint32_t aux = aux_of(h);
        if (prof_ != nullptr) prof_->reuse_sample(addr);
        double lat = 0.0;
        if ((aux & kMemDirectL2) != 0) {
          lat = finish_l2(pe, addr, /*demand=*/true, pop_outcome(log, cur));
        } else {
          double l1_latency = 1.0;
          if (!l1_tile_.empty()) {
            const double arb = arb_penalty(P, l1_tile_[tile]->num_banks());
            l1_latency = 1.0 + arb;
            bump(tile, [](Stats& s) { ++s.xbar_transfers; });
            if (prof_ != nullptr) prof_->xbar_transfer(tile, addr, arb);
          }
          const auto out = pop_outcome(log, cur);
          lat = finish_l1(pe, addr, l1_latency, out,
                          [&](Addr a, bool w, bool demand) {
                            if (l2_global_) return access_l2(pe, a, w, demand);
                            return finish_l2(pe, a, demand,
                                             pop_outcome(log, cur));
                          });
        }
        apply_mem_latency(pe, (aux & kMemWrite) != 0, lat);
        break;
      }
      case kTagSpm:
        spm_read(pe, 0);
        break;
      case kTagLcp:
        lcp_emit(pe, aux_of(h));
        break;
      case kTagBarrier:
        tile_barrier(tile);
        break;
      case kTagSpmFill: {
        const Addr src = log[cur++];
        const auto bytes = static_cast<std::size_t>(log[cur++]);
        spm_fill_tile(tile, src, bytes);
        break;
      }
      default:
        COSPARSE_CHECK_MSG(false, "corrupt tile-phase event log");
    }
  }
}

void Machine::mem_read(std::uint32_t pe, Addr addr, std::uint32_t bytes) {
  (void)bytes;  // sub-line accesses cost one hierarchy round trip
  if (phase_active_) {
    phase_mem(pe, addr, /*write=*/false);
    return;
  }
  const double latency = route_access(pe, addr, /*write=*/false);
  apply_mem_latency(pe, /*write=*/false, latency);
}

void Machine::mem_write(std::uint32_t pe, Addr addr, std::uint32_t bytes) {
  (void)bytes;
  if (phase_active_) {
    phase_mem(pe, addr, /*write=*/true);
    return;
  }
  const double latency = route_access(pe, addr, /*write=*/true);
  apply_mem_latency(pe, /*write=*/true, latency);
}

std::size_t Machine::spm_bytes_per_tile() const {
  return hw_ == HwConfig::kSCS ? cfg_.scs_spm_bytes_per_tile() : 0;
}

std::size_t Machine::spm_bytes_per_pe() const {
  return hw_ == HwConfig::kPS ? cfg_.ps_spm_bytes_per_pe() : 0;
}

void Machine::spm_read(std::uint32_t pe, std::uint32_t /*bytes*/) {
  COSPARSE_CHECK_MSG(has_l1_spm(hw_), "SPM access in a cache-only config");
  if (phase_active_) {
    const std::uint32_t tile = tile_of(pe);
    COSPARSE_CHECK_MSG(tile == t_phase_tile,
                       "cross-tile SPM access in a tile phase");
    tile_log_[tile].push_back(
        make_header(kTagSpm, pe % cfg_.pes_per_tile, 0));
    return;
  }
  double latency = cfg_.spm_latency + cfg_.spm_mgmt_cycles;
  if (hw_ == HwConfig::kSCS) {
    // Shared SPM arbitration: the SCS split is by capacity, so all of the
    // tile's word-granular banks still serve SPM requests.
    latency += arb_penalty(cfg_.pes_per_tile, cfg_.pes_per_tile);
  }
  pe_clock_[pe] += latency;
  bump(tile_of(pe), [&](Stats& s) {
    s.pe_mem_stall_cycles += latency;
    ++s.spm_accesses;
  });
  if (prof_ != nullptr) prof_->spm_access(tile_of(pe));
}

void Machine::spm_write(std::uint32_t pe, std::uint32_t bytes) {
  spm_read(pe, bytes);  // symmetric cost
}

void Machine::spm_fill_tile(std::uint32_t tile, Addr src, std::size_t bytes) {
  COSPARSE_CHECK_MSG(hw_ == HwConfig::kSCS,
                     "tile SPM fill is only meaningful in SCS");
  if (phase_active_) {
    COSPARSE_CHECK_MSG(tile == t_phase_tile,
                       "cross-tile SPM fill in a tile phase");
    auto& log = tile_log_[tile];
    log.push_back(make_header(kTagSpmFill, 0, 0));
    log.push_back(src);
    log.push_back(static_cast<std::uint64_t>(bytes));
    return;
  }
  tile_barrier(tile);
  // Stream the segment line by line through the (shared) L2 so a segment
  // already pulled by another tile costs L2 bandwidth, not DRAM bandwidth.
  const std::uint32_t pe0 = tile * cfg_.pes_per_tile;
  const std::uint64_t l2_hits_before = stats_.l2_hits;
  std::uint64_t lines = 0;
  for (Addr a = src; a < src + bytes; a += cfg_.line_bytes, ++lines) {
    access_l2(pe0, a, /*write=*/false, /*demand=*/false);
  }
  const std::uint64_t from_l2 = stats_.l2_hits - l2_hits_before;
  const std::uint64_t from_dram = lines - std::min(lines, from_l2);
  // DMA timing: DRAM-sourced lines move at the tile's share of DRAM
  // bandwidth; L2-sourced lines at L2 bank bandwidth.
  const double tile_share =
      cfg_.dram_peak_bytes_per_cycle() / static_cast<double>(cfg_.num_tiles);
  const double fill_cycles =
      cfg_.dram_latency_min +
      static_cast<double>(from_dram) * cfg_.line_bytes / tile_share +
      static_cast<double>(from_l2) * 2.0;
  const std::uint32_t base = tile * cfg_.pes_per_tile;
  for (std::uint32_t p = 0; p < cfg_.pes_per_tile; ++p) {
    pe_clock_[base + p] += fill_cycles;
  }
  lcp_clock_[tile] += fill_cycles;
  bump(tile, [&](Stats& s) {
    s.pe_mem_stall_cycles +=
        fill_cycles * static_cast<double>(cfg_.pes_per_tile);
  });
}

void Machine::spread_traffic(std::uint64_t bytes, bool write,
                             const char* profile_bucket) {
  // Tile-less machine-wide streams: split the byte attribution evenly so
  // per-tile slices still sum exactly to the global counters (the DRAM
  // model sees the same total either way).
  const std::uint64_t T = cfg_.num_tiles;
  const std::uint64_t share = bytes / T;
  const std::uint64_t remainder = bytes - share * T;
  for (std::uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    const std::uint64_t mine = share + (t == 0 ? remainder : 0);
    if (mine == 0) continue;
    dram_.traffic(mine, write, stats_, &tile_stats_[t]);
    if (prof_ != nullptr && profile_bucket != nullptr) {
      prof_->dram_bulk(t, mine, write, profile_bucket);
    }
  }
}

void Machine::dma_traffic(std::size_t bytes, bool write) {
  COSPARSE_CHECK_MSG(!phase_active_, "dma_traffic() is phase-illegal");
  spread_traffic(bytes, write, "dma");
}

void Machine::lcp_emit(std::uint32_t pe, std::uint32_t bytes) {
  const std::uint32_t tile = tile_of(pe);
  if (phase_active_) {
    COSPARSE_CHECK_MSG(tile == t_phase_tile,
                       "cross-tile LCP emit in a tile phase");
    tile_log_[tile].push_back(
        make_header(kTagLcp, pe % cfg_.pes_per_tile, bytes));
    return;
  }
  // The PE spends one cycle handing the element off.
  pe_clock_[pe] += 1.0;
  bump(tile, [](Stats& s) {
    s.pe_compute_cycles += 1.0;
    ++s.lcp_elements;
  });
  // The LCP serializes handling + writeback of the element.
  lcp_clock_[tile] += cfg_.lcp_cycles_per_element();
  dram_.traffic(bytes, /*write=*/true, stats_, &tile_stats_[tile]);
  if (prof_ != nullptr) {
    prof_->dram_bulk(tile, bytes, /*write=*/true, "lcp.writeback");
  }
}

void Machine::tile_barrier(std::uint32_t tile) {
  if (phase_active_) {
    COSPARSE_CHECK_MSG(tile == t_phase_tile,
                       "cross-tile barrier in a tile phase");
    tile_log_[tile].push_back(make_header(kTagBarrier, 0, 0));
    return;
  }
  const std::uint32_t base = tile * cfg_.pes_per_tile;
  double mx = lcp_clock_[tile];
  for (std::uint32_t p = 0; p < cfg_.pes_per_tile; ++p) {
    mx = std::max(mx, pe_clock_[base + p]);
  }
  for (std::uint32_t p = 0; p < cfg_.pes_per_tile; ++p) {
    pe_clock_[base + p] = mx;
  }
  lcp_clock_[tile] = mx;
  bump(tile, [](Stats& s) { ++s.barriers; });
}

void Machine::global_barrier() {
  COSPARSE_CHECK_MSG(!phase_active_, "global_barrier() is phase-illegal");
  double mx = 0.0;
  for (double c : pe_clock_) mx = std::max(mx, c);
  for (double c : lcp_clock_) mx = std::max(mx, c);
  std::fill(pe_clock_.begin(), pe_clock_.end(), mx);
  std::fill(lcp_clock_.begin(), lcp_clock_.end(), mx);
  // Whole-machine control events are attributed to tile 0 (see tile_stats()).
  bump(0, [](Stats& s) { ++s.barriers; });
}

void Machine::reconfigure(HwConfig next) {
  COSPARSE_CHECK_MSG(!phase_active_, "reconfigure() is phase-illegal");
  const double span_begin = static_cast<double>(cycles());
  const HwConfig from = hw_;
  global_barrier();
  // Write back all dirty lines; banks drain in parallel, bounded by DRAM
  // bandwidth. Dirty lines are attributed to the tile owning the flushed
  // structure; the shared L2's flush is split evenly (remainder to 0).
  // When a profiler is attached, every flushed dirty line is attributed to
  // its region individually (count + line_bytes of DRAM writeback per line,
  // matching the aggregate Stats exactly); spread_traffic then skips the
  // profiler (nullptr bucket) to avoid double attribution.
  std::vector<Addr> dirty_addrs;
  std::vector<Addr>* collect = prof_ != nullptr ? &dirty_addrs : nullptr;
  const auto drain = [&](std::uint32_t tile) {
    if (prof_ == nullptr) return;
    for (Addr a : dirty_addrs) prof_->flushed_line(tile, a);
    dirty_addrs.clear();
  };
  std::uint64_t dirty = 0;
  for (std::uint32_t t = 0; t < static_cast<std::uint32_t>(l1_tile_.size());
       ++t) {
    const std::uint64_t d = l1_tile_[t]->flush(collect);
    dirty += d;
    bump(t, [&](Stats& s) { s.flushed_dirty_lines += d; });
    drain(t);
  }
  for (std::uint32_t pe = 0; pe < static_cast<std::uint32_t>(l1_pe_.size());
       ++pe) {
    const std::uint64_t d = l1_pe_[pe]->flush(collect);
    dirty += d;
    bump(tile_of(pe), [&](Stats& s) { s.flushed_dirty_lines += d; });
    drain(tile_of(pe));
  }
  if (l2_global_) {
    const std::uint64_t d = l2_global_->flush(collect);
    dirty += d;
    stats_.flushed_dirty_lines += d;
    const std::uint64_t share = d / cfg_.num_tiles;
    const std::uint64_t remainder = d - share * cfg_.num_tiles;
    for (std::uint32_t t = 0; t < cfg_.num_tiles; ++t) {
      tile_stats_[t].flushed_dirty_lines += share + (t == 0 ? remainder : 0);
    }
    // Shared-L2 lines belong to no single tile; round-robin mirrors the
    // even split of the Stats attribution.
    if (prof_ != nullptr) {
      for (std::size_t i = 0; i < dirty_addrs.size(); ++i) {
        prof_->flushed_line(static_cast<std::uint32_t>(i % cfg_.num_tiles),
                            dirty_addrs[i]);
      }
      dirty_addrs.clear();
    }
  }
  for (std::uint32_t t = 0; t < static_cast<std::uint32_t>(l2_tile_.size());
       ++t) {
    const std::uint64_t d = l2_tile_[t]->flush(collect);
    dirty += d;
    bump(t, [&](Stats& s) { s.flushed_dirty_lines += d; });
    drain(t);
  }
  const std::uint64_t flush_bytes = dirty * cfg_.line_bytes;
  spread_traffic(flush_bytes, /*write=*/true, /*profile_bucket=*/nullptr);
  const double flush_cycles =
      dirty == 0 ? 0.0
                 : cfg_.dram_latency_min +
                       static_cast<double>(flush_bytes) /
                           cfg_.dram_peak_bytes_per_cycle();
  const double penalty = flush_cycles + cfg_.reconfig_cycles;
  for (double& c : pe_clock_) c += penalty;
  for (double& c : lcp_clock_) c += penalty;
  hw_ = next;
  rebuild_hierarchy();
  bump(0, [](Stats& s) { ++s.reconfigurations; });
  if (trace_ != nullptr && trace_->enabled()) {
    Json args = Json::object();
    args["from"] = to_string(from);
    args["to"] = to_string(next);
    args["flushed_dirty_lines"] = dirty;
    trace_->add_span("machine", std::string("reconfigure ") + to_string(from) +
                                    "->" + to_string(next),
                     span_begin, static_cast<double>(cycles()),
                     std::move(args));
  }
}

Cycles Machine::cycles() const {
  COSPARSE_CHECK_MSG(!phase_active_,
                     "cycles() is phase-illegal: clocks advance at replay");
  double mx = 0.0;
  for (double c : pe_clock_) mx = std::max(mx, c);
  for (double c : lcp_clock_) mx = std::max(mx, c);
  mx = std::max(mx, dram_.bandwidth_floor_cycles());
  return static_cast<Cycles>(mx);
}

double Machine::load_imbalance() const {
  double total = 0.0;
  double mx = 0.0;
  for (const Stats& t : tile_stats_) {
    const double busy = t.pe_compute_cycles + t.pe_mem_stall_cycles;
    total += busy;
    mx = std::max(mx, busy);
  }
  if (total <= 0.0) return 0.0;
  const double mean = total / static_cast<double>(tile_stats_.size());
  return mx / mean;
}

Picojoules Machine::energy_pj() const {
  return energy_.total(cfg_, stats_, cycles());
}

double Machine::watts() const { return energy_.watts(cfg_, stats_, cycles()); }

}  // namespace cosparse::sim
