#include "sim/machine.h"

#include <algorithm>

#include "common/error.h"
#include "sim/profile.h"

namespace cosparse::sim {

Machine::Machine(const SystemConfig& cfg, HwConfig initial)
    : cfg_(cfg),
      hw_(initial),
      tile_stats_(cfg.num_tiles),
      dram_(cfg_),
      pe_clock_(cfg.num_pes(), 0.0),
      lcp_clock_(cfg.num_tiles, 0.0) {
  rebuild_hierarchy();
}

Addr Machine::alloc(std::size_t bytes, std::string_view label) {
  const Addr base = next_addr_;
  const Addr aligned =
      (bytes + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  // Pad with one guard line so distinct arrays never share a cache line.
  next_addr_ += aligned + kCacheLineBytes;
  allocs_.push_back(AllocRecord{base, bytes, std::string(label)});
  if (prof_ != nullptr) prof_->add_region(base, bytes, label);
  return base;
}

void Machine::set_profiler(MemProfiler* prof) {
  prof_ = prof;
  if (prof_ == nullptr) return;
  prof_->begin_machine(cfg_.num_tiles, cfg_.line_bytes, cfg_.dram_channels);
  for (const AllocRecord& a : allocs_) {
    prof_->add_region(a.base, a.bytes, a.label);
  }
}

void Machine::compute(std::uint32_t pe, double cycles) {
  pe_clock_[pe] += cycles;
  bump(tile_of(pe), [&](Stats& s) { s.pe_compute_cycles += cycles; });
}

void Machine::rebuild_hierarchy() {
  l1_tile_.clear();
  l1_pe_.clear();
  l2_global_.reset();
  l2_tile_.clear();

  const std::uint32_t T = cfg_.num_tiles;
  const std::uint32_t P = cfg_.pes_per_tile;

  switch (hw_) {
    case HwConfig::kSC:
      for (std::uint32_t t = 0; t < T; ++t) {
        l1_tile_.push_back(std::make_unique<CacheArray>(
            P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/P));
      }
      l2_global_ = std::make_unique<CacheArray>(
          T * P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
          cfg_.prefetch_depth, /*requesters=*/T * P);
      break;
    case HwConfig::kSCS:
      for (std::uint32_t t = 0; t < T; ++t) {
        l1_tile_.push_back(std::make_unique<CacheArray>(
            std::max(1u, P / 2), cfg_.bank_bytes, cfg_.line_bytes,
            cfg_.associativity, cfg_.prefetch_depth, /*requesters=*/P));
      }
      l2_global_ = std::make_unique<CacheArray>(
          T * P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
          cfg_.prefetch_depth, /*requesters=*/T * P);
      break;
    case HwConfig::kPC:
      for (std::uint32_t pe = 0; pe < T * P; ++pe) {
        l1_pe_.push_back(std::make_unique<CacheArray>(
            1, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/1));
      }
      for (std::uint32_t t = 0; t < T; ++t) {
        l2_tile_.push_back(std::make_unique<CacheArray>(
            P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/P));
      }
      break;
    case HwConfig::kPS:
      // L1 is all-SPM; demand traffic goes straight to the per-tile L2.
      for (std::uint32_t t = 0; t < T; ++t) {
        l2_tile_.push_back(std::make_unique<CacheArray>(
            P, cfg_.bank_bytes, cfg_.line_bytes, cfg_.associativity,
            cfg_.prefetch_depth, /*requesters=*/P));
      }
      break;
  }
}

double Machine::arb_penalty(std::uint32_t sharers,
                            std::uint32_t banks) const {
  if (sharers <= 1) return 0.0;
  return cfg_.xbar_conflict_factor * static_cast<double>(sharers - 1) /
         static_cast<double>(banks);
}

double Machine::access_l2(std::uint32_t pe, Addr addr, bool write,
                          bool demand) {
  const std::uint32_t tile = tile_of(pe);
  CacheArray* l2 = nullptr;
  std::uint32_t requester = 0;
  std::uint32_t sharers = 0;
  if (l2_global_) {
    l2 = l2_global_.get();
    requester = pe;
    sharers = cfg_.num_pes();
  } else {
    l2 = l2_tile_[tile].get();
    requester = pe % cfg_.pes_per_tile;
    sharers = cfg_.pes_per_tile;
  }

  const double arb = arb_penalty(sharers, l2->num_banks());
  double latency = cfg_.xbar_latency + arb + cfg_.l2_bank_latency;
  bump(tile, [](Stats& s) { ++s.xbar_transfers; });
  if (prof_ != nullptr) prof_->xbar_transfer(tile, addr, arb);

  const auto out = l2->access(requester, addr, write, /*low_priority=*/!demand);
  if (out.hit) {
    bump(tile, [](Stats& s) { ++s.l2_hits; });
  } else {
    bump(tile, [](Stats& s) { ++s.l2_misses; });
  }
  if (prof_ != nullptr) prof_->l2_access(tile, addr, out.hit);
  // Every fetched line (demand fill + prefetches) comes from DRAM.
  for (std::uint32_t i = 0; i < out.num_fetched; ++i) {
    const bool is_demand_fill = (i == 0 && !out.hit);
    if (is_demand_fill) {
      latency += cfg_.refill_overhead +
                 dram_.access(cfg_.line_bytes, /*write=*/false,
                              pe_clock_[pe] + latency, stats_,
                              &tile_stats_[tile]);
      if (prof_ != nullptr) {
        prof_->dram(tile, out.fetched_lines[i], cfg_.line_bytes,
                    /*write=*/false);
      }
    } else {
      dram_.traffic(cfg_.line_bytes, /*write=*/false, stats_,
                    &tile_stats_[tile]);
      bump(tile, [](Stats& s) { ++s.prefetch_lines; });
      if (prof_ != nullptr) {
        prof_->dram(tile, out.fetched_lines[i], cfg_.line_bytes,
                    /*write=*/false);
        prof_->prefetch_line(tile, out.fetched_lines[i]);
      }
    }
  }
  for (std::uint32_t i = 0; i < out.num_writebacks; ++i) {
    dram_.traffic(cfg_.line_bytes, /*write=*/true, stats_,
                  &tile_stats_[tile]);
    bump(tile, [](Stats& s) { ++s.writeback_lines; });
    if (prof_ != nullptr) {
      prof_->dram(tile, out.writeback_lines[i], cfg_.line_bytes,
                  /*write=*/true);
      prof_->l2_writeback(tile, out.writeback_lines[i]);
    }
  }
  return demand ? latency : 0.0;
}

double Machine::route_access(std::uint32_t pe, Addr addr, bool write) {
  const std::uint32_t tile = tile_of(pe);
  if (prof_ != nullptr) prof_->reuse_sample(addr);

  // L1 hits are modeled as pipelined: a 1-issue in-order core with
  // software-pipelined kernels hides the load-to-use latency of hits, so a
  // hit costs one issue slot (plus shared-mode arbitration); only misses
  // expose the full hierarchy latency. Without this, per-element SpMV cost
  // lands ~3x above what MAC loops achieve on real in-order cores.
  CacheArray* l1 = nullptr;
  std::uint32_t requester = 0;
  double l1_latency = 0.0;
  if (!l1_tile_.empty()) {
    // Shared L1 within the tile (SC/SCS).
    l1 = l1_tile_[tile].get();
    requester = pe % cfg_.pes_per_tile;
    const double arb = arb_penalty(cfg_.pes_per_tile, l1->num_banks());
    l1_latency = 1.0 + arb;
    bump(tile, [](Stats& s) { ++s.xbar_transfers; });
    if (prof_ != nullptr) prof_->xbar_transfer(tile, addr, arb);
  } else if (!l1_pe_.empty()) {
    // Private L1 (PC): transparent crossbar, direct access.
    l1 = l1_pe_[pe].get();
    requester = 0;
    l1_latency = 1.0;
  } else {
    // PS: no L1 cache — straight to the per-tile L2.
    return access_l2(pe, addr, write, /*demand=*/true);
  }

  double latency = l1_latency;
  const auto out = l1->access(requester, addr, write);
  if (prof_ != nullptr) prof_->l1_access(tile, addr, out.hit);
  if (out.hit) {
    bump(tile, [](Stats& s) { ++s.l1_hits; });
    // A tagged prefetch issued on this hit still moves lines (no stall).
    for (std::uint32_t i = 0; i < out.num_fetched; ++i) {
      access_l2(pe, out.fetched_lines[i], /*write=*/false, /*demand=*/false);
      bump(tile, [](Stats& s) { ++s.prefetch_lines; });
      if (prof_ != nullptr) prof_->prefetch_line(tile, out.fetched_lines[i]);
    }
    for (std::uint32_t i = 0; i < out.num_writebacks; ++i) {
      access_l2(pe, out.writeback_lines[i], /*write=*/true, /*demand=*/false);
      bump(tile, [](Stats& s) { ++s.writeback_lines; });
      if (prof_ != nullptr) prof_->l1_writeback(tile, out.writeback_lines[i]);
    }
    return latency;
  }
  bump(tile, [](Stats& s) { ++s.l1_misses; });
  for (std::uint32_t i = 0; i < out.num_fetched; ++i) {
    const bool is_demand_fill = (i == 0);
    if (is_demand_fill) {
      latency += cfg_.refill_overhead +
                 access_l2(pe, out.fetched_lines[i], /*write=*/false,
                           /*demand=*/true);
    } else {
      access_l2(pe, out.fetched_lines[i], /*write=*/false, /*demand=*/false);
      bump(tile, [](Stats& s) { ++s.prefetch_lines; });
      if (prof_ != nullptr) prof_->prefetch_line(tile, out.fetched_lines[i]);
    }
  }
  // Dirty L1 victims drain into L2 (no PE stall).
  for (std::uint32_t i = 0; i < out.num_writebacks; ++i) {
    access_l2(pe, out.writeback_lines[i], /*write=*/true, /*demand=*/false);
    bump(tile, [](Stats& s) { ++s.writeback_lines; });
    if (prof_ != nullptr) prof_->l1_writeback(tile, out.writeback_lines[i]);
  }
  return latency;
}

void Machine::mem_read(std::uint32_t pe, Addr addr, std::uint32_t bytes) {
  (void)bytes;  // sub-line accesses cost one hierarchy round trip
  const double latency = route_access(pe, addr, /*write=*/false);
  pe_clock_[pe] += latency;
  bump(tile_of(pe), [&](Stats& s) { s.pe_mem_stall_cycles += latency; });
}

void Machine::mem_write(std::uint32_t pe, Addr addr, std::uint32_t bytes) {
  (void)bytes;
  // Stores drain through a store buffer: the PE spends one issue slot and
  // does not wait for the (write-allocate) fill — cache state and traffic
  // are still updated, and sustained store misses are bounded by the DRAM
  // roofline rather than per-store latency.
  route_access(pe, addr, /*write=*/true);
  pe_clock_[pe] += 1.0;
  bump(tile_of(pe), [](Stats& s) { s.pe_mem_stall_cycles += 1.0; });
}

std::size_t Machine::spm_bytes_per_tile() const {
  return hw_ == HwConfig::kSCS ? cfg_.scs_spm_bytes_per_tile() : 0;
}

std::size_t Machine::spm_bytes_per_pe() const {
  return hw_ == HwConfig::kPS ? cfg_.ps_spm_bytes_per_pe() : 0;
}

void Machine::spm_read(std::uint32_t pe, std::uint32_t /*bytes*/) {
  COSPARSE_CHECK_MSG(has_l1_spm(hw_), "SPM access in a cache-only config");
  double latency = cfg_.spm_latency + cfg_.spm_mgmt_cycles;
  if (hw_ == HwConfig::kSCS) {
    // Shared SPM arbitration: the SCS split is by capacity, so all of the
    // tile's word-granular banks still serve SPM requests.
    latency += arb_penalty(cfg_.pes_per_tile, cfg_.pes_per_tile);
  }
  pe_clock_[pe] += latency;
  bump(tile_of(pe), [&](Stats& s) {
    s.pe_mem_stall_cycles += latency;
    ++s.spm_accesses;
  });
  if (prof_ != nullptr) prof_->spm_access(tile_of(pe));
}

void Machine::spm_write(std::uint32_t pe, std::uint32_t bytes) {
  spm_read(pe, bytes);  // symmetric cost
}

void Machine::spm_fill_tile(std::uint32_t tile, Addr src, std::size_t bytes) {
  COSPARSE_CHECK_MSG(hw_ == HwConfig::kSCS,
                     "tile SPM fill is only meaningful in SCS");
  tile_barrier(tile);
  // Stream the segment line by line through the (shared) L2 so a segment
  // already pulled by another tile costs L2 bandwidth, not DRAM bandwidth.
  const std::uint32_t pe0 = tile * cfg_.pes_per_tile;
  const std::uint64_t l2_hits_before = stats_.l2_hits;
  std::uint64_t lines = 0;
  for (Addr a = src; a < src + bytes; a += cfg_.line_bytes, ++lines) {
    access_l2(pe0, a, /*write=*/false, /*demand=*/false);
  }
  const std::uint64_t from_l2 = stats_.l2_hits - l2_hits_before;
  const std::uint64_t from_dram = lines - std::min(lines, from_l2);
  // DMA timing: DRAM-sourced lines move at the tile's share of DRAM
  // bandwidth; L2-sourced lines at L2 bank bandwidth.
  const double tile_share =
      cfg_.dram_peak_bytes_per_cycle() / static_cast<double>(cfg_.num_tiles);
  const double fill_cycles =
      cfg_.dram_latency_min +
      static_cast<double>(from_dram) * cfg_.line_bytes / tile_share +
      static_cast<double>(from_l2) * 2.0;
  const std::uint32_t base = tile * cfg_.pes_per_tile;
  for (std::uint32_t p = 0; p < cfg_.pes_per_tile; ++p) {
    pe_clock_[base + p] += fill_cycles;
  }
  lcp_clock_[tile] += fill_cycles;
  bump(tile, [&](Stats& s) {
    s.pe_mem_stall_cycles +=
        fill_cycles * static_cast<double>(cfg_.pes_per_tile);
  });
}

void Machine::spread_traffic(std::uint64_t bytes, bool write,
                             const char* profile_bucket) {
  // Tile-less machine-wide streams: split the byte attribution evenly so
  // per-tile slices still sum exactly to the global counters (the DRAM
  // model sees the same total either way).
  const std::uint64_t T = cfg_.num_tiles;
  const std::uint64_t share = bytes / T;
  const std::uint64_t remainder = bytes - share * T;
  for (std::uint32_t t = 0; t < cfg_.num_tiles; ++t) {
    const std::uint64_t mine = share + (t == 0 ? remainder : 0);
    if (mine == 0) continue;
    dram_.traffic(mine, write, stats_, &tile_stats_[t]);
    if (prof_ != nullptr && profile_bucket != nullptr) {
      prof_->dram_bulk(t, mine, write, profile_bucket);
    }
  }
}

void Machine::dma_traffic(std::size_t bytes, bool write) {
  spread_traffic(bytes, write, "dma");
}

void Machine::lcp_emit(std::uint32_t pe, std::uint32_t bytes) {
  const std::uint32_t tile = tile_of(pe);
  // The PE spends one cycle handing the element off.
  pe_clock_[pe] += 1.0;
  bump(tile, [](Stats& s) {
    s.pe_compute_cycles += 1.0;
    ++s.lcp_elements;
  });
  // The LCP serializes handling + writeback of the element.
  lcp_clock_[tile] += cfg_.lcp_cycles_per_element();
  dram_.traffic(bytes, /*write=*/true, stats_, &tile_stats_[tile]);
  if (prof_ != nullptr) {
    prof_->dram_bulk(tile, bytes, /*write=*/true, "lcp.writeback");
  }
}

void Machine::tile_barrier(std::uint32_t tile) {
  const std::uint32_t base = tile * cfg_.pes_per_tile;
  double mx = lcp_clock_[tile];
  for (std::uint32_t p = 0; p < cfg_.pes_per_tile; ++p) {
    mx = std::max(mx, pe_clock_[base + p]);
  }
  for (std::uint32_t p = 0; p < cfg_.pes_per_tile; ++p) {
    pe_clock_[base + p] = mx;
  }
  lcp_clock_[tile] = mx;
  bump(tile, [](Stats& s) { ++s.barriers; });
}

void Machine::global_barrier() {
  double mx = 0.0;
  for (double c : pe_clock_) mx = std::max(mx, c);
  for (double c : lcp_clock_) mx = std::max(mx, c);
  std::fill(pe_clock_.begin(), pe_clock_.end(), mx);
  std::fill(lcp_clock_.begin(), lcp_clock_.end(), mx);
  // Whole-machine control events are attributed to tile 0 (see tile_stats()).
  bump(0, [](Stats& s) { ++s.barriers; });
}

void Machine::reconfigure(HwConfig next) {
  const double span_begin = static_cast<double>(cycles());
  const HwConfig from = hw_;
  global_barrier();
  // Write back all dirty lines; banks drain in parallel, bounded by DRAM
  // bandwidth. Dirty lines are attributed to the tile owning the flushed
  // structure; the shared L2's flush is split evenly (remainder to 0).
  // When a profiler is attached, every flushed dirty line is attributed to
  // its region individually (count + line_bytes of DRAM writeback per line,
  // matching the aggregate Stats exactly); spread_traffic then skips the
  // profiler (nullptr bucket) to avoid double attribution.
  std::vector<Addr> dirty_addrs;
  std::vector<Addr>* collect = prof_ != nullptr ? &dirty_addrs : nullptr;
  const auto drain = [&](std::uint32_t tile) {
    if (prof_ == nullptr) return;
    for (Addr a : dirty_addrs) prof_->flushed_line(tile, a);
    dirty_addrs.clear();
  };
  std::uint64_t dirty = 0;
  for (std::uint32_t t = 0; t < static_cast<std::uint32_t>(l1_tile_.size());
       ++t) {
    const std::uint64_t d = l1_tile_[t]->flush(collect);
    dirty += d;
    bump(t, [&](Stats& s) { s.flushed_dirty_lines += d; });
    drain(t);
  }
  for (std::uint32_t pe = 0; pe < static_cast<std::uint32_t>(l1_pe_.size());
       ++pe) {
    const std::uint64_t d = l1_pe_[pe]->flush(collect);
    dirty += d;
    bump(tile_of(pe), [&](Stats& s) { s.flushed_dirty_lines += d; });
    drain(tile_of(pe));
  }
  if (l2_global_) {
    const std::uint64_t d = l2_global_->flush(collect);
    dirty += d;
    stats_.flushed_dirty_lines += d;
    const std::uint64_t share = d / cfg_.num_tiles;
    const std::uint64_t remainder = d - share * cfg_.num_tiles;
    for (std::uint32_t t = 0; t < cfg_.num_tiles; ++t) {
      tile_stats_[t].flushed_dirty_lines += share + (t == 0 ? remainder : 0);
    }
    // Shared-L2 lines belong to no single tile; round-robin mirrors the
    // even split of the Stats attribution.
    if (prof_ != nullptr) {
      for (std::size_t i = 0; i < dirty_addrs.size(); ++i) {
        prof_->flushed_line(static_cast<std::uint32_t>(i % cfg_.num_tiles),
                            dirty_addrs[i]);
      }
      dirty_addrs.clear();
    }
  }
  for (std::uint32_t t = 0; t < static_cast<std::uint32_t>(l2_tile_.size());
       ++t) {
    const std::uint64_t d = l2_tile_[t]->flush(collect);
    dirty += d;
    bump(t, [&](Stats& s) { s.flushed_dirty_lines += d; });
    drain(t);
  }
  const std::uint64_t flush_bytes = dirty * cfg_.line_bytes;
  spread_traffic(flush_bytes, /*write=*/true, /*profile_bucket=*/nullptr);
  const double flush_cycles =
      dirty == 0 ? 0.0
                 : cfg_.dram_latency_min +
                       static_cast<double>(flush_bytes) /
                           cfg_.dram_peak_bytes_per_cycle();
  const double penalty = flush_cycles + cfg_.reconfig_cycles;
  for (double& c : pe_clock_) c += penalty;
  for (double& c : lcp_clock_) c += penalty;
  hw_ = next;
  rebuild_hierarchy();
  bump(0, [](Stats& s) { ++s.reconfigurations; });
  if (trace_ != nullptr && trace_->enabled()) {
    Json args = Json::object();
    args["from"] = to_string(from);
    args["to"] = to_string(next);
    args["flushed_dirty_lines"] = dirty;
    trace_->add_span("machine", std::string("reconfigure ") + to_string(from) +
                                    "->" + to_string(next),
                     span_begin, static_cast<double>(cycles()),
                     std::move(args));
  }
}

Cycles Machine::cycles() const {
  double mx = 0.0;
  for (double c : pe_clock_) mx = std::max(mx, c);
  for (double c : lcp_clock_) mx = std::max(mx, c);
  mx = std::max(mx, dram_.bandwidth_floor_cycles());
  return static_cast<Cycles>(mx);
}

double Machine::load_imbalance() const {
  double total = 0.0;
  double mx = 0.0;
  for (const Stats& t : tile_stats_) {
    const double busy = t.pe_compute_cycles + t.pe_mem_stall_cycles;
    total += busy;
    mx = std::max(mx, busy);
  }
  if (total <= 0.0) return 0.0;
  const double mean = total / static_cast<double>(tile_stats_.size());
  return mx / mean;
}

Picojoules Machine::energy_pj() const {
  return energy_.total(cfg_, stats_, cycles());
}

double Machine::watts() const { return energy_.watts(cfg_, stats_, cycles()); }

}  // namespace cosparse::sim
