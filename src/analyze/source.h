// Token-level source scanner for cosparse-lint's code passes.
//
// The analyzer deliberately avoids a real C++ frontend (no LLVM
// dependency; same self-contained style as common/Json): the four code
// passes only need identifiers, string literals, punctuation and line
// numbers, plus the `// cosparse-lint: allow(<pass>)` annotation
// comments. Tokenization is exact for those token classes (comments,
// ordinary/raw string literals, char literals and preprocessor
// directives are consumed correctly), which is what makes the passes
// sound at this level: they over-approximate (a flagged token may be in
// dead code) but never mis-lex the tokens they reason about. See
// DESIGN.md §15 for the soundness argument.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace cosparse::analyze {

enum class TokKind { kIdent, kString, kNumber, kPunct };

struct Token {
  TokKind kind;
  std::string text;  ///< identifier spelling, string *contents*, punct chars
  int line = 0;      ///< 1-based source line
};

/// One scanned source file: its token stream plus the escape-hatch
/// annotations found in comments. `path` is the root-relative path the
/// passes anchor findings to.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  /// pass name -> source lines carrying `// cosparse-lint: allow(<pass>)`.
  std::map<std::string, std::set<int>> allows;

  /// True when a finding of `pass` anchored at `line` is waived: the
  /// annotation covers its own line (trailing comment) and the line
  /// directly below (standalone comment above the flagged statement).
  [[nodiscard]] bool allowed(const std::string& pass, int line) const;
};

/// Tokenizes `text`. Comments, whitespace, preprocessor directives and
/// char literals are consumed but emit no tokens; `::` and `->` are
/// single punct tokens so qualified names and member calls scan cleanly.
[[nodiscard]] SourceFile scan_source(std::string path, const std::string& text);

/// Reads a whole file; throws cosparse::Error when unreadable.
[[nodiscard]] std::string read_file(const std::string& path);

}  // namespace cosparse::analyze
