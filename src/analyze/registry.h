// Canonical phase-tag and allocation-label registries.
//
// Flamegraphs (obs::PhaseScope tags), telemetry histograms keyed by
// phase, and the memory profiler's region buckets (AddressMap::of /
// Machine::alloc labels) are all name-addressed: a typo'd or ad-hoc
// string silently forks the namespace and every downstream diff/gate
// stops seeing that slice. These lists are the single source of truth;
// the phase_hygiene pass rejects any string literal at a
// PhaseScope/intern_phase_tag/of/alloc call site that is not registered
// here. Adding a genuinely new phase or region means adding it here (and
// documenting it in DESIGN.md §13/§9) in the same change — which is the
// point: the namespace only grows deliberately.
#pragma once

#include <string_view>
#include <vector>

namespace cosparse::analyze {

/// Exact registered phase tags (obs::PhaseScope / intern_phase_tag).
[[nodiscard]] const std::vector<std::string_view>& canonical_phase_tags();

/// Registered dynamic-tag families: a tag is also canonical when it
/// starts with one of these prefixes ("graph." covers the per-algorithm
/// tags built at run time).
[[nodiscard]] const std::vector<std::string_view>& canonical_phase_prefixes();

[[nodiscard]] bool is_canonical_phase_tag(std::string_view tag);

/// Exact registered allocation-region labels (AddressMap::of /
/// sim::Machine::alloc).
[[nodiscard]] const std::vector<std::string_view>& canonical_region_labels();

[[nodiscard]] bool is_canonical_region_label(std::string_view label);

}  // namespace cosparse::analyze
