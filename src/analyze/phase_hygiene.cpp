// Pass 4: phase-tag and region-label hygiene.
//
// Flamegraphs, telemetry streams and memory-profiler reports are only
// comparable across runs and branches when every PhaseScope tag and
// every AddressMap region label comes from the canonical registries
// (registry.cpp). A typo'd tag silently forks a new flame bucket and
// breaks `cosparse-prof diff` baselines, so unregistered literals are
// errors, not warnings. Non-literal arguments (the interned
// "graph.<algo>" tags are built at run time) are skipped — the prefix
// registry covers those.
#include <string>

#include "analyze/pass_util.h"
#include "analyze/passes.h"
#include "analyze/registry.h"

namespace cosparse::analyze {

namespace {

constexpr const char* kPass = "phase_hygiene";

using verify::Severity;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_punct(const std::vector<Token>& t, std::size_t i, const char* p) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == p;
}

std::size_t match_paren(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == "(") ++depth;
    if (t[k].text == ")" && --depth == 0) return k;
  }
  return kNpos;
}

std::string registry_hint(const std::vector<std::string_view>& entries) {
  std::string hint;
  for (std::string_view e : entries) {
    if (!hint.empty()) hint += ", ";
    hint += e;
  }
  return hint;
}

}  // namespace

std::vector<verify::Finding> check_phase_hygiene(
    const std::vector<const SourceFile*>& files) {
  std::vector<verify::Finding> out;
  for (const SourceFile* file : files) {
    const std::vector<Token>& t = file->tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& s = t[i].text;

      if (s == "PhaseScope" || s == "intern_phase_tag") {
        // Covers both the declaration form `PhaseScope phase("tag")`
        // and the call form `intern_phase_tag("tag")` — one optional
        // identifier (the variable name) before the paren. Tag is the
        // first argument when it is a literal; expressions (interned
        // graph.<algo> tags) are covered by the prefix registry.
        std::size_t j = i + 1;
        if (j < t.size() && t[j].kind == TokKind::kIdent) ++j;
        if (!is_punct(t, j, "(")) continue;
        if (j + 1 < t.size() && t[j + 1].kind == TokKind::kString &&
            !is_canonical_phase_tag(t[j + 1].text)) {
          detail::emit(out, *file, t[j + 1].line, kPass,
                       "phase.unregistered-tag", Severity::kError,
                       "phase tag \"" + t[j + 1].text +
                           "\" is not in the canonical registry "
                           "(src/analyze/registry.cpp); known tags: " +
                           registry_hint(canonical_phase_tags()));
        }
      } else if ((s == "of" || s == "alloc") && is_punct(t, i + 1, "(") &&
                 i >= 1 &&
                 (is_punct(t, i - 1, ".") || is_punct(t, i - 1, "->"))) {
        // AddressMap::of(base, size, "label") / Machine::alloc(size,
        // "label"): the label is the last top-level string literal in
        // the argument list.
        const std::size_t close = match_paren(t, i + 1);
        if (close == kNpos) continue;
        std::size_t label = kNpos;
        int depth = 0;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (t[k].kind == TokKind::kPunct) {
            if (t[k].text == "(") ++depth;
            if (t[k].text == ")") --depth;
          } else if (t[k].kind == TokKind::kString && depth == 0) {
            label = k;
          }
        }
        if (label != kNpos && !is_canonical_region_label(t[label].text)) {
          detail::emit(out, *file, t[label].line, kPass,
                       "phase.unregistered-label", Severity::kError,
                       "region label \"" + t[label].text +
                           "\" is not in the canonical registry "
                           "(src/analyze/registry.cpp); known labels: " +
                           registry_hint(canonical_region_labels()));
        }
      }
    }
  }
  return out;
}

}  // namespace cosparse::analyze
