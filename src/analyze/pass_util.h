// Shared finding-emission helper for the code passes: routes every
// would-be finding through the `// cosparse-lint: allow(<pass>)` escape
// hatch, downgrading waived defects to visible "<prefix>.allowed" info
// findings instead of dropping them.
#pragma once

#include <string>
#include <vector>

#include "analyze/source.h"
#include "verify/findings.h"

namespace cosparse::analyze::detail {

inline void emit(std::vector<verify::Finding>& out, const SourceFile& file,
                 int line, const std::string& pass, std::string id,
                 verify::Severity severity, std::string message) {
  if (file.allowed(pass, line)) {
    const std::size_t dot = id.find('.');
    std::string allowed_id = id.substr(0, dot) + ".allowed";
    out.push_back(verify::Finding{
        pass, std::move(allowed_id), verify::Severity::kInfo,
        "waived by `cosparse-lint: allow(" + pass + ")`: " + message,
        verify::Location::source(file.path, line)});
    return;
  }
  out.push_back(verify::Finding{pass, std::move(id), severity,
                                std::move(message),
                                verify::Location::source(file.path, line)});
}

}  // namespace cosparse::analyze::detail
