// compile_commands.json reader for the FP-exactness pass.
//
// A compilation database (CMAKE_EXPORT_COMPILE_COMMANDS=ON) records the
// exact command line each translation unit is built with; the
// fp_exactness pass uses it to prove kernel/SIMD TUs carry
// -ffp-contract=off and never a value-changing fast-math flag. Only the
// fields the passes need are kept: directory, file, and the flattened
// command string.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "verify/findings.h"

namespace cosparse::analyze {

struct CompileCommand {
  std::string directory;  ///< working directory of the compile
  std::string file;       ///< source path as recorded (may be relative)
  std::string command;    ///< full command line, space-joined
};

class CompileDb {
 public:
  /// Parses a compile_commands.json document. Malformed entries become
  /// findings (pass "code") instead of exceptions so the driver can keep
  /// linting sources even with a broken database.
  [[nodiscard]] static CompileDb parse(const Json& doc,
                                       std::vector<verify::Finding>* findings);

  [[nodiscard]] const std::vector<CompileCommand>& commands() const {
    return commands_;
  }
  [[nodiscard]] bool empty() const { return commands_.empty(); }

  /// Exact whitespace-delimited token match against the command line —
  /// "-ffp-contract=off" does not match "-ffp-contract=fast".
  [[nodiscard]] static bool has_flag(const CompileCommand& cc,
                                     const std::string& flag);

  /// The command's source path resolved against its directory and
  /// normalized (".." and "." collapsed), for root-relative matching.
  [[nodiscard]] static std::string resolved_file(const CompileCommand& cc);

 private:
  std::vector<CompileCommand> commands_;
};

}  // namespace cosparse::analyze
