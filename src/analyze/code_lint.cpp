#include "analyze/code_lint.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "analyze/compile_db.h"
#include "analyze/passes.h"
#include "analyze/source.h"
#include "common/error.h"
#include "common/json.h"

namespace cosparse::analyze {

namespace fs = std::filesystem;

namespace {

using verify::Finding;
using verify::Location;
using verify::Severity;

bool is_cpp_source(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool has_prefix(const std::string& path, const char* prefix) {
  return path.rfind(prefix, 0) == 0;
}

/// Scans every C++ file under <root>/{src,bench,examples}, returning
/// root-relative SourceFiles sorted by path so pass output (and hence
/// reports) is stable across filesystems.
std::vector<SourceFile> scan_tree(const std::string& root,
                                  std::vector<Finding>& findings) {
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "bench", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && is_cpp_source(entry.path()))
        paths.push_back(entry.path());
    }
  }
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  std::vector<std::string> rels;
  rels.reserve(paths.size());
  for (const fs::path& p : paths)
    rels.push_back(fs::relative(p, root).generic_string());
  std::sort(rels.begin(), rels.end());
  for (const std::string& rel : rels) {
    try {
      files.push_back(scan_source(rel, read_file((fs::path(root) / rel).string())));
    } catch (const Error& e) {
      findings.push_back(Finding{"code", "code.source-unreadable",
                                 Severity::kError, e.what(),
                                 Location::source(rel, 0)});
    }
  }
  return files;
}

std::vector<const SourceFile*> subset(const std::vector<SourceFile>& files,
                                      const std::vector<const char*>& prefixes) {
  std::vector<const SourceFile*> out;
  for (const SourceFile& f : files) {
    for (const char* p : prefixes) {
      if (has_prefix(f.path, p)) {
        out.push_back(&f);
        break;
      }
    }
  }
  return out;
}

std::vector<const SourceFile*> all_of(const std::vector<SourceFile>& files) {
  std::vector<const SourceFile*> out;
  out.reserve(files.size());
  for (const SourceFile& f : files) out.push_back(&f);
  return out;
}

CompileDb load_compile_db(const std::string& path,
                          std::vector<Finding>& findings) {
  if (path.empty()) {
    findings.push_back(Finding{
        "fp_exactness", "code.compile-db-missing", Severity::kWarning,
        "no compile_commands.json given; fp_exactness cannot verify "
        "-ffp-contract=off on kernel TUs (configure with "
        "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
        Location::document("compile_commands.json")});
    return CompileDb{};
  }
  try {
    return CompileDb::parse(Json::parse(read_file(path)), &findings);
  } catch (const Error& e) {
    findings.push_back(Finding{"fp_exactness", "code.compile-db-unreadable",
                               Severity::kError, e.what(),
                               Location::document(path)});
    return CompileDb{};
  }
}

}  // namespace

verify::LintReport lint_code(const CodeLintOptions& opts) {
  COSPARSE_REQUIRE(fs::is_directory(opts.root),
                   "source root is not a directory: " + opts.root);
  verify::LintReport report(opts.root);

  std::vector<Finding> findings;
  const std::vector<SourceFile> files = scan_tree(opts.root, findings);
  if (files.empty()) {
    findings.push_back(Finding{
        "code", "code.no-sources", Severity::kError,
        "no C++ sources found under " + opts.root + "/{src,bench,examples}",
        Location::document(opts.root)});
    report.add(std::move(findings));
    return report;
  }
  const CompileDb db = load_compile_db(opts.compile_db_path, findings);

  report.add(std::move(findings));
  report.add(check_signal_safety(all_of(files)));
  report.add(check_fp_exactness(subset(files, {"src/kernels/", "src/native/"}),
                                db, fs::absolute(opts.root).string()));
  report.add(check_determinism(
      subset(files, {"src/sim/", "src/runtime/", "src/native/", "src/graph/"})));
  report.add(check_phase_hygiene(subset(files, {"src/", "bench/", "examples/"})));
  report.sort_by_severity();
  return report;
}

}  // namespace cosparse::analyze
