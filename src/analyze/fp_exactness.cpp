// Pass 2: floating-point exactness.
//
// The cross-mode bit-identity argument (DESIGN.md §14) requires every
// kernel to perform the same FP operations in the same order in sim and
// native mode, at every SIMD level. Two source-level hazards break
// that: fused multiply-adds (one rounding instead of two) and
// horizontal/reassociating reductions (different summation order). Both
// are token-visible — std::fma calls and *fmadd*/*hadd* intrinsic
// names — so the pass flags them in src/kernels/ and src/native/
// sources. The compiler can introduce the same fusion silently, so the
// pass additionally proves from compile_commands.json that every kernel
// TU carries -ffp-contract=off and never a value-changing fast-math
// flag.
#include <string>

#include "analyze/pass_util.h"
#include "analyze/passes.h"

namespace cosparse::analyze {

namespace {

constexpr const char* kPass = "fp_exactness";

using verify::Finding;
using verify::Location;
using verify::Severity;

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

/// Root-relative form of an absolute-or-relative compile-db path, or
/// empty when the path is outside `root`.
std::string relative_to(const std::string& path, const std::string& root) {
  if (root.empty()) return path;
  std::string prefix = root;
  if (prefix.back() != '/') prefix += '/';
  if (path.rfind(prefix, 0) == 0) return path.substr(prefix.size());
  if (path.rfind('/', 0) != 0) return path;  // already relative
  return "";
}

bool is_kernel_tu(const std::string& rel) {
  return rel.rfind("src/kernels/", 0) == 0 || rel.rfind("src/native/", 0) == 0;
}

}  // namespace

std::vector<verify::Finding> check_fp_exactness(
    const std::vector<const SourceFile*>& files, const CompileDb& db,
    const std::string& root) {
  std::vector<Finding> out;

  for (const SourceFile* file : files) {
    for (const Token& t : file->tokens) {
      if (t.kind != TokKind::kIdent) continue;
      const std::string& s = t.text;
      if (s == "fma" || s == "fmaf" || s == "fmal" || s == "__builtin_fma" ||
          s == "__builtin_fmaf" || s == "__builtin_fmal") {
        detail::emit(out, *file, t.line, kPass, "fp.fma-call",
                     Severity::kError,
                     "'" + s +
                         "' fuses multiply and add into one rounding; kernels "
                         "must round each operation (DESIGN.md §14)");
      } else if (contains(s, "fmadd") || contains(s, "fmsub") ||
                 contains(s, "fnmadd") || contains(s, "fnmsub")) {
        detail::emit(out, *file, t.line, kPass, "fp.fma-intrinsic",
                     Severity::kError,
                     "FMA intrinsic '" + s +
                         "' changes rounding vs the scalar kernel; use "
                         "separate mul/add (DESIGN.md §14)");
      } else if (contains(s, "hadd") || contains(s, "reduce_add")) {
        detail::emit(out, *file, t.line, kPass, "fp.horizontal-add",
                     Severity::kError,
                     "horizontal-add intrinsic '" + s +
                         "' reassociates the reduction; accumulate in scalar "
                         "order (DESIGN.md §14)");
      }
    }
  }

  for (const CompileCommand& cc : db.commands()) {
    const std::string rel = relative_to(CompileDb::resolved_file(cc), root);
    if (rel.empty() || !is_kernel_tu(rel)) continue;
    if (!CompileDb::has_flag(cc, "-ffp-contract=off")) {
      out.push_back(Finding{
          kPass, "fp.contract-missing", Severity::kError,
          "kernel TU compiles without -ffp-contract=off; the compiler may "
          "fuse multiply-adds and change results between builds",
          Location::source(rel, 0)});
    }
    for (const char* bad :
         {"-ffast-math", "-funsafe-math-optimizations", "-Ofast",
          "-ffp-contract=fast", "-fassociative-math"}) {
      if (CompileDb::has_flag(cc, bad)) {
        out.push_back(Finding{
            kPass, "fp.fast-math", Severity::kError,
            std::string("kernel TU compiles with value-changing flag '") +
                bad + "'",
            Location::source(rel, 0)});
      }
    }
  }
  return out;
}

}  // namespace cosparse::analyze
