#include "analyze/registry.h"

#include <algorithm>

namespace cosparse::analyze {

const std::vector<std::string_view>& canonical_phase_tags() {
  // Keep in sync with DESIGN.md §13 and the PhaseScope call sites the
  // self-scan test walks; phase_hygiene fails on any literal not here.
  static const std::vector<std::string_view> tags = {
      "engine.spmv",        // runtime::Engine::spmv (simulated path)
      "engine.frontier",    // frontier staging/conversion
      "kernel.ip",          // inner-product kernel body
      "kernel.op",          // outer-product kernel body
      "native.spmv",        // runtime::Engine::spmv_native
      "native.kernel.pull", // native pull SpMV
      "native.kernel.push", // native push SpMSpV
      "sim.exec",           // serial tile execution
      "sim.log_fill",       // parallel tile-body event-log fill
      "sim.replay",         // deterministic tile-ID-order replay
      "serve.execute",      // serving daemon: whole batch-execution phase
      "serve.batch",        // serving daemon: one batch on a serve thread
  };
  return tags;
}

const std::vector<std::string_view>& canonical_phase_prefixes() {
  static const std::vector<std::string_view> prefixes = {
      "graph.",  // graph.<algo>, interned per algorithm at run time
  };
  return prefixes;
}

bool is_canonical_phase_tag(std::string_view tag) {
  const auto& tags = canonical_phase_tags();
  if (std::find(tags.begin(), tags.end(), tag) != tags.end()) return true;
  for (std::string_view p : canonical_phase_prefixes()) {
    if (tag.size() > p.size() && tag.substr(0, p.size()) == p) return true;
  }
  return false;
}

const std::vector<std::string_view>& canonical_region_labels() {
  // The memory profiler's region scheme (DESIGN.md §9): matrix.* for
  // adjacency structure, vector.* for frontier/operand data, output.*
  // for results, op.* for kernel scratch, bench.* for raw
  // microbenchmark streams.
  static const std::vector<std::string_view> labels = {
      "matrix.elems",     // IP CSR elements
      "matrix.col_ptr",   // OP per-stripe column pointers
      "matrix.op_elems",  // OP stripe elements
      "vector.dense",     // dense operand vector
      "vector.dense_old", // previous dense vector (delta kernels)
      "vector.sparse",    // sparse frontier entries
      "vector.bitmap",    // frontier activity bitmap
      "output.y",         // result vector
      "op.heap",          // OP per-PE scratch heap
      "bench.stream",     // spmv_micro raw streaming region
  };
  return labels;
}

bool is_canonical_region_label(std::string_view label) {
  const auto& labels = canonical_region_labels();
  return std::find(labels.begin(), labels.end(), label) != labels.end();
}

}  // namespace cosparse::analyze
