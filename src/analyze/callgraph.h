// Conservative intra-project call graph for the signal-safety pass.
//
// Token-level function-definition and call-site detection: a definition
// is an identifier followed by a balanced parameter list, an optional
// suffix (cv/ref/noexcept/trailing return/ctor-init list) and a `{`
// body; a call site is an identifier directly followed by `(` inside a
// body (plus `new`/`delete`, which allocate without looking like
// calls). The heuristic is deliberately biased toward over-detection:
// a token that might be a call is treated as one, so reachability from
// a signal handler over-approximates the true call graph — the right
// direction for a safety gate. Handler roots are found where the code
// registers them: `signal(SIG..., fn)` second arguments and
// `sa_handler`/`sa_sigaction` assignments.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/source.h"

namespace cosparse::analyze {

struct FunctionDef {
  std::string name;        ///< unqualified name ("spmv")
  std::string qualified;   ///< as written at the definition ("Engine::spmv")
  const SourceFile* file = nullptr;
  int line = 0;
  std::size_t body_begin = 0;  ///< token index of the `{`
  std::size_t body_end = 0;    ///< token index of the matching `}`
};

struct CallSite {
  std::string name;       ///< last segment ("fma")
  std::string qualified;  ///< `::`-joined chain as written ("std::fma")
  bool member = false;    ///< preceded by `.` or `->`
  int line = 0;
};

class CallGraph {
 public:
  /// Scans every file once; defs keep pointers into `files`, which must
  /// outlive the graph.
  [[nodiscard]] static CallGraph build(
      const std::vector<const SourceFile*>& files);

  [[nodiscard]] const std::vector<FunctionDef>& functions() const {
    return functions_;
  }
  /// All call sites inside one definition's body (nested call
  /// arguments included).
  [[nodiscard]] std::vector<CallSite> calls_in(const FunctionDef& fn) const;

  /// Unqualified names registered as signal handlers anywhere in the
  /// scanned files.
  [[nodiscard]] const std::vector<std::string>& handler_roots() const {
    return roots_;
  }

  /// First definition whose unqualified name matches; nullptr if the
  /// project defines no such function.
  [[nodiscard]] const FunctionDef* find(const std::string& name) const;

 private:
  std::vector<FunctionDef> functions_;
  std::vector<std::string> roots_;
};

}  // namespace cosparse::analyze
