#include "analyze/compile_db.h"

#include <sstream>

namespace cosparse::analyze {

namespace {

using verify::Finding;
using verify::Location;
using verify::Severity;

/// Collapses "." and ".." components; keeps the path absolute/relative
/// as given. Pure string normalization (no filesystem access) so the
/// database can be linted on a machine that never built it.
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  const bool absolute = !path.empty() && path[0] == '/';
  std::stringstream ss(path);
  std::string part;
  while (std::getline(ss, part, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == ".." && !parts.empty() && parts.back() != "..") {
      parts.pop_back();
    } else {
      parts.push_back(part);
    }
  }
  std::string out = absolute ? "/" : "";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += '/';
    out += parts[i];
  }
  return out;
}

}  // namespace

CompileDb CompileDb::parse(const Json& doc,
                           std::vector<verify::Finding>* findings) {
  CompileDb db;
  const auto emit = [&](const std::string& id, const std::string& msg,
                        const std::string& where) {
    if (findings != nullptr) {
      findings->push_back(Finding{"code", id, Severity::kError, msg,
                                  Location::document(where)});
    }
  };
  if (!doc.is_array()) {
    emit("code.compile-db-malformed",
         "compile_commands.json must be a JSON array of compile commands",
         "(root)");
    return db;
  }
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const Json& entry = doc.at(i);
    const std::string where = "$[" + std::to_string(i) + "]";
    if (!entry.is_object()) {
      emit("code.compile-db-malformed", "compile command entry is not an object",
           where);
      continue;
    }
    CompileCommand cc;
    if (const Json* d = entry.find("directory"); d != nullptr && d->is_string())
      cc.directory = d->as_string();
    const Json* f = entry.find("file");
    if (f == nullptr || !f->is_string()) {
      emit("code.compile-db-malformed", "compile command entry has no \"file\"",
           where);
      continue;
    }
    cc.file = f->as_string();
    if (const Json* c = entry.find("command");
        c != nullptr && c->is_string()) {
      cc.command = c->as_string();
    } else if (const Json* args = entry.find("arguments");
               args != nullptr && args->is_array()) {
      // Clang-style databases split the command into an argv array.
      std::string joined;
      for (const Json& a : args->items()) {
        if (!joined.empty()) joined += ' ';
        joined += a.is_string() ? a.as_string() : a.dump();
      }
      cc.command = joined;
    } else {
      emit("code.compile-db-malformed",
           "compile command entry has neither \"command\" nor \"arguments\"",
           where);
      continue;
    }
    db.commands_.push_back(std::move(cc));
  }
  return db;
}

bool CompileDb::has_flag(const CompileCommand& cc, const std::string& flag) {
  std::stringstream ss(cc.command);
  std::string tok;
  while (ss >> tok) {
    if (tok == flag) return true;
  }
  return false;
}

std::string CompileDb::resolved_file(const CompileCommand& cc) {
  if (!cc.file.empty() && cc.file[0] == '/') return normalize(cc.file);
  if (cc.directory.empty()) return normalize(cc.file);
  return normalize(cc.directory + "/" + cc.file);
}

}  // namespace cosparse::analyze
