// Pass 1: signal safety.
//
// Roots are the functions the scanned sources actually register as
// signal handlers (signal() second arguments, sa_handler/sa_sigaction
// assignments). From each root with an in-project definition the pass
// walks the conservative call graph; inside every reachable body it
// flags (a) calls outside a small async-signal-safe allowlist, (b)
// new/delete, (c) allocating standard-library types (std::string,
// containers, stringstreams — their constructors allocate), (d)
// iostream objects and (e) locking primitives. The allowlist is the
// POSIX async-signal-safe set plus std::atomic member operations,
// signal fences, and backtrace() — which glibc makes malloc-free after
// the priming call SampleProfiler::start() performs (DESIGN.md §13).
#include <set>
#include <string>

#include "analyze/callgraph.h"
#include "analyze/pass_util.h"
#include "analyze/passes.h"

namespace cosparse::analyze {

namespace {

constexpr const char* kPass = "signal_safety";

using verify::Finding;
using verify::Severity;

const std::set<std::string>& allowlist() {
  static const std::set<std::string> safe = {
      // std::atomic members and fences — lock-free on every supported
      // target; the handler's whole protocol is built from these.
      "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
      "fetch_or", "fetch_xor", "compare_exchange_weak",
      "compare_exchange_strong", "test_and_set", "clear",
      "atomic_signal_fence", "atomic_thread_fence",
      // POSIX async-signal-safe functions (2017 list, the subset a
      // profiler handler could plausibly reach).
      "_exit", "abort", "raise", "kill", "signal", "sigaction",
      "sigemptyset", "sigfillset", "sigaddset", "sigdelset", "sigismember",
      "read", "write", "close", "fsync", "getpid", "time", "clock_gettime",
      "sem_post",
      // Non-allocating accessors on preexisting objects.
      "c_str", "data", "size", "empty",
      // glibc backtrace is malloc-free after the priming call issued
      // outside signal context (SampleProfiler::start, DESIGN.md §13).
      "backtrace",
  };
  return safe;
}

const std::set<std::string>& allocating_types() {
  static const std::set<std::string> types = {
      "string",        "vector",       "map",           "set",
      "deque",         "list",         "multimap",      "multiset",
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset", "stringstream", "ostringstream",
      "istringstream", "function",
  };
  return types;
}

const std::set<std::string>& iostream_objects() {
  static const std::set<std::string> objs = {"cout", "cerr", "clog", "cin"};
  return objs;
}

const std::set<std::string>& lock_types() {
  static const std::set<std::string> locks = {
      "mutex", "recursive_mutex", "shared_mutex", "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock", "condition_variable",
  };
  return locks;
}

struct Walker {
  const CallGraph& graph;
  std::vector<Finding>& out;
  std::set<const FunctionDef*> visited;

  void walk(const FunctionDef& fn, const std::string& path, int depth) {
    if (depth > 64 || visited.count(&fn) > 0) return;
    visited.insert(&fn);
    const SourceFile& file = *fn.file;

    // Token-level hazards the call detector cannot see: allocating
    // type constructions, iostream operator<< chains, lock objects.
    for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
      const Token& t = file.tokens[i];
      if (t.kind != TokKind::kIdent) continue;
      if (allocating_types().count(t.text) > 0) {
        detail::emit(out, file, t.line, kPass, "signal.unsafe-type",
                     Severity::kError,
                     "allocating type 'std::" + t.text +
                         "' in signal-handler-reachable code (" + path + ")");
      } else if (iostream_objects().count(t.text) > 0) {
        detail::emit(out, file, t.line, kPass, "signal.unsafe-io",
                     Severity::kError,
                     "iostream object 'std::" + t.text +
                         "' used in signal-handler-reachable code (" + path +
                         ")");
      } else if (lock_types().count(t.text) > 0) {
        detail::emit(out, file, t.line, kPass, "signal.unsafe-lock",
                     Severity::kError,
                     "locking primitive 'std::" + t.text +
                         "' in signal-handler-reachable code (" + path + ")");
      }
    }

    for (const CallSite& call : graph.calls_in(fn)) {
      if (call.name == "operator new" || call.name == "operator delete") {
        detail::emit(out, file, call.line, kPass, "signal.unsafe-alloc",
                     Severity::kError,
                     call.name + " in signal-handler-reachable code (" + path +
                         ")");
        continue;
      }
      if (allowlist().count(call.name) > 0) continue;
      const FunctionDef* target = graph.find(call.name);
      if (target != nullptr) {
        if (target != &fn) walk(*target, path + " -> " + call.name, depth + 1);
        continue;
      }
      detail::emit(out, file, call.line, kPass, "signal.unsafe-call",
                   Severity::kError,
                   "call to '" + call.qualified +
                       "' is outside the async-signal-safe allowlist but "
                       "reachable from a signal handler (" +
                       path + ")");
    }
  }
};

}  // namespace

std::vector<verify::Finding> check_signal_safety(
    const std::vector<const SourceFile*>& files) {
  std::vector<Finding> out;
  const CallGraph graph = CallGraph::build(files);
  for (const std::string& root : graph.handler_roots()) {
    const FunctionDef* def = graph.find(root);
    if (def == nullptr) {
      // Registered handler with no in-project definition (SIG_DFL-style
      // constants are filtered at detection): nothing to walk, but say
      // so rather than silently proving nothing.
      out.push_back(Finding{kPass, "signal.root-unresolved",
                            Severity::kWarning,
                            "signal handler '" + root +
                                "' is registered but not defined in the "
                                "scanned sources; its body is unverified",
                            verify::Location::document(root)});
      continue;
    }
    out.push_back(Finding{
        kPass, "signal.root", Severity::kInfo,
        "signal handler root '" + root + "' — walking its call graph",
        verify::Location::source(def->file->path, def->line)});
    Walker w{graph, out, {}};
    w.walk(*def, root, 0);
  }
  return out;
}

}  // namespace cosparse::analyze
