#include "analyze/source.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace cosparse::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Parses `cosparse-lint: allow(p1, p2)` markers out of one comment's
/// text and records them against `line` (the line the comment starts on).
void parse_annotation(const std::string& comment, int line, SourceFile& out) {
  const std::string marker = "cosparse-lint:";
  std::size_t pos = comment.find(marker);
  while (pos != std::string::npos) {
    std::size_t p = comment.find("allow(", pos);
    if (p == std::string::npos) return;
    p += 6;
    const std::size_t close = comment.find(')', p);
    if (close == std::string::npos) return;
    std::stringstream names(comment.substr(p, close - p));
    std::string name;
    while (std::getline(names, name, ',')) {
      const std::size_t b = name.find_first_not_of(" \t");
      const std::size_t e = name.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      out.allows[name.substr(b, e - b + 1)].insert(line);
    }
    pos = comment.find(marker, close);
  }
}

}  // namespace

bool SourceFile::allowed(const std::string& pass, int line) const {
  const auto it = allows.find(pass);
  if (it == allows.end()) return false;
  return it->second.count(line) > 0 || it->second.count(line - 1) > 0;
}

SourceFile scan_source(std::string path, const std::string& text) {
  SourceFile out;
  out.path = std::move(path);
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  const auto peek = [&](std::size_t k) -> char {
    return i + k < n ? text[i + k] : '\0';
  };
  const auto advance = [&]() {
    if (text[i] == '\n') {
      ++line;
      at_line_start = true;
    }
    ++i;
  };

  while (i < n) {
    const char c = text[i];

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }

    // Preprocessor directive: consume the logical line (honoring
    // backslash continuations). Directives never carry tokens the
    // passes reason about.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && peek(1) == '\n') {
          advance();
          advance();
          continue;
        }
        if (text[i] == '\n') break;
        advance();
      }
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const int start_line = line;
      std::string body;
      while (i < n && text[i] != '\n') {
        body += text[i];
        advance();
      }
      parse_annotation(body, start_line, out);
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::string body;
      advance();
      advance();
      while (i < n && !(text[i] == '*' && peek(1) == '/')) {
        body += text[i];
        advance();
      }
      if (i < n) {
        advance();
        advance();
      }
      parse_annotation(body, start_line, out);
      continue;
    }

    // Identifier — possibly a raw-string prefix (R", u8R", LR", ...).
    if (ident_start(c)) {
      const int start_line = line;
      std::string name;
      while (i < n && ident_char(text[i])) {
        name += text[i];
        advance();
      }
      const bool raw_prefix = i < n && text[i] == '"' &&
                              (name == "R" || name == "u8R" || name == "uR" ||
                               name == "LR" || name == "UR");
      if (raw_prefix) {
        // R"delim( ... )delim" — no escape processing inside.
        advance();  // consume "
        std::string delim;
        while (i < n && text[i] != '(') {
          delim += text[i];
          advance();
        }
        if (i < n) advance();  // consume (
        const std::string closer = ")" + delim + "\"";
        std::string contents;
        while (i < n && text.compare(i, closer.size(), closer) != 0) {
          contents += text[i];
          advance();
        }
        for (std::size_t k = 0; k < closer.size() && i < n; ++k) advance();
        out.tokens.push_back({TokKind::kString, std::move(contents),
                              start_line});
        continue;
      }
      const bool str_prefix = i < n && text[i] == '"' &&
                              (name == "u8" || name == "u" || name == "L" ||
                               name == "U");
      if (!str_prefix) {
        out.tokens.push_back({TokKind::kIdent, std::move(name), start_line});
        continue;
      }
      // Encoded string literal: fall through to the string scanner.
    }

    // Ordinary string literal.
    if (text[i] == '"') {
      const int start_line = line;
      std::string contents;
      advance();
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) {
          contents += text[i];
          advance();
        }
        contents += text[i];
        advance();
      }
      if (i < n) advance();
      out.tokens.push_back({TokKind::kString, std::move(contents),
                            start_line});
      continue;
    }

    // Char literal: consume, no token (the passes never match these).
    if (text[i] == '\'') {
      advance();
      while (i < n && text[i] != '\'') {
        if (text[i] == '\\' && i + 1 < n) advance();
        advance();
      }
      if (i < n) advance();
      continue;
    }

    // Number: digits plus the usual continuation set (hex, floats,
    // digit separators, suffixes, exponent signs).
    if (std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      const int start_line = line;
      std::string num;
      while (i < n && (ident_char(text[i]) || text[i] == '.' ||
                       text[i] == '\'' ||
                       ((text[i] == '+' || text[i] == '-') && !num.empty() &&
                        (num.back() == 'e' || num.back() == 'E' ||
                         num.back() == 'p' || num.back() == 'P')))) {
        num += text[i];
        advance();
      }
      out.tokens.push_back({TokKind::kNumber, std::move(num), start_line});
      continue;
    }

    // Punctuation. `::` and `->` stay joined so qualified names and
    // member calls are single-token lookbacks for the passes.
    {
      const int start_line = line;
      std::string p(1, text[i]);
      if (text[i] == ':' && peek(1) == ':') {
        p = "::";
        advance();
      } else if (text[i] == '-' && peek(1) == '>') {
        p = "->";
        advance();
      }
      advance();
      out.tokens.push_back({TokKind::kPunct, std::move(p), start_line});
    }
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  COSPARSE_REQUIRE(in.good(), "cannot read source file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace cosparse::analyze
