// Driver for `cosparse-lint code`: walks the source tree, scans every
// C++ file once, feeds the right directory subsets to the four passes
// (passes.h) and returns one verify::LintReport for the whole repo.
#pragma once

#include <string>

#include "verify/findings.h"

namespace cosparse::analyze {

struct CodeLintOptions {
  /// Source root to scan; findings use root-relative paths.
  std::string root;
  /// Path to compile_commands.json. Empty → fp_exactness emits a
  /// "code.compile-db-missing" warning and skips the flag checks.
  std::string compile_db_path;
};

/// Runs the four code passes. Unreadable sources or a malformed compile
/// db become findings, not exceptions; only a nonexistent root throws.
[[nodiscard]] verify::LintReport lint_code(const CodeLintOptions& opts);

}  // namespace cosparse::analyze
