// The four source-level code passes behind `cosparse-lint code`.
//
// Each pass takes already-scanned files (the driver in code_lint.cpp
// decides which directories feed which pass) and returns
// verify::Findings anchored to "source" locations ("file:line"). All
// passes honor the `// cosparse-lint: allow(<pass>)` escape hatch: a
// waived defect is downgraded to an info finding with id
// "<pass-prefix>.allowed" so suppressions stay visible in reports.
//
// Pass semantics (DESIGN.md §15):
//   signal_safety  — conservative call-graph walk from every registered
//                    signal handler; flags calls outside the
//                    async-signal-safe allowlist plus allocating types,
//                    iostream use and new/delete in reachable bodies.
//   fp_exactness   — fma/horizontal-add tokens in kernel/SIMD sources;
//                    kernel TUs must compile with -ffp-contract=off and
//                    never -ffast-math (compile_commands.json evidence).
//   determinism    — rand()/std::random_device, wall-clock reads,
//                    unordered-container iteration and pointer-to-
//                    integer casts in result-producing directories.
//   phase_hygiene  — every PhaseScope/intern_phase_tag tag literal and
//                    AddressMap::of / Machine::alloc label literal must
//                    be in the canonical registries (registry.h).
#pragma once

#include <string>
#include <vector>

#include "analyze/compile_db.h"
#include "analyze/source.h"
#include "verify/findings.h"

namespace cosparse::analyze {

[[nodiscard]] std::vector<verify::Finding> check_signal_safety(
    const std::vector<const SourceFile*>& files);

/// `root` is the source root the compile-db file paths are matched
/// against (kernel TUs live under <root>/src/kernels and
/// <root>/src/native).
[[nodiscard]] std::vector<verify::Finding> check_fp_exactness(
    const std::vector<const SourceFile*>& files, const CompileDb& db,
    const std::string& root);

[[nodiscard]] std::vector<verify::Finding> check_determinism(
    const std::vector<const SourceFile*>& files);

[[nodiscard]] std::vector<verify::Finding> check_phase_hygiene(
    const std::vector<const SourceFile*>& files);

}  // namespace cosparse::analyze
