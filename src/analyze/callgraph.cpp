#include "analyze/callgraph.h"

#include <set>

namespace cosparse::analyze {

namespace {

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",      "for",        "while",    "switch",        "return",
      "sizeof",  "alignof",    "alignas",  "catch",         "static_assert",
      "decltype", "noexcept",  "typeid",   "constexpr",     "defined",
      "throw",   "co_return",  "co_await", "co_yield",      "requires",
      // Builtin type names: `int(x)` / `new int(x)` are conversions and
      // placement constructions, not calls.
      "void",    "bool",       "char",     "short",         "int",
      "long",    "float",      "double",   "unsigned",      "signed",
      "auto"};
  return kw;
}

bool is_ident(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdent;
}
bool is_punct(const std::vector<Token>& t, std::size_t i, const char* p) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == p;
}

/// Index of the `)` matching the `(` at i, or kNpos.
std::size_t match_paren(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == "(") ++depth;
    if (t[k].text == ")" && --depth == 0) return k;
  }
  return kNpos;
}

std::size_t match_brace(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == "{") ++depth;
    if (t[k].text == "}" && --depth == 0) return k;
  }
  return kNpos;
}

/// From the `)` closing a parameter list, finds the `{` opening the
/// function body — skipping cv/ref/noexcept/override/final, a trailing
/// return type, and a constructor initializer list (whose
/// brace-initializers are recognized by the `,` that follows them).
/// Returns kNpos when the tokens cannot be a definition.
std::size_t find_body_brace(const std::vector<Token>& t, std::size_t rparen) {
  std::size_t k = rparen + 1;
  bool in_trailing_return = false;
  while (k < t.size()) {
    const Token& tok = t[k];
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") return k;
      if (tok.text == ";" || tok.text == "=") return kNpos;
      if (tok.text == ":") {
        // Constructor initializer list: scan for the body `{` at
        // paren depth 0; a `{...}` followed by `,` or `{` is a
        // brace-initializer, the last one precedes the body.
        int pdepth = 0;
        for (std::size_t m = k + 1; m < t.size(); ++m) {
          if (t[m].kind != TokKind::kPunct) continue;
          if (t[m].text == "(") ++pdepth;
          if (t[m].text == ")") --pdepth;
          if (t[m].text == ";") return kNpos;
          if (t[m].text == "{" && pdepth == 0) {
            const std::size_t close = match_brace(t, m);
            if (close == kNpos) return kNpos;
            if (is_punct(t, close + 1, ",")) {
              m = close;  // member{init}, — keep scanning
              continue;
            }
            if (is_punct(t, close + 1, "{")) return close + 1;
            return m;  // the body itself
          }
        }
        return kNpos;
      }
      if (tok.text == "->") {
        in_trailing_return = true;
        ++k;
        continue;
      }
      if (tok.text == "&" || tok.text == "*" || tok.text == "::" ||
          tok.text == "," || tok.text == "<" || tok.text == ">") {
        ++k;
        continue;
      }
      if (tok.text == "(") {  // noexcept(...), attribute-ish
        const std::size_t close = match_paren(t, k);
        if (close == kNpos) return kNpos;
        k = close + 1;
        continue;
      }
      return kNpos;
    }
    // Identifiers: cv/ref qualifiers, noexcept, override/final, or the
    // tokens of a trailing return type.
    if (tok.kind == TokKind::kIdent) {
      if (tok.text == "const" || tok.text == "noexcept" ||
          tok.text == "override" || tok.text == "final" ||
          tok.text == "mutable" || tok.text == "volatile" ||
          in_trailing_return) {
        ++k;
        continue;
      }
      return kNpos;
    }
    return kNpos;
  }
  return kNpos;
}

/// Walks a `a::b::c` chain backwards from the name at `idx`; returns the
/// index of the chain's first segment and fills `qualified`.
std::size_t qualify(const std::vector<Token>& t, std::size_t idx,
                    std::string& qualified) {
  std::size_t first = idx;
  while (first >= 2 && is_punct(t, first - 1, "::") && is_ident(t, first - 2)) {
    first -= 2;
  }
  qualified.clear();
  for (std::size_t k = first; k <= idx; k += 2) {
    if (!qualified.empty()) qualified += "::";
    qualified += t[k].text;
  }
  return first;
}

}  // namespace

CallGraph CallGraph::build(const std::vector<const SourceFile*>& files) {
  CallGraph g;
  std::set<std::string> root_set;
  for (const SourceFile* file : files) {
    const std::vector<Token>& t = file->tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& name = t[i].text;

      // ---- handler registration sites ----
      if (name == "signal" && is_punct(t, i + 1, "(")) {
        const std::size_t close = match_paren(t, i + 1);
        if (close != kNpos) {
          // Second top-level argument: the handler expression.
          int depth = 0;
          std::size_t arg = 0;
          std::string last_ident;
          for (std::size_t k = i + 2; k < close; ++k) {
            if (t[k].kind == TokKind::kPunct) {
              if (t[k].text == "(") ++depth;
              if (t[k].text == ")") --depth;
              if (t[k].text == "," && depth == 0) {
                ++arg;
                last_ident.clear();
                continue;
              }
            }
            if (arg == 1 && t[k].kind == TokKind::kIdent)
              last_ident = t[k].text;
          }
          if (!last_ident.empty() && last_ident.rfind("SIG_", 0) != 0)
            root_set.insert(last_ident);
        }
      }
      if ((name == "sa_handler" || name == "sa_sigaction") &&
          is_punct(t, i + 1, "=")) {
        std::size_t k = i + 2;
        if (is_punct(t, k, "&")) ++k;
        if (is_ident(t, k) && t[k].text.rfind("SIG_", 0) != 0)
          root_set.insert(t[k].text);
      }

      // ---- function definitions ----
      if (control_keywords().count(name) > 0) continue;
      if (!is_punct(t, i + 1, "(")) continue;
      const std::size_t rparen = match_paren(t, i + 1);
      if (rparen == kNpos) continue;
      const std::size_t lbrace = find_body_brace(t, rparen);
      if (lbrace == kNpos) continue;
      const std::size_t rbrace = match_brace(t, lbrace);
      if (rbrace == kNpos) continue;
      FunctionDef def;
      def.name = name;
      qualify(t, i, def.qualified);
      def.file = file;
      def.line = t[i].line;
      def.body_begin = lbrace;
      def.body_end = rbrace;
      g.functions_.push_back(std::move(def));
      // Keep scanning *inside* the body too: local lambdas and nested
      // registration sites still get seen. (Nested defs found there are
      // extra entries, which is harmless.)
    }
  }
  g.roots_.assign(root_set.begin(), root_set.end());
  return g;
}

std::vector<CallSite> CallGraph::calls_in(const FunctionDef& fn) const {
  std::vector<CallSite> out;
  const std::vector<Token>& t = fn.file->tokens;
  for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& name = t[i].text;
    if (name == "new" || name == "delete") {
      out.push_back({"operator " + name, name, false, t[i].line});
      continue;
    }
    if (control_keywords().count(name) > 0) continue;
    if (!is_punct(t, i + 1, "(")) continue;
    CallSite c;
    c.name = name;
    const std::size_t first = qualify(t, i, c.qualified);
    c.member = first >= 1 && (is_punct(t, first - 1, ".") ||
                              is_punct(t, first - 1, "->"));
    c.line = t[i].line;
    out.push_back(std::move(c));
  }
  return out;
}

const FunctionDef* CallGraph::find(const std::string& name) const {
  for (const FunctionDef& f : functions_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

}  // namespace cosparse::analyze
