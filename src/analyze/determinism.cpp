// Pass 3: determinism hazards in result-producing paths.
//
// The framework's results must be bit-identical across sim/native
// modes, thread counts and SIMD levels, so anything order-, address- or
// time-dependent in src/sim, src/runtime, src/native or src/graph is a
// hazard: unordered-container iteration (hash order varies with
// libstdc++ version and — for pointer keys — with malloc addresses,
// the exact class of bug PR 4's aliasing hazard belonged to),
// rand()/std::random_device (unseeded entropy), wall-clock reads, and
// pointer-to-integer casts (host addresses leaking into computed
// values). Telemetry legitimately reads wall clocks; those sites carry
// `// cosparse-lint: allow(determinism)` and surface as info findings.
#include <set>
#include <string>

#include "analyze/pass_util.h"
#include "analyze/passes.h"

namespace cosparse::analyze {

namespace {

constexpr const char* kPass = "determinism";

using verify::Severity;

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

bool is_punct(const std::vector<Token>& t, std::size_t i, const char* p) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == p;
}
bool called(const std::vector<Token>& t, std::size_t i) {
  return is_punct(t, i + 1, "(");
}

std::size_t match_paren(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == "(") ++depth;
    if (t[k].text == ")" && --depth == 0) return k;
  }
  return kNpos;
}

std::size_t match_angle(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != TokKind::kPunct) continue;
    if (t[k].text == "<") ++depth;
    if (t[k].text == ">" && --depth == 0) return k;
    if (t[k].text == ";") return kNpos;  // not a template argument list
  }
  return kNpos;
}

const std::set<std::string>& unordered_types() {
  static const std::set<std::string> u = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return u;
}

const std::set<std::string>& rand_functions() {
  static const std::set<std::string> r = {"rand", "srand", "drand48",
                                          "lrand48", "mrand48", "random"};
  return r;
}

const std::set<std::string>& clock_functions() {
  static const std::set<std::string> c = {
      "time",   "clock",     "gettimeofday", "clock_gettime",
      "localtime", "gmtime", "mktime",       "now"};
  return c;
}

const std::set<std::string>& int_types() {
  static const std::set<std::string> ints = {
      "uintptr_t", "intptr_t", "size_t",   "ptrdiff_t", "uintmax_t",
      "intmax_t",  "uint64_t", "int64_t",  "uint32_t",  "int32_t",
      "uint16_t",  "int16_t",  "uint8_t",  "int8_t",    "long",
      "int",       "short",    "unsigned"};
  return ints;
}

}  // namespace

std::vector<verify::Finding> check_determinism(
    const std::vector<const SourceFile*>& files) {
  std::vector<verify::Finding> out;
  for (const SourceFile* file : files) {
    const std::vector<Token>& t = file->tokens;

    // Names declared in this file with an unordered container type
    // (locals and members alike — the scanner does not resolve scope,
    // which only over-approximates).
    std::set<std::string> unordered_vars;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent || unordered_types().count(t[i].text) == 0)
        continue;
      std::size_t k = i + 1;
      if (is_punct(t, k, "<")) {
        const std::size_t close = match_angle(t, k);
        if (close == kNpos) continue;
        k = close + 1;
      }
      while (is_punct(t, k, "&") || is_punct(t, k, "*") ||
             (k < t.size() && t[k].kind == TokKind::kIdent &&
              t[k].text == "const")) {
        ++k;
      }
      if (k < t.size() && t[k].kind == TokKind::kIdent)
        unordered_vars.insert(t[k].text);
    }

    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::kIdent) continue;
      const std::string& s = t[i].text;

      if (rand_functions().count(s) > 0 && called(t, i)) {
        detail::emit(out, *file, t[i].line, kPass, "determinism.rand",
                     Severity::kError,
                     "'" + s +
                         "()' draws from process-global unseeded state; use "
                         "common/Rng(seed, stream)");
      } else if (s == "random_device") {
        detail::emit(out, *file, t[i].line, kPass,
                     "determinism.random-device", Severity::kError,
                     "std::random_device is nondeterministic entropy; use "
                     "common/Rng(seed, stream)");
      } else if (clock_functions().count(s) > 0 && called(t, i)) {
        detail::emit(out, *file, t[i].line, kPass, "determinism.wallclock",
                     Severity::kError,
                     "wall-clock read '" + s +
                         "()' in a result-producing path; clocks may only "
                         "feed telemetry (annotate with allow(determinism))");
      } else if (s == "for" && is_punct(t, i + 1, "(")) {
        const std::size_t close = match_paren(t, i + 1);
        if (close == kNpos) continue;
        // Range-for over an unordered container: `:` at top depth, then
        // any declared unordered name before `)`.
        int depth = 0;
        bool after_colon = false;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (t[k].kind == TokKind::kPunct) {
            if (t[k].text == "(") ++depth;
            if (t[k].text == ")") --depth;
            if (t[k].text == ":" && depth == 0) after_colon = true;
          }
          if (after_colon && t[k].kind == TokKind::kIdent &&
              unordered_vars.count(t[k].text) > 0) {
            detail::emit(out, *file, t[k].line, kPass,
                         "determinism.unordered-iteration", Severity::kError,
                         "iteration over unordered container '" + t[k].text +
                             "' has hash-order-dependent element order; use "
                             "an ordered container or sort first");
            break;
          }
        }
      } else if ((s == "begin" || s == "cbegin") && called(t, i) && i >= 2 &&
                 (is_punct(t, i - 1, ".") || is_punct(t, i - 1, "->")) &&
                 t[i - 2].kind == TokKind::kIdent &&
                 unordered_vars.count(t[i - 2].text) > 0) {
        detail::emit(out, *file, t[i].line, kPass,
                     "determinism.unordered-iteration", Severity::kError,
                     "iterator over unordered container '" + t[i - 2].text +
                         "' has hash-order-dependent element order");
      } else if (s == "reinterpret_cast" && is_punct(t, i + 1, "<")) {
        const std::size_t close = match_angle(t, i + 1);
        if (close == kNpos) continue;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (t[k].kind == TokKind::kIdent && int_types().count(t[k].text) > 0) {
            detail::emit(out, *file, t[k].line, kPass,
                         "determinism.pointer-to-int", Severity::kError,
                         "reinterpret_cast of a pointer to '" + t[k].text +
                             "' leaks a host address into computed data — "
                             "the PR 4 aliasing-hazard class");
            break;
          }
        }
      } else if ((s == "uintptr_t" || s == "intptr_t") && i >= 1 &&
                 is_punct(t, i - 1, "(") && is_punct(t, i + 1, ")")) {
        detail::emit(out, *file, t[i].line, kPass,
                     "determinism.pointer-to-int", Severity::kError,
                     "C-style cast to " + s +
                         " leaks a host address into computed data");
      }
    }
  }
  return out;
}

}  // namespace cosparse::analyze
