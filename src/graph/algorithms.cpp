#include "graph/algorithms.h"

#include <chrono>
#include <cmath>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "kernels/semiring.h"
#include "obs/sampler.h"
#include "obs/telemetry.h"

namespace cosparse::graph {
namespace {

using kernels::DenseFrontier;
using runtime::Engine;
using sparse::SparseVector;

/// Captures engine totals at algorithm start, slices out the algorithm's
/// own contribution at the end, and publishes it into the engine's
/// attached observability sinks (algo.<name>.* counters, one "algos" track
/// span covering the whole run).
class StatsScope {
 public:
  StatsScope(Engine& eng, const char* algo)
      : eng_(&eng),
        algo_(algo),
        phase_(obs::intern_phase_tag(std::string("graph.") + algo)),
        start_cycles_(eng.total_cycles()),
        start_energy_(eng.total_energy_pj()),
        start_log_(eng.iterations().size()),
        wall_begin_(  // cosparse-lint: allow(determinism)
            std::chrono::steady_clock::now()) {}

  AlgoStats finish() const {
    AlgoStats s;
    s.cycles = eng_->total_cycles() - start_cycles_;
    s.energy_pj = eng_->total_energy_pj() - start_energy_;
    s.per_iteration.assign(eng_->iterations().begin() +
                               static_cast<std::ptrdiff_t>(start_log_),
                           eng_->iterations().end());
    s.iterations = static_cast<std::uint32_t>(s.per_iteration.size());
    if (obs::MetricsRegistry* m = eng_->metrics(); m != nullptr) {
      const std::string prefix = std::string("algo.") + algo_;
      m->counter(prefix + ".runs").inc();
      m->counter(prefix + ".iterations").inc(s.iterations);
      m->counter(prefix + ".cycles").inc(s.cycles);
    }
    if (obs::Telemetry* tel = eng_->telemetry(); tel != nullptr) {
      const std::string prefix = std::string("algo.") + algo_;
      tel->histogram(prefix + ".wall_ms")
          .observe(std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() -  // cosparse-lint: allow(determinism)
                       wall_begin_)
                       .count());
      auto& iter_cycles = tel->histogram(prefix + ".iter_cycles");
      auto& frontier_nnz = tel->histogram(prefix + ".frontier_nnz");
      for (const runtime::IterationRecord& r : s.per_iteration) {
        iter_cycles.observe(static_cast<double>(r.cycles));
        frontier_nnz.observe(static_cast<double>(r.frontier_nnz));
      }
    }
    if (obs::Trace* t = eng_->trace(); t != nullptr && t->enabled()) {
      Json args = Json::object();
      args["iterations"] = s.iterations;
      args["energy_pj"] = s.energy_pj;
      t->add_span("algos", algo_, static_cast<double>(start_cycles_),
                  static_cast<double>(eng_->total_cycles()), std::move(args));
    }
    return s;
  }

 private:
  Engine* eng_;
  const char* algo_;
  obs::PhaseScope phase_;  ///< tags host samples with "graph.<algo>"
  Cycles start_cycles_;
  Picojoules start_energy_;
  std::size_t start_log_;
  std::chrono::steady_clock::time_point wall_begin_;
};

}  // namespace

std::uint32_t AlgoStats::sw_switches() const {
  std::uint32_t n = 0;
  for (const auto& r : per_iteration) n += r.sw_switched ? 1 : 0;
  return n;
}

std::uint32_t AlgoStats::hw_switches() const {
  std::uint32_t n = 0;
  for (const auto& r : per_iteration) n += r.hw_switched ? 1 : 0;
  return n;
}

BfsResult bfs(Engine& eng, Index source) {
  const Index n = eng.dimension();
  COSPARSE_REQUIRE(source < n, "BFS source vertex out of range");
  StatsScope scope(eng, "bfs");

  BfsResult res;
  res.level.assign(n, -1);
  res.level[source] = 0;

  SparseVector init(n);
  init.push_back(source, 0.0);
  Engine::Frontier f = Engine::Frontier::from_sparse(std::move(init));

  const kernels::BfsSemiring sr;
  std::int64_t depth = 0;
  while (f.nnz() > 0) {
    const auto out = eng.spmv(f, sr);
    ++depth;
    // Apply: unvisited touched vertices join the next frontier at `depth`.
    std::size_t added = 0;
    if (out.dense) {
      DenseFrontier next(n, sr.vector_identity());
      out.for_each_touched([&](Index v, Value) {
        if (res.level[v] < 0) {
          res.level[v] = depth;
          next.set(v, static_cast<Value>(depth));
          ++added;
        }
      });
      eng.charge_vector_pass(out.num_touched(), 2, 16);
      f = Engine::Frontier::from_dense(std::move(next));
    } else {
      SparseVector next(n);
      out.for_each_touched([&](Index v, Value) {
        if (res.level[v] < 0) {
          res.level[v] = depth;
          next.push_back(v, static_cast<Value>(depth));
          ++added;
        }
      });
      eng.charge_vector_pass(out.num_touched(), 2, 16);
      f = Engine::Frontier::from_sparse(std::move(next));
    }
    if (added == 0) break;
  }
  res.stats = scope.finish();
  return res;
}

SsspResult sssp(Engine& eng, Index source, std::uint32_t max_iterations) {
  const Index n = eng.dimension();
  COSPARSE_REQUIRE(source < n, "SSSP source vertex out of range");
  if (max_iterations == 0) {
    max_iterations = n > 0 ? n - 1 : 0;  // Bellman-Ford bound
  }
  StatsScope scope(eng, "sssp");

  SsspResult res;
  res.dist.assign(n, kernels::kInf);
  res.dist[source] = 0.0;

  SparseVector init(n);
  init.push_back(source, 0.0);
  Engine::Frontier f = Engine::Frontier::from_sparse(std::move(init));

  const kernels::SsspSemiring sr;
  for (std::uint32_t it = 0; it < max_iterations && f.nnz() > 0; ++it) {
    const auto out = eng.spmv(f, sr);
    // Apply (the min(..., V_dst) half of Table I's Matrix_Op): keep only
    // real improvements; improved vertices form the next frontier.
    std::size_t improved = 0;
    if (out.dense) {
      DenseFrontier next(n, sr.vector_identity());
      out.for_each_touched([&](Index v, Value cand) {
        if (cand < res.dist[v]) {
          res.dist[v] = cand;
          next.set(v, cand);
          ++improved;
        }
      });
      eng.charge_vector_pass(out.num_touched(), 2, 16);
      f = Engine::Frontier::from_dense(std::move(next));
    } else {
      SparseVector next(n);
      out.for_each_touched([&](Index v, Value cand) {
        if (cand < res.dist[v]) {
          res.dist[v] = cand;
          next.push_back(v, cand);
          ++improved;
        }
      });
      eng.charge_vector_pass(out.num_touched(), 2, 16);
      f = Engine::Frontier::from_sparse(std::move(next));
    }
    if (improved == 0) break;
  }
  res.stats = scope.finish();
  return res;
}

PageRankResult pagerank(Engine& eng, std::span<const Index> out_degrees,
                        PageRankOptions opts) {
  const Index n = eng.dimension();
  COSPARSE_REQUIRE(out_degrees.size() == n,
                   "out_degrees size must match the graph");
  StatsScope scope(eng, "pagerank");

  PageRankResult res;
  res.rank.assign(n, n > 0 ? 1.0 / static_cast<double>(n) : 0.0);

  const kernels::PageRankSemiring sr;
  for (std::uint32_t it = 0; it < opts.max_iterations; ++it) {
    // Vector_Op pre-pass: contributions V[src] / deg(src) (Table I).
    DenseFrontier contrib(n, 0.0);
    for (Index v = 0; v < n; ++v) {
      contrib.set(v, out_degrees[v] > 0
                         ? res.rank[v] / static_cast<double>(out_degrees[v])
                         : 0.0);
    }
    eng.charge_vector_pass(n, 2, 16);

    const auto out =
        eng.spmv(Engine::Frontier::from_dense(std::move(contrib)), sr);
    COSPARSE_CHECK(out.dense);  // density 1.0 must select IP

    // Vector_Op post-pass: alpha + (1 - alpha) * V_updated, plus the
    // convergence residual.
    double residual = 0.0;
    const double teleport =
        (1.0 - opts.damping) / static_cast<double>(n);
    for (Index v = 0; v < n; ++v) {
      const double incoming = out.ip.touched[v] ? out.ip.y[v] : 0.0;
      const double next = teleport + opts.damping * incoming;
      residual += std::abs(next - res.rank[v]);
      res.rank[v] = next;
    }
    eng.charge_vector_pass(n, 3, 16);

    res.residual = residual;
    if (residual < opts.tolerance) break;
  }
  res.stats = scope.finish();
  return res;
}

CcResult connected_components(Engine& eng) {
  const Index n = eng.dimension();
  StatsScope scope(eng, "cc");

  CcResult res;
  res.component.resize(n);
  for (Index v = 0; v < n; ++v) res.component[v] = v;

  // Initial frontier: every vertex proposes its own id (dense, labels are
  // the vertex ids themselves).
  kernels::DenseFrontier init(n, kernels::kInf);
  for (Index v = 0; v < n; ++v) init.set(v, static_cast<Value>(v));
  eng.charge_vector_pass(n, 1, 8);
  Engine::Frontier f = Engine::Frontier::from_dense(std::move(init));

  const kernels::BfsSemiring sr;  // min-label propagation
  while (f.nnz() > 0) {
    const auto out = eng.spmv(f, sr);
    std::size_t improved = 0;
    if (out.dense) {
      kernels::DenseFrontier next(n, sr.vector_identity());
      out.for_each_touched([&](Index v, Value label) {
        const auto cand = static_cast<Index>(label);
        if (cand < res.component[v]) {
          res.component[v] = cand;
          next.set(v, label);
          ++improved;
        }
      });
      eng.charge_vector_pass(out.num_touched(), 2, 16);
      f = Engine::Frontier::from_dense(std::move(next));
    } else {
      sparse::SparseVector next(n);
      out.for_each_touched([&](Index v, Value label) {
        const auto cand = static_cast<Index>(label);
        if (cand < res.component[v]) {
          res.component[v] = cand;
          next.push_back(v, label);
          ++improved;
        }
      });
      eng.charge_vector_pass(out.num_touched(), 2, 16);
      f = Engine::Frontier::from_sparse(std::move(next));
    }
    if (improved == 0) break;
  }

  // Count distinct representatives (a representative labels itself).
  for (Index v = 0; v < n; ++v) {
    if (res.component[v] == v) ++res.num_components;
  }
  res.stats = scope.finish();
  return res;
}

CfResult cf(Engine& eng, const sparse::Coo& ratings, CfOptions opts) {
  const Index n = eng.dimension();
  COSPARSE_REQUIRE(ratings.rows() == n && ratings.cols() == n,
                   "ratings matrix must match the engine's graph");
  StatsScope scope(eng, "cf");

  CfResult res;
  res.latent.assign(n, 0.0);
  Rng rng(opts.seed);
  for (Index v = 0; v < n; ++v) {
    res.latent[v] = 0.1 + 0.4 * rng.next_double();
  }

  auto loss = [&] {
    double l = 0.0;
    for (const auto& t : ratings.triplets()) {
      const double e = t.value - res.latent[t.row] * res.latent[t.col];
      l += e * e;
    }
    double reg = 0.0;
    for (Index v = 0; v < n; ++v) reg += res.latent[v] * res.latent[v];
    return l + opts.lambda * reg;
  };

  const kernels::CfSemiring sr{.lambda = opts.lambda};
  for (std::uint32_t it = 0; it < opts.iterations; ++it) {
    const sparse::DenseVector latent_dense(res.latent);
    const auto frontier =
        Engine::Frontier::from_dense(DenseFrontier::from_dense(latent_dense));
    const auto out = eng.spmv(frontier, sr, &latent_dense);
    COSPARSE_CHECK(out.dense);  // density 1.0 must select IP

    // Vector_Op: beta * V_updated + V (gradient step, Table I).
    out.for_each_touched([&](Index v, Value grad) {
      res.latent[v] += opts.beta * grad;
    });
    eng.charge_vector_pass(n, 2, 16);
    res.loss_per_iteration.push_back(loss());
  }
  res.stats = scope.finish();
  return res;
}

}  // namespace cosparse::graph
