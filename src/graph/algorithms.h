// Graph analytics algorithms over the CoSPARSE SpMV abstraction
// (paper §III-D, Table I).
//
// Each algorithm iterates f_next = SpMV(G^T, f) through a runtime::Engine,
// applying its Vector_Op / frontier-update step between iterations (the
// apply work is charged to the simulated PEs via
// Engine::charge_vector_pass). The next frontier is built in the
// representation the producing kernel emitted, so format conversions only
// happen on dataflow switches — matching §III-D.2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/engine.h"

namespace cosparse::graph {

/// Simulation-side totals for one algorithm run, sliced from the engine's
/// iteration log.
struct AlgoStats {
  std::uint32_t iterations = 0;
  Cycles cycles = 0;
  Picojoules energy_pj = 0;
  std::vector<runtime::IterationRecord> per_iteration;

  [[nodiscard]] double seconds(double freq_ghz = 1.0) const {
    return static_cast<double>(cycles) / (freq_ghz * 1e9);
  }
  [[nodiscard]] double joules() const { return energy_pj * 1e-12; }
  [[nodiscard]] double watts(double freq_ghz = 1.0) const {
    const double s = seconds(freq_ghz);
    return s == 0.0 ? 0.0 : joules() / s;
  }
  [[nodiscard]] std::uint32_t sw_switches() const;
  [[nodiscard]] std::uint32_t hw_switches() const;
};

// ---------------- BFS ----------------

struct BfsResult {
  /// BFS level per vertex; -1 for unreachable vertices.
  std::vector<std::int64_t> level;
  AlgoStats stats;
};

BfsResult bfs(runtime::Engine& eng, Index source);

// ---------------- SSSP ----------------

struct SsspResult {
  /// Shortest distance per vertex; +inf for unreachable vertices.
  std::vector<Value> dist;
  AlgoStats stats;
};

/// Bellman-Ford-style frontier SSSP. `max_iterations == 0` means the
/// |V| - 1 theoretical bound.
SsspResult sssp(runtime::Engine& eng, Index source,
                std::uint32_t max_iterations = 0);

// ---------------- PageRank ----------------

struct PageRankOptions {
  double damping = 0.85;
  double tolerance = 1e-7;  ///< L1 residual for early exit
  std::uint32_t max_iterations = 20;
};

struct PageRankResult {
  std::vector<Value> rank;
  double residual = 0.0;  ///< final L1 delta
  AlgoStats stats;
};

/// `out_degrees` are the out-degrees of the *original* graph (Table I
/// divides each source contribution by deg(src)).
PageRankResult pagerank(runtime::Engine& eng,
                        std::span<const Index> out_degrees,
                        PageRankOptions opts = {});

// ---------------- Connected components ----------------

struct CcResult {
  /// Component label per vertex (the smallest vertex id in the component).
  std::vector<Index> component;
  std::uint32_t num_components = 0;
  AlgoStats stats;
};

/// Label-propagation connected components over the SpMV abstraction
/// (min-semiring iterations until no label changes). The engine must have
/// been built over a *symmetric* adjacency (see sparse::symmetrize);
/// components of a directed graph are its weakly connected components.
CcResult connected_components(runtime::Engine& eng);

// ---------------- Collaborative filtering ----------------

struct CfOptions {
  std::uint32_t iterations = 10;
  double lambda = 0.05;        ///< regularization (Table I)
  double beta = 0.01;          ///< gradient step (Table I Vector_Op)
  std::uint64_t seed = 1;      ///< latent-factor initialization
};

struct CfResult {
  std::vector<Value> latent;   ///< rank-1 latent factor per vertex
  std::vector<double> loss_per_iteration;  ///< squared-error + reg loss
  AlgoStats stats;
};

/// Rank-1 matrix-factorization CF by gradient descent, treating the
/// adjacency values as ratings (paper Table I).
CfResult cf(runtime::Engine& eng, const sparse::Coo& ratings,
            CfOptions opts = {});

}  // namespace cosparse::graph
