#include "baselines/cpu_spmv.h"

#include <thread>
#include <vector>

#include "baselines/power.h"
#include "common/error.h"
#include "common/stopwatch.h"

namespace cosparse::baselines {

CpuSpmvResult cpu_spmv(const sparse::Csr& m, const sparse::DenseVector& x,
                       unsigned threads, unsigned repeats) {
  COSPARSE_REQUIRE(m.cols() == x.dimension(),
                   "cpu_spmv: dimension mismatch");
  COSPARSE_REQUIRE(repeats >= 1, "cpu_spmv: repeats must be >= 1");
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());

  CpuSpmvResult res;
  res.y = sparse::DenseVector(m.rows(), 0.0);

  auto run_block = [&](Index r0, Index r1) {
    const auto& col = m.col_idx();
    const auto& val = m.values();
    const auto& xv = x.values();
    for (Index r = r0; r < r1; ++r) {
      Value acc = 0.0;
      for (Offset k = m.row_begin(r); k < m.row_end(r); ++k) {
        acc += val[k] * xv[col[k]];
      }
      res.y[r] = acc;
    }
  };

  double best = 1e300;
  for (unsigned rep = 0; rep < repeats; ++rep) {
    Stopwatch sw;
    if (threads <= 1 || m.rows() < 2 * threads) {
      run_block(0, m.rows());
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      const Index rows_per = (m.rows() + threads - 1) / threads;
      for (unsigned t = 0; t < threads; ++t) {
        const Index r0 = std::min<Index>(m.rows(), t * rows_per);
        const Index r1 = std::min<Index>(m.rows(), r0 + rows_per);
        if (r0 < r1) pool.emplace_back(run_block, r0, r1);
      }
      for (auto& th : pool) th.join();
    }
    best = std::min(best, sw.seconds());
  }
  res.seconds = best;
  res.joules = best * kCpuI7Watts;
  return res;
}

}  // namespace cosparse::baselines
