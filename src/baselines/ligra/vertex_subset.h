// Mini-Ligra: the vertexSubset abstraction.
//
// A frontier is either a sparse list of vertex ids or a dense flag array;
// edge_map converts between the two based on the |E|/20 threshold exactly
// as Ligra does (paper §II-A).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace cosparse::baselines::ligra {

class VertexSubset {
 public:
  VertexSubset() = default;

  static VertexSubset single(Index n, Index v) {
    VertexSubset s;
    s.n_ = n;
    s.sparse_ = {v};
    s.is_dense_ = false;
    return s;
  }

  static VertexSubset from_sparse(Index n, std::vector<Index> vertices) {
    VertexSubset s;
    s.n_ = n;
    s.sparse_ = std::move(vertices);
    s.is_dense_ = false;
    return s;
  }

  static VertexSubset from_dense(std::vector<std::uint8_t> flags) {
    VertexSubset s;
    s.n_ = static_cast<Index>(flags.size());
    s.dense_ = std::move(flags);
    s.is_dense_ = true;
    s.count_ = 0;
    for (auto f : s.dense_) s.count_ += f ? 1u : 0u;
    return s;
  }

  [[nodiscard]] Index dimension() const { return n_; }
  [[nodiscard]] bool is_dense() const { return is_dense_; }
  [[nodiscard]] std::size_t size() const {
    return is_dense_ ? count_ : sparse_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] const std::vector<Index>& sparse_ids() const {
    COSPARSE_CHECK(!is_dense_);
    return sparse_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& dense_flags() const {
    COSPARSE_CHECK(is_dense_);
    return dense_;
  }

  /// In-place representation changes (Ligra's toDense/toSparse).
  void to_dense() {
    if (is_dense_) return;
    dense_.assign(n_, 0);
    for (Index v : sparse_) dense_[v] = 1;
    count_ = sparse_.size();
    sparse_.clear();
    is_dense_ = true;
  }

  void to_sparse() {
    if (!is_dense_) return;
    sparse_.clear();
    sparse_.reserve(count_);
    for (Index v = 0; v < n_; ++v) {
      if (dense_[v]) sparse_.push_back(v);
    }
    dense_.clear();
    count_ = 0;
    is_dense_ = false;
  }

  /// Membership test valid in either representation (O(size) when sparse —
  /// only used by tests).
  [[nodiscard]] bool contains(Index v) const {
    if (is_dense_) return dense_[v] != 0;
    for (Index u : sparse_) {
      if (u == v) return true;
    }
    return false;
  }

 private:
  Index n_ = 0;
  bool is_dense_ = false;
  std::vector<Index> sparse_;
  std::vector<std::uint8_t> dense_;
  std::size_t count_ = 0;
};

}  // namespace cosparse::baselines::ligra
