// Mini-Ligra applications: BFS, SSSP (Bellman-Ford), PageRank and
// collaborative filtering — the four workloads of Fig. 10, implemented
// with the same semantics as their CoSPARSE counterparts so results can be
// cross-checked bit-for-bit (BFS/SSSP) or to tight numerical tolerance
// (PR/CF).
//
// These run *natively on the host* and are wall-clock timed; energy is
// wall time x the Xeon E7-4860 package power (see baselines/power.h and
// DESIGN.md §2 on this substitution).
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/ligra/ligra_graph.h"

namespace cosparse::baselines::ligra {

struct LigraRunCosts {
  double seconds = 0.0;
  double joules = 0.0;
  std::uint32_t iterations = 0;
};

struct LigraBfsResult {
  std::vector<std::int64_t> parent;  ///< -1 when unreached
  std::vector<std::int64_t> level;   ///< -1 when unreached
  LigraRunCosts costs;
};

LigraBfsResult ligra_bfs(const LigraGraph& g, Index source,
                         unsigned threads = 0);

struct LigraSsspResult {
  std::vector<double> dist;  ///< +inf when unreached
  LigraRunCosts costs;
};

LigraSsspResult ligra_sssp(const LigraGraph& g, Index source,
                           unsigned threads = 0);

struct LigraPrResult {
  std::vector<double> rank;
  double residual = 0.0;
  LigraRunCosts costs;
};

LigraPrResult ligra_pagerank(const LigraGraph& g, double damping = 0.85,
                             double tolerance = 1e-7,
                             std::uint32_t max_iterations = 20,
                             unsigned threads = 0);

struct LigraCcResult {
  std::vector<Index> component;
  std::uint32_t num_components = 0;
  LigraRunCosts costs;
};

/// Label-propagation connected components (expects a symmetric graph,
/// matching graph::connected_components).
LigraCcResult ligra_cc(const LigraGraph& g, unsigned threads = 0);

struct LigraCfResult {
  std::vector<double> latent;
  std::vector<double> loss_per_iteration;
  LigraRunCosts costs;
};

/// Matches graph::cf (same initialization formula and seed semantics).
LigraCfResult ligra_cf(const LigraGraph& g, std::uint32_t iterations = 10,
                       double lambda = 0.05, double beta = 0.01,
                       std::uint64_t seed = 1, unsigned threads = 0);

}  // namespace cosparse::baselines::ligra
