// Mini-Ligra: graph representation.
//
// A faithful reimplementation of the data layout Ligra (Shun & Blelloch,
// PPoPP'13) uses for its shared-memory framework: CSR of out-edges for the
// sparse (push) direction and CSR of in-edges for the dense (pull)
// direction, both resident — the same "keep both orientations" trade
// CoSPARSE makes with its COO+CSC copies.
#pragma once

#include "sparse/formats.h"

namespace cosparse::baselines::ligra {

struct LigraGraph {
  Index n = 0;
  std::size_t m = 0;
  sparse::Csr out;  ///< out-edges: push direction
  sparse::Csr in;   ///< in-edges: pull direction (CSR of the transpose)

  static LigraGraph build(const sparse::Coo& adjacency) {
    LigraGraph g;
    g.n = adjacency.rows();
    g.m = adjacency.nnz();
    g.out = sparse::coo_to_csr(adjacency);
    g.in = sparse::coo_to_csr(sparse::transpose(adjacency));
    return g;
  }

  [[nodiscard]] Index out_degree(Index v) const { return out.row_nnz(v); }
  [[nodiscard]] Index in_degree(Index v) const { return in.row_nnz(v); }
};

}  // namespace cosparse::baselines::ligra
