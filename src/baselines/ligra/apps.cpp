#include "baselines/ligra/apps.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "baselines/ligra/edge_map.h"
#include "baselines/power.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace cosparse::baselines::ligra {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Atomic compare-and-swap on a plain int64 slot (Ligra's CAS idiom).
bool cas_i64(std::int64_t* slot, std::int64_t expected, std::int64_t desired) {
  std::atomic_ref<std::int64_t> ref(*slot);
  return ref.compare_exchange_strong(expected, desired,
                                     std::memory_order_relaxed);
}

/// Atomic min on a double slot; returns true if it lowered the value.
bool write_min(double* slot, double value) {
  std::atomic_ref<double> ref(*slot);
  double cur = ref.load(std::memory_order_relaxed);
  while (value < cur) {
    if (ref.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

LigraBfsResult ligra_bfs(const LigraGraph& g, Index source, unsigned threads) {
  COSPARSE_REQUIRE(source < g.n, "ligra_bfs: source out of range");
  LigraBfsResult res;
  res.parent.assign(g.n, -1);
  res.level.assign(g.n, -1);

  Stopwatch sw;
  res.parent[source] = static_cast<std::int64_t>(source);
  res.level[source] = 0;

  struct BfsF {
    std::int64_t* parent;
    std::int64_t* level;
    std::int64_t depth;
    bool update(Index u, Index v, Value) const {
      if (parent[v] == -1) {
        parent[v] = static_cast<std::int64_t>(u);
        level[v] = depth;
        return true;
      }
      return false;
    }
    bool update_atomic(Index u, Index v, Value) const {
      if (cas_i64(&parent[v], -1, static_cast<std::int64_t>(u))) {
        level[v] = depth;
        return true;
      }
      return false;
    }
    bool cond(Index v) const { return parent[v] == -1; }
  };

  EdgeMapOptions opts;
  opts.threads = threads;
  VertexSubset frontier = VertexSubset::single(g.n, source);
  std::int64_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    BfsF f{res.parent.data(), res.level.data(), depth};
    frontier = edge_map(g, frontier, f, opts);
    ++res.costs.iterations;
  }
  res.costs.seconds = sw.seconds();
  res.costs.joules = res.costs.seconds * kXeonWatts;
  return res;
}

LigraSsspResult ligra_sssp(const LigraGraph& g, Index source,
                           unsigned threads) {
  COSPARSE_REQUIRE(source < g.n, "ligra_sssp: source out of range");
  LigraSsspResult res;
  res.dist.assign(g.n, kInf);

  Stopwatch sw;
  res.dist[source] = 0.0;
  // Per-round "joined the output frontier" flags (Ligra's BellmanFord
  // resets these between rounds to deduplicate improvements).
  std::vector<std::uint8_t> joined(g.n, 0);

  struct SsspF {
    double* dist;
    std::uint8_t* joined;
    bool update(Index u, Index v, Value w) const {
      if (dist[u] + w < dist[v]) {
        dist[v] = dist[u] + w;
        if (!joined[v]) {
          joined[v] = 1;
          return true;
        }
      }
      return false;
    }
    bool update_atomic(Index u, Index v, Value w) const {
      if (write_min(&dist[v], dist[u] + w)) {
        std::atomic_ref<std::uint8_t> flag(joined[v]);
        return flag.exchange(1, std::memory_order_relaxed) == 0;
      }
      return false;
    }
    bool cond(Index) const { return true; }
  };

  EdgeMapOptions opts;
  opts.threads = threads;
  VertexSubset frontier = VertexSubset::single(g.n, source);
  for (Index round = 0; round + 1 < g.n && !frontier.empty(); ++round) {
    SsspF f{res.dist.data(), joined.data()};
    frontier = edge_map(g, frontier, f, opts);
    ++res.costs.iterations;
    // Reset join flags for the vertices that entered the frontier.
    if (frontier.is_dense()) {
      std::fill(joined.begin(), joined.end(), 0);
    } else {
      for (Index v : frontier.sparse_ids()) joined[v] = 0;
    }
  }
  res.costs.seconds = sw.seconds();
  res.costs.joules = res.costs.seconds * kXeonWatts;
  return res;
}

LigraPrResult ligra_pagerank(const LigraGraph& g, double damping,
                             double tolerance, std::uint32_t max_iterations,
                             unsigned threads) {
  LigraPrResult res;
  const double n = static_cast<double>(g.n);
  res.rank.assign(g.n, g.n > 0 ? 1.0 / n : 0.0);

  Stopwatch sw;
  std::vector<double> contrib(g.n, 0.0);
  for (std::uint32_t it = 0; it < max_iterations; ++it) {
    detail::parallel_blocks(g.n, threads,
                            [&](std::size_t v0, std::size_t v1, unsigned) {
                              for (Index v = static_cast<Index>(v0); v < v1;
                                   ++v) {
                                const Index deg = g.out_degree(v);
                                contrib[v] =
                                    deg > 0 ? res.rank[v] / deg : 0.0;
                              }
                            });
    std::atomic<double> residual{0.0};
    detail::parallel_blocks(
        g.n, threads, [&](std::size_t v0, std::size_t v1, unsigned) {
          double local = 0.0;
          for (Index v = static_cast<Index>(v0); v < v1; ++v) {
            double incoming = 0.0;
            for (Offset k = g.in.row_begin(v); k < g.in.row_end(v); ++k) {
              incoming += contrib[g.in.col_idx()[k]];
            }
            const double next = (1.0 - damping) / n + damping * incoming;
            local += std::abs(next - res.rank[v]);
            res.rank[v] = next;
          }
          double cur = residual.load(std::memory_order_relaxed);
          while (!residual.compare_exchange_weak(cur, cur + local)) {
          }
        });
    res.residual = residual.load();
    ++res.costs.iterations;
    if (res.residual < tolerance) break;
  }
  res.costs.seconds = sw.seconds();
  res.costs.joules = res.costs.seconds * kXeonWatts;
  return res;
}

LigraCcResult ligra_cc(const LigraGraph& g, unsigned threads) {
  LigraCcResult res;
  res.component.resize(g.n);
  for (Index v = 0; v < g.n; ++v) res.component[v] = v;

  Stopwatch sw;
  // Per-round "joined" flags, like Bellman-Ford.
  std::vector<std::uint8_t> joined(g.n, 0);

  struct CcF {
    Index* comp;
    std::uint8_t* joined;
    bool update(Index u, Index v, Value) const {
      if (comp[u] < comp[v]) {
        comp[v] = comp[u];
        if (!joined[v]) {
          joined[v] = 1;
          return true;
        }
      }
      return false;
    }
    bool update_atomic(Index u, Index v, Value) const {
      const Index label = comp[u];
      std::atomic_ref<Index> ref(comp[v]);
      Index cur = ref.load(std::memory_order_relaxed);
      bool lowered = false;
      while (label < cur) {
        if (ref.compare_exchange_weak(cur, label,
                                      std::memory_order_relaxed)) {
          lowered = true;
          break;
        }
      }
      if (!lowered) return false;
      std::atomic_ref<std::uint8_t> flag(joined[v]);
      return flag.exchange(1, std::memory_order_relaxed) == 0;
    }
    bool cond(Index) const { return true; }
  };

  EdgeMapOptions opts;
  opts.threads = threads;
  std::vector<Index> all(g.n);
  for (Index v = 0; v < g.n; ++v) all[v] = v;
  VertexSubset frontier = VertexSubset::from_sparse(g.n, std::move(all));
  while (!frontier.empty()) {
    CcF f{res.component.data(), joined.data()};
    frontier = edge_map(g, frontier, f, opts);
    ++res.costs.iterations;
    if (frontier.is_dense()) {
      std::fill(joined.begin(), joined.end(), 0);
    } else {
      for (Index v : frontier.sparse_ids()) joined[v] = 0;
    }
  }
  for (Index v = 0; v < g.n; ++v) {
    if (res.component[v] == v) ++res.num_components;
  }
  res.costs.seconds = sw.seconds();
  res.costs.joules = res.costs.seconds * kXeonWatts;
  return res;
}

LigraCfResult ligra_cf(const LigraGraph& g, std::uint32_t iterations,
                       double lambda, double beta, std::uint64_t seed,
                       unsigned threads) {
  LigraCfResult res;
  res.latent.assign(g.n, 0.0);
  Rng rng(seed);
  for (Index v = 0; v < g.n; ++v) {
    res.latent[v] = 0.1 + 0.4 * rng.next_double();
  }

  Stopwatch sw;
  std::vector<double> grad(g.n, 0.0);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    detail::parallel_blocks(
        g.n, threads, [&](std::size_t v0, std::size_t v1, unsigned) {
          for (Index v = static_cast<Index>(v0); v < v1; ++v) {
            if (g.in.row_begin(v) == g.in.row_end(v)) {
              grad[v] = 0.0;  // untouched rows get no update (Table I)
              continue;
            }
            double acc = 0.0;
            for (Offset k = g.in.row_begin(v); k < g.in.row_end(v); ++k) {
              const Index u = g.in.col_idx()[k];
              const double w = g.in.values()[k];
              acc += (w - res.latent[u] * res.latent[v]) * res.latent[u];
            }
            grad[v] = acc - lambda * res.latent[v];
          }
        });
    for (Index v = 0; v < g.n; ++v) res.latent[v] += beta * grad[v];
    ++res.costs.iterations;

    double loss = 0.0;
    for (Index v = 0; v < g.n; ++v) {
      for (Offset k = g.in.row_begin(v); k < g.in.row_end(v); ++k) {
        const Index u = g.in.col_idx()[k];
        const double e = g.in.values()[k] - res.latent[u] * res.latent[v];
        loss += e * e;
      }
      loss += lambda * res.latent[v] * res.latent[v];
    }
    res.loss_per_iteration.push_back(loss);
  }
  res.costs.seconds = sw.seconds();
  res.costs.joules = res.costs.seconds * kXeonWatts;
  return res;
}

}  // namespace cosparse::baselines::ligra
