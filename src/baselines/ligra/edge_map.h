// Mini-Ligra: edgeMap with push/pull direction switching.
//
// Semantics follow Ligra (PPoPP'13):
//   * F.update(u, v, w)        — sequential-context edge update; returns
//                                 true if v should join the output frontier;
//   * F.update_atomic(u, v, w) — thread-safe variant used by the push
//                                 direction;
//   * F.cond(v)            — destination filter; pull skips (and push
//                            drops) vertices failing it.
//
// Direction choice (paper §II-A): Ligra switches to the dense/pull
// traversal when |frontier| + sum(out-degree(frontier)) > |E| / 20.
// The pull direction additionally early-exits a vertex's in-edge scan once
// cond(v) flips false (BFS's key optimization).
#pragma once

#include <cstdint>
#include <thread>
#include <vector>

#include "baselines/ligra/ligra_graph.h"
#include "baselines/ligra/vertex_subset.h"

namespace cosparse::baselines::ligra {

struct EdgeMapOptions {
  unsigned threads = 0;              ///< 0: hardware_concurrency
  double threshold_fraction = 0.05;  ///< |E|/20
  bool force_dense = false;
  bool force_sparse = false;
};

namespace detail {

inline unsigned resolve_threads(unsigned t) {
  return t != 0 ? t : std::max(1u, std::thread::hardware_concurrency());
}

template <class Body>
void parallel_blocks(std::size_t count, unsigned threads, Body&& body) {
  threads = resolve_threads(threads);
  if (threads <= 1 || count < 2 * threads) {
    body(0, count, 0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::size_t per = (count + threads - 1) / threads;
  for (unsigned t = 0; t < threads; ++t) {
    const std::size_t b = std::min(count, static_cast<std::size_t>(t) * per);
    const std::size_t e = std::min(count, b + per);
    if (b < e) pool.emplace_back([&body, b, e, t] { body(b, e, t); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace detail

/// Number of frontier vertices plus their out-edges — Ligra's density
/// statistic.
inline std::size_t frontier_work(const LigraGraph& g, VertexSubset& frontier) {
  if (frontier.is_dense()) {
    std::size_t work = 0;
    const auto& flags = frontier.dense_flags();
    for (Index v = 0; v < g.n; ++v) {
      if (flags[v]) work += 1 + g.out_degree(v);
    }
    return work;
  }
  std::size_t work = 0;
  for (Index v : frontier.sparse_ids()) work += 1 + g.out_degree(v);
  return work;
}

template <class F>
VertexSubset edge_map_dense(const LigraGraph& g, VertexSubset& frontier,
                            F&& f, const EdgeMapOptions& opts) {
  frontier.to_dense();
  const auto& in_frontier = frontier.dense_flags();
  std::vector<std::uint8_t> next(g.n, 0);
  detail::parallel_blocks(
      g.n, opts.threads,
      [&](std::size_t v0, std::size_t v1, unsigned) {
        for (Index v = static_cast<Index>(v0); v < v1; ++v) {
          if (!f.cond(v)) continue;
          for (Offset k = g.in.row_begin(v); k < g.in.row_end(v); ++k) {
            const Index u = g.in.col_idx()[k];
            if (!in_frontier[u]) continue;
            if (f.update(u, v, g.in.values()[k])) next[v] = 1;
            if (!f.cond(v)) break;  // Ligra's pull early exit
          }
        }
      });
  return VertexSubset::from_dense(std::move(next));
}

template <class F>
VertexSubset edge_map_sparse(const LigraGraph& g, VertexSubset& frontier,
                             F&& f, const EdgeMapOptions& opts) {
  frontier.to_sparse();
  const auto& ids = frontier.sparse_ids();
  const unsigned threads = detail::resolve_threads(opts.threads);
  std::vector<std::vector<Index>> local(threads);
  detail::parallel_blocks(
      ids.size(), opts.threads,
      [&](std::size_t i0, std::size_t i1, unsigned tid) {
        auto& mine = local[tid];
        for (std::size_t i = i0; i < i1; ++i) {
          const Index u = ids[i];
          for (Offset k = g.out.row_begin(u); k < g.out.row_end(u); ++k) {
            const Index v = g.out.col_idx()[k];
            if (f.cond(v) && f.update_atomic(u, v, g.out.values()[k])) {
              mine.push_back(v);
            }
          }
        }
      });
  std::vector<Index> merged;
  for (auto& l : local) merged.insert(merged.end(), l.begin(), l.end());
  return VertexSubset::from_sparse(g.n, std::move(merged));
}

template <class F>
VertexSubset edge_map(const LigraGraph& g, VertexSubset& frontier, F&& f,
                      const EdgeMapOptions& opts = {}) {
  if (frontier.empty()) return VertexSubset::from_sparse(g.n, {});
  const std::size_t work = frontier_work(g, frontier);
  const bool dense =
      opts.force_dense ||
      (!opts.force_sparse &&
       static_cast<double>(work) >
           opts.threshold_fraction * static_cast<double>(g.m));
  return dense ? edge_map_dense(g, frontier, std::forward<F>(f), opts)
               : edge_map_sparse(g, frontier, std::forward<F>(f), opts);
}

}  // namespace cosparse::baselines::ligra
