// Power/area constants for the platform comparisons (Figs. 8 and 10).
//
// The paper measures wall power on real silicon; none of those machines
// exist in this environment, so energy for the host-measured baselines is
// `wall_time x representative package power`. Constants are public
// datasheet numbers for the paper's exact parts, documented per entry.
// Every comparison that uses them states so in EXPERIMENTS.md.
#pragma once

namespace cosparse::baselines {

/// Intel i7-6700K (Fig. 8 CPU baseline, MKL 2018.3): 91 W TDP.
inline constexpr double kCpuI7Watts = 91.0;

/// Intel Xeon E7-4860 (Fig. 10 Ligra host, 48 cores): 130 W TDP per socket.
inline constexpr double kXeonWatts = 130.0;

/// NVIDIA Tesla V100 (Fig. 8 GPU baseline, cuSPARSE): 250 W TDP (PCIe).
inline constexpr double kGpuV100Watts = 250.0;

/// V100 HBM2 peak bandwidth in bytes/second.
inline constexpr double kGpuV100BandwidthBps = 900e9;

/// Approximate die areas (mm^2) behind the paper's "40x more area" remark.
inline constexpr double kXeonAreaMm2 = 513.0;
inline constexpr double kTransmuterAreaMm2 = 12.6;  ///< 40 nm prototype-class

}  // namespace cosparse::baselines
