// Native (host-executed) CPU SpMV baseline.
//
// Stands in for the paper's "Intel i7-6700K running MKL 2018.3" point in
// Fig. 8: an optimized dense-dataflow CSR SpMV y = M*x parallelized over
// row blocks. Like MKL's csrmv it does the full matrix work regardless of
// how sparse the input vector happens to be — which is exactly why
// CoSPARSE's advantage grows as the vector gets sparser.
#pragma once

#include <cstdint>

#include "sparse/formats.h"
#include "sparse/vector.h"

namespace cosparse::baselines {

struct CpuSpmvResult {
  sparse::DenseVector y;
  double seconds = 0.0;
  double joules = 0.0;  ///< seconds x kCpuI7Watts
};

/// `threads == 0` uses std::thread::hardware_concurrency().
CpuSpmvResult cpu_spmv(const sparse::Csr& m, const sparse::DenseVector& x,
                       unsigned threads = 0, unsigned repeats = 3);

}  // namespace cosparse::baselines
