// Analytic GPU (V100 + cuSPARSE) baseline model for Fig. 8.
//
// No GPU exists in this environment; the paper only needs the GPU as a
// comparison curve, and it characterizes *why* the GPU underperforms on
// SpMV with enough detail to parameterize a roofline-with-overheads model:
//   * "memory dependence stalls account for 32% of the GPU stalls",
//   * "most of the remaining cycles (averaging 35%) are spent in
//      synchronization, instruction fetching, and throttled memory
//      accesses",
//   * "the highest average bandwidth utilized by a kernel varies from
//      12-71%".
// The model therefore charges the dense-dataflow memory traffic of
// cuSPARSE csrmv (matrix stream + gathered vector + output) against an
// effective bandwidth of `utilization x 900 GB/s`, inflated by the stall
// overheads above, plus a fixed kernel-launch latency. Like the CPU
// baseline it is *independent of input-vector density* — cuSPARSE csrmv
// performs the full matrix pass either way.
#pragma once

#include <cstdint>

#include "sparse/formats.h"

namespace cosparse::baselines {

struct GpuModelParams {
  double bandwidth_bps = 900e9;       ///< V100 HBM2 peak
  double base_utilization = 0.35;     ///< mid-range of the 12-71% report
  double stall_overhead = 0.35 + 0.32;///< sync/fetch/throttle + mem-dep
  double launch_seconds = 10e-6;      ///< per-kernel launch latency
  double watts = 250.0;               ///< V100 TDP
  /// Random vector gathers hit worse than streams; low-locality matrices
  /// (low density) push utilization towards the 12% end.
  double min_utilization = 0.12;
  double max_utilization = 0.71;
};

struct GpuModelResult {
  double seconds = 0.0;
  double joules = 0.0;
  double utilization = 0.0;  ///< effective bandwidth fraction used
};

/// Models one csrmv launch: y = M * x_dense with nnz(M) non-zeros.
GpuModelResult gpu_spmv_model(Index rows, Index cols, std::uint64_t nnz,
                              GpuModelParams params = {});

}  // namespace cosparse::baselines
