#include "baselines/gpu_model.h"

#include <algorithm>
#include <cmath>

namespace cosparse::baselines {

GpuModelResult gpu_spmv_model(Index rows, Index cols, std::uint64_t nnz,
                              GpuModelParams p) {
  GpuModelResult res;
  // Locality proxy: average non-zeros per matrix row. Long rows coalesce
  // vector gathers better; a handful of non-zeros per row leaves most of a
  // 32-thread warp's loads divergent, pinning utilization at the low end.
  const double nnz_per_row =
      rows == 0 ? 0.0 : static_cast<double>(nnz) / static_cast<double>(rows);
  const double locality = std::clamp(nnz_per_row / 256.0, 0.0, 1.0);
  res.utilization =
      std::clamp(p.min_utilization +
                     (p.max_utilization - p.min_utilization) * locality,
                 p.min_utilization, p.max_utilization);

  // csrmv traffic: 12 B per non-zero (column index + value), an 8 B vector
  // gather per non-zero (low locality, counted uncached), row pointers, and
  // the output write.
  const double bytes = static_cast<double>(nnz) * (12.0 + 8.0) +
                       static_cast<double>(rows + 1) * 4.0 +
                       static_cast<double>(rows) * 8.0 +
                       static_cast<double>(cols) * 8.0;
  const double transfer = bytes / (p.bandwidth_bps * res.utilization);
  res.seconds = p.launch_seconds + transfer * (1.0 + p.stall_overhead);
  res.joules = res.seconds * p.watts;
  return res;
}

}  // namespace cosparse::baselines
