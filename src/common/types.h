// Fundamental scalar types used across the CoSPARSE reproduction.
//
// The paper operates on graph adjacency matrices with up to a few million
// vertices and tens of millions of edges; 32-bit indices suffice for the
// evaluated datasets, while cycle/energy accounting needs 64 bits.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cosparse {

/// Vertex / row / column index. 32-bit: the largest evaluated graph
/// (livejournal, 4.8M vertices) fits comfortably.
using Index = std::uint32_t;

/// Offset into a non-zero array (up to ~69M edges in livejournal, plus
/// headroom for synthetic sweeps).
using Offset = std::uint64_t;

/// Numeric value of a matrix/vector element. Graph analytics in the paper
/// (BFS/SSSP levels and distances, PageRank scores, CF latent factors) are
/// all representable in double precision without surprises.
using Value = double;

/// Simulated clock cycles (1 GHz PEs, so 1 cycle == 1 ns).
using Cycles = std::uint64_t;

/// Simulated energy in picojoules.
using Picojoules = double;

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

inline constexpr std::size_t kCacheLineBytes = 64;

}  // namespace cosparse
