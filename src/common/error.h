// Error handling: a single exception type plus CHECK-style macros.
//
// Following the C++ Core Guidelines (E.2/E.14) we throw exceptions for
// runtime errors (bad input files, inconsistent matrix dimensions) and use
// hard checks for programming-logic invariants that should never fail.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cosparse {

/// Exception thrown for recoverable runtime errors (malformed input files,
/// dimension mismatches, unknown dataset names, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail(const char* kind, const char* cond,
                              const char* file, int line,
                              const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace cosparse

/// Precondition / invariant check. Always on (these guard simulator and
/// format invariants whose violation would silently corrupt results).
#define COSPARSE_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond))                                                          \
      ::cosparse::detail::fail("CHECK", #cond, __FILE__, __LINE__, "");   \
  } while (0)

#define COSPARSE_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream cosparse_os_;                                    \
      cosparse_os_ << msg;                                                \
      ::cosparse::detail::fail("CHECK", #cond, __FILE__, __LINE__,        \
                               cosparse_os_.str());                       \
    }                                                                     \
  } while (0)

/// Validation of external input; reads as "require this of the caller/file".
#define COSPARSE_REQUIRE(cond, msg) COSPARSE_CHECK_MSG(cond, msg)
