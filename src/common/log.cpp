#include "common/log.h"

#include <atomic>
#include <cstdio>

namespace cosparse::log {
namespace {

std::atomic<Level> g_threshold{Level::kInfo};

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

void write(Level level, std::string_view msg) {
  std::fprintf(stderr, "[cosparse %s] %.*s\n", tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace cosparse::log
