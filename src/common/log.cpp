#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace cosparse::log {
namespace {

Level initial_threshold() {
  const char* env = std::getenv("COSPARSE_LOG");
  if (env == nullptr) return Level::kInfo;
  return parse_level(env).value_or(Level::kInfo);
}

std::atomic<Level>& threshold_storage() {
  static std::atomic<Level> t{initial_threshold()};
  return t;
}

std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

// Guarded by sink_mutex(); nullptr means stderr.
std::ostream* g_sink = nullptr;

const char* tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
  }
  return "?????";
}

}  // namespace

Level threshold() noexcept {
  return threshold_storage().load(std::memory_order_relaxed);
}

void set_threshold(Level level) noexcept {
  threshold_storage().store(level, std::memory_order_relaxed);
}

std::optional<Level> parse_level(std::string_view name) noexcept {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  return std::nullopt;
}

void set_sink(std::ostream* sink) noexcept {
  const std::lock_guard<std::mutex> lock(sink_mutex());
  g_sink = sink;
}

void write(Level level, std::string_view msg) {
  // Format outside the lock; emit as one write so concurrent callers never
  // interleave within a line.
  std::string line = "[cosparse ";
  line += tag(level);
  line += "] ";
  line += msg;
  line += '\n';
  const std::lock_guard<std::mutex> lock(sink_mutex());
  if (g_sink != nullptr) {
    g_sink->write(line.data(), static_cast<std::streamsize>(line.size()));
    g_sink->flush();
  } else {
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

std::ostream& operator<<(std::ostream& os, const Field& f) {
  os << ' ' << f.key << '=';
  const bool quote =
      f.value.empty() ||
      f.value.find_first_of(" \t=\"") != std::string::npos;
  if (quote) {
    os << '"';
    for (const char c : f.value) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << '"';
  } else {
    os << f.value;
  }
  return os;
}

}  // namespace cosparse::log
