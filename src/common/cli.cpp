#include "common/cli.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace cosparse {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  Option opt;
  opt.help = help;
  opt.is_flag = true;
  opt.value = "false";
  options_.emplace(name, std::move(opt));
}

void CliParser::add_option(const std::string& name, const std::string& help,
                           const std::string& default_value) {
  Option opt;
  opt.help = help;
  opt.value = default_value;
  options_.emplace(name, std::move(opt));
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      std::fprintf(stderr, "%s: unknown option --%s\n", program_.c_str(),
                   name.c_str());
      print_usage();
      return false;
    }
    Option& opt = it->second;
    if (opt.is_flag) {
      opt.value = has_value ? value : "true";
    } else {
      if (!has_value) {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: option --%s expects a value\n",
                       program_.c_str(), name.c_str());
          return false;
        }
        value = argv[++i];
      }
      opt.value = value;
    }
    opt.seen = true;
  }
  return true;
}

const CliParser::Option& CliParser::lookup(const std::string& name) const {
  auto it = options_.find(name);
  COSPARSE_CHECK_MSG(it != options_.end(), "option --" << name
                                                       << " was never registered");
  return it->second;
}

bool CliParser::has(const std::string& name) const {
  return options_.find(name) != options_.end();
}

bool CliParser::flag(const std::string& name) const {
  return lookup(name).value == "true";
}

std::string CliParser::str(const std::string& name) const {
  return lookup(name).value;
}

std::int64_t CliParser::integer(const std::string& name) const {
  const std::string& v = lookup(name).value;
  try {
    return std::stoll(v);
  } catch (const std::exception&) {
    throw Error("option --" + name + ": '" + v + "' is not an integer");
  }
}

double CliParser::real(const std::string& name) const {
  const std::string& v = lookup(name).value;
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw Error("option --" + name + ": '" + v + "' is not a number");
  }
}

std::vector<std::string> CliParser::str_list(const std::string& name) const {
  std::vector<std::string> out;
  std::stringstream ss(lookup(name).value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::int64_t> CliParser::int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  for (const auto& s : str_list(name)) {
    try {
      out.push_back(std::stoll(s));
    } catch (const std::exception&) {
      throw Error("option --" + name + ": '" + s + "' is not an integer");
    }
  }
  return out;
}

std::vector<double> CliParser::real_list(const std::string& name) const {
  std::vector<double> out;
  for (const auto& s : str_list(name)) {
    try {
      out.push_back(std::stod(s));
    } catch (const std::exception&) {
      throw Error("option --" + name + ": '" + s + "' is not a number");
    }
  }
  return out;
}

void CliParser::print_usage() const {
  std::fprintf(stderr, "%s — %s\n\nOptions:\n", program_.c_str(),
               description_.c_str());
  for (const auto& [name, opt] : options_) {
    if (opt.is_flag) {
      std::fprintf(stderr, "  --%-22s %s\n", name.c_str(), opt.help.c_str());
    } else {
      std::fprintf(stderr, "  --%-22s %s (default: %s)\n",
                   (name + " <v>").c_str(), opt.help.c_str(),
                   opt.value.c_str());
    }
  }
}

}  // namespace cosparse
