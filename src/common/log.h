// Minimal leveled logger. Benchmarks and examples print structured tables
// through common/table.h; this logger is for diagnostics only.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace cosparse::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

void write(Level level, std::string_view msg);

namespace detail {

template <class... Args>
void emit(Level level, Args&&... args) {
  if (level < threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  write(level, os.str());
}

}  // namespace detail

template <class... Args>
void debug(Args&&... args) {
  detail::emit(Level::kDebug, std::forward<Args>(args)...);
}
template <class... Args>
void info(Args&&... args) {
  detail::emit(Level::kInfo, std::forward<Args>(args)...);
}
template <class... Args>
void warn(Args&&... args) {
  detail::emit(Level::kWarn, std::forward<Args>(args)...);
}
template <class... Args>
void error(Args&&... args) {
  detail::emit(Level::kError, std::forward<Args>(args)...);
}

}  // namespace cosparse::log
