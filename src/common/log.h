// Minimal leveled logger with structured key=value fields.
//
// Benchmarks and examples print result tables through common/table.h; this
// logger is for diagnostics. Messages are a free-text head followed by
// `key=value` fields appended via log::kv(), so lines stay grep- and
// machine-friendly:
//
//   log::info("reconfigured", log::kv("from", "SC"), log::kv("to", "PS"));
//   -> [cosparse INFO ] reconfigured from=SC to=PS
//
// The threshold initializes from the COSPARSE_LOG environment variable
// (debug|info|warn|error, default info). write() is safe for concurrent
// callers, and the sink can be redirected to any std::ostream so tests can
// assert on log output.
#pragma once

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace cosparse::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. The initial value
/// comes from COSPARSE_LOG (debug|info|warn|error), defaulting to info.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive); nullopt on
/// anything else.
std::optional<Level> parse_level(std::string_view name) noexcept;

/// Redirects log output to `sink` (nullptr restores stderr). The caller
/// keeps ownership; the stream must outlive any logging. Thread-safe.
void set_sink(std::ostream* sink) noexcept;

/// Emits one formatted line to the current sink. Thread-safe: each call
/// produces exactly one uninterleaved line.
void write(Level level, std::string_view msg);

/// One structured field, rendered as ` key=value`. Values containing
/// whitespace or '=' are quoted so lines stay unambiguous to parse.
struct Field {
  std::string key;
  std::string value;
};

std::ostream& operator<<(std::ostream& os, const Field& f);

/// Builds a structured field from any streamable value.
template <class T>
Field kv(std::string key, const T& value) {
  std::ostringstream os;
  os << value;
  return Field{std::move(key), os.str()};
}

namespace detail {

template <class... Args>
void emit(Level level, Args&&... args) {
  if (level < threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  write(level, os.str());
}

}  // namespace detail

template <class... Args>
void debug(Args&&... args) {
  detail::emit(Level::kDebug, std::forward<Args>(args)...);
}
template <class... Args>
void info(Args&&... args) {
  detail::emit(Level::kInfo, std::forward<Args>(args)...);
}
template <class... Args>
void warn(Args&&... args) {
  detail::emit(Level::kWarn, std::forward<Args>(args)...);
}
template <class... Args>
void error(Args&&... args) {
  detail::emit(Level::kError, std::forward<Args>(args)...);
}

}  // namespace cosparse::log
