#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/error.h"

namespace cosparse {

Json::Json(unsigned long v) {
  if (v <= static_cast<unsigned long>(std::numeric_limits<std::int64_t>::max()))
    v_ = static_cast<std::int64_t>(v);
  else
    v_ = static_cast<double>(v);
}

Json::Json(unsigned long long v) {
  if (v <= static_cast<unsigned long long>(
               std::numeric_limits<std::int64_t>::max()))
    v_ = static_cast<std::int64_t>(v);
  else
    v_ = static_cast<double>(v);
}

Json::Type Json::type() const {
  switch (v_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kDouble;
    case 4: return Type::kString;
    case 5: return Type::kArray;
    default: return Type::kObject;
  }
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) v_ = Object{};
  COSPARSE_CHECK_MSG(is_object(), "Json::operator[] on a non-object");
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(std::string(key), Json());
  return obj.back().second;
}

Json& Json::push_back(Json v) {
  if (is_null()) v_ = Array{};
  COSPARSE_CHECK_MSG(is_array(), "Json::push_back on a non-array");
  auto& arr = std::get<Array>(v_);
  arr.push_back(std::move(v));
  return arr.back();
}

const Json* Json::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(v_).size();
  if (is_object()) return std::get<Object>(v_).size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  COSPARSE_CHECK_MSG(is_array(), "Json::at on a non-array");
  const auto& arr = std::get<Array>(v_);
  COSPARSE_CHECK_MSG(i < arr.size(), "Json::at index out of range");
  return arr[i];
}

const Json::Array& Json::items() const {
  COSPARSE_CHECK_MSG(is_array(), "Json::items on a non-array");
  return std::get<Array>(v_);
}

const Json::Object& Json::members() const {
  COSPARSE_CHECK_MSG(is_object(), "Json::members on a non-object");
  return std::get<Object>(v_);
}

bool Json::as_bool() const {
  COSPARSE_CHECK_MSG(is_bool(), "Json::as_bool on a non-bool");
  return std::get<bool>(v_);
}

std::int64_t Json::as_int() const {
  if (type() == Type::kInt) return std::get<std::int64_t>(v_);
  COSPARSE_CHECK_MSG(type() == Type::kDouble, "Json::as_int on a non-number");
  const double d = std::get<double>(v_);
  COSPARSE_CHECK_MSG(d == std::floor(d), "Json::as_int on a non-integral value");
  return static_cast<std::int64_t>(d);
}

double Json::as_double() const {
  if (type() == Type::kInt)
    return static_cast<double>(std::get<std::int64_t>(v_));
  COSPARSE_CHECK_MSG(type() == Type::kDouble,
                     "Json::as_double on a non-number");
  return std::get<double>(v_);
}

const std::string& Json::as_string() const {
  COSPARSE_CHECK_MSG(is_string(), "Json::as_string on a non-string");
  return std::get<std::string>(v_);
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_double(double d, std::string& out) {
  // Shortest representation that round-trips; JSON has no inf/nan, clamp
  // them to null rather than emitting an unparseable token.
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, d);
  out.append(buf, end);
  (void)ec;
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  // Recursive lambda over the tree; `depth` drives pretty-printing.
  auto rec = [&](auto&& self, const Json& j, int depth) -> void {
    const auto newline = [&](int d) {
      if (indent < 0) return;
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    };
    switch (j.type()) {
      case Type::kNull: out += "null"; break;
      case Type::kBool: out += j.as_bool() ? "true" : "false"; break;
      case Type::kInt: out += std::to_string(j.as_int()); break;
      case Type::kDouble: dump_double(std::get<double>(j.v_), out); break;
      case Type::kString: dump_string(j.as_string(), out); break;
      case Type::kArray: {
        const auto& arr = j.items();
        out += '[';
        for (std::size_t i = 0; i < arr.size(); ++i) {
          if (i > 0) out += ',';
          newline(depth + 1);
          self(self, arr[i], depth + 1);
        }
        if (!arr.empty()) newline(depth);
        out += ']';
        break;
      }
      case Type::kObject: {
        const auto& obj = j.members();
        out += '{';
        for (std::size_t i = 0; i < obj.size(); ++i) {
          if (i > 0) out += ',';
          newline(depth + 1);
          dump_string(obj[i].first, out);
          out += indent < 0 ? ":" : ": ";
          self(self, obj[i].second, depth + 1);
        }
        if (!obj.empty()) newline(depth);
        out += '}';
        break;
      }
    }
  };
  rec(rec, *this, 0);
  return out;
}

// ---- parser ----

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Json parse_document() {
    Json j = parse_value();
    skip_ws();
    COSPARSE_REQUIRE(pos_ == s_.size(), "JSON: trailing characters at offset " +
                                            std::to_string(pos_));
    return j;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json j = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return j;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      j[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return j;
    }
  }

  Json parse_array() {
    expect('[');
    Json j = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return j;
    }
    while (true) {
      j.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return j;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape digit");
          }
          // Encode as UTF-8 (no surrogate-pair support; the documents we
          // produce never leave the BMP).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    const std::string_view tok = s_.substr(start, pos_ - start);
    if (tok.empty()) fail("expected a value");
    // Integral tokens stay exact; anything with '.', 'e' parses as double.
    if (tok.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t iv = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(iv);
    }
    double dv = 0;
    const auto [p, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc() || p != tok.data() + tok.size())
      fail("malformed number '" + std::string(tok) + "'");
    return Json(dv);
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cosparse
