// Wall-clock stopwatch for host-side baseline timing (mini-Ligra, native
// CPU SpMV). Simulated components report cycles instead — see sim/stats.h.
#pragma once

#include <chrono>

namespace cosparse {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cosparse
