// Plain-text table printer for benchmark output.
//
// Every figure/table reproduction prints its rows/series in the same layout
// the paper uses; this helper keeps columns aligned and emits an optional
// CSV mirror for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cosparse {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience formatting helpers.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_ratio(double v);     // e.g. "2.04x"
  static std::string fmt_pct(double frac);    // e.g. "12.3%"

  void print(std::ostream& os) const;
  /// Writes header+rows as CSV (no alignment padding).
  void write_csv(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cosparse
