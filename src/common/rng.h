// Deterministic pseudo-random number generation.
//
// All synthetic inputs (uniform matrices, power-law matrices, dataset
// stand-ins, benchmark vectors) are generated from explicit seeds so that
// every experiment in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include <cstdint>
#include <limits>
#include <string_view>

#include "common/error.h"

namespace cosparse {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
/// Seeded through SplitMix64 so that nearby integer seeds give independent
/// streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Named sub-stream of `seed`: the stream label is folded into the seed
  /// (FNV-1a) before SplitMix64 expansion, so two consumers keyed by
  /// different names draw *independent* sequences from the same user seed.
  /// Without this, every generator called with seed S would replay the
  /// exact same underlying sequence — e.g. uniform_random(seed) and
  /// random_dense_vector(seed) producing correlated structure and values.
  Rng(std::uint64_t seed, std::string_view stream) noexcept {
    std::uint64_t x = seed ^ 0x9e3779b97f4a7c15ULL;
    for (const char ch : stream) {
      x ^= static_cast<unsigned char>(ch);
      x *= 0x100000001b3ULL;
    }
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<unsigned __int128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Bernoulli draw.
  bool next_bool(double p_true) noexcept { return next_double() < p_true; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  static std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t state_[4];
};

}  // namespace cosparse
