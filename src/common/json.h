// Minimal ordered JSON document: build, dump, parse.
//
// The observability layer (src/obs) serializes traces, metrics and run
// reports through this type, and tests parse them back to assert on
// structure. Objects preserve insertion order so emitted documents diff
// cleanly across runs. Integers are kept exact (no silent promotion to
// double), which matters for 64-bit event counters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace cosparse {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;

  Json() = default;  ///< null
  Json(std::nullptr_t) {}
  Json(bool b) : v_(b) {}
  Json(int v) : v_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : v_(static_cast<std::int64_t>(v)) {}
  Json(long v) : v_(static_cast<std::int64_t>(v)) {}
  Json(long long v) : v_(static_cast<std::int64_t>(v)) {}
  Json(unsigned long v);
  Json(unsigned long long v);
  Json(double v) : v_(v) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}

  static Json array() {
    Json j;
    j.v_ = Array{};
    return j;
  }
  static Json object() {
    Json j;
    j.v_ = Object{};
    return j;
  }

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_number() const {
    return type() == Type::kInt || type() == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  // ---- building ----
  /// Object member access; creates the member (null) on a mutable object.
  /// Turns a null value into an object on first use.
  Json& operator[](std::string_view key);
  /// Appends to an array (turns a null value into an array on first use).
  Json& push_back(Json v);

  // ---- reading ----
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  /// Array/object arity; 0 for scalars.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;  ///< array element
  [[nodiscard]] const Array& items() const;
  [[nodiscard]] const Object& members() const;

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;    ///< kInt or integral kDouble
  [[nodiscard]] double as_double() const;       ///< any number
  [[nodiscard]] const std::string& as_string() const;

  // ---- text ----
  /// Compact when indent < 0, pretty-printed otherwise.
  [[nodiscard]] std::string dump(int indent = -1) const;
  /// Throws cosparse::Error on malformed input or trailing garbage.
  static Json parse(std::string_view text);

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

}  // namespace cosparse
