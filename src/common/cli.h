// Tiny command-line parser used by benchmarks and examples.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms, plus
// automatic `--help` text. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cosparse {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Register options before calling parse(). `help` appears in --help.
  void add_flag(const std::string& name, const std::string& help);
  void add_option(const std::string& name, const std::string& help,
                  const std::string& default_value);

  /// Parses argv. Returns false (after printing usage) on --help or on a
  /// malformed/unknown argument.
  bool parse(int argc, const char* const* argv);

  /// Whether `name` was registered (flag or option). Lets shared helpers
  /// consume optional settings only when the host binary declares them.
  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] bool flag(const std::string& name) const;
  [[nodiscard]] std::string str(const std::string& name) const;
  [[nodiscard]] std::int64_t integer(const std::string& name) const;
  [[nodiscard]] double real(const std::string& name) const;
  /// Comma-separated list of integers, e.g. "--sizes 4,8,16".
  [[nodiscard]] std::vector<std::int64_t> int_list(const std::string& name) const;
  /// Comma-separated list of reals.
  [[nodiscard]] std::vector<double> real_list(const std::string& name) const;
  /// Comma-separated list of strings.
  [[nodiscard]] std::vector<std::string> str_list(const std::string& name) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& program() const { return program_; }

  void print_usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  const Option& lookup(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

}  // namespace cosparse
