#include "common/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace cosparse {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  COSPARSE_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  COSPARSE_CHECK_MSG(row.size() == header_.size(),
                     "row arity " << row.size() << " != header arity "
                                  << header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_ratio(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v << "x";
  return os.str();
}

std::string Table::fmt_pct(double frac) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << frac * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  print_row(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw Error("cannot open CSV output file: " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  write_row(header_);
  for (const auto& row : rows_) write_row(row);
}

}  // namespace cosparse
