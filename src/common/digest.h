// Order-sensitive FNV-1a-64 digests of numeric result vectors.
//
// Examples stamp these into their report's "results" section so two runs
// can be compared for *bitwise* result equality without embedding every
// value: the digest folds in each element's IEEE-754 bit pattern, so any
// single-ulp divergence changes it. This is the instrument behind the
// sim-vs-native byte-compare gates (DESIGN.md §14).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace cosparse {

class Digest {
 public:
  void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffU;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void update_index(Index i) { update_u64(i); }
  void update_value(Value v) { update_u64(std::bit_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::uint64_t value() const { return hash_; }
  /// 16 lowercase hex digits (JSON-friendly: u64 exceeds exact double
  /// range, so the digest travels as a string).
  [[nodiscard]] std::string hex() const {
    static const char* kDigits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 0; i < 16; ++i) {
      s[15 - i] = kDigits[(hash_ >> (4 * i)) & 0xfU];
    }
    return s;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  ///< FNV-1a offset basis
};

}  // namespace cosparse
