// Log-bucketed streaming histogram for continuous telemetry.
//
// HDR-style layout: each power-of-two octave is split into kSubBuckets
// linear sub-buckets, so the relative bucket width — and therefore the
// worst-case quantile error — is bounded by 1/kSubBuckets (6.25%). The
// bucket layout is a compile-time constant shared by every histogram,
// which makes merge() a plain element-wise add: exact for the integer
// counts, and associative, so per-tile / per-thread histograms can be
// folded in any grouping without changing the result. observe() is a
// handful of arithmetic ops plus one array increment — cheap enough for
// once-per-iteration hot paths (no locks; single-writer by design, see
// obs/telemetry.h for the threading contract).
#pragma once

#include <cstdint>
#include <vector>

#include "common/json.h"

namespace cosparse::obs {

/// The percentile digest of one histogram at one point in time — what
/// telemetry snapshots carry (the full bucket array stays in-process).
struct HistogramSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
  [[nodiscard]] Json to_json() const;
  /// Inverse of to_json(); throws cosparse::Error on missing fields.
  [[nodiscard]] static HistogramSummary from_json(const Json& j);
};

class StreamingHistogram {
 public:
  /// Linear sub-buckets per power-of-two octave; the quantile error bound
  /// is one bucket, i.e. a relative error <= 1/kSubBuckets.
  static constexpr int kSubBuckets = 16;
  /// Smallest/largest finite octave: values span [2^-30, 2^34) ~
  /// [9.3e-10, 1.7e10]; below-range values clamp into the first bucket,
  /// above-range values land in the overflow bucket (upper edge +inf).
  static constexpr int kMinExp = -30;
  static constexpr int kMaxExp = 34;
  static constexpr int kNumBuckets = (kMaxExp - kMinExp) * kSubBuckets + 1;

  /// Records one sample. Non-positive values count into a dedicated zero
  /// bucket (quantiles report them as 0).
  void observe(double v);

  /// Element-wise accumulation of `other` into this histogram. Integer
  /// state (counts, buckets) merges exactly and associatively; `sum` is a
  /// double accumulation, exact whenever the samples are.
  void merge(const StreamingHistogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t zero_count() const { return zero_count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }

  /// The q-quantile (q in [0, 1]): the upper edge of the bucket holding
  /// the rank-ceil(q*count) sample, clamped to the observed max — so the
  /// true quantile lies within one bucket (<= 1/kSubBuckets relative
  /// error) of the returned value.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] HistogramSummary summary() const;

  /// Bucket geometry (exposed so tests can assert the error bound).
  [[nodiscard]] static int bucket_index(double v);
  /// Upper edge of bucket `idx` (+inf for the overflow bucket).
  [[nodiscard]] static double bucket_upper(int idx);

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const {
    return buckets_;
  }

 private:
  std::vector<std::uint64_t> buckets_;  ///< lazily sized to kNumBuckets
  std::uint64_t count_ = 0;
  std::uint64_t zero_count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace cosparse::obs
