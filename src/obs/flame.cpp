#include "obs/flame.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.h"
#include "common/table.h"

namespace cosparse::obs {

namespace {

std::vector<std::string> split_frames(const std::string& stack) {
  std::vector<std::string> frames;
  std::size_t begin = 0;
  while (begin <= stack.size()) {
    std::size_t end = stack.find(';', begin);
    if (end == std::string::npos) end = stack.size();
    if (end > begin) frames.push_back(stack.substr(begin, end - begin));
    begin = end + 1;
  }
  return frames;
}

}  // namespace

FoldedProfile FoldedProfile::parse(const std::string& text) {
  FoldedProfile profile;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space + 1 >= line.size())
      throw Error("folded line " + std::to_string(lineno) +
                  ": expected '<stack> <count>': " + line);
    const std::string count_str = line.substr(space + 1);
    std::uint64_t count = 0;
    for (char c : count_str) {
      if (c < '0' || c > '9')
        throw Error("folded line " + std::to_string(lineno) +
                    ": bad sample count '" + count_str + "'");
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    FoldedStack stack;
    stack.frames = split_frames(line.substr(0, space));
    stack.count = count;
    if (stack.frames.empty())
      throw Error("folded line " + std::to_string(lineno) + ": empty stack");
    profile.total_samples += count;
    profile.stacks.push_back(std::move(stack));
  }
  return profile;
}

bool is_phase_frame(const std::string& frame) {
  if (frame == "(untagged)") return true;
  bool has_dot = false;
  for (char c : frame) {
    if (c == '.') {
      has_dot = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return has_dot;
}

std::vector<std::pair<std::string, std::uint64_t>> phase_totals(
    const FoldedProfile& profile) {
  std::map<std::string, std::uint64_t> totals;
  for (const FoldedStack& stack : profile.stacks) {
    const std::string* leaf = nullptr;
    for (const std::string& frame : stack.frames) {
      if (!is_phase_frame(frame)) break;
      leaf = &frame;
    }
    totals[leaf != nullptr ? *leaf : std::string("(untagged)")] += stack.count;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out(totals.begin(),
                                                         totals.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void print_phase_table(std::ostream& os, const FoldedProfile& profile) {
  Table table({"phase", "samples", "share"});
  const double total =
      profile.total_samples > 0 ? static_cast<double>(profile.total_samples)
                                : 1.0;
  for (const auto& [phase, count] : phase_totals(profile)) {
    table.add_row({phase, std::to_string(count),
                   Table::fmt_pct(static_cast<double>(count) / total)});
  }
  table.print(os);
}

Json phases_json(const FoldedProfile& profile) {
  Json phases = Json::object();
  const double total =
      profile.total_samples > 0 ? static_cast<double>(profile.total_samples)
                                : 1.0;
  for (const auto& [phase, count] : phase_totals(profile)) {
    Json entry = Json::object();
    entry["samples"] = count;
    entry["share"] = static_cast<double>(count) / total;
    phases[phase] = std::move(entry);
  }
  return phases;
}

namespace {

// ---- flamegraph rendering ----
//
// The folded stacks are merged into a frame trie; each node becomes one
// <rect> of an icicle layout (root on top). Geometry is computed in
// sample units and scaled into a fixed-width viewBox so the SVG needs no
// script to lay itself out — hover detail rides on native <title> tips.

struct FrameNode {
  std::string name;
  std::uint64_t total = 0;  ///< samples in this node and below
  std::map<std::string, std::size_t> children;  ///< name -> node index
};

struct FrameTrie {
  std::vector<FrameNode> nodes;  ///< nodes[0] is the synthetic root
  int depth = 0;

  explicit FrameTrie(const FoldedProfile& profile) {
    nodes.push_back(FrameNode{"all", 0, {}});
    for (const FoldedStack& stack : profile.stacks) {
      std::size_t cur = 0;
      nodes[0].total += stack.count;
      int d = 0;
      for (const std::string& frame : stack.frames) {
        auto [it, inserted] =
            nodes[cur].children.emplace(frame, nodes.size());
        if (inserted) nodes.push_back(FrameNode{frame, 0, {}});
        cur = it->second;
        nodes[cur].total += stack.count;
        depth = std::max(depth, ++d);
      }
    }
  }
};

std::string escape_xml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

/// Deterministic warm color per frame name; phase frames get a distinct
/// blue-green palette so logical phases pop against symbol frames.
std::string frame_color(const std::string& name) {
  std::uint32_t h = 2166136261u;
  for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 16777619u;
  char buf[16];
  if (is_phase_frame(name)) {
    const unsigned r = 40 + (h % 60);
    const unsigned g = 140 + ((h >> 8) % 80);
    const unsigned b = 160 + ((h >> 16) % 80);
    std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  } else {
    const unsigned r = 200 + (h % 55);
    const unsigned g = 70 + ((h >> 8) % 110);
    const unsigned b = 20 + ((h >> 16) % 40);
    std::snprintf(buf, sizeof buf, "#%02x%02x%02x", r, g, b);
  }
  return buf;
}

constexpr double kSvgWidth = 1200.0;
constexpr double kRowHeight = 17.0;

void render_node(std::ostream& os, const FrameTrie& trie, std::size_t index,
                 double x, double width_per_sample, int depth,
                 std::uint64_t total_samples) {
  const FrameNode& node = trie.nodes[index];
  const double w = static_cast<double>(node.total) * width_per_sample;
  if (w < 0.1) return;  // invisible at this resolution, and so are children
  const double y = static_cast<double>(depth) * kRowHeight;
  const double share =
      static_cast<double>(node.total) /
      static_cast<double>(total_samples > 0 ? total_samples : 1);
  os << "<g><rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
     << "\" height=\"" << (kRowHeight - 1.0) << "\" fill=\""
     << frame_color(node.name) << "\" rx=\"2\"/>";
  os << "<title>" << escape_xml(node.name) << " — " << node.total
     << " samples (" << Table::fmt_pct(share) << ")</title>";
  if (w > 30.0) {
    // ~7 px per character at 12 px font; clip rather than overflow.
    const auto max_chars = static_cast<std::size_t>(w / 7.0);
    std::string label = node.name;
    if (label.size() > max_chars)
      label = label.substr(0, max_chars > 2 ? max_chars - 2 : 0) + "..";
    os << "<text x=\"" << (x + 3.0) << "\" y=\"" << (y + 12.0) << "\">"
       << escape_xml(label) << "</text>";
  }
  os << "</g>\n";
  double child_x = x;
  for (const auto& [name, child] : node.children) {
    render_node(os, trie, child, child_x, width_per_sample, depth + 1,
                total_samples);
    child_x += static_cast<double>(trie.nodes[child].total) * width_per_sample;
  }
}

}  // namespace

std::string render_flamegraph_html(const FoldedProfile& profile,
                                   const std::string& title) {
  const FrameTrie trie(profile);
  const double height = static_cast<double>(trie.depth + 1) * kRowHeight;
  const double per_sample =
      profile.total_samples > 0
          ? kSvgWidth / static_cast<double>(profile.total_samples)
          : 0.0;

  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
     << escape_xml(title) << "</title>\n<style>\n"
     << "body{font-family:monospace;background:#fdfdfd;margin:16px;}\n"
     << "svg{width:100%;}\n"
     << "svg text{font-size:12px;fill:#1a1a1a;pointer-events:none;}\n"
     << "table{border-collapse:collapse;margin-top:12px;}\n"
     << "td,th{border:1px solid #bbb;padding:2px 10px;text-align:left;}\n"
     << "</style></head>\n<body>\n<h2>" << escape_xml(title) << "</h2>\n"
     << "<p>" << profile.total_samples
     << " samples; hover a frame for counts. Blue-green frames are logical "
        "phases, warm frames are symbols.</p>\n";
  os << "<svg viewBox=\"0 0 " << kSvgWidth << " " << height
     << "\" xmlns=\"http://www.w3.org/2000/svg\">\n";
  if (profile.total_samples > 0) {
    render_node(os, trie, 0, 0.0, per_sample, 0, profile.total_samples);
  } else {
    os << "<text x=\"4\" y=\"14\">(no samples)</text>\n";
  }
  os << "</svg>\n<h3>Per-phase share</h3>\n<table><tr><th>phase</th>"
     << "<th>samples</th><th>share</th></tr>\n";
  const double total =
      profile.total_samples > 0 ? static_cast<double>(profile.total_samples)
                                : 1.0;
  for (const auto& [phase, count] : phase_totals(profile)) {
    os << "<tr><td>" << escape_xml(phase) << "</td><td>" << count
       << "</td><td>" << Table::fmt_pct(static_cast<double>(count) / total)
       << "</td></tr>\n";
  }
  os << "</table>\n</body></html>\n";
  return os.str();
}

FlameDiffResult diff_folded(const FoldedProfile& baseline,
                            const FoldedProfile& candidate,
                            double max_regress) {
  std::map<std::string, std::pair<double, double>> shares;
  const double total_a =
      baseline.total_samples > 0 ? static_cast<double>(baseline.total_samples)
                                 : 1.0;
  const double total_b =
      candidate.total_samples > 0
          ? static_cast<double>(candidate.total_samples)
          : 1.0;
  for (const auto& [phase, count] : phase_totals(baseline))
    shares[phase].first = static_cast<double>(count) / total_a;
  for (const auto& [phase, count] : phase_totals(candidate))
    shares[phase].second = static_cast<double>(count) / total_b;

  FlameDiffResult result;
  for (const auto& [phase, pair] : shares) {
    FlameDiffRow row;
    row.phase = phase;
    row.share_a = pair.first;
    row.share_b = pair.second;
    row.delta = row.share_b - row.share_a;
    row.regressed = row.delta > max_regress;
    result.regressed = result.regressed || row.regressed;
    result.rows.push_back(std::move(row));
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const FlameDiffRow& a, const FlameDiffRow& b) {
              const double da = std::abs(a.delta);
              const double db = std::abs(b.delta);
              if (da != db) return da > db;
              return a.phase < b.phase;
            });
  return result;
}

void print_flame_diff(std::ostream& os, const FlameDiffResult& result,
                      double max_regress) {
  Table table({"phase", "baseline", "candidate", "delta", "verdict"});
  for (const FlameDiffRow& row : result.rows) {
    std::string delta = Table::fmt_pct(std::abs(row.delta));
    delta.insert(0, row.delta < 0 ? "-" : "+");
    table.add_row({row.phase, Table::fmt_pct(row.share_a),
                   Table::fmt_pct(row.share_b), delta,
                   row.regressed ? "REGRESSED" : "ok"});
  }
  table.print(os);
  if (result.regressed) {
    os << "FAIL: phase share regression beyond "
       << Table::fmt_pct(max_regress) << "\n";
  } else {
    os << "OK: no phase share regression beyond "
       << Table::fmt_pct(max_regress) << "\n";
  }
}

}  // namespace cosparse::obs
