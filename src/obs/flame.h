// Folded-stack profiles: parsing, phase aggregation, flamegraph rendering
// and the differential flame gate.
//
// The interchange format is Brendan Gregg's folded-stack text — one line
// per distinct stack, frames joined by ';' outermost-first, then a space
// and the sample count:
//
//   engine.spmv;kernel.ip;cosparse::kernels::run_inner_product 42
//
// obs::SampleProfiler emits it (phase-tag frames first, then symbol
// frames); this header consumes it with no simulator dependency, so
// profiles from different builds/runs stay comparable — the same split
// cosparse-prof keeps for run reports. Rendering produces a single
// self-contained HTML file (inline SVG icicle, hover tooltips via <title>,
// zero external dependencies) so a CI artifact can be opened anywhere.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace cosparse::obs {

struct FoldedStack {
  std::vector<std::string> frames;  ///< outermost first
  std::uint64_t count = 0;
};

struct FoldedProfile {
  std::vector<FoldedStack> stacks;
  std::uint64_t total_samples = 0;

  /// Parses folded-stack text (blank lines skipped). Throws
  /// cosparse::Error on lines without a trailing integer count.
  [[nodiscard]] static FoldedProfile parse(const std::string& text);
};

/// Whether a frame string is a phase tag rather than a symbol: a dotted
/// lowercase identifier like "engine.spmv" (or the "(untagged)" marker).
/// Symbols never qualify — they carry "::", parentheses, spaces or hex.
[[nodiscard]] bool is_phase_frame(const std::string& frame);

/// Sample count per *leaf* phase: the deepest frame of each stack's
/// leading phase-frame run; stacks with none count as "(untagged)".
/// Sorted by descending count, then name (deterministic).
[[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> phase_totals(
    const FoldedProfile& profile);

/// Per-phase share table (phase, samples, share%) for terminal output.
void print_phase_table(std::ostream& os, const FoldedProfile& profile);

/// The `cpu_profile` phases object: {"<phase>": {"samples": n, "share": s}}
/// in descending-share order.
[[nodiscard]] Json phases_json(const FoldedProfile& profile);

/// A complete standalone flamegraph HTML document (inline SVG icicle).
[[nodiscard]] std::string render_flamegraph_html(const FoldedProfile& profile,
                                                 const std::string& title);

// ---- differential flame gate (cosparse-prof flamediff) ----

struct FlameDiffRow {
  std::string phase;
  double share_a = 0.0;  ///< fraction of baseline samples
  double share_b = 0.0;  ///< fraction of candidate samples
  double delta = 0.0;    ///< share_b - share_a (percentage points / 100)
  bool regressed = false;
};

struct FlameDiffResult {
  std::vector<FlameDiffRow> rows;  ///< descending |delta|
  bool regressed = false;
};

/// Compares per-phase shares of two folded profiles. A phase regresses
/// when its share of total samples *grew* by more than `max_regress`
/// (a fraction: 0.05 = five percentage points — shares are already
/// relative, so the gate is on absolute share growth). Phases absent
/// from one profile count as share 0 there.
[[nodiscard]] FlameDiffResult diff_folded(const FoldedProfile& baseline,
                                          const FoldedProfile& candidate,
                                          double max_regress);

void print_flame_diff(std::ostream& os, const FlameDiffResult& result,
                      double max_regress);

}  // namespace cosparse::obs
