// Continuous telemetry: streaming histograms sampled into periodic
// snapshots, evaluated against SLO rules and handed to an exporter.
//
// Everything observability built before this file is *batch* — traces,
// metrics and run reports materialize only after a run finishes. The
// Telemetry registry is the continuous layer: producers (runtime::Engine,
// sim::Machine, graph algorithms) observe into named StreamingHistograms
// on the hot path, and on a configurable wall-clock or iteration cadence
// (--telemetry-interval / COSPARSE_TELEMETRY) a TelemetrySnapshot — the
// percentile digests of every histogram plus a self-describing header
// (tool, seed, sim-threads, interval) — is taken, checked by the
// SloWatchdog, and published to the TelemetryExporter (obs/exporter.h) as
// one JSONL line and an OpenMetrics exposition. `cosparse-top` tails the
// JSONL stream live.
//
// Threading contract: histograms are observed and snapshots taken on the
// producing thread only (the simulation is single-threaded outside tile
// phases, and tile-phase timings are folded in after the phase joins), so
// the hot path takes no locks; the exporter's background thread only ever
// sees fully-built snapshot strings. Telemetry reads the host wall clock
// and simulator state but never writes simulator state, so enabling it
// cannot change simulated results — the differential harness enforces
// this bit-neutrality.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "obs/histogram.h"

namespace cosparse::obs {

class TelemetryExporter;

inline constexpr std::string_view kTelemetrySchema = "cosparse.telemetry/v1";

// ---- cadence configuration ----

struct TelemetryConfig {
  bool enabled = false;
  /// Snapshot every N producer iterations (0 = no iteration cadence).
  std::uint64_t every_iterations = 0;
  /// Snapshot every N milliseconds of wall clock (0 = no wall cadence).
  double every_ms = 0.0;
  /// The spec string this config was parsed from (stamped into headers).
  std::string spec;

  /// Parses an interval spec: "100i" or a plain "100" = every 100
  /// iterations; "250ms" / "2s" = wall-clock cadence. Empty = disabled.
  /// Throws cosparse::Error on malformed specs.
  [[nodiscard]] static TelemetryConfig parse(const std::string& spec);
  /// parse(getenv("COSPARSE_TELEMETRY")); disabled when unset/empty.
  [[nodiscard]] static TelemetryConfig from_env();
};

// ---- snapshots ----

struct TelemetrySnapshot {
  std::uint64_t seq = 0;
  double wall_ms = 0.0;          ///< since Telemetry construction
  std::uint64_t iterations = 0;  ///< producer progress at snapshot time
  /// Name-ordered percentile digests of every histogram.
  std::vector<std::pair<std::string, HistogramSummary>> hist;
  Json header = Json::object();  ///< tool/seed/sim_threads/interval, ...
  Json extra;                    ///< producer-specific live state (tiles)

  [[nodiscard]] const HistogramSummary* find(const std::string& name) const;
  /// One JSONL line body (schema, seq, wall_ms, iterations, header fields,
  /// hist digests, extra). SLO violations are appended by Telemetry.
  [[nodiscard]] Json to_json() const;
};

// ---- SLO watchdog ----

/// One declarative rule, e.g. "p99.engine.iteration_ms<5": the <stat> of
/// histogram <metric> must satisfy <op> <threshold> at every snapshot.
/// stat is one of p50|p90|p99|p999|min|max|mean|count|sum; op is one of
/// < <= > >=. The pseudo-metric "no_progress_ms" (no stat prefix) reads
/// the wall time since the iteration counter last advanced — e.g.
/// "no_progress_ms<5000" is a 5-second no-progress timeout.
struct SloRule {
  std::string text;    ///< original rule string
  std::string stat;    ///< "p99", "mean", ... (empty for no_progress_ms)
  std::string metric;  ///< histogram name, or "no_progress_ms"
  std::string op;      ///< "<", "<=", ">", ">="
  double threshold = 0.0;
};

/// Parses one rule; throws cosparse::Error on malformed input.
[[nodiscard]] SloRule parse_slo_rule(const std::string& text);
/// Parses a comma-separated rule list (empty input -> empty list).
[[nodiscard]] std::vector<SloRule> parse_slo_rules(const std::string& list);

struct SloViolation {
  std::uint64_t seq = 0;  ///< snapshot that tripped the rule
  std::string rule;       ///< rule text
  double observed = 0.0;
  double threshold = 0.0;
  std::string message;

  [[nodiscard]] Json to_json() const;
};

class SloWatchdog {
 public:
  void add_rule(SloRule rule) { rules_.push_back(std::move(rule)); }
  [[nodiscard]] const std::vector<SloRule>& rules() const { return rules_; }

  /// Evaluates every rule against one snapshot; returns this snapshot's
  /// violations (also accumulated into violations()). Rules naming a
  /// histogram absent from the snapshot (or one with no samples yet) are
  /// skipped, not violated.
  std::vector<SloViolation> evaluate(const TelemetrySnapshot& snap);

  [[nodiscard]] const std::vector<SloViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool tripped() const { return !violations_.empty(); }

  /// {"rules": [...], "violations": [...]} for the report's telemetry
  /// section.
  [[nodiscard]] Json to_json() const;

 private:
  std::vector<SloRule> rules_;
  std::vector<SloViolation> violations_;
  // no_progress_ms state: when the iteration counter last advanced.
  std::uint64_t last_iterations_ = 0;
  double last_progress_ms_ = 0.0;
  bool saw_snapshot_ = false;
};

// ---- the registry ----

class Telemetry {
 public:
  /// Milliseconds-since-start clock; injectable so exporter/golden tests
  /// are deterministic. The default reads std::chrono::steady_clock.
  using NowFn = std::function<double()>;

  explicit Telemetry(TelemetryConfig cfg = {}, NowFn now_ms = nullptr);

  /// Whether the snapshot cadence is armed. Histograms record regardless —
  /// a producer may attach a disabled Telemetry purely to collect
  /// end-of-run distributions (bench/parallel_sim does).
  [[nodiscard]] bool enabled() const { return cfg_.enabled; }
  [[nodiscard]] const TelemetryConfig& config() const { return cfg_; }

  /// Lookup-or-create; the reference stays valid for the registry's life.
  StreamingHistogram& histogram(const std::string& name);
  [[nodiscard]] const StreamingHistogram* find_histogram(
      const std::string& name) const;

  /// Header fields stamped into every snapshot (seed, sim_threads, tool,
  /// interval) so JSONL streams are self-describing offline.
  void set_header(const std::string& key, Json value);
  [[nodiscard]] const Json& header() const { return header_; }

  /// Sinks (not owned; must outlive the Telemetry while attached).
  void set_exporter(TelemetryExporter* exporter) { exporter_ = exporter; }
  void set_watchdog(SloWatchdog* watchdog) { watchdog_ = watchdog; }
  [[nodiscard]] SloWatchdog* watchdog() const { return watchdog_; }

  /// Producer progress pulse: called once per unit of progress (engine
  /// iteration). Takes a snapshot when the configured cadence is due.
  /// `extra` (optional) is invoked only when a snapshot actually fires,
  /// to embed producer live state (per-tile busy cycles, ...) into it.
  /// Self-reports its own cost into the "telemetry.overhead_ms"
  /// histogram.
  void tick(std::uint64_t iterations,
            const std::function<Json()>& extra = nullptr);

  /// Forces a final snapshot (when enabled) regardless of cadence — call
  /// once at end of run so short runs still emit their distributions.
  void flush();

  [[nodiscard]] std::uint64_t snapshots_taken() const { return seq_; }
  [[nodiscard]] std::uint64_t last_iterations() const {
    return last_iterations_;
  }

  /// The run report's "telemetry" section: schema, header, snapshot
  /// count, final histogram digests and the watchdog's rules/violations.
  [[nodiscard]] Json report_json() const;

 private:
  void take_snapshot(const std::function<Json()>& extra);

  TelemetryConfig cfg_;
  NowFn now_ms_;
  std::map<std::string, std::unique_ptr<StreamingHistogram>> histograms_;
  Json header_ = Json::object();
  TelemetryExporter* exporter_ = nullptr;
  SloWatchdog* watchdog_ = nullptr;
  std::uint64_t seq_ = 0;
  std::uint64_t last_iterations_ = 0;
  std::uint64_t next_iteration_due_ = 0;
  double last_snapshot_ms_ = 0.0;
};

// ---- per-binary wiring ----

/// Owns the Telemetry + exporter + watchdog trio for one binary and wires
/// them from the standard CLI options / environment. Disabled (armed() ==
/// false) unless --telemetry-interval or COSPARSE_TELEMETRY is given.
class TelemetrySession {
 public:
  /// Registers --telemetry-interval, --telemetry-out, --prom-out, --slo
  /// and --slo-strict on `cli`. Call before cli.parse().
  static void add_cli_options(CliParser& cli);

  // Defined in telemetry.cpp, where TelemetryExporter is complete (the
  // unique_ptr members need its destructor even for the default ctor's
  // unwind path).
  TelemetrySession();
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Arms the session from parsed CLI options (environment fallbacks:
  /// COSPARSE_TELEMETRY for the interval, COSPARSE_SLO for rules). Stamps
  /// tool, interval, seed (when the binary declares --seed) and the
  /// resolved sim-threads into the snapshot header.
  void init(const CliParser& cli, const std::string& tool);

  [[nodiscard]] bool armed() const { return telemetry_ != nullptr; }
  /// nullptr when not armed — pass directly to EngineOptions::telemetry.
  [[nodiscard]] Telemetry* telemetry() { return telemetry_.get(); }

  /// Final snapshot, exporter drain + shutdown, SLO verdict. Returns the
  /// process exit code the binary should propagate: 0 normally, 3 when
  /// --slo-strict was given and any rule was violated. Idempotent.
  int finalize();

 private:
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<TelemetryExporter> exporter_;
  std::unique_ptr<SloWatchdog> watchdog_;
  bool strict_ = false;
  bool finalized_ = false;
  int exit_code_ = 0;
};

}  // namespace cosparse::obs
