// Machine-readable run reports.
//
// A Report is one JSON document describing a complete run — tool, system
// config, dataset, per-iteration records, final stats (global and
// per-tile), energy, metrics and any result tables — written next to the
// existing CSV mirrors. The schema is documented in DESIGN.md §8
// ("Observability") and checked by tests/obs/report_schema.h; bump
// kReportSchema when making an incompatible change.
#pragma once

#include <string>
#include <string_view>

#include "common/json.h"

namespace cosparse::obs {

inline constexpr std::string_view kReportSchema = "cosparse.run_report/v1";

class Report {
 public:
  /// `tool` is the producing binary/harness name (e.g. "quickstart",
  /// "fig07_balance").
  explicit Report(std::string tool);

  /// Sets (or replaces) a top-level section. Well-known keys: "config",
  /// "dataset", "iterations", "stats", "tile_stats", "derived", "totals",
  /// "metrics", "tables".
  void set(const std::string& key, Json value);

  [[nodiscard]] const Json& root() const { return doc_; }
  [[nodiscard]] Json& root() { return doc_; }

  [[nodiscard]] std::string to_string() const { return doc_.dump(1); }

  /// Writes the document to `path`, creating parent directories.
  void write(const std::string& path) const;

 private:
  Json doc_;
};

/// The simulated-results subset of a run report: every section except the
/// wall-clock-bearing "telemetry" and "cpu_profile" ones. Both are
/// bit-neutral to simulated results, so this subset must be byte-identical
/// between runs of the same workload with those instruments on or off —
/// the differential harness and the CI baseline comparison both diff
/// exactly this document (see also `cosparse-prof extract`).
[[nodiscard]] Json results_subset(const Json& report);

/// The *functional* subset of a run report: only the sections whose bytes
/// are mode-independent — schema, tool, seed, dataset, results, the
/// decision audit, and the iteration records normalized by stripping their
/// cycle/energy fields (cycles are simulated quantities; native mode has
/// none). This is the document the sim-vs-native differential suite and
/// the CI cross-mode gate byte-compare (`cosparse-prof extract
/// --functional`): two exec modes of the same workload must produce
/// identical functional subsets.
[[nodiscard]] Json functional_subset(const Json& report);

}  // namespace cosparse::obs
