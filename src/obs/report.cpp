#include "obs/report.h"

#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace cosparse::obs {

Report::Report(std::string tool) {
  doc_ = Json::object();
  doc_["schema"] = kReportSchema;
  doc_["tool"] = std::move(tool);
}

void Report::set(const std::string& key, Json value) {
  doc_[key] = std::move(value);
}

Json results_subset(const Json& report) {
  Json out = Json::object();
  if (!report.is_object()) return out;
  for (const auto& [key, value] : report.members()) {
    if (key == "telemetry" || key == "cpu_profile") continue;
    out[key] = value;
  }
  return out;
}

void Report::write(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path);
  COSPARSE_REQUIRE(os.good(), "cannot open report output file: " + path);
  os << to_string() << '\n';
}

}  // namespace cosparse::obs
