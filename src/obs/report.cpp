#include "obs/report.h"

#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace cosparse::obs {

Report::Report(std::string tool) {
  doc_ = Json::object();
  doc_["schema"] = kReportSchema;
  doc_["tool"] = std::move(tool);
}

void Report::set(const std::string& key, Json value) {
  doc_[key] = std::move(value);
}

Json results_subset(const Json& report) {
  Json out = Json::object();
  if (!report.is_object()) return out;
  for (const auto& [key, value] : report.members()) {
    if (key == "telemetry" || key == "cpu_profile") continue;
    out[key] = value;
  }
  return out;
}

Json functional_subset(const Json& report) {
  Json out = Json::object();
  if (!report.is_object()) return out;
  for (const char* key : {"schema", "tool", "seed", "dataset", "results"}) {
    if (const Json* v = report.find(key); v != nullptr) out[key] = *v;
  }
  if (const Json* iters = report.find("iterations");
      iters != nullptr && iters->is_array()) {
    Json norm = Json::array();
    for (const Json& it : iters->items()) {
      if (!it.is_object()) {
        norm.push_back(it);
        continue;
      }
      Json rec = Json::object();
      for (const auto& [k, v] : it.members()) {
        if (k == "cycles" || k == "convert_cycles" || k == "energy_pj") {
          continue;
        }
        rec[k] = v;
      }
      norm.push_back(std::move(rec));
    }
    out["iterations"] = std::move(norm);
  }
  if (const Json* audit = report.find("decision_audit"); audit != nullptr) {
    out["decision_audit"] = *audit;
  }
  return out;
}

void Report::write(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path);
  COSPARSE_REQUIRE(os.good(), "cannot open report output file: " + path);
  os << to_string() << '\n';
}

}  // namespace cosparse::obs
