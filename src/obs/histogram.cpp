#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace cosparse::obs {

Json HistogramSummary::to_json() const {
  Json o = Json::object();
  o["count"] = count;
  o["sum"] = sum;
  o["min"] = min;
  o["max"] = max;
  o["p50"] = p50;
  o["p90"] = p90;
  o["p99"] = p99;
  o["p999"] = p999;
  return o;
}

HistogramSummary HistogramSummary::from_json(const Json& j) {
  COSPARSE_REQUIRE(j.is_object(), "histogram summary must be a JSON object");
  const auto need = [&](const char* key) -> double {
    const Json* v = j.find(key);
    COSPARSE_REQUIRE(v != nullptr && v->is_number(),
                     std::string("histogram summary missing field: ") + key);
    return v->as_double();
  };
  HistogramSummary s;
  s.count = static_cast<std::uint64_t>(need("count"));
  s.sum = need("sum");
  s.min = need("min");
  s.max = need("max");
  s.p50 = need("p50");
  s.p90 = need("p90");
  s.p99 = need("p99");
  s.p999 = need("p999");
  return s;
}

int StreamingHistogram::bucket_index(double v) {
  // v = m * 2^e with m in [0.5, 1): octave e-1, mantissa2 = 2m in [1, 2).
  int e = 0;
  const double m = std::frexp(v, &e);
  const int octave = e - 1;
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kNumBuckets - 1;
  const double mantissa2 = 2.0 * m;
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((mantissa2 - 1.0) * kSubBuckets));
  return (octave - kMinExp) * kSubBuckets + sub;
}

double StreamingHistogram::bucket_upper(int idx) {
  if (idx >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  const int octave = kMinExp + idx / kSubBuckets;
  const int sub = idx % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

void StreamingHistogram::observe(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
  if (!(v > 0.0) || !std::isfinite(v)) {
    // Non-positive (and NaN, which fails every comparison) samples count
    // into the zero bucket; +inf overflows like any too-large value.
    if (std::isinf(v) && v > 0.0) {
      if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
      ++buckets_[kNumBuckets - 1];
    } else {
      ++zero_count_;
    }
    return;
  }
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[static_cast<std::size_t>(bucket_index(v))];
}

void StreamingHistogram::merge(const StreamingHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  zero_count_ += other.zero_count_;
  sum_ += other.sum_;
  if (!other.buckets_.empty()) {
    if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
    for (int i = 0; i < kNumBuckets; ++i) {
      buckets_[static_cast<std::size_t>(i)] +=
          other.buckets_[static_cast<std::size_t>(i)];
    }
  }
}

double StreamingHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t cum = zero_count_;
  if (target <= cum) return 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      return std::min(bucket_upper(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

HistogramSummary StreamingHistogram::summary() const {
  HistogramSummary s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max();
  s.p50 = quantile(0.50);
  s.p90 = quantile(0.90);
  s.p99 = quantile(0.99);
  s.p999 = quantile(0.999);
  return s;
}

}  // namespace cosparse::obs
