#include "obs/trace.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/error.h"

namespace cosparse::obs {

std::uint32_t Trace::track_id(std::string_view track) {
  for (std::uint32_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i] == track) return i;
  }
  tracks_.emplace_back(track);
  return static_cast<std::uint32_t>(tracks_.size() - 1);
}

void Trace::add_span(std::string_view track, std::string_view name,
                     double begin_cycles, double end_cycles, Json args) {
  if (!enabled_) return;
  events_.push_back(Event{Phase::kSpan, track_id(track), std::string(name),
                          begin_cycles, end_cycles - begin_cycles,
                          std::move(args)});
}

void Trace::add_instant(std::string_view track, std::string_view name,
                        double at_cycles, Json args) {
  if (!enabled_) return;
  events_.push_back(Event{Phase::kInstant, track_id(track), std::string(name),
                          at_cycles, 0.0, std::move(args)});
}

void Trace::add_counter(std::string_view track, std::string_view name,
                        double at_cycles, double value) {
  if (!enabled_) return;
  events_.push_back(Event{Phase::kCounter, track_id(track), std::string(name),
                          at_cycles, value, Json()});
}

Json Trace::to_json() const {
  Json events = Json::array();

  // Process + per-track thread names so Perfetto labels the timeline.
  {
    Json m = Json::object();
    m["ph"] = "M";
    m["name"] = "process_name";
    m["pid"] = 1;
    m["args"]["name"] = "cosparse";
    events.push_back(std::move(m));
  }
  for (std::size_t t = 0; t < tracks_.size(); ++t) {
    Json m = Json::object();
    m["ph"] = "M";
    m["name"] = "thread_name";
    m["pid"] = 1;
    m["tid"] = t + 1;
    m["args"]["name"] = tracks_[t];
    events.push_back(std::move(m));
  }

  // Emit in timestamp order (stable: producers append in causal order).
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const auto& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) { return a->ts < b->ts; });

  for (const Event* e : ordered) {
    Json j = Json::object();
    j["name"] = e->name;
    j["cat"] = "cosparse";
    j["pid"] = 1;
    j["tid"] = e->track + 1;
    j["ts"] = e->ts;
    switch (e->phase) {
      case Phase::kSpan:
        j["ph"] = "X";
        j["dur"] = e->dur;
        break;
      case Phase::kInstant:
        j["ph"] = "i";
        j["s"] = "t";  // thread-scoped instant
        break;
      case Phase::kCounter:
        j["ph"] = "C";
        j["args"][e->name] = e->dur;
        break;
    }
    if (e->phase != Phase::kCounter && !e->args.is_null()) {
      j["args"] = e->args;
    }
    events.push_back(std::move(j));
  }

  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  doc["otherData"]["clock"] = "simulated cycles (1 cycle = 1 trace us)";
  return doc;
}

void Trace::write(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream os(path);
  COSPARSE_REQUIRE(os.good(), "cannot open trace output file: " + path);
  os << to_json().dump(1);
  os << '\n';
}

std::string trace_path_from_env() {
  const char* env = std::getenv("COSPARSE_TRACE");
  return env == nullptr ? std::string() : std::string(env);
}

}  // namespace cosparse::obs
