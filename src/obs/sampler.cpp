#include "obs/sampler.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "common/error.h"
#include "obs/flame.h"

#if defined(__linux__) || defined(__APPLE__)
#define COSPARSE_SAMPLER_POSIX 1
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#endif

namespace cosparse::obs {

namespace {

constexpr int kMaxFrames = SampleProfiler::kMaxFrames;
constexpr int kMaxPhaseDepth = SampleProfiler::kMaxPhaseDepth;

/// One raw sample as written by the signal handler: program counters
/// innermost-first plus the phase-tag stack outermost-first. Pointers
/// only — symbolization happens at harvest.
struct RawSample {
  void* pcs[kMaxFrames];
  const char* phases[kMaxPhaseDepth];
  int num_pcs = 0;
  int num_phases = 0;
};

/// Per-thread profiler state. Heap-allocated on a thread's first
/// PhaseScope and owned forever by the global registry (never freed), so
/// the signal handler can never race thread-local destruction; only the
/// ring storage itself is released at harvest. See DESIGN.md §13.
struct ThreadState {
  // ---- phase-tag stack, written by PhaseScope on this thread only ----
  const char* tags[kMaxPhaseDepth] = {};
  std::atomic<int> depth{0};  ///< may exceed kMaxPhaseDepth (outermost kept)

  // ---- sample ring, written by the handler on this thread only ----
  std::atomic<RawSample*> ring{nullptr};
  std::uint32_t capacity = 0;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> drops{0};

  /// True while the SIGPROF handler runs on this thread. Paired seq_cst
  /// with g_active so stop() can prove no handler still touches the ring
  /// before freeing it (Dekker-style: handler stores in_handler then
  /// loads g_active; stop() stores g_active then loads in_handler).
  std::atomic<bool> in_handler{false};
};

std::atomic<bool> g_active{false};
std::atomic<std::uint32_t> g_capacity{0};
/// Samples landing on threads that never pushed a PhaseScope (no state).
std::atomic<std::uint64_t> g_orphan_drops{0};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::vector<ThreadState*>& registry() {
  static auto* r = new std::vector<ThreadState*>();  // never freed: the
  return *r;  // handler may outlive any profiler instance
}

thread_local ThreadState* t_state = nullptr;

void arm_ring_locked(ThreadState* ts, std::uint32_t capacity) {
  if (ts->ring.load(std::memory_order_relaxed) != nullptr) return;
  auto* storage = new RawSample[capacity];
  ts->capacity = capacity;
  ts->head.store(0, std::memory_order_relaxed);
  ts->drops.store(0, std::memory_order_relaxed);
  ts->ring.store(storage, std::memory_order_release);
}

ThreadState* register_thread() {
  auto* ts = new ThreadState();
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    registry().push_back(ts);
    // A profiler may already be running: arm this thread's ring now so
    // its samples are captured instead of dropped.
    if (g_active.load(std::memory_order_relaxed))
      arm_ring_locked(ts, g_capacity.load(std::memory_order_relaxed));
  }
  t_state = ts;
  return ts;
}

}  // namespace

#ifdef COSPARSE_SAMPLER_POSIX

// External linkage under a unique name so harvest can filter the
// handler's own frames out of symbolized stacks by name.
extern "C" void cosparse_sigprof_handler(int /*signum*/) {
  const int saved_errno = errno;
  ThreadState* ts = t_state;
  if (ts == nullptr) {
    if (g_active.load(std::memory_order_relaxed))
      g_orphan_drops.fetch_add(1, std::memory_order_relaxed);
    errno = saved_errno;
    return;
  }
  ts->in_handler.store(true, std::memory_order_seq_cst);
  if (g_active.load(std::memory_order_seq_cst)) {
    RawSample* ring = ts->ring.load(std::memory_order_acquire);
    if (ring == nullptr) {
      ts->drops.fetch_add(1, std::memory_order_relaxed);
    } else {
      const std::uint64_t h = ts->head.load(std::memory_order_relaxed);
      if (h >= ts->capacity) {
        ts->drops.fetch_add(1, std::memory_order_relaxed);
      } else {
        RawSample& s = ring[h];
        int d = ts->depth.load(std::memory_order_relaxed);
        std::atomic_signal_fence(std::memory_order_acquire);
        if (d > kMaxPhaseDepth) d = kMaxPhaseDepth;  // outermost tags kept
        for (int i = 0; i < d; ++i) s.phases[i] = ts->tags[i];
        s.num_phases = d;
        s.num_pcs = backtrace(s.pcs, kMaxFrames);
        ts->head.store(h + 1, std::memory_order_release);
      }
    }
  }
  ts->in_handler.store(false, std::memory_order_release);
  errno = saved_errno;
}

#endif  // COSPARSE_SAMPLER_POSIX

const char* intern_phase_tag(const std::string& tag) {
  static std::mutex m;
  static auto* interned = new std::set<std::string>();  // process lifetime:
  std::lock_guard<std::mutex> lock(m);  // samples keep raw pointers
  return interned->insert(tag).first->c_str();
}

PhaseScope::PhaseScope(const char* tag) noexcept : state_(nullptr) {
  ThreadState* ts = t_state;
  if (ts == nullptr) {
    try {
      ts = register_thread();
    } catch (...) {
      return;  // out of memory: run untagged rather than crash
    }
  }
  state_ = ts;
  const int d = ts->depth.load(std::memory_order_relaxed);
  if (d < kMaxPhaseDepth) {
    ts->tags[d] = tag;
    // Publish the tag before the depth that exposes it to the (same
    // thread) signal handler.
    std::atomic_signal_fence(std::memory_order_release);
  }
  ts->depth.store(d + 1, std::memory_order_relaxed);
}

PhaseScope::~PhaseScope() {
  if (state_ == nullptr) return;
  auto* ts = static_cast<ThreadState*>(state_);
  const int d = ts->depth.load(std::memory_order_relaxed);
  if (d > 0) ts->depth.store(d - 1, std::memory_order_relaxed);
}

SampleProfiler::SampleProfiler(SampleProfilerOptions opts) : opts_(opts) {
  if (opts_.period_us == 0) opts_.period_us = 1000;
  if (opts_.max_samples_per_thread == 0) opts_.max_samples_per_thread = 1;
}

SampleProfiler::~SampleProfiler() {
  if (running_) stop();
}

bool SampleProfiler::any_active() {
  return g_active.load(std::memory_order_relaxed);
}

bool SampleProfiler::platform_supported() {
#ifdef COSPARSE_SAMPLER_POSIX
  return true;
#else
  return false;
#endif
}

#ifdef COSPARSE_SAMPLER_POSIX

namespace {

std::uint64_t g_orphan_at_start = 0;

/// Strips a demangled symbol down to a stable folded-frame token:
/// parameter lists go (they bloat and vary by typedef), and the two
/// characters the folded format reserves (';' joins frames, ' ' splits
/// the count) are replaced.
std::string frame_token(std::string name) {
  const std::size_t paren = name.find('(');
  if (paren != std::string::npos && paren > 0) name.resize(paren);
  // Demangled template functions lead with their return type
  // ("IpResult ns::run_inner_product<...>"): drop everything before the
  // last space preceding the name/template-argument list.
  const std::size_t angle = name.find('<');
  const std::size_t space =
      name.rfind(' ', angle == std::string::npos ? name.size() : angle);
  if (space != std::string::npos && space + 1 < name.size())
    name.erase(0, space + 1);
  for (char& c : name) {
    if (c == ';') c = ':';
    if (c == ' ') c = '_';
  }
  return name.empty() ? std::string("[unknown]") : name;
}

std::string symbolize_pc(void* pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof info);
  // pc is a return address: step back one byte so the call site's own
  // function is attributed, not whatever follows it.
  auto addr = reinterpret_cast<const void*>(
      reinterpret_cast<const char*>(pc) - 1);
  if (dladdr(addr, &info) != 0 && info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name =
        (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
    return frame_token(std::move(name));
  }
  if (info.dli_fname != nullptr) {
    std::string file = info.dli_fname;
    const std::size_t slash = file.find_last_of('/');
    if (slash != std::string::npos) file.erase(0, slash + 1);
    return "[" + frame_token(std::move(file)) + "]";
  }
  return "[unknown]";
}

bool is_handler_frame(const std::string& symbol) {
  return symbol.find("cosparse_sigprof_handler") != std::string::npos ||
         symbol.find("__restore_rt") != std::string::npos ||
         symbol.find("_sigtramp") != std::string::npos;
}

}  // namespace

bool SampleProfiler::start() {
  if (running_ || g_active.load(std::memory_order_relaxed)) return false;

  // Prime backtrace() outside signal context: glibc lazily loads
  // libgcc_s (which allocates) on the first call; every later call is
  // then malloc-free and safe from the handler.
  void* prime[4];
  backtrace(prime, 4);

  // Install the handler once and leave it installed for the process
  // lifetime — restoring SIG_DFL would turn one late-delivered SIGPROF
  // into process death. With g_active false the handler is a no-op.
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = &cosparse_sigprof_handler;
    sa.sa_flags = SA_RESTART;
    sigemptyset(&sa.sa_mask);
    return sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  if (!installed) return false;

  // Make sure the calling thread has state so its samples are captured
  // even if it never enters a PhaseScope.
  if (t_state == nullptr) register_thread();

  g_capacity.store(opts_.max_samples_per_thread, std::memory_order_relaxed);
  g_orphan_at_start = g_orphan_drops.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (ThreadState* ts : registry())
      arm_ring_locked(ts, opts_.max_samples_per_thread);
  }
  num_samples_ = 0;
  dropped_ = 0;
  num_threads_ = 0;
  stacks_.clear();
  g_active.store(true, std::memory_order_seq_cst);

  struct itimerval timer;
  timer.it_interval.tv_sec = static_cast<time_t>(opts_.period_us / 1000000u);
  timer.it_interval.tv_usec =
      static_cast<suseconds_t>(opts_.period_us % 1000000u);
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_active.store(false, std::memory_order_seq_cst);
    return false;
  }
  running_ = true;
  return true;
}

void SampleProfiler::stop() {
  if (!running_) return;
  running_ = false;

  struct itimerval off;
  std::memset(&off, 0, sizeof off);
  setitimer(ITIMER_PROF, &off, nullptr);

  // From here no handler invocation touches any ring (Dekker pairing
  // with the handler's in_handler/g_active protocol); wait out the ones
  // already past the check before freeing storage.
  g_active.store(false, std::memory_order_seq_cst);

  std::map<std::string, std::uint64_t> folded;
  {
    std::lock_guard<std::mutex> lock(registry_mutex());
    for (ThreadState* ts : registry()) {
      while (ts->in_handler.load(std::memory_order_seq_cst)) {
        // Spin: handlers are a few microseconds.
      }
      RawSample* ring = ts->ring.load(std::memory_order_acquire);
      if (ring == nullptr) continue;
      const std::uint64_t n = ts->head.load(std::memory_order_acquire);
      dropped_ += ts->drops.load(std::memory_order_relaxed);
      if (n > 0) ++num_threads_;
      for (std::uint64_t i = 0; i < n; ++i) {
        const RawSample& s = ring[i];
        std::string key;
        if (s.num_phases == 0) {
          key = "(untagged)";
        } else {
          for (int p = 0; p < s.num_phases; ++p) {
            if (p > 0) key += ';';
            key += s.phases[p];
          }
        }
        // pcs are innermost-first; folded wants outermost-first, with
        // the handler's own capture frames dropped.
        for (int f = s.num_pcs - 1; f >= 0; --f) {
          std::string symbol = symbolize_pc(s.pcs[f]);
          if (is_handler_frame(symbol)) continue;
          key += ';';
          key += symbol;
        }
        folded[key] += 1;
        ++num_samples_;
      }
      ts->ring.store(nullptr, std::memory_order_relaxed);
      ts->head.store(0, std::memory_order_relaxed);
      ts->capacity = 0;
      delete[] ring;
    }
  }
  dropped_ +=
      g_orphan_drops.load(std::memory_order_relaxed) - g_orphan_at_start;
  stacks_.assign(folded.begin(), folded.end());
}

#else  // !COSPARSE_SAMPLER_POSIX

bool SampleProfiler::start() { return false; }
void SampleProfiler::stop() { running_ = false; }

#endif  // COSPARSE_SAMPLER_POSIX

std::string SampleProfiler::folded() const {
  std::string out;
  for (const auto& [stack, count] : stacks_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>>
SampleProfiler::phase_totals() const {
  return obs::phase_totals(FoldedProfile::parse(folded()));
}

Json SampleProfiler::report_json() const {
  Json j = Json::object();
  j["schema"] = kCpuProfileSchema;
  j["period_us"] = static_cast<std::int64_t>(opts_.period_us);
  j["samples"] = num_samples_;
  j["dropped_samples"] = dropped_;
  j["threads"] = static_cast<std::int64_t>(num_threads_);
  j["phases"] = phases_json(FoldedProfile::parse(folded()));
  return j;
}

// ---- CpuProfileSession ----

void CpuProfileSession::add_cli_options(CliParser& cli) {
  cli.add_option("cpu-profile",
                 "sample host CPU into this folded-stack file (plus a "
                 "<path>.html flamegraph); empty = off",
                 "");
  cli.add_option("cpu-profile-period-us",
                 "CPU-profile sampling period in CPU microseconds", "1000");
}

CpuProfileSession::CpuProfileSession() = default;

CpuProfileSession::~CpuProfileSession() {
  if (profiler_ != nullptr && !finalized_) finalize();
}

void CpuProfileSession::init(const CliParser& cli, const std::string& tool) {
  tool_ = tool;
  if (cli.has("cpu-profile")) path_ = cli.str("cpu-profile");
  if (path_.empty()) {
    const char* env = std::getenv("COSPARSE_CPU_PROFILE");
    if (env != nullptr) path_ = env;
  }
  if (path_.empty()) return;

  SampleProfilerOptions opts;
  if (cli.has("cpu-profile-period-us")) {
    const std::int64_t period = cli.integer("cpu-profile-period-us");
    if (period > 0) opts.period_us = static_cast<std::uint32_t>(period);
  }
  profiler_ = std::make_unique<SampleProfiler>(opts);
  if (!profiler_->start()) {
    std::cerr << tool_ << ": warning: CPU profiler failed to start ("
              << (SampleProfiler::platform_supported()
                      ? "another profiler is active"
                      : "platform unsupported")
              << "); continuing unprofiled\n";
    profiler_.reset();
    path_.clear();
  }
}

int CpuProfileSession::finalize() {
  if (profiler_ == nullptr || finalized_) return 0;
  finalized_ = true;
  profiler_->stop();
  report_ = profiler_->report_json();
  report_["tool"] = tool_;

  const std::string folded_text = profiler_->folded();
  bool io_ok = true;
  {
    std::ofstream out(path_);
    out << folded_text;
    io_ok = io_ok && out.good();
  }
  {
    std::ofstream out(path_ + ".html");
    out << render_flamegraph_html(FoldedProfile::parse(folded_text),
                                  tool_ + " CPU profile");
    io_ok = io_ok && out.good();
  }
  if (!io_ok) {
    std::cerr << tool_ << ": warning: failed writing CPU profile to " << path_
              << "\n";  // never fail the run over profiler IO
  }
  return 0;
}

}  // namespace cosparse::obs
