// Lightweight metrics registry: named counters, gauges and histograms.
//
// Producers (runtime::Engine, runtime::DecisionEngine, graph algorithms)
// publish into a registry the caller owns; nothing is global. All metric
// handles returned by the registry stay stable for its lifetime, so hot
// paths can look a metric up once and inc() a reference afterwards.
// Iteration order (and hence JSON/report order) is the metric name order,
// deterministic across runs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/json.h"

namespace cosparse::obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges in
/// ascending order; one implicit overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Lookup-or-create; the reference stays valid for the registry's life.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` apply on first creation only; later calls return the
  /// existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_bounds());

  /// Density-style default buckets spanning [1e-4, 1].
  static std::vector<double> default_bounds();

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with metric
  /// names sorted; empty sections are omitted.
  [[nodiscard]] Json to_json() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cosparse::obs
