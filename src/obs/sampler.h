// In-process sampling CPU profiler with phase-tagged stacks.
//
// Everything observability built so far explains *simulated* time (cycles,
// misses, telemetry percentiles); this file explains *host* time — where
// the simulator/runtime itself spends CPU. A SampleProfiler arms
// ITIMER_PROF so the kernel delivers SIGPROF at a fixed CPU-time cadence;
// the async-signal-safe handler captures a raw backtrace plus the calling
// thread's *phase-tag stack* — a tiny thread-local stack of interned
// strings pushed by PhaseScope at the same places the trace-span
// instrumentation already marks logical phases (`engine.spmv`,
// `kernel.ip`, `sim.log_fill`, `sim.replay`, `graph.bfs`, ...) — into a
// per-thread lock-free ring buffer. Symbolization (dladdr + demangling)
// happens entirely off the hot path, at stop().
//
// The output is folded-stack text (`phase;phase;symbol;symbol count`, one
// line per distinct stack — the flamegraph interchange format consumed by
// obs/flame.h and `cosparse-prof flame`/`flamediff`) plus a per-leaf-phase
// aggregate for the report's `cpu_profile` section.
//
// Profiling is bit-neutral to simulated results: the handler only reads
// host state and writes into preallocated sampler-owned buffers, and
// SA_RESTART keeps interrupted syscalls transparent. `obs::results_subset`
// strips the `cpu_profile` section exactly like `telemetry`, and the
// differential harness byte-compares profiled vs unprofiled runs. The full
// signal-safety argument lives in DESIGN.md §13.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/json.h"

namespace cosparse::obs {

inline constexpr std::string_view kCpuProfileSchema = "cosparse.cpu_profile/v1";

/// Returns a stable, process-lifetime pointer for a phase-tag string.
/// PhaseScope keeps only the pointer (the signal handler copies pointers,
/// never characters), so tags built at runtime — e.g. "graph." + algo —
/// must be interned; string literals can be passed to PhaseScope directly.
[[nodiscard]] const char* intern_phase_tag(const std::string& tag);

/// RAII phase tag: pushes `tag` onto the calling thread's phase stack for
/// the scope's lifetime. `tag` must outlive the scope — pass a string
/// literal or an intern_phase_tag() pointer. Always maintained (a handful
/// of thread-local stores) so a profiler started mid-run still sees the
/// current phase; when no profiler is active that is the entire cost.
class PhaseScope {
 public:
  explicit PhaseScope(const char* tag) noexcept;
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  void* state_;  ///< the thread's registered phase/ring state
};

struct SampleProfilerOptions {
  /// SIGPROF cadence in CPU microseconds. The kernel rounds to its timer
  /// granularity (often ~1-10 ms of process CPU time per signal).
  std::uint32_t period_us = 1000;
  /// Ring capacity per registered thread (~270 B each, preallocated at
  /// start); samples beyond it are counted as dropped rather than
  /// recorded. The default covers ~65 s of CPU per thread at 1 kHz.
  std::uint32_t max_samples_per_thread = 65536;
};

/// The profiler itself. One instance may be active per process at a time
/// (ITIMER_PROF is process-wide); start() fails rather than preempting an
/// already-running instance. Typical use is via CpuProfileSession below.
class SampleProfiler {
 public:
  static constexpr int kMaxFrames = 24;     ///< raw PCs kept per sample
  static constexpr int kMaxPhaseDepth = 8;  ///< phase tags kept per sample

  explicit SampleProfiler(SampleProfilerOptions opts = {});
  ~SampleProfiler();  ///< stops (and discards nothing) if still running

  SampleProfiler(const SampleProfiler&) = delete;
  SampleProfiler& operator=(const SampleProfiler&) = delete;

  /// Arms the timer and signal handler. Returns false when the platform
  /// has no POSIX profiling timer or another SampleProfiler is active.
  bool start();

  /// Disarms the timer, waits out any in-flight handler, harvests and
  /// symbolizes every thread's ring, and releases the ring storage.
  /// Idempotent; the accessors below are valid afterwards.
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  /// Whether any SampleProfiler in this process is currently armed.
  [[nodiscard]] static bool any_active();
  /// Whether this build/platform can profile at all (POSIX signals).
  [[nodiscard]] static bool platform_supported();

  // ---- results (valid after stop()) ----

  [[nodiscard]] std::uint64_t num_samples() const { return num_samples_; }
  /// Ring-capacity overflows plus samples on threads that never pushed a
  /// phase tag (and therefore had no ring registered).
  [[nodiscard]] std::uint64_t dropped_samples() const { return dropped_; }
  /// Threads that contributed at least one sample.
  [[nodiscard]] std::uint32_t num_threads() const { return num_threads_; }
  [[nodiscard]] std::uint32_t period_us() const { return opts_.period_us; }

  /// Folded-stack text: one "phase;...;symbol;... count" line per distinct
  /// stack, sorted lexicographically (deterministic given the samples).
  [[nodiscard]] std::string folded() const;

  /// Sample count per *leaf* phase (deepest tag at capture time; samples
  /// taken outside any PhaseScope fall into "(untagged)"), sorted by
  /// descending count then name.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  phase_totals() const;

  /// The report's `cpu_profile` section: schema, period, sample/drop/
  /// thread counts and per-phase {samples, share}. Wall-clock-dependent,
  /// so obs::results_subset strips it (bit-neutrality contract).
  [[nodiscard]] Json report_json() const;

 private:
  SampleProfilerOptions opts_;
  bool running_ = false;
  std::uint64_t num_samples_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint32_t num_threads_ = 0;
  /// stack key ("ph;ph;sym;sym") -> sample count, built at stop().
  std::vector<std::pair<std::string, std::uint64_t>> stacks_;
};

// ---- per-binary wiring ----

/// Owns one SampleProfiler wired from the standard CLI options, mirroring
/// TelemetrySession: disarmed unless --cpu-profile (or COSPARSE_CPU_PROFILE)
/// names an output path. finalize() writes the folded stacks there plus a
/// self-contained flamegraph at "<path>.html".
class CpuProfileSession {
 public:
  /// Registers --cpu-profile and --cpu-profile-period-us on `cli`. Call
  /// before cli.parse().
  static void add_cli_options(CliParser& cli);

  CpuProfileSession();
  ~CpuProfileSession();

  CpuProfileSession(const CpuProfileSession&) = delete;
  CpuProfileSession& operator=(const CpuProfileSession&) = delete;

  /// Arms and starts the profiler when an output path was requested
  /// (CLI option first, COSPARSE_CPU_PROFILE as the fallback).
  void init(const CliParser& cli, const std::string& tool);

  [[nodiscard]] bool armed() const { return profiler_ != nullptr; }
  [[nodiscard]] const std::string& folded_path() const { return path_; }

  /// Stops the profiler and writes the folded stacks + flamegraph HTML.
  /// Idempotent. Returns 0 (profiling never fails a run; IO errors print
  /// a warning and still return 0 so they cannot mask the run's verdict).
  int finalize();

  /// The `cpu_profile` report section; object() until finalize() ran on
  /// an armed session.
  [[nodiscard]] const Json& report() const { return report_; }

 private:
  std::unique_ptr<SampleProfiler> profiler_;
  std::string path_;
  std::string tool_;
  Json report_ = Json::object();
  bool finalized_ = false;
};

}  // namespace cosparse::obs
