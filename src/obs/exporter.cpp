#include "obs/exporter.h"

#include <cstdio>
#include <sstream>
#include <utility>

#include "common/log.h"

namespace cosparse::obs {

std::string openmetrics_name(const std::string& name) {
  std::string out = "cosparse_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

namespace {

void append_number(std::ostringstream& os, double v) {
  // Json::dump renders integral doubles without an exponent; reuse it so
  // OpenMetrics samples and JSONL snapshots agree digit-for-digit.
  os << Json(v).dump();
}

void append_summary(std::ostringstream& os, const std::string& name,
                    const HistogramSummary& s) {
  const std::string m = openmetrics_name(name);
  os << "# TYPE " << m << " summary\n";
  const std::pair<const char*, double> quantiles[] = {
      {"0.5", s.p50}, {"0.9", s.p90}, {"0.99", s.p99}, {"0.999", s.p999}};
  for (const auto& [q, v] : quantiles) {
    os << m << "{quantile=\"" << q << "\"} ";
    append_number(os, v);
    os << "\n";
  }
  os << m << "_sum ";
  append_number(os, s.sum);
  os << "\n";
  os << m << "_count " << s.count << "\n";
}

}  // namespace

std::string to_openmetrics(const TelemetrySnapshot& snap) {
  std::ostringstream os;
  os << "# TYPE cosparse_snapshot_seq counter\n";
  os << "cosparse_snapshot_seq_total " << snap.seq << "\n";
  os << "# TYPE cosparse_iterations counter\n";
  os << "cosparse_iterations_total " << snap.iterations << "\n";
  os << "# TYPE cosparse_wall_ms gauge\n";
  os << "cosparse_wall_ms ";
  append_number(os, snap.wall_ms);
  os << "\n";
  for (const auto& [name, s] : snap.hist) append_summary(os, name, s);
  os << "# EOF\n";
  return os.str();
}

TelemetryExporter::TelemetryExporter(ExporterOptions opts)
    : opts_(std::move(opts)) {
  if (!opts_.jsonl_path.empty()) {
    jsonl_.open(opts_.jsonl_path, std::ios::out | std::ios::trunc);
    if (!jsonl_) {
      log::warn("telemetry: cannot open JSONL output",
                log::kv("path", opts_.jsonl_path));
    }
  }
  if (opts_.background) {
    thread_ = std::thread([this] { worker(); });
  }
}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::write_one(const std::string& line,
                                  const std::string& prom) {
  if (jsonl_.is_open()) {
    jsonl_ << line << "\n";
    jsonl_.flush();  // per-line so `cosparse-top --follow` sees it live
  }
  if (!opts_.prom_path.empty()) {
    // Write-temp + rename: scrapers never observe a torn exposition.
    const std::string tmp = opts_.prom_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::out | std::ios::trunc);
      out << prom;
    }
    if (std::rename(tmp.c_str(), opts_.prom_path.c_str()) != 0) {
      log::warn("telemetry: cannot rename OpenMetrics output",
                log::kv("path", opts_.prom_path));
    }
  }
}

void TelemetryExporter::publish(std::string jsonl_line, std::string prom_text) {
  if (!opts_.background) {
    write_one(jsonl_line, prom_text);
    std::lock_guard<std::mutex> lock(mu_);
    ++lines_written_;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    queue_.emplace_back(std::move(jsonl_line), std::move(prom_text));
  }
  work_cv_.notify_one();
}

void TelemetryExporter::worker() {
  for (;;) {
    std::pair<std::string, std::string> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      item = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    write_one(item.first, item.second);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++lines_written_;
      busy_ = false;
    }
    done_cv_.notify_all();
  }
}

void TelemetryExporter::flush() {
  if (!opts_.background) return;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

void TelemetryExporter::stop() {
  if (opts_.background) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }
  if (jsonl_.is_open()) jsonl_.close();
}

std::uint64_t TelemetryExporter::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_written_;
}

}  // namespace cosparse::obs
