#include "obs/metrics.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  COSPARSE_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                   "histogram bucket bounds must be ascending");
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += v;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<double> MetricsRegistry::default_bounds() {
  return {1e-4, 1e-3, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0};
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

Json MetricsRegistry::to_json() const {
  Json o = Json::object();
  if (!counters_.empty()) {
    Json c = Json::object();
    for (const auto& [name, m] : counters_) c[name] = m->value();
    o["counters"] = std::move(c);
  }
  if (!gauges_.empty()) {
    Json g = Json::object();
    for (const auto& [name, m] : gauges_) g[name] = m->value();
    o["gauges"] = std::move(g);
  }
  if (!histograms_.empty()) {
    Json h = Json::object();
    for (const auto& [name, m] : histograms_) {
      Json one = Json::object();
      Json bounds = Json::array();
      for (const double b : m->bounds()) bounds.push_back(b);
      Json counts = Json::array();
      for (const std::uint64_t c : m->bucket_counts()) counts.push_back(c);
      one["bounds"] = std::move(bounds);
      one["bucket_counts"] = std::move(counts);
      one["count"] = m->count();
      one["sum"] = m->sum();
      h[name] = std::move(one);
    }
    o["histograms"] = std::move(h);
  }
  return o;
}

}  // namespace cosparse::obs
