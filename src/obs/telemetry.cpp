#include "obs/telemetry.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "obs/exporter.h"

namespace cosparse::obs {

namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

/// Parses a full nonnegative decimal number; throws on anything else.
double parse_number(const std::string& text, const std::string& what) {
  std::size_t used = 0;
  double v = 0.0;
  try {
    v = std::stod(text, &used);
  } catch (const std::exception&) {
    throw Error(what + ": not a number: '" + text + "'");
  }
  COSPARSE_REQUIRE(used == text.size(),
                   what << ": trailing garbage in '" << text << "'");
  COSPARSE_REQUIRE(v > 0.0, what << ": must be positive, got '" << text << "'");
  return v;
}

}  // namespace

// ---- TelemetryConfig ----

TelemetryConfig TelemetryConfig::parse(const std::string& spec) {
  TelemetryConfig cfg;
  cfg.spec = trim(spec);
  if (cfg.spec.empty()) return cfg;
  const std::string& s = cfg.spec;
  if (s.size() > 2 && s.substr(s.size() - 2) == "ms") {
    cfg.every_ms = parse_number(s.substr(0, s.size() - 2), "telemetry interval");
  } else if (s.size() > 1 && s.back() == 's') {
    cfg.every_ms =
        1000.0 * parse_number(s.substr(0, s.size() - 1), "telemetry interval");
  } else {
    std::string digits = s;
    if (s.size() > 1 && s.back() == 'i') digits = s.substr(0, s.size() - 1);
    const double n = parse_number(digits, "telemetry interval");
    COSPARSE_REQUIRE(n == static_cast<double>(static_cast<std::uint64_t>(n)),
                     "telemetry interval: iteration cadence must be an integer, "
                     "got '" << s << "'");
    cfg.every_iterations = static_cast<std::uint64_t>(n);
  }
  cfg.enabled = true;
  return cfg;
}

TelemetryConfig TelemetryConfig::from_env() {
  const char* spec = std::getenv("COSPARSE_TELEMETRY");
  return parse(spec == nullptr ? "" : spec);
}

// ---- TelemetrySnapshot ----

const HistogramSummary* TelemetrySnapshot::find(const std::string& name) const {
  for (const auto& [n, s] : hist) {
    if (n == name) return &s;
  }
  return nullptr;
}

Json TelemetrySnapshot::to_json() const {
  Json o = Json::object();
  o["schema"] = kTelemetrySchema;
  o["seq"] = seq;
  o["wall_ms"] = wall_ms;
  o["iterations"] = iterations;
  o["header"] = header;
  Json h = Json::object();
  for (const auto& [name, s] : hist) h[name] = s.to_json();
  o["hist"] = std::move(h);
  if (!extra.is_null()) o["extra"] = extra;
  return o;
}

// ---- SLO rules ----

namespace {

bool is_known_stat(const std::string& s) {
  return s == "p50" || s == "p90" || s == "p99" || s == "p999" || s == "min" ||
         s == "max" || s == "mean" || s == "count" || s == "sum";
}

}  // namespace

SloRule parse_slo_rule(const std::string& text) {
  const std::string t = trim(text);
  const std::size_t pos = t.find_first_of("<>");
  COSPARSE_REQUIRE(pos != std::string::npos,
                   "SLO rule needs a comparison (< <= > >=): '" << t << "'");
  SloRule rule;
  rule.text = t;
  rule.op = t.substr(pos, (pos + 1 < t.size() && t[pos + 1] == '=') ? 2 : 1);
  const std::string lhs = trim(t.substr(0, pos));
  const std::string rhs = trim(t.substr(pos + rule.op.size()));
  COSPARSE_REQUIRE(!lhs.empty(), "SLO rule has an empty left side: '" << t << "'");
  std::size_t used = 0;
  try {
    rule.threshold = std::stod(rhs, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  COSPARSE_REQUIRE(used == rhs.size() && !rhs.empty(),
                   "SLO rule threshold is not a number: '" << t << "'");
  if (lhs == "no_progress_ms") {
    rule.metric = lhs;
    return rule;
  }
  const std::size_t dot = lhs.find('.');
  COSPARSE_REQUIRE(dot != std::string::npos,
                   "SLO rule left side must be <stat>.<metric> or "
                   "no_progress_ms: '" << t << "'");
  rule.stat = lhs.substr(0, dot);
  rule.metric = lhs.substr(dot + 1);
  COSPARSE_REQUIRE(is_known_stat(rule.stat),
                   "SLO rule stat must be one of p50|p90|p99|p999|min|max|mean|"
                   "count|sum: '" << t << "'");
  COSPARSE_REQUIRE(!rule.metric.empty(),
                   "SLO rule names no metric: '" << t << "'");
  return rule;
}

std::vector<SloRule> parse_slo_rules(const std::string& list) {
  std::vector<SloRule> rules;
  std::string item;
  std::istringstream in(list);
  while (std::getline(in, item, ',')) {
    if (trim(item).empty()) continue;
    rules.push_back(parse_slo_rule(item));
  }
  return rules;
}

Json SloViolation::to_json() const {
  Json o = Json::object();
  o["seq"] = seq;
  o["rule"] = rule;
  o["observed"] = observed;
  o["threshold"] = threshold;
  o["message"] = message;
  return o;
}

namespace {

double stat_of(const HistogramSummary& s, const std::string& stat) {
  if (stat == "p50") return s.p50;
  if (stat == "p90") return s.p90;
  if (stat == "p99") return s.p99;
  if (stat == "p999") return s.p999;
  if (stat == "min") return s.min;
  if (stat == "max") return s.max;
  if (stat == "mean") return s.mean();
  if (stat == "count") return static_cast<double>(s.count);
  if (stat == "sum") return s.sum;
  COSPARSE_CHECK_MSG(false, "unknown SLO stat: " << stat);
  return 0.0;
}

bool satisfies(double v, const std::string& op, double threshold) {
  if (op == "<") return v < threshold;
  if (op == "<=") return v <= threshold;
  if (op == ">") return v > threshold;
  return v >= threshold;  // ">="
}

}  // namespace

std::vector<SloViolation> SloWatchdog::evaluate(const TelemetrySnapshot& snap) {
  if (!saw_snapshot_ || snap.iterations > last_iterations_) {
    last_iterations_ = snap.iterations;
    last_progress_ms_ = snap.wall_ms;
  }
  saw_snapshot_ = true;

  std::vector<SloViolation> out;
  for (const SloRule& rule : rules_) {
    double observed = 0.0;
    if (rule.metric == "no_progress_ms") {
      observed = snap.wall_ms - last_progress_ms_;
    } else {
      const HistogramSummary* s = snap.find(rule.metric);
      if (s == nullptr || s->count == 0) continue;  // not violated: no data yet
      observed = stat_of(*s, rule.stat);
    }
    if (satisfies(observed, rule.op, rule.threshold)) continue;
    SloViolation v;
    v.seq = snap.seq;
    v.rule = rule.text;
    v.observed = observed;
    v.threshold = rule.threshold;
    std::ostringstream msg;
    msg << "SLO violated at snapshot " << snap.seq << ": " << rule.text
        << " (observed " << observed << ")";
    v.message = msg.str();
    log::warn("slo violation", log::kv("rule", rule.text),
              log::kv("observed", observed), log::kv("seq", snap.seq));
    out.push_back(v);
    violations_.push_back(std::move(v));
  }
  return out;
}

Json SloWatchdog::to_json() const {
  Json o = Json::object();
  Json rules = Json::array();
  for (const SloRule& r : rules_) rules.push_back(r.text);
  o["rules"] = std::move(rules);
  Json violations = Json::array();
  for (const SloViolation& v : violations_) violations.push_back(v.to_json());
  o["violations"] = std::move(violations);
  o["tripped"] = tripped();
  return o;
}

// ---- Telemetry ----

Telemetry::Telemetry(TelemetryConfig cfg, NowFn now_ms)
    : cfg_(std::move(cfg)), now_ms_(std::move(now_ms)) {
  if (!now_ms_) {
    const auto start = std::chrono::steady_clock::now();
    now_ms_ = [start]() {
      return std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };
  }
  next_iteration_due_ = cfg_.every_iterations;
}

StreamingHistogram& Telemetry::histogram(const std::string& name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<StreamingHistogram>())
             .first;
  }
  return *it->second;
}

const StreamingHistogram* Telemetry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Telemetry::set_header(const std::string& key, Json value) {
  header_[key] = std::move(value);
}

void Telemetry::tick(std::uint64_t iterations,
                     const std::function<Json()>& extra) {
  last_iterations_ = iterations;
  if (!cfg_.enabled) return;
  const double t0 = now_ms_();
  bool due = false;
  if (cfg_.every_iterations > 0 && iterations >= next_iteration_due_) {
    due = true;
  }
  if (cfg_.every_ms > 0.0 && t0 - last_snapshot_ms_ >= cfg_.every_ms) {
    due = true;
  }
  if (due) take_snapshot(extra);
  histogram("telemetry.overhead_ms").observe(now_ms_() - t0);
}

void Telemetry::flush() {
  if (!cfg_.enabled) return;
  take_snapshot(nullptr);
}

void Telemetry::take_snapshot(const std::function<Json()>& extra) {
  TelemetrySnapshot snap;
  snap.seq = seq_++;
  snap.wall_ms = now_ms_();
  snap.iterations = last_iterations_;
  snap.header = header_;
  snap.hist.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    if (h->count() == 0) continue;
    snap.hist.emplace_back(name, h->summary());
  }
  if (extra) snap.extra = extra();

  std::vector<SloViolation> violations;
  if (watchdog_ != nullptr) violations = watchdog_->evaluate(snap);

  if (exporter_ != nullptr) {
    Json line = snap.to_json();
    if (!violations.empty()) {
      Json arr = Json::array();
      for (const SloViolation& v : violations) arr.push_back(v.to_json());
      line["slo_violations"] = std::move(arr);
    }
    exporter_->publish(line.dump(), to_openmetrics(snap));
  }

  last_snapshot_ms_ = snap.wall_ms;
  if (cfg_.every_iterations > 0) {
    next_iteration_due_ = last_iterations_ + cfg_.every_iterations;
  }
}

Json Telemetry::report_json() const {
  Json o = Json::object();
  o["schema"] = kTelemetrySchema;
  o["enabled"] = cfg_.enabled;
  if (!cfg_.spec.empty()) o["interval"] = cfg_.spec;
  o["header"] = header_;
  o["snapshots"] = seq_;
  Json h = Json::object();
  for (const auto& [name, hist] : histograms_) {
    if (hist->count() == 0) continue;
    h[name] = hist->summary().to_json();
  }
  o["hist"] = std::move(h);
  if (watchdog_ != nullptr) o["slo"] = watchdog_->to_json();
  return o;
}

// ---- TelemetrySession ----

namespace {

/// --sim-threads is a sim-layer option; obs can't depend on sim, so resolve
/// the same COSPARSE_SIM_THREADS fallback ParallelExecutor uses.
std::int64_t resolve_sim_threads(const CliParser& cli) {
  if (cli.has("sim-threads") && !cli.str("sim-threads").empty()) {
    return cli.integer("sim-threads");
  }
  const char* env = std::getenv("COSPARSE_SIM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 0) return v;
  }
  return 0;  // 0 = auto / serial default
}

}  // namespace

void TelemetrySession::add_cli_options(CliParser& cli) {
  cli.add_option("telemetry-interval",
                 "snapshot cadence: <N>i iterations or <N>ms/<N>s wall clock "
                 "(empty = telemetry off; env COSPARSE_TELEMETRY)",
                 "");
  cli.add_option("telemetry-out", "telemetry JSONL time-series path",
                 "telemetry.jsonl");
  cli.add_option("prom-out", "OpenMetrics exposition path", "metrics.prom");
  cli.add_option("slo",
                 "comma-separated SLO rules, e.g. "
                 "'p99.engine.iteration_ms<5,no_progress_ms<5000' "
                 "(env COSPARSE_SLO)",
                 "");
  cli.add_flag("slo-strict", "exit nonzero if any SLO rule is violated");
}

TelemetrySession::TelemetrySession() = default;

TelemetrySession::~TelemetrySession() { finalize(); }

void TelemetrySession::init(const CliParser& cli, const std::string& tool) {
  std::string spec;
  if (cli.has("telemetry-interval")) spec = cli.str("telemetry-interval");
  TelemetryConfig cfg =
      spec.empty() ? TelemetryConfig::from_env() : TelemetryConfig::parse(spec);
  if (!cfg.enabled) return;

  telemetry_ = std::make_unique<Telemetry>(cfg);
  telemetry_->set_header("tool", tool);
  telemetry_->set_header("interval", cfg.spec);
  if (cli.has("seed")) telemetry_->set_header("seed", cli.integer("seed"));
  telemetry_->set_header("sim_threads", resolve_sim_threads(cli));

  ExporterOptions eopts;
  if (cli.has("telemetry-out")) eopts.jsonl_path = cli.str("telemetry-out");
  if (cli.has("prom-out")) eopts.prom_path = cli.str("prom-out");
  if (!eopts.jsonl_path.empty() || !eopts.prom_path.empty()) {
    exporter_ = std::make_unique<TelemetryExporter>(eopts);
    telemetry_->set_exporter(exporter_.get());
  }

  std::string rules;
  if (cli.has("slo")) rules = cli.str("slo");
  if (rules.empty()) {
    const char* env = std::getenv("COSPARSE_SLO");
    if (env != nullptr) rules = env;
  }
  if (!rules.empty()) {
    watchdog_ = std::make_unique<SloWatchdog>();
    for (SloRule& r : parse_slo_rules(rules)) watchdog_->add_rule(std::move(r));
    telemetry_->set_watchdog(watchdog_.get());
  }
  strict_ = cli.has("slo-strict") && cli.flag("slo-strict");
}

int TelemetrySession::finalize() {
  if (finalized_) return exit_code_;
  finalized_ = true;
  if (telemetry_ != nullptr) telemetry_->flush();
  if (exporter_ != nullptr) exporter_->stop();
  if (strict_ && watchdog_ != nullptr && watchdog_->tripped()) {
    log::error("exiting nonzero: --slo-strict with ",
               watchdog_->violations().size(), " SLO violation(s)");
    exit_code_ = 3;
  }
  return exit_code_;
}

}  // namespace cosparse::obs
