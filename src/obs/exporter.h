// Telemetry export: JSONL time series + OpenMetrics text exposition.
//
// The exporter runs a background thread so snapshot publication never
// blocks the simulation hot path: Telemetry hands it fully-rendered
// strings, the worker appends each snapshot as one line of telemetry
// JSONL (flushed per line so `cosparse-top --follow` and `tail -f` see
// snapshots as they happen) and atomically rewrites the OpenMetrics file
// (write-temp + rename) with the latest exposition so standard scrapers
// always read a complete document ending in "# EOF". Tests run with
// background = false, which writes synchronously on publish() — byte-for-
// byte the same output, no thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>

#include "obs/telemetry.h"

namespace cosparse::obs {

/// Renders one snapshot as an OpenMetrics text exposition: counters for
/// seq/iterations, a gauge for wall_ms, one summary family per histogram
/// (quantile samples + _sum/_count), terminated by "# EOF". Metric names
/// are prefixed "cosparse_" and sanitized to [a-zA-Z0-9_:].
[[nodiscard]] std::string to_openmetrics(const TelemetrySnapshot& snap);

/// OpenMetrics-safe metric name ("engine.iteration_ms" ->
/// "cosparse_engine_iteration_ms").
[[nodiscard]] std::string openmetrics_name(const std::string& name);

struct ExporterOptions {
  std::string jsonl_path;  ///< empty disables the JSONL stream
  std::string prom_path;   ///< empty disables the OpenMetrics file
  bool background = true;  ///< false = synchronous writes (tests)
};

class TelemetryExporter {
 public:
  explicit TelemetryExporter(ExporterOptions opts);
  ~TelemetryExporter();  ///< stop(): drains the queue, joins the worker

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  /// Enqueues one snapshot (`jsonl_line` without trailing newline;
  /// `prom_text` a complete exposition). Non-blocking in background mode.
  void publish(std::string jsonl_line, std::string prom_text);

  /// Blocks until every published snapshot has been written to disk.
  void flush();

  /// flush() + worker shutdown; further publish() calls are dropped.
  /// Called by the destructor; safe to call twice.
  void stop();

  [[nodiscard]] std::uint64_t lines_written() const;

 private:
  void worker();
  void write_one(const std::string& line, const std::string& prom);

  ExporterOptions opts_;
  std::ofstream jsonl_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::pair<std::string, std::string>> queue_;
  std::uint64_t lines_written_ = 0;
  bool stop_ = false;
  bool busy_ = false;
  std::thread thread_;
};

}  // namespace cosparse::obs
