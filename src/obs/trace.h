// Trace-event recording with simulated-cycle timestamps.
//
// A Trace collects complete spans ("X" phase), instants and counter samples
// on named tracks and exports Chrome/Perfetto trace-event JSON — load the
// file at ui.perfetto.dev (or chrome://tracing) to see SpMV iterations,
// kernel runs, frontier conversions and reconfiguration flushes on a
// timeline. Timestamps are *simulated cycles* (the exporter maps 1 cycle to
// 1 us of trace time; at the 1 GHz PE clock the displayed "us" read as ns).
//
// A default-constructed Trace is a null sink: enabled() is false and every
// producer guards its span construction behind it, so disabled tracing
// costs one pointer/bool test per site and records nothing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace cosparse::obs {

class Trace {
 public:
  Trace() = default;                        ///< disabled null sink
  explicit Trace(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records a completed span [begin_cycles, end_cycles] on `track`.
  /// Tracks map to Perfetto threads; producers keep spans on one track
  /// sequential (non-overlapping), nesting goes on a separate track.
  void add_span(std::string_view track, std::string_view name,
                double begin_cycles, double end_cycles, Json args = Json());

  /// Records a zero-duration instant event.
  void add_instant(std::string_view track, std::string_view name,
                   double at_cycles, Json args = Json());

  /// Records one sample of a Perfetto counter track.
  void add_counter(std::string_view track, std::string_view name,
                   double at_cycles, double value);

  [[nodiscard]] std::size_t num_events() const { return events_.size(); }

  /// Chrome trace-event JSON: {"traceEvents": [...], ...}.
  [[nodiscard]] Json to_json() const;

  /// Writes to_json() to `path` (creating parent directories).
  void write(const std::string& path) const;

 private:
  enum class Phase : std::uint8_t { kSpan, kInstant, kCounter };

  struct Event {
    Phase phase;
    std::uint32_t track;  ///< index into tracks_
    std::string name;
    double ts;   ///< cycles
    double dur;  ///< cycles (spans) / value (counters)
    Json args;
  };

  std::uint32_t track_id(std::string_view track);

  bool enabled_ = false;
  std::vector<std::string> tracks_;  ///< tid = index + 1
  std::vector<Event> events_;
};

/// Returns the trace output path requested via the COSPARSE_TRACE
/// environment variable, or "" when unset/empty.
[[nodiscard]] std::string trace_path_from_env();

}  // namespace cosparse::obs
