// Known-findings baseline (cosparse.lint_baseline/v1).
//
// A baseline lists findings every cosparse-lint subcommand should treat
// as accepted debt: matched findings stay in the report (marked
// suppressed) but stop counting toward the error/warning gate, so a
// legacy defect can be ratcheted down without turning the CI gate off.
// Matching is by pass + finding id, optionally narrowed to one location
// name — never by message text, which is free to improve.
//
// Document shape:
//   { "schema": "cosparse.lint_baseline/v1",
//     "suppress": [ {"pass": "determinism",
//                    "id": "determinism.wallclock",
//                    "location": "src/sim/machine.cpp:151"}, ... ] }
// "location" is optional; omitted → every location of that (pass, id).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "verify/findings.h"

namespace cosparse::verify {

inline constexpr std::string_view kLintBaselineSchema =
    "cosparse.lint_baseline/v1";

class Baseline {
 public:
  struct Entry {
    std::string pass;
    std::string id;
    std::string location;  ///< empty → any location
  };

  Baseline() = default;

  /// Parses a cosparse.lint_baseline/v1 document; throws cosparse::Error
  /// on a wrong schema or malformed entries.
  [[nodiscard]] static Baseline from_json(const Json& j);

  /// Marks every matching finding in `report` suppressed. Returns the
  /// number of findings suppressed by this call.
  std::size_t apply(LintReport& report) const;

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

 private:
  std::vector<Entry> entries_;
};

}  // namespace cosparse::verify
