// Pass 4: report/audit schema lint.
//
// Validates a cosparse.run_report/v1 document structurally and checks its
// cross-section invariants: per-tile stats sum to the global stats,
// memory-profile regions sum to the profile totals (which in turn match
// the shared global counters bit-exactly), iteration records carry the
// mandatory fields, and every decision-audit record numbers sequentially
// and marks exactly one chosen counterfactual. This is the same contract
// the check_report CLI and the observability unit tests enforce — they
// now both delegate here, so the CLI, the tests, and cosparse-lint cannot
// drift apart.
#pragma once

#include <vector>

#include "common/json.h"
#include "verify/findings.h"

namespace cosparse::verify {

[[nodiscard]] std::vector<Finding> lint_run_report(const Json& doc);

}  // namespace cosparse::verify
