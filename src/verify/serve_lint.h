// Pass: serving-daemon config lint (cosparse.serve_config/v1).
//
// Validates the documents cosparsed and bench/serve_load replay — the
// same invariants ServeConfig::from_json enforces by throwing, but
// emitted as structured findings so CI can lint every committed trace
// config (bench/traces/*.serve.json) without running the daemon. On top
// of the structural checks it cross-references the dataset registry
// (unknown Table III names are errors at admission time; better to catch
// them in review) and flags configurations that are legal but
// self-defeating: a batch size admission control can never fill, or a
// cache budget smaller than the largest dataset the traffic mix can
// request (every load would run over budget).
#pragma once

#include <vector>

#include "common/json.h"
#include "verify/findings.h"

namespace cosparse::verify {

[[nodiscard]] std::vector<Finding> lint_serve_config(const Json& doc);

/// LintReport wrapper for the cosparse-lint `serve` subcommand.
[[nodiscard]] LintReport lint_serve_config_json(const Json& doc,
                                                const std::string& subject);

}  // namespace cosparse::verify
