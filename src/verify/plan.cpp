#include "verify/plan.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::verify {

namespace {

void parse_dataset(const Json& j, RunPlan& plan) {
  COSPARSE_REQUIRE(j.is_object(), "plan dataset must be a JSON object");
  bool frontier_given = false;
  for (const auto& [key, value] : j.members()) {
    if (key == "vertices") {
      plan.dataset.dimension = static_cast<Index>(value.as_int());
    } else if (key == "edges") {
      plan.dataset.matrix_nnz = static_cast<std::uint64_t>(value.as_int());
    } else if (key == "max_frontier_nnz") {
      plan.dataset.frontier_nnz = static_cast<std::size_t>(value.as_int());
      frontier_given = true;
    } else {
      plan.unknown_fields.push_back("dataset." + key);
    }
  }
  if (!frontier_given) {
    // Worst case: every vertex active.
    plan.dataset.frontier_nnz = plan.dataset.dimension;
  }
}

void parse_kernel(const Json& j, RunPlan& plan) {
  COSPARSE_REQUIRE(j.is_object(), "plan kernel must be a JSON object");
  for (const auto& [key, value] : j.members()) {
    if (key == "sw") {
      if (value.as_string() != "auto") {
        plan.sw = runtime::sw_config_from_string(value.as_string());
      }
    } else if (key == "hw") {
      if (value.as_string() != "auto") {
        plan.hw = sim::hw_config_from_string(value.as_string());
      }
    } else if (key == "vblocked") {
      plan.vblocked = value.as_bool();
    } else {
      plan.unknown_fields.push_back("kernel." + key);
    }
  }
}

void parse_thresholds(const Json& j, RunPlan& plan) {
  COSPARSE_REQUIRE(j.is_object(), "plan thresholds must be a JSON object");
  runtime::Thresholds& t = plan.thresholds;
  for (const auto& [key, value] : j.members()) {
    if (key == "cvd_coefficient") {
      t.cvd_coefficient = value.as_double();
    } else if (key == "matrix_density_exponent") {
      t.matrix_density_exponent = value.as_double();
    } else if (key == "matrix_density_reference") {
      t.matrix_density_reference = value.as_double();
    } else if (key == "cvd_min") {
      t.cvd_min = value.as_double();
    } else if (key == "cvd_max") {
      t.cvd_max = value.as_double();
    } else if (key == "scs_density") {
      t.scs_density = value.as_double();
    } else if (key == "ps_list_fraction") {
      t.ps_list_fraction = value.as_double();
    } else {
      plan.unknown_fields.push_back("thresholds." + key);
    }
  }
}

void parse_regions(const Json& j, RunPlan& plan) {
  COSPARSE_REQUIRE(j.is_array(), "plan regions must be a JSON array");
  std::vector<kernels::PlannedRegion> regions;
  for (const Json& rj : j.items()) {
    COSPARSE_REQUIRE(rj.is_object(), "plan region must be a JSON object");
    kernels::PlannedRegion r;
    const Json* label = rj.find("label");
    COSPARSE_REQUIRE(label != nullptr, "plan region missing field: label");
    r.label = label->as_string();
    const Json* bytes = rj.find("bytes");
    COSPARSE_REQUIRE(bytes != nullptr, "plan region missing field: bytes");
    COSPARSE_REQUIRE(bytes->as_int() >= 0, "plan region bytes negative");
    r.bytes = static_cast<std::size_t>(bytes->as_int());
    if (const Json* scope = rj.find("scope"); scope != nullptr) {
      r.scope = kernels::region_scope_from_string(scope->as_string());
    }
    if (const Json* spm = rj.find("spm"); spm != nullptr) {
      r.spm = spm->as_bool();
    }
    if (const Json* spill = rj.find("spill_ok"); spill != nullptr) {
      r.spill_ok = spill->as_bool();
    }
    if (const Json* base = rj.find("base"); base != nullptr) {
      r.base = static_cast<Addr>(base->as_int());
    }
    regions.push_back(std::move(r));
  }
  plan.regions = std::move(regions);
}

void parse_xbar(const Json& j, RunPlan& plan) {
  COSPARSE_REQUIRE(j.is_object(), "plan xbar must be a JSON object");
  for (const auto& [key, value] : j.members()) {
    if (key == "tile_ports") {
      COSPARSE_REQUIRE(value.is_array(), "xbar tile_ports must be an array");
      std::vector<std::uint32_t> ports;
      for (const Json& p : value.items()) {
        ports.push_back(static_cast<std::uint32_t>(p.as_int()));
      }
      plan.xbar_tile_ports = std::move(ports);
    } else {
      plan.unknown_fields.push_back("xbar." + key);
    }
  }
}

}  // namespace

double RunPlan::matrix_density() const {
  if (dataset.dimension == 0) return 0.0;
  const double n = static_cast<double>(dataset.dimension);
  return static_cast<double>(dataset.matrix_nnz) / (n * n);
}

RunPlan RunPlan::from_json(const Json& doc) {
  COSPARSE_REQUIRE(doc.is_object(), "run plan must be a JSON object");
  RunPlan plan;
  for (const auto& [key, value] : doc.members()) {
    if (key == "schema") {
      COSPARSE_REQUIRE(value.as_string() == kRunPlanSchema,
                       "unexpected plan schema: " + value.as_string());
    } else if (key == "name") {
      plan.name = value.as_string();
    } else if (key == "system") {
      std::vector<std::string> unknown;
      plan.system = sim::system_config_from_json(value, &unknown);
      for (auto& u : unknown) {
        plan.unknown_fields.push_back("system." + u);
      }
    } else if (key == "xbar") {
      parse_xbar(value, plan);
    } else if (key == "dataset") {
      parse_dataset(value, plan);
    } else if (key == "kernel") {
      parse_kernel(value, plan);
    } else if (key == "thresholds") {
      parse_thresholds(value, plan);
    } else if (key == "decision_tree") {
      plan.tree = runtime::DecisionTreeSpec::from_json(value);
    } else if (key == "regions") {
      parse_regions(value, plan);
    } else {
      plan.unknown_fields.push_back(key);
    }
  }
  return plan;
}

Json RunPlan::to_json() const {
  Json o = Json::object();
  o["schema"] = kRunPlanSchema;
  o["name"] = name;
  o["system"] = system.to_json();
  if (xbar_tile_ports.has_value()) {
    Json ports = Json::array();
    for (auto p : *xbar_tile_ports) ports.push_back(p);
    Json xbar = Json::object();
    xbar["tile_ports"] = std::move(ports);
    o["xbar"] = std::move(xbar);
  }
  Json ds = Json::object();
  ds["vertices"] = dataset.dimension;
  ds["edges"] = dataset.matrix_nnz;
  ds["max_frontier_nnz"] = dataset.frontier_nnz;
  o["dataset"] = std::move(ds);
  Json kernel = Json::object();
  kernel["sw"] = sw.has_value() ? to_string(*sw) : "auto";
  kernel["hw"] = hw.has_value() ? sim::to_string(*hw) : "auto";
  kernel["vblocked"] = vblocked;
  o["kernel"] = std::move(kernel);
  Json th = Json::object();
  th["cvd_coefficient"] = thresholds.cvd_coefficient;
  th["matrix_density_exponent"] = thresholds.matrix_density_exponent;
  th["matrix_density_reference"] = thresholds.matrix_density_reference;
  th["cvd_min"] = thresholds.cvd_min;
  th["cvd_max"] = thresholds.cvd_max;
  th["scs_density"] = thresholds.scs_density;
  th["ps_list_fraction"] = thresholds.ps_list_fraction;
  o["thresholds"] = std::move(th);
  if (tree.has_value()) o["decision_tree"] = tree->to_json();
  if (regions.has_value()) {
    Json arr = Json::array();
    for (const auto& r : *regions) {
      Json rj = Json::object();
      rj["label"] = r.label;
      rj["bytes"] = r.bytes;
      rj["scope"] = kernels::to_string(r.scope);
      rj["spm"] = r.spm;
      rj["spill_ok"] = r.spill_ok;
      if (r.base.has_value()) rj["base"] = *r.base;
      arr.push_back(std::move(rj));
    }
    o["regions"] = std::move(arr);
  }
  return o;
}

runtime::DecisionTreeSpec RunPlan::effective_tree() const {
  if (tree.has_value()) return *tree;
  return runtime::export_decision_tree(system, thresholds, dataset.dimension,
                                       matrix_density());
}

std::vector<kernels::PlannedRegion> RunPlan::effective_regions() const {
  if (regions.has_value()) return *regions;
  std::vector<kernels::PlannedRegion> out;
  const bool want_ip = !sw.has_value() || *sw == runtime::SwConfig::kIP;
  const bool want_op = !sw.has_value() || *sw == runtime::SwConfig::kOP;
  if (want_ip) {
    // The SCS SPM segment only exists when SCS is reachable (pinned to it,
    // or left to the runtime).
    const bool scs = !hw.has_value() || *hw == sim::HwConfig::kSCS;
    for (auto& r : kernels::plan_ip_regions(system, dataset, scs, vblocked)) {
      out.push_back(std::move(r));
    }
  }
  if (want_op) {
    const bool ps = !hw.has_value() || *hw == sim::HwConfig::kPS;
    for (auto& r : kernels::plan_op_regions(system, dataset, ps)) {
      out.push_back(std::move(r));
    }
  }
  return out;
}

}  // namespace cosparse::verify
