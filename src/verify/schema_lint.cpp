#include "verify/schema_lint.h"

#include <cmath>
#include <cstdint>
#include <string>

#include "obs/report.h"
#include "verify/telemetry_lint.h"

namespace cosparse::verify {

namespace {

constexpr const char* kPass = "report_schema";

void emit(std::vector<Finding>& out, std::string id, Severity sev,
          std::string message, std::string path) {
  out.push_back(Finding{kPass, std::move(id), sev, std::move(message),
                        Location::document(std::move(path))});
}

void lint_stats(const Json& doc, std::vector<Finding>& out) {
  const Json* stats = doc.find("stats");
  if (stats == nullptr) return;
  if (!stats->is_object()) {
    emit(out, "report.bad-section", Severity::kError,
         "stats is not an object", "stats");
    return;
  }
  const Json* tiles = doc.find("tile_stats");
  if (tiles == nullptr) return;
  if (!tiles->is_array()) {
    emit(out, "report.bad-section", Severity::kError,
         "tile_stats is not an array", "tile_stats");
    return;
  }
  // The element-wise sum over tiles must reproduce the global stats:
  // exactly for integer counters, to rounding for cycle doubles.
  for (const auto& [name, global] : stats->members()) {
    bool missing = false;
    if (global.type() == Json::Type::kInt) {
      std::int64_t sum = 0;
      for (const Json& tile : tiles->items()) {
        const Json* v = tile.find(name);
        if (v == nullptr) {
          emit(out, "report.missing-counter", Severity::kError,
               "tile_stats missing counter: " + name, "tile_stats." + name);
          missing = true;
          break;
        }
        sum += v->as_int();
      }
      if (!missing && sum != global.as_int()) {
        emit(out, "report.tile-sum-mismatch", Severity::kError,
             "tile_stats do not sum to stats for counter: " + name,
             "tile_stats." + name);
      }
    } else {
      double sum = 0.0;
      for (const Json& tile : tiles->items()) {
        const Json* v = tile.find(name);
        if (v == nullptr) {
          emit(out, "report.missing-counter", Severity::kError,
               "tile_stats missing counter: " + name, "tile_stats." + name);
          missing = true;
          break;
        }
        sum += v->as_double();
      }
      const double g = global.as_double();
      const double tol = 1e-6 * std::max(1.0, std::abs(g));
      if (!missing && std::abs(sum - g) > tol) {
        emit(out, "report.tile-sum-mismatch", Severity::kError,
             "tile_stats do not sum to stats for counter: " + name,
             "tile_stats." + name);
      }
    }
  }
}

void lint_iterations(const Json& doc, std::vector<Finding>& out) {
  const Json* iters = doc.find("iterations");
  if (iters == nullptr) return;
  if (!iters->is_array()) {
    emit(out, "report.bad-section", Severity::kError,
         "iterations is not an array", "iterations");
    return;
  }
  std::size_t index = 0;
  for (const Json& it : iters->items()) {
    const std::string path = "iterations[" + std::to_string(index++) + "]";
    for (const char* key :
         {"index", "frontier_nnz", "density", "sw", "hw", "cycles"}) {
      if (it.find(key) == nullptr) {
        emit(out, "report.missing-field", Severity::kError,
             std::string("iteration record missing field: ") + key,
             path + "." + key);
      }
    }
    if (const Json* sw = it.find("sw");
        sw != nullptr && sw->is_string() && sw->as_string() != "IP" &&
        sw->as_string() != "OP") {
      emit(out, "report.bad-value", Severity::kError,
           "bad iteration sw: " + sw->as_string(), path + ".sw");
    }
  }
}

void lint_memory_profile(const Json& doc, std::vector<Finding>& out) {
  const Json* prof = doc.find("memory_profile");
  if (prof == nullptr) return;
  if (!prof->is_object()) {
    emit(out, "report.bad-section", Severity::kError,
         "memory_profile is not an object", "memory_profile");
    return;
  }
  const Json* ptotals = prof->find("totals");
  const Json* regions = prof->find("regions");
  if (ptotals == nullptr || !ptotals->is_object()) {
    emit(out, "report.missing-field", Severity::kError,
         "memory_profile missing object field: totals",
         "memory_profile.totals");
    return;
  }
  if (regions == nullptr || !regions->is_object()) {
    emit(out, "report.missing-field", Severity::kError,
         "memory_profile missing object field: regions",
         "memory_profile.regions");
    return;
  }
  for (const auto& [name, total] : ptotals->members()) {
    // Region sums reproduce the profile totals (exactly for integer
    // counters, to rounding for the stall-cycle doubles).
    if (total.type() == Json::Type::kInt) {
      std::int64_t sum = 0;
      bool missing = false;
      for (const auto& [label, region] : regions->members()) {
        const Json* counters = region.find("counters");
        if (counters == nullptr) {
          emit(out, "report.missing-field", Severity::kError,
               "memory_profile region missing counters: " + label,
               "memory_profile.regions." + label);
          missing = true;
          break;
        }
        const Json* v = counters->find(name);
        if (v == nullptr) {
          emit(out, "report.missing-counter", Severity::kError,
               "memory_profile region missing counter: " + name,
               "memory_profile.regions." + label);
          missing = true;
          break;
        }
        sum += v->as_int();
      }
      if (!missing && sum != total.as_int()) {
        emit(out, "report.region-sum-mismatch", Severity::kError,
             "memory_profile regions do not sum to totals for counter: " +
                 name,
             "memory_profile.totals." + name);
      }
    }
    // Profile totals reproduce the global stats bit-exactly for every
    // counter name the two sections share (the MemProfiler invariant).
    if (const Json* stats = doc.find("stats"); stats != nullptr) {
      const Json* g = stats->find(name);
      if (g != nullptr && total.type() == Json::Type::kInt &&
          g->type() == Json::Type::kInt && total.as_int() != g->as_int()) {
        emit(out, "report.profile-stats-divergence", Severity::kError,
             "memory_profile total diverges from stats counter: " + name,
             "memory_profile.totals." + name);
      }
    }
  }
}

void lint_decision_audit(const Json& doc, std::vector<Finding>& out) {
  const Json* audit = doc.find("decision_audit");
  if (audit == nullptr) return;
  if (!audit->is_object()) {
    emit(out, "report.bad-section", Severity::kError,
         "decision_audit is not an object", "decision_audit");
    return;
  }
  const Json* invs = audit->find("invocations");
  if (invs == nullptr || !invs->is_array()) {
    emit(out, "report.missing-field", Severity::kError,
         "decision_audit missing array field: invocations",
         "decision_audit.invocations");
    return;
  }
  std::uint32_t expected = 0;
  std::size_t index = 0;
  for (const Json& rec : invs->items()) {
    const std::string path =
        "decision_audit.invocations[" + std::to_string(index++) + "]";
    bool complete = true;
    for (const char* key : {"invocation", "forced_sw", "features", "checks",
                            "sw", "hw", "cvd", "counterfactuals"}) {
      if (rec.find(key) == nullptr) {
        emit(out, "report.missing-field", Severity::kError,
             std::string("decision record missing field: ") + key,
             path + "." + key);
        complete = false;
      }
    }
    if (!complete) continue;
    if (static_cast<std::uint32_t>(rec.find("invocation")->as_int()) !=
        expected++) {
      emit(out, "report.bad-value", Severity::kError,
           "decision records are not sequentially numbered",
           path + ".invocation");
    }
    const Json* cfs = rec.find("counterfactuals");
    if (!cfs->is_array() || cfs->size() != 4) {
      emit(out, "report.bad-value", Severity::kError,
           "decision record must carry 4 counterfactuals",
           path + ".counterfactuals");
      continue;
    }
    std::size_t chosen = 0;
    bool have_flags = true;
    for (const Json& cf : cfs->items()) {
      const Json* flag = cf.find("chosen");
      if (flag == nullptr) {
        emit(out, "report.missing-field", Severity::kError,
             "counterfactual missing field: chosen",
             path + ".counterfactuals");
        have_flags = false;
        break;
      }
      if (flag->as_bool()) ++chosen;
    }
    if (have_flags && chosen != 1) {
      emit(out, "report.bad-value", Severity::kError,
           "decision record must mark exactly one chosen counterfactual",
           path + ".counterfactuals");
    }
  }
}

}  // namespace

std::vector<Finding> lint_run_report(const Json& doc) {
  std::vector<Finding> out;
  if (!doc.is_object()) {
    emit(out, "report.not-object", Severity::kError,
         "report is not a JSON object", "(root)");
    return out;
  }

  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    emit(out, "report.missing-field", Severity::kError,
         "missing string field: schema", "schema");
  } else if (schema->as_string() != obs::kReportSchema) {
    emit(out, "report.bad-schema", Severity::kError,
         "unexpected schema: " + schema->as_string(), "schema");
  }
  const Json* tool = doc.find("tool");
  if (tool == nullptr || !tool->is_string() || tool->as_string().empty()) {
    emit(out, "report.missing-field", Severity::kError,
         "missing/empty string field: tool", "tool");
  }

  if (const Json* totals = doc.find("totals"); totals != nullptr) {
    if (!totals->is_object()) {
      emit(out, "report.bad-section", Severity::kError,
           "totals is not an object", "totals");
    } else if (const Json* cycles = totals->find("cycles");
               cycles == nullptr || !cycles->is_number()) {
      emit(out, "report.missing-field", Severity::kError,
           "totals missing number field: cycles", "totals.cycles");
    }
  }

  lint_stats(doc, out);
  lint_iterations(doc, out);
  lint_memory_profile(doc, out);
  lint_decision_audit(doc, out);
  for (Finding& f : lint_telemetry_section(doc)) out.push_back(std::move(f));
  return out;
}

}  // namespace cosparse::verify
