// Pass 5: telemetry lint.
//
// Three related validators for the continuous-telemetry pipeline
// (obs/telemetry.h): the run report's "telemetry" section (schema tag,
// digest invariants, watchdog shape), an exported JSONL time series
// (per-line schema + strictly increasing seq and monotone wall_ms /
// iteration counters — the self-describing-stream contract), and an
// OpenMetrics text exposition (sample syntax, TYPE-before-samples,
// terminating "# EOF"). cosparse-lint's `report` subcommand runs the
// section pass; its `telemetry` subcommand runs the file passes; CI lints
// the quickstart's emitted files with them.
#pragma once

#include <string>
#include <vector>

#include "common/json.h"
#include "verify/findings.h"

namespace cosparse::verify {

/// Lints the "telemetry" section of a run report document (no findings
/// when the section is absent — telemetry is opt-in).
[[nodiscard]] std::vector<Finding> lint_telemetry_section(const Json& doc);

/// Lints a telemetry JSONL stream (the full file contents, one snapshot
/// per line).
[[nodiscard]] std::vector<Finding> lint_telemetry_jsonl(
    const std::string& text);

/// Lints an OpenMetrics text exposition.
[[nodiscard]] std::vector<Finding> lint_openmetrics(const std::string& text);

}  // namespace cosparse::verify
