// cosparse-lint driver: runs every static pass over a run plan (or a run
// report) and aggregates the findings into one cosparse.lint_report/v1
// document. Nothing here executes the simulator — the passes reason about
// the plan's config, derived address regions, and decision tree alone.
#pragma once

#include <string>

#include "common/json.h"
#include "verify/findings.h"
#include "verify/plan.h"

namespace cosparse::verify {

// All four plan passes: config legality, address-map analysis,
// decision-tree analysis. (The report-schema pass applies to run reports,
// not plans; see lint_run_report_json.)
[[nodiscard]] LintReport lint_plan(const RunPlan& plan);

// Parses and lints a plan document. Structural errors (bad JSON shape,
// wrong schema) become findings rather than exceptions, so a CI gate
// always gets a report back.
[[nodiscard]] LintReport lint_plan_json(const Json& doc,
                                        const std::string& subject);

// Schema pass over a cosparse.run_report/v1 document.
[[nodiscard]] LintReport lint_run_report_json(const Json& doc,
                                              const std::string& subject);

}  // namespace cosparse::verify
