#include "verify/config_lint.h"

#include <algorithm>
#include <set>
#include <string>

namespace cosparse::verify {

namespace {

constexpr const char* kPass = "config";

bool is_pow2(std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

void emit(std::vector<Finding>& out, std::string id, Severity sev,
          std::string message, Location loc) {
  out.push_back(Finding{kPass, std::move(id), sev, std::move(message),
                        std::move(loc)});
}

}  // namespace

bool is_legal_pair(runtime::SwConfig sw, sim::HwConfig hw) {
  return (sw == runtime::SwConfig::kIP) == sim::is_shared(hw);
}

std::vector<Finding> lint_config(const RunPlan& plan) {
  std::vector<Finding> out;
  const sim::SystemConfig& cfg = plan.system;

  // ---- SW x HW pair legality (paper Fig. 2: four valid combinations) ----
  if (plan.sw.has_value() && plan.hw.has_value() &&
      !is_legal_pair(*plan.sw, *plan.hw)) {
    emit(out, "config.illegal-pair", Severity::kError,
         std::string("illegal configuration pair ") + to_string(*plan.sw) +
             "+" + sim::to_string(*plan.hw) +
             ": inner product requires a shared hierarchy (SC/SCS), outer "
             "product a private one (PC/PS)",
         Location::config_field("kernel.hw"));
  }
  if (!plan.sw.has_value() && plan.hw.has_value()) {
    emit(out, "config.hw-pinned-sw-auto", Severity::kWarning,
         std::string("hardware pinned to ") + sim::to_string(*plan.hw) +
             " while the dataflow is decided at runtime: the other dataflow "
             "would form an illegal pair",
         Location::config_field("kernel.hw"));
  }

  // ---- topology ----
  if (cfg.num_tiles == 0) {
    emit(out, "config.no-tiles", Severity::kError, "num_tiles is 0",
         Location::config_field("system.num_tiles"));
  }
  if (cfg.pes_per_tile == 0) {
    emit(out, "config.no-pes", Severity::kError, "pes_per_tile is 0",
         Location::config_field("system.pes_per_tile"));
  }
  if (cfg.freq_ghz <= 0.0) {
    emit(out, "config.bad-clock", Severity::kError,
         "freq_ghz must be positive",
         Location::config_field("system.freq_ghz"));
  }

  // ---- reconfigurable bank geometry (Table II "RCache") ----
  if (cfg.bank_bytes == 0) {
    emit(out, "config.bad-bank", Severity::kError, "bank_bytes is 0",
         Location::config_field("system.bank_bytes"));
  }
  if (cfg.line_bytes == 0) {
    emit(out, "config.bad-line", Severity::kError, "line_bytes is 0",
         Location::config_field("system.line_bytes"));
  }
  if (cfg.bank_bytes != 0 && cfg.line_bytes != 0) {
    if (cfg.line_bytes > cfg.bank_bytes) {
      emit(out, "config.line-exceeds-bank", Severity::kError,
           "line_bytes (" + std::to_string(cfg.line_bytes) +
               ") exceeds bank_bytes (" + std::to_string(cfg.bank_bytes) +
               ")",
           Location::config_field("system.line_bytes"));
    } else if (cfg.bank_bytes % cfg.line_bytes != 0) {
      emit(out, "config.bank-line-mismatch", Severity::kError,
           "bank_bytes is not a multiple of line_bytes",
           Location::config_field("system.bank_bytes"));
    }
    if (!is_pow2(cfg.line_bytes) || !is_pow2(cfg.bank_bytes)) {
      emit(out, "config.non-pow2-geometry", Severity::kWarning,
           "bank_bytes/line_bytes are not powers of two; set indexing "
           "assumes power-of-two geometry",
           Location::config_field("system.bank_bytes"));
    }
    if (cfg.associativity == 0) {
      emit(out, "config.bad-associativity", Severity::kError,
           "associativity is 0",
           Location::config_field("system.associativity"));
    } else if (cfg.line_bytes <= cfg.bank_bytes &&
               cfg.bank_bytes / (cfg.line_bytes * cfg.associativity) == 0) {
      emit(out, "config.bank-smaller-than-set", Severity::kError,
           "one bank (" + std::to_string(cfg.bank_bytes) +
               " B) cannot hold a single " +
               std::to_string(cfg.associativity) + "-way set of " +
               std::to_string(cfg.line_bytes) + " B lines",
           Location::config_field("system.associativity"));
    }
  }

  // ---- SCS bank split (L1 banks halved between cache and SPM) ----
  const bool scs_reachable =
      !plan.hw.has_value() || *plan.hw == sim::HwConfig::kSCS;
  if (scs_reachable && cfg.pes_per_tile > 0) {
    if (cfg.pes_per_tile / 2 == 0) {
      emit(out, "config.scs-no-spm", Severity::kError,
           "SCS splits each tile's L1 banks between cache and SPM, but a "
           "1-PE tile has no bank to give the SPM half",
           Location::config_field("system.pes_per_tile"));
    } else if (cfg.pes_per_tile % 2 != 0) {
      emit(out, "config.scs-odd-split", Severity::kWarning,
           "pes_per_tile is odd; the SCS cache/SPM split loses one bank",
           Location::config_field("system.pes_per_tile"));
    }
  }

  // ---- main memory ----
  if (cfg.dram_channels == 0) {
    emit(out, "config.no-dram-path", Severity::kError,
         "dram_channels is 0: no tile can reach main memory",
         Location::config_field("system.dram_channels"));
  }
  if (cfg.dram_latency_max < cfg.dram_latency_min) {
    emit(out, "config.dram-latency-inverted", Severity::kError,
         "dram_latency_max is below dram_latency_min",
         Location::config_field("system.dram_latency_max"));
  }

  // ---- RXBar topology ----
  if (cfg.xbar_latency < 0.0) {
    emit(out, "config.bad-xbar-latency", Severity::kError,
         "xbar_latency is negative",
         Location::config_field("system.xbar_latency"));
  }
  if (cfg.reconfig_cycles < 0.0) {
    emit(out, "config.bad-reconfig-cost", Severity::kError,
         "reconfig_cycles is negative",
         Location::config_field("system.reconfig_cycles"));
  }
  if (plan.xbar_tile_ports.has_value()) {
    std::set<std::uint32_t> ports;
    for (auto p : *plan.xbar_tile_ports) {
      if (p >= cfg.num_tiles) {
        emit(out, "config.unknown-tile-port", Severity::kError,
             "xbar port names tile " + std::to_string(p) +
                 " but the system has " + std::to_string(cfg.num_tiles) +
                 " tiles",
             Location::config_field("xbar.tile_ports"));
      } else if (!ports.insert(p).second) {
        emit(out, "config.duplicate-tile-port", Severity::kWarning,
             "tile " + std::to_string(p) + " listed twice in xbar.tile_ports",
             Location::config_field("xbar.tile_ports"));
      }
    }
    for (std::uint32_t t = 0; t < cfg.num_tiles; ++t) {
      if (ports.count(t) == 0) {
        emit(out, "config.tile-unreachable", Severity::kError,
             "tile " + std::to_string(t) +
                 " has no RXBar port: it cannot reach L2 or main memory",
             Location::config_field("xbar.tile_ports"));
      }
    }
  }

  // ---- unknown plan fields ----
  for (const auto& field : plan.unknown_fields) {
    emit(out, "config.unknown-field", Severity::kWarning,
         "plan field '" + field +
             "' is not understood and falls back to the default",
         Location::config_field(field));
  }
  return out;
}

}  // namespace cosparse::verify
