#include "verify/tree_lint.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "runtime/calibrate.h"
#include "verify/config_lint.h"

namespace cosparse::verify {

namespace {

constexpr const char* kPass = "decision_tree";

void emit(std::vector<Finding>& out, std::string id, Severity sev,
          std::string message, Location loc) {
  out.push_back(Finding{kPass, std::move(id), sev, std::move(message),
                        std::move(loc)});
}

std::string fmt(double v) {
  if (std::isinf(v)) return "inf";
  std::string s = std::to_string(v);
  // Trim trailing zeros for readability.
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.pop_back();
  return s;
}

void lint_thresholds(const RunPlan& plan, std::vector<Finding>& out) {
  const runtime::Thresholds& t = plan.thresholds;
  const sim::SystemConfig& cfg = plan.system;

  if (t.cvd_min > t.cvd_max) {
    emit(out, "tree.empty-clamp", Severity::kError,
         "cvd_min (" + fmt(t.cvd_min) + ") exceeds cvd_max (" +
             fmt(t.cvd_max) + "): the CVD clamp window is empty",
         Location::config_field("thresholds.cvd_min"));
  }
  if (t.cvd_min < 0.0 || t.cvd_max > 1.0) {
    emit(out, "tree.clamp-out-of-range", Severity::kWarning,
         "the CVD clamp window [" + fmt(t.cvd_min) + ", " + fmt(t.cvd_max) +
             "] reaches outside the density domain [0, 1]",
         Location::config_field("thresholds.cvd_max"));
  }
  if (t.scs_density < 0.0 || t.scs_density > 1.0) {
    emit(out, "tree.scs-out-of-range", Severity::kWarning,
         "scs_density " + fmt(t.scs_density) +
             " lies outside the density domain [0, 1]; one SCS/SC branch "
             "can never trigger",
         Location::config_field("thresholds.scs_density"));
  }
  if (t.ps_list_fraction <= 0.0) {
    emit(out, "tree.ps-budget-empty", Severity::kError,
         "ps_list_fraction " + fmt(t.ps_list_fraction) +
             " leaves no PS budget: the PC branch can never be chosen",
         Location::config_field("thresholds.ps_list_fraction"));
  } else if (t.ps_list_fraction > 1.0) {
    emit(out, "tree.ps-budget-exceeds-bank", Severity::kError,
         "ps_list_fraction " + fmt(t.ps_list_fraction) +
             " budgets more than one private L1 bank (" +
             std::to_string(cfg.bank_bytes) +
             " B) per PE — contradicting the physical capacity that "
             "runtime::calibrate and the PS kernel assume",
         Location::config_field("thresholds.ps_list_fraction"));
  }

  if (cfg.pes_per_tile > 0) {
    // The raw (unclamped) CVD model value; when the clamp binds, the
    // published coefficient is not what actually decides.
    double raw = t.cvd_coefficient / static_cast<double>(cfg.pes_per_tile);
    const double md = plan.matrix_density();
    if (md > 0.0) {
      raw *= std::pow(t.matrix_density_reference / md,
                      t.matrix_density_exponent);
    }
    if (t.cvd_min <= t.cvd_max && (raw < t.cvd_min || raw > t.cvd_max)) {
      emit(out, "tree.cvd-clamp-binds", Severity::kInfo,
           "the modeled CVD " + fmt(raw) + " is clamped to [" +
               fmt(t.cvd_min) + ", " + fmt(t.cvd_max) +
               "]; cvd_coefficient does not decide for this plan",
           Location::config_field("thresholds.cvd_coefficient"));
    }
    // Thresholds::cvd clamps with std::clamp, whose behavior is undefined
    // for an inverted window — only evaluate it when the window is sane.
    if (t.cvd_min > t.cvd_max) return;
    const double cvd = t.cvd(cfg.pes_per_tile, md);
    const runtime::CalibrationOptions calib;
    if (cvd < calib.density_lo || cvd > calib.density_hi) {
      emit(out, "tree.cvd-outside-calibration", Severity::kWarning,
           "the effective CVD " + fmt(cvd) +
               " lies outside runtime::calibrate's search bracket [" +
               fmt(calib.density_lo) + ", " + fmt(calib.density_hi) +
               "], so calibrate_cvd cannot reproduce or validate it",
           Location::config_field("thresholds.cvd_coefficient"));
    }
  }
}

}  // namespace

std::vector<Finding> lint_decision_tree(const RunPlan& plan) {
  std::vector<Finding> out;
  lint_thresholds(plan, out);

  if (plan.dataset.dimension == 0) {
    emit(out, "tree.no-dataset", Severity::kError,
         "dataset.vertices is 0: the density feature is undefined and the "
         "tree cannot be analyzed",
         Location::config_field("dataset.vertices"));
    return out;
  }

  if (!plan.tree.has_value() &&
      plan.thresholds.cvd_min > plan.thresholds.cvd_max) {
    // Deriving a tree evaluates Thresholds::cvd, which std::clamp's with
    // the inverted (undefined-behavior) window already reported above.
    return out;
  }
  const runtime::DecisionTreeSpec spec = plan.effective_tree();
  if (spec.rules.empty()) {
    emit(out, "tree.gap", Severity::kError,
         "the decision tree has no rules: no point of the feature space "
         "maps to a configuration",
         Location::tree_node("(root)"));
    return out;
  }

  // ---- per-rule checks ----
  // In a tree the linter derived itself, an empty branch is a property of
  // this dataset/threshold combination (e.g. the PS list always fits), not
  // a plan author's mistake — report it as info, not warning.
  const Severity unreachable_sev =
      plan.tree.has_value() ? Severity::kWarning : Severity::kInfo;
  for (const auto& r : spec.rules) {
    if (!is_legal_pair(r.sw, r.hw)) {
      emit(out, "tree.illegal-pair", Severity::kError,
           std::string("node '") + r.node + "' selects " + to_string(r.sw) +
               "+" + sim::to_string(r.hw) +
               ", which is outside the four valid combinations",
           Location::tree_node(r.node));
    }
    const double dlo = std::max(0.0, r.density.lo);
    const double dhi = std::min(1.0, r.density.hi);
    if (r.density.empty() || r.footprint.empty() || dlo >= dhi) {
      emit(out, "tree.unreachable-branch", unreachable_sev,
           std::string("node '") + r.node +
               "' covers no point of density [0, 1] x footprint [0, inf): "
               "the branch is unreachable",
           Location::tree_node(r.node));
    }
  }

  // ---- exhaustive interval partition of (density, footprint) ----
  // Axis-aligned rules make an elementary decomposition exact: one sample
  // per elementary cell decides the whole cell.
  std::set<double> dset{0.0, 1.0};
  std::set<double> fset{0.0};
  for (const auto& r : spec.rules) {
    for (double b : {r.density.lo, r.density.hi}) {
      if (b > 0.0 && b < 1.0) dset.insert(b);
    }
    for (double b : {r.footprint.lo, r.footprint.hi}) {
      if (b > 0.0 && !std::isinf(b)) fset.insert(b);
    }
  }
  const std::vector<double> dbp(dset.begin(), dset.end());
  std::vector<double> fsamples;
  {
    const std::vector<double> fbp(fset.begin(), fset.end());
    for (std::size_t i = 0; i + 1 < fbp.size(); ++i) {
      fsamples.push_back((fbp[i] + fbp[i + 1]) / 2.0);
    }
    fsamples.push_back(fbp.back() + 1.0);  // the unbounded top cell
  }

  std::set<std::string> emitted;  // dedupe identical gap/overlap messages
  const auto once = [&](std::string id, Severity sev, std::string message,
                        Location loc) {
    if (emitted.insert(id + "|" + message).second) {
      emit(out, std::move(id), sev, std::move(message), std::move(loc));
    }
  };
  for (double fp : fsamples) {
    for (std::size_t i = 0; i + 1 < dbp.size(); ++i) {
      const double d = (dbp[i] + dbp[i + 1]) / 2.0;
      std::vector<const runtime::TreeRule*> hits;
      for (const auto& r : spec.rules) {
        if (r.covers(d, fp)) hits.push_back(&r);
      }
      const std::string cell = "density [" + fmt(dbp[i]) + ", " +
                               fmt(dbp[i + 1]) + ") at footprint " + fmt(fp) +
                               " B";
      if (hits.empty()) {
        once("tree.gap", Severity::kError,
             "no rule covers " + cell + ": the runtime has no "
             "configuration to pick there",
             Location::tree_node("(gap)"));
      } else if (hits.size() > 1) {
        const bool same_config =
            std::all_of(hits.begin(), hits.end(),
                        [&](const runtime::TreeRule* r) {
                          return r->sw == hits[0]->sw && r->hw == hits[0]->hw;
                        });
        std::string nodes;
        for (const auto* h : hits) {
          if (!nodes.empty()) nodes += ", ";
          nodes += "'" + h->node + "'";
        }
        if (same_config) {
          once("tree.redundant-rules", Severity::kWarning,
               "rules " + nodes + " all cover " + cell +
                   " with the same configuration",
               Location::tree_node(hits[0]->node));
        } else {
          once("tree.overlap", Severity::kError,
               "rules " + nodes + " cover " + cell +
                   " with different configurations: the decision is "
                   "ambiguous",
               Location::tree_node(hits[1]->node));
        }
      }
    }
  }

  // ---- branches this dataset can never exercise ----
  const auto fp_actual = static_cast<double>(
      runtime::vector_footprint_bytes(plan.dataset.dimension));
  for (const auto& r : spec.rules) {
    const double dlo = std::max(0.0, r.density.lo);
    const double dhi = std::min(1.0, r.density.hi);
    if (r.density.empty() || r.footprint.empty() || dlo >= dhi) continue;
    if (!r.footprint.contains(fp_actual)) {
      emit(out, "tree.not-exercised", Severity::kInfo,
           std::string("node '") + r.node +
               "' requires a vector footprint in [" + fmt(r.footprint.lo) +
               ", " + fmt(r.footprint.hi) + ") B but this dataset's is " +
               fmt(fp_actual) + " B; the branch cannot trigger here",
           Location::tree_node(r.node));
    }
  }

  return out;
}

}  // namespace cosparse::verify
