#include "verify/serve_lint.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>

#include "sparse/datasets.h"
#include "sparse/formats.h"

namespace cosparse::verify {

namespace {

constexpr const char* kPass = "serve_config";
constexpr const char* kSchema = "cosparse.serve_config/v1";

void emit(std::vector<Finding>& out, std::string id, Severity sev,
          std::string message, std::string path) {
  out.push_back(Finding{kPass, std::move(id), sev, std::move(message),
                        Location::config_field(std::move(path))});
}

bool is_uint(const Json& v) {
  return v.type() == Json::Type::kInt && v.as_int() >= 0;
}

/// Requires a non-negative integer field; emits on mismatch. Returns the
/// value (or fallback when bad) so range checks can continue.
std::uint64_t expect_uint(const Json& v, const std::string& path,
                          std::vector<Finding>& out,
                          std::uint64_t fallback = 1) {
  if (!is_uint(v)) {
    emit(out, "serve.bad-type", Severity::kError,
         path + " must be a non-negative integer", path);
    return fallback;
  }
  return static_cast<std::uint64_t>(v.as_int());
}

bool known_dataset(const std::string& name) {
  const auto& specs = sparse::DatasetRegistry::specs();
  return std::any_of(
      specs.begin(), specs.end(),
      [&](const sparse::DatasetSpec& s) { return s.name == name; });
}

/// Mirror of MatrixCache::graph_bytes over the scaled spec (the virtual
/// cost model uses the identical formula).
std::uint64_t dataset_bytes(const sparse::DatasetSpec& spec,
                            std::uint64_t scale) {
  const std::uint64_t v = std::max<std::uint64_t>(1, spec.vertices / scale);
  const std::uint64_t e = std::max<std::uint64_t>(1, spec.edges / scale);
  return e * sizeof(sparse::Triplet) + v * sizeof(Index);
}

void lint_traffic(const Json& traffic, std::vector<Finding>& out,
                  std::uint64_t scale, const Json* budget) {
  if (!traffic.is_object()) {
    emit(out, "serve.bad-type", Severity::kError,
         "traffic must be an object", "traffic");
    return;
  }
  static const std::set<std::string> kKnown = {
      "arrival",        "request_interval_us", "request_total_cnt",
      "burst_factor",   "burst_fraction",      "burst_period_us",
      "seed",           "datasets",            "algos",
      "tenants"};
  std::string arrival = "poisson";
  for (const auto& [key, value] : traffic.members()) {
    const std::string path = "traffic." + key;
    if (kKnown.find(key) == kKnown.end()) {
      emit(out, "serve.unknown-field", Severity::kError,
           "unknown traffic field '" + key + "'", path);
      continue;
    }
    if (key == "arrival") {
      if (!value.is_string()) {
        emit(out, "serve.bad-type", Severity::kError,
             "traffic.arrival must be a string", path);
      } else if (value.as_string() != "poisson" &&
                 value.as_string() != "bursty") {
        emit(out, "serve.bad-value", Severity::kError,
             "traffic.arrival must be \"poisson\" or \"bursty\", got '" +
                 value.as_string() + "'",
             path);
      } else {
        arrival = value.as_string();
      }
    } else if (key == "request_interval_us" || key == "burst_period_us") {
      if (expect_uint(value, path, out) == 0)
        emit(out, "serve.bad-value", Severity::kError, path + " must be >= 1",
             path);
    } else if (key == "request_total_cnt" || key == "tenants") {
      if (expect_uint(value, path, out) == 0)
        emit(out, "serve.bad-value", Severity::kError, path + " must be >= 1",
             path);
    } else if (key == "seed") {
      expect_uint(value, path, out);
    } else if (key == "burst_factor") {
      if (!value.is_number()) {
        emit(out, "serve.bad-type", Severity::kError,
             path + " must be a number", path);
      } else if (value.as_double() < 1.0) {
        emit(out, "serve.bad-value", Severity::kError, path + " must be >= 1",
             path);
      }
    } else if (key == "burst_fraction") {
      if (!value.is_number()) {
        emit(out, "serve.bad-type", Severity::kError,
             path + " must be a number", path);
      } else if (value.as_double() <= 0.0 || value.as_double() >= 1.0) {
        emit(out, "serve.bad-value", Severity::kError,
             path + " must be in (0, 1)", path);
      }
    } else if (key == "datasets") {
      if (!value.is_array() || value.items().empty()) {
        emit(out, "serve.bad-value", Severity::kError,
             "traffic.datasets must be a non-empty array of dataset names",
             path);
        continue;
      }
      std::uint64_t largest = 0;
      for (const Json& item : value.items()) {
        if (!item.is_string()) {
          emit(out, "serve.bad-type", Severity::kError,
               "traffic.datasets entries must be strings", path);
          continue;
        }
        if (!known_dataset(item.as_string())) {
          emit(out, "serve.unknown-dataset", Severity::kError,
               "dataset '" + item.as_string() +
                   "' is not in the Table III registry (every request on "
                   "it would error at admission)",
               path);
          continue;
        }
        largest = std::max(
            largest,
            dataset_bytes(sparse::DatasetRegistry::spec(item.as_string()),
                          scale));
      }
      if (budget != nullptr && is_uint(*budget) && largest > 0 &&
          static_cast<std::uint64_t>(budget->as_int()) < largest) {
        emit(out, "serve.budget-below-dataset", Severity::kWarning,
             "cache_budget_bytes (" + std::to_string(budget->as_int()) +
                 ") is below the largest requested dataset (" +
                 std::to_string(largest) +
                 " bytes at this scale): every load of it runs over budget",
             "cache_budget_bytes");
      }
    } else if (key == "algos") {
      if (!value.is_array() || value.items().empty()) {
        emit(out, "serve.bad-value", Severity::kError,
             "traffic.algos must be a non-empty array of algorithm names",
             path);
        continue;
      }
      for (const Json& item : value.items()) {
        if (!item.is_string() ||
            (item.as_string() != "bfs" && item.as_string() != "sssp" &&
             item.as_string() != "pagerank" && item.as_string() != "cf")) {
          emit(out, "serve.bad-value", Severity::kError,
               "traffic.algos entries must be one of bfs/sssp/pagerank/cf",
               path);
        }
      }
    }
  }
  // Burst knobs on a poisson trace are ignored; call that out so a config
  // that meant to be bursty does not silently test the wrong thing.
  if (arrival == "poisson" &&
      (traffic.find("burst_factor") != nullptr ||
       traffic.find("burst_fraction") != nullptr ||
       traffic.find("burst_period_us") != nullptr)) {
    emit(out, "serve.unused-burst-knobs", Severity::kWarning,
         "burst_* fields have no effect when traffic.arrival is \"poisson\"",
         "traffic.arrival");
  }
}

}  // namespace

std::vector<Finding> lint_serve_config(const Json& doc) {
  std::vector<Finding> out;
  if (!doc.is_object()) {
    emit(out, "serve.bad-document", Severity::kError,
         "serve config is not a JSON object", "(root)");
    return out;
  }
  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    emit(out, "serve.missing-schema", Severity::kError,
         std::string("missing schema (expected \"") + kSchema + "\")",
         "schema");
  } else if (schema->as_string() != kSchema) {
    emit(out, "serve.wrong-schema", Severity::kError,
         "unexpected schema '" + schema->as_string() + "' (expected \"" +
             kSchema + "\")",
         "schema");
    return out;
  }

  static const std::set<std::string> kKnown = {
      "schema",        "scheduler_type", "max_active_reqs",
      "max_batch_size", "virtual_workers", "cache_budget_bytes",
      "exec_mode",     "system",         "scale",
      "dataset_seed",  "traffic"};
  std::uint64_t max_active = 64;
  std::uint64_t max_batch = 8;
  std::uint64_t scale = 64;
  for (const auto& [key, value] : doc.members()) {
    if (kKnown.find(key) == kKnown.end()) {
      emit(out, "serve.unknown-field", Severity::kError,
           "unknown serve_config field '" + key + "'", key);
      continue;
    }
    if (key == "scheduler_type") {
      if (!value.is_string() || (value.as_string() != "fcfs" &&
                                 value.as_string() != "same-dataset-batch")) {
        emit(out, "serve.bad-value", Severity::kError,
             "scheduler_type must be \"fcfs\" or \"same-dataset-batch\"",
             key);
      }
    } else if (key == "exec_mode") {
      if (!value.is_string() || (value.as_string() != "sim" &&
                                 value.as_string() != "native")) {
        emit(out, "serve.bad-value", Severity::kError,
             "exec_mode must be \"sim\" or \"native\"", key);
      }
    } else if (key == "system") {
      if (!value.is_string() ||
          value.as_string().find('x') == std::string::npos) {
        emit(out, "serve.bad-value", Severity::kError,
             "system must be an AxB spec like \"8x8\"", key);
      }
    } else if (key == "max_active_reqs") {
      max_active = expect_uint(value, key, out);
      if (max_active == 0)
        emit(out, "serve.bad-value", Severity::kError,
             "max_active_reqs must be >= 1", key);
    } else if (key == "max_batch_size") {
      max_batch = expect_uint(value, key, out);
      if (max_batch == 0)
        emit(out, "serve.bad-value", Severity::kError,
             "max_batch_size must be >= 1", key);
    } else if (key == "virtual_workers" || key == "scale") {
      const std::uint64_t v = expect_uint(value, key, out);
      if (v == 0)
        emit(out, "serve.bad-value", Severity::kError, key + " must be >= 1",
             key);
      if (key == "scale" && v > 0) scale = v;
    } else if (key == "cache_budget_bytes" || key == "dataset_seed") {
      expect_uint(value, key, out);
    }
  }
  if (max_batch > max_active) {
    emit(out, "serve.batch-exceeds-active", Severity::kWarning,
         "max_batch_size (" + std::to_string(max_batch) +
             ") exceeds max_active_reqs (" + std::to_string(max_active) +
             "): admission control caps every batch below its size",
         "max_batch_size");
  }
  if (const Json* traffic = doc.find("traffic"); traffic != nullptr)
    lint_traffic(*traffic, out, scale, doc.find("cache_budget_bytes"));
  return out;
}

LintReport lint_serve_config_json(const Json& doc,
                                  const std::string& subject) {
  LintReport report(subject);
  report.add(lint_serve_config(doc));
  report.sort_by_severity();
  return report;
}

}  // namespace cosparse::verify
