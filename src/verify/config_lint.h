// Pass 1: configuration legality.
//
// Rejects SW × HW pairs outside the paper's four valid combinations
// (IP runs shared — SC or SCS; OP runs private — PC or PS), topology and
// bank-geometry mismatches (zero tiles/PEs, banks smaller than one cache
// set, lines larger than banks, an SCS split with no SPM bank to give),
// and RXBar port lists that leave tiles unreachable. Also surfaces plan
// fields nobody understands (typos would otherwise silently fall back to
// defaults).
#pragma once

#include <vector>

#include "verify/findings.h"
#include "verify/plan.h"

namespace cosparse::verify {

/// True for the four combinations of paper Fig. 2.
[[nodiscard]] bool is_legal_pair(runtime::SwConfig sw, sim::HwConfig hw);

[[nodiscard]] std::vector<Finding> lint_config(const RunPlan& plan);

}  // namespace cosparse::verify
