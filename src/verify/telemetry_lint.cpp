#include "verify/telemetry_lint.h"

#include <cctype>
#include <sstream>

#include "common/error.h"
#include "obs/telemetry.h"

namespace cosparse::verify {

namespace {

constexpr const char* kPass = "telemetry";

void emit(std::vector<Finding>& out, std::string id, Severity sev,
          std::string message, std::string path) {
  out.push_back(Finding{kPass, std::move(id), sev, std::move(message),
                        Location::document(std::move(path))});
}

/// Digest invariants shared by section and JSONL hists: count/sum present
/// and the quantile ladder monotone (p50 <= p90 <= p99 <= p999 <= max).
void lint_hist_object(const Json& hist, const std::string& path,
                      std::vector<Finding>& out) {
  if (!hist.is_object()) {
    emit(out, "telemetry.bad-section", Severity::kError,
         "hist is not an object", path);
    return;
  }
  for (const auto& [name, digest] : hist.members()) {
    const std::string dpath = path + "." + name;
    bool complete = true;
    for (const char* key :
         {"count", "sum", "min", "max", "p50", "p90", "p99", "p999"}) {
      const Json* v = digest.find(key);
      if (v == nullptr || !v->is_number()) {
        emit(out, "telemetry.missing-field", Severity::kError,
             std::string("histogram digest missing number field: ") + key,
             dpath + "." + key);
        complete = false;
      }
    }
    if (!complete) continue;
    const double p50 = digest.find("p50")->as_double();
    const double p90 = digest.find("p90")->as_double();
    const double p99 = digest.find("p99")->as_double();
    const double p999 = digest.find("p999")->as_double();
    const double mx = digest.find("max")->as_double();
    if (!(p50 <= p90 && p90 <= p99 && p99 <= p999 && p999 <= mx)) {
      emit(out, "telemetry.quantile-order", Severity::kError,
           "histogram quantiles are not monotone: " + name, dpath);
    }
    if (digest.find("count")->as_double() < 0.0) {
      emit(out, "telemetry.bad-value", Severity::kError,
           "histogram count is negative: " + name, dpath + ".count");
    }
  }
}

void lint_snapshot(const Json& snap, const std::string& path,
                   std::vector<Finding>& out) {
  const Json* schema = snap.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    emit(out, "telemetry.missing-field", Severity::kError,
         "snapshot missing string field: schema", path + ".schema");
  } else if (schema->as_string() != obs::kTelemetrySchema) {
    emit(out, "telemetry.bad-schema", Severity::kError,
         "unexpected snapshot schema: " + schema->as_string(),
         path + ".schema");
  }
  for (const char* key : {"seq", "wall_ms", "iterations"}) {
    const Json* v = snap.find(key);
    if (v == nullptr || !v->is_number()) {
      emit(out, "telemetry.missing-field", Severity::kError,
           std::string("snapshot missing number field: ") + key,
           path + "." + std::string(key));
    }
  }
  const Json* header = snap.find("header");
  if (header == nullptr || !header->is_object()) {
    emit(out, "telemetry.missing-field", Severity::kError,
         "snapshot missing object field: header", path + ".header");
  } else {
    // Self-describing-stream contract (ISSUE satellite 6): every snapshot
    // names its producing tool and the resolved sim-thread count.
    for (const char* key : {"tool", "sim_threads"}) {
      if (header->find(key) == nullptr) {
        emit(out, "telemetry.missing-header", Severity::kWarning,
             std::string("snapshot header missing field: ") + key,
             path + ".header." + key);
      }
    }
  }
  if (const Json* hist = snap.find("hist"); hist != nullptr) {
    lint_hist_object(*hist, path + ".hist", out);
  } else {
    emit(out, "telemetry.missing-field", Severity::kError,
         "snapshot missing object field: hist", path + ".hist");
  }
}

}  // namespace

std::vector<Finding> lint_telemetry_section(const Json& doc) {
  std::vector<Finding> out;
  const Json* tel = doc.find("telemetry");
  if (tel == nullptr) return out;  // telemetry is opt-in
  if (!tel->is_object()) {
    emit(out, "telemetry.bad-section", Severity::kError,
         "telemetry is not an object", "telemetry");
    return out;
  }
  const Json* schema = tel->find("schema");
  if (schema == nullptr || !schema->is_string()) {
    emit(out, "telemetry.missing-field", Severity::kError,
         "telemetry missing string field: schema", "telemetry.schema");
  } else if (schema->as_string() != obs::kTelemetrySchema) {
    emit(out, "telemetry.bad-schema", Severity::kError,
         "unexpected telemetry schema: " + schema->as_string(),
         "telemetry.schema");
  }
  const Json* snaps = tel->find("snapshots");
  if (snaps == nullptr || !snaps->is_number()) {
    emit(out, "telemetry.missing-field", Severity::kError,
         "telemetry missing number field: snapshots", "telemetry.snapshots");
  }
  if (const Json* hist = tel->find("hist"); hist != nullptr) {
    lint_hist_object(*hist, "telemetry.hist", out);
  } else {
    emit(out, "telemetry.missing-field", Severity::kError,
         "telemetry missing object field: hist", "telemetry.hist");
  }
  if (const Json* slo = tel->find("slo"); slo != nullptr) {
    if (!slo->is_object() || slo->find("rules") == nullptr ||
        !slo->find("rules")->is_array() ||
        slo->find("violations") == nullptr ||
        !slo->find("violations")->is_array()) {
      emit(out, "telemetry.bad-section", Severity::kError,
           "telemetry.slo must carry rules and violations arrays",
           "telemetry.slo");
    }
  }
  return out;
}

std::vector<Finding> lint_telemetry_jsonl(const std::string& text) {
  std::vector<Finding> out;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  std::size_t snapshots = 0;
  std::int64_t last_seq = -1;
  double last_wall_ms = -1.0;
  double last_iterations = -1.0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string path = "line[" + std::to_string(line_no) + "]";
    Json snap;
    try {
      snap = Json::parse(line);
    } catch (const Error& e) {
      emit(out, "telemetry.bad-json", Severity::kError,
           std::string("unparseable JSONL line: ") + e.what(), path);
      continue;
    }
    ++snapshots;
    lint_snapshot(snap, path, out);
    // Monotonicity across the stream: strictly increasing seq, monotone
    // wall clock and iteration progress.
    const Json* seq = snap.find("seq");
    if (seq != nullptr && seq->is_number()) {
      if (seq->as_int() <= last_seq) {
        emit(out, "telemetry.seq-not-increasing", Severity::kError,
             "snapshot seq does not strictly increase", path + ".seq");
      }
      last_seq = seq->as_int();
    }
    const Json* wall = snap.find("wall_ms");
    if (wall != nullptr && wall->is_number()) {
      if (wall->as_double() < last_wall_ms) {
        emit(out, "telemetry.time-regression", Severity::kError,
             "snapshot wall_ms regresses", path + ".wall_ms");
      }
      last_wall_ms = wall->as_double();
    }
    const Json* iters = snap.find("iterations");
    if (iters != nullptr && iters->is_number()) {
      if (iters->as_double() < last_iterations) {
        emit(out, "telemetry.progress-regression", Severity::kError,
             "snapshot iterations regress", path + ".iterations");
      }
      last_iterations = iters->as_double();
    }
  }
  if (snapshots == 0) {
    emit(out, "telemetry.empty-stream", Severity::kError,
         "telemetry JSONL stream holds no snapshots", "(root)");
  }
  return out;
}

std::vector<Finding> lint_openmetrics(const std::string& text) {
  std::vector<Finding> out;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_eof = false;
  bool saw_sample = false;
  const auto name_ok = [](const std::string& name) {
    if (name.empty()) return false;
    for (const char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      if (!ok) return false;
    }
    return !(name[0] >= '0' && name[0] <= '9');
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::string path = "line[" + std::to_string(line_no) + "]";
    if (line.empty()) continue;
    if (saw_eof) {
      emit(out, "openmetrics.text-after-eof", Severity::kError,
           "content after the # EOF terminator", path);
      break;
    }
    if (line[0] == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      std::istringstream comment(line);
      std::string hash, kind, name, type;
      comment >> hash >> kind >> name >> type;
      if (kind == "TYPE") {
        if (!name_ok(name)) {
          emit(out, "openmetrics.bad-name", Severity::kError,
               "TYPE names an invalid metric: " + name, path);
        }
        if (type != "counter" && type != "gauge" && type != "summary" &&
            type != "histogram" && type != "info" && type != "unknown") {
          emit(out, "openmetrics.bad-type", Severity::kError,
               "unknown metric type: " + type, path);
        }
      }
      continue;
    }
    // Sample line: <name>[{labels}] <value>
    saw_sample = true;
    std::string name = line.substr(0, line.find_first_of("{ "));
    if (!name_ok(name)) {
      emit(out, "openmetrics.bad-name", Severity::kError,
           "sample has an invalid metric name: " + name, path);
      continue;
    }
    const std::size_t sp = line.find_last_of(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) {
      emit(out, "openmetrics.bad-sample", Severity::kError,
           "sample line carries no value", path);
      continue;
    }
    const std::string value = line.substr(sp + 1);
    std::size_t used = 0;
    bool numeric = true;
    try {
      (void)std::stod(value, &used);
    } catch (const std::exception&) {
      numeric = false;
    }
    if (!numeric || used != value.size()) {
      emit(out, "openmetrics.bad-value", Severity::kError,
           "sample value is not a number: " + value, path);
    }
  }
  if (!saw_eof) {
    emit(out, "openmetrics.missing-eof", Severity::kError,
         "exposition does not end with # EOF", "(root)");
  }
  if (!saw_sample) {
    emit(out, "openmetrics.empty", Severity::kWarning,
         "exposition carries no samples", "(root)");
  }
  return out;
}

}  // namespace cosparse::verify
