// Run plans (cosparse.run_plan/v1): everything cosparse-lint needs to
// verify a run before executing it.
//
// A plan is a small JSON document naming the machine configuration, the
// dataset shape, the kernel choice (pinned or "auto") and, optionally,
// explicit threshold overrides, a hand-written decision tree, explicit
// allocation regions and an RXBar port list. Absent sections default to
// what the runtime would do: SystemConfig defaults, thresholds from
// runtime::Thresholds{}, regions derived via kernels::plan_*_regions and
// the tree derived via runtime::export_decision_tree. Examples ship their
// default plans under examples/plans/ and CI lints every one of them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "kernels/region_plan.h"
#include "runtime/decision.h"
#include "runtime/tree_export.h"
#include "sim/config.h"

namespace cosparse::verify {

inline constexpr std::string_view kRunPlanSchema = "cosparse.run_plan/v1";

struct RunPlan {
  std::string name = "unnamed";
  sim::SystemConfig system;
  /// Tiles wired to an RXBar port. Absent = full crossbar (all tiles).
  std::optional<std::vector<std::uint32_t>> xbar_tile_ports;

  kernels::PlanShape dataset;
  [[nodiscard]] double matrix_density() const;

  /// Pinned dataflow / memory configuration; nullopt = decided at runtime.
  std::optional<runtime::SwConfig> sw;
  std::optional<sim::HwConfig> hw;
  bool vblocked = true;

  runtime::Thresholds thresholds;
  /// Hand-written decision tree; absent = derived from the thresholds.
  std::optional<runtime::DecisionTreeSpec> tree;
  /// Explicit allocation regions; absent = derived from the dataset shape.
  std::optional<std::vector<kernels::PlannedRegion>> regions;

  /// Field names present in the document but understood by nobody —
  /// collected during parsing, reported by the config pass.
  std::vector<std::string> unknown_fields;

  /// Throws cosparse::Error on structurally malformed documents (wrong
  /// types, unknown enum names). Unknown *fields* are tolerated and
  /// collected instead, so a typo'd threshold becomes a lint finding
  /// rather than a hard failure.
  static RunPlan from_json(const Json& doc);
  [[nodiscard]] Json to_json() const;

  /// The decision tree to analyze: the explicit one when present,
  /// otherwise derived for this plan's system/thresholds/dataset.
  [[nodiscard]] runtime::DecisionTreeSpec effective_tree() const;

  /// The regions to analyze: explicit when present, otherwise the union
  /// of what the planned kernels would allocate (both dataflows when the
  /// software configuration is "auto").
  [[nodiscard]] std::vector<kernels::PlannedRegion> effective_regions() const;
};

}  // namespace cosparse::verify
