// Pass 3: decision-tree analysis.
//
// Operates on the analyzable tree form (runtime/tree_export.h) — derived
// from the plan's thresholds or hand-written in the plan. Because every
// rule is an axis-aligned box over (density, footprint), an elementary-
// interval decomposition is exhaustive: collect all rule boundaries on
// each axis, and sampling one midpoint per elementary cell decides
// coverage for the *whole* cell. The pass proves that every point of
// density [0,1] x footprint [0,inf) maps to exactly one configuration
// (gaps and overlaps are errors), flags unreachable branches (empty
// boxes, or boxes outside the feature domain), rejects rules whose
// (SW, HW) pair is illegal, and cross-checks the thresholds against the
// capacity constants runtime::calibrate assumes (a PS budget beyond the
// physical bank, a CVD clamp window that is empty or outside the
// calibration search bracket).
#pragma once

#include <vector>

#include "verify/findings.h"
#include "verify/plan.h"

namespace cosparse::verify {

[[nodiscard]] std::vector<Finding> lint_decision_tree(const RunPlan& plan);

}  // namespace cosparse::verify
