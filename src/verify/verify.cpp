#include "verify/verify.h"

#include "common/error.h"
#include "verify/address_lint.h"
#include "verify/config_lint.h"
#include "verify/schema_lint.h"
#include "verify/tree_lint.h"

namespace cosparse::verify {

LintReport lint_plan(const RunPlan& plan) {
  LintReport report(plan.name);
  report.add(lint_config(plan));
  report.add(lint_address_map(plan));
  report.add(lint_decision_tree(plan));
  report.sort_by_severity();
  return report;
}

LintReport lint_plan_json(const Json& doc, const std::string& subject) {
  RunPlan plan;
  try {
    plan = RunPlan::from_json(doc);
  } catch (const Error& e) {
    LintReport report(subject);
    report.add(Finding{"plan", "plan.malformed", Severity::kError, e.what(),
                       Location::document("(root)")});
    return report;
  }
  if (plan.name.empty() || plan.name == "unnamed") plan.name = subject;
  return lint_plan(plan);
}

LintReport lint_run_report_json(const Json& doc, const std::string& subject) {
  LintReport report(subject);
  report.add(lint_run_report(doc));
  report.sort_by_severity();
  return report;
}

}  // namespace cosparse::verify
