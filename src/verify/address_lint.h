// Pass 2: address-map analysis.
//
// Checks the plan's allocation regions — explicit, or derived from the
// dataset shape via kernels::plan_*_regions — without simulating:
//   * zero-sized regions (AddressMap::of rejects them at run time; the
//     lint catches them before that);
//   * overlap between explicitly placed regions, and placement that is
//     not cache-line aligned;
//   * SPM capacity per tile/PE under each reachable configuration of
//     SC/SCS/PC/PS (overflow is an error unless the kernel tolerates
//     spill for that region, like the OP heap);
//   * bank-conflict hazards: per-PE partition strides that map every PE
//     onto the same L1 bank under the shared configurations;
//   * label hygiene for the canonical "matrix.*"/"vector.*"/"output.*"/
//     "op.*" scheme the memory profiler attributes by.
#pragma once

#include <vector>

#include "verify/findings.h"
#include "verify/plan.h"

namespace cosparse::verify {

[[nodiscard]] std::vector<Finding> lint_address_map(const RunPlan& plan);

}  // namespace cosparse::verify
