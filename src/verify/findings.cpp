#include "verify/findings.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::verify {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

Severity severity_from_string(std::string_view s) {
  if (s == "info") return Severity::kInfo;
  if (s == "warning") return Severity::kWarning;
  if (s == "error") return Severity::kError;
  throw Error("unknown severity '" + std::string(s) +
              "' (expected info, warning or error)");
}

Json Finding::to_json() const {
  Json o = Json::object();
  o["pass"] = pass;
  o["id"] = id;
  o["severity"] = to_string(severity);
  o["message"] = message;
  Json loc = Json::object();
  loc["kind"] = location.kind;
  loc["name"] = location.name;
  o["location"] = std::move(loc);
  if (suppressed) o["suppressed"] = true;
  return o;
}

Finding finding_from_json(const Json& j) {
  COSPARSE_REQUIRE(j.is_object(), "finding must be a JSON object");
  const auto need = [&](const char* key) -> const Json& {
    const Json* v = j.find(key);
    COSPARSE_REQUIRE(v != nullptr,
                     std::string("finding missing field: ") + key);
    return *v;
  };
  Finding f;
  f.pass = need("pass").as_string();
  f.id = need("id").as_string();
  f.severity = severity_from_string(need("severity").as_string());
  f.message = need("message").as_string();
  const Json& loc = need("location");
  COSPARSE_REQUIRE(loc.is_object(), "finding location must be an object");
  f.location.kind = loc.find("kind") != nullptr
                        ? loc.find("kind")->as_string()
                        : std::string("document");
  f.location.name =
      loc.find("name") != nullptr ? loc.find("name")->as_string() : "";
  const Json* sup = j.find("suppressed");
  f.suppressed = sup != nullptr && sup->as_bool();
  return f;
}

void LintReport::add(std::vector<Finding> fs) {
  for (auto& f : fs) findings_.push_back(std::move(f));
}

void LintReport::emit(std::string pass, std::string id, Severity sev,
                      std::string message, Location loc) {
  findings_.push_back(Finding{std::move(pass), std::move(id), sev,
                              std::move(message), std::move(loc)});
}

std::size_t LintReport::count(Severity s) const {
  return static_cast<std::size_t>(std::count_if(
      findings_.begin(), findings_.end(), [s](const Finding& f) {
        return f.severity == s && !f.suppressed;
      }));
}

std::size_t LintReport::suppressed_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings_.begin(), findings_.end(),
                    [](const Finding& f) { return f.suppressed; }));
}

void LintReport::sort_by_severity() {
  std::stable_sort(findings_.begin(), findings_.end(),
                   [](const Finding& a, const Finding& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
}

Json LintReport::to_json() const {
  Json o = Json::object();
  o["schema"] = kLintReportSchema;
  o["subject"] = subject_;
  Json arr = Json::array();
  for (const auto& f : findings_) arr.push_back(f.to_json());
  o["findings"] = std::move(arr);
  Json summary = Json::object();
  summary["errors"] = count(Severity::kError);
  summary["warnings"] = count(Severity::kWarning);
  summary["infos"] = count(Severity::kInfo);
  summary["suppressed"] = suppressed_count();
  o["summary"] = std::move(summary);
  return o;
}

Json lint_findings_json(std::string_view subcommand,
                        const std::vector<LintReport>& reports) {
  Json o = Json::object();
  o["schema"] = kLintFindingsSchema;
  o["tool"] = "cosparse-lint";
  o["subcommand"] = std::string(subcommand);
  Json subjects = Json::array();
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  std::size_t suppressed = 0;
  for (const LintReport& r : reports) {
    Json s = Json::object();
    s["subject"] = r.subject();
    Json arr = Json::array();
    for (const Finding& f : r.findings()) arr.push_back(f.to_json());
    s["findings"] = std::move(arr);
    Json sum = Json::object();
    sum["errors"] = r.count(Severity::kError);
    sum["warnings"] = r.count(Severity::kWarning);
    sum["infos"] = r.count(Severity::kInfo);
    sum["suppressed"] = r.suppressed_count();
    s["summary"] = std::move(sum);
    subjects.push_back(std::move(s));
    errors += r.count(Severity::kError);
    warnings += r.count(Severity::kWarning);
    infos += r.count(Severity::kInfo);
    suppressed += r.suppressed_count();
  }
  o["subjects"] = std::move(subjects);
  Json total = Json::object();
  total["errors"] = errors;
  total["warnings"] = warnings;
  total["infos"] = infos;
  total["suppressed"] = suppressed;
  o["summary"] = std::move(total);
  return o;
}

}  // namespace cosparse::verify
