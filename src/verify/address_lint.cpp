#include "verify/address_lint.h"

#include <algorithm>
#include <set>
#include <string>

namespace cosparse::verify {

namespace {

constexpr const char* kPass = "address_map";

void emit(std::vector<Finding>& out, std::string id, Severity sev,
          std::string message, std::string region_label) {
  out.push_back(Finding{kPass, std::move(id), sev, std::move(message),
                        Location::region(std::move(region_label))});
}

bool has_canonical_prefix(const std::string& label) {
  for (const char* prefix : {"matrix.", "vector.", "output.", "op."}) {
    if (label.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::uint64_t instances(const kernels::PlannedRegion& r,
                        const sim::SystemConfig& cfg) {
  switch (r.scope) {
    case kernels::RegionScope::kGlobal: return 1;
    case kernels::RegionScope::kPerTile: return cfg.num_tiles;
    case kernels::RegionScope::kPerPe: return cfg.num_pes();
  }
  return 1;
}

}  // namespace

std::vector<Finding> lint_address_map(const RunPlan& plan) {
  std::vector<Finding> out;
  const sim::SystemConfig& cfg = plan.system;
  const auto regions = plan.effective_regions();
  const std::size_t line = std::max<std::uint32_t>(1, cfg.line_bytes);

  // ---- per-region hygiene ----
  std::set<std::string> seen;
  for (const auto& r : regions) {
    if (r.label.empty()) {
      emit(out, "address.unlabeled", Severity::kError,
           "region has no label; labels are mandatory (the profiler "
           "attributes traffic by them)",
           "(unlabeled)");
    } else if (!has_canonical_prefix(r.label)) {
      emit(out, "address.unknown-label", Severity::kWarning,
           "label '" + r.label +
               "' is outside the canonical matrix./vector./output./op. "
               "scheme and will land in the profiler's catch-all bucket",
           r.label);
    }
    if (!r.label.empty() && !seen.insert(r.label).second) {
      emit(out, "address.duplicate-label", Severity::kWarning,
           "label '" + r.label + "' names more than one region", r.label);
    }
    if (r.bytes == 0) {
      emit(out, "address.zero-region", Severity::kError,
           "region '" + r.label +
               "' is zero-sized; AddressMap::of rejects empty regions "
               "(a zero-byte mapping would alias its neighbour)",
           r.label);
    }
  }

  // ---- placement: overlap and alignment of pinned regions ----
  struct Placed {
    const kernels::PlannedRegion* region;
    Addr begin;
    Addr end;
  };
  std::vector<Placed> placed;
  for (const auto& r : regions) {
    if (!r.base.has_value() || r.bytes == 0) continue;
    if (*r.base % line != 0) {
      emit(out, "address.misaligned", Severity::kWarning,
           "region '" + r.label + "' base " + std::to_string(*r.base) +
               " is not aligned to the " + std::to_string(line) +
               " B line size",
           r.label);
    }
    const std::uint64_t extent =
        static_cast<std::uint64_t>(r.bytes) * instances(r, cfg);
    placed.push_back(Placed{&r, *r.base, *r.base + extent});
  }
  std::sort(placed.begin(), placed.end(),
            [](const Placed& a, const Placed& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < placed.size(); ++i) {
    const Placed& prev = placed[i - 1];
    const Placed& cur = placed[i];
    if (cur.begin < prev.end) {
      emit(out, "address.overlap", Severity::kError,
           "region '" + cur.region->label + "' [" +
               std::to_string(cur.begin) + ", " + std::to_string(cur.end) +
               ") overlaps region '" + prev.region->label + "' [" +
               std::to_string(prev.begin) + ", " +
               std::to_string(prev.end) + ")",
           cur.region->label);
    }
  }

  // ---- SPM capacity under each reachable configuration ----
  const bool scs_reachable =
      (!plan.sw.has_value() || *plan.sw == runtime::SwConfig::kIP) &&
      (!plan.hw.has_value() || *plan.hw == sim::HwConfig::kSCS);
  const bool ps_reachable =
      (!plan.sw.has_value() || *plan.sw == runtime::SwConfig::kOP) &&
      (!plan.hw.has_value() || *plan.hw == sim::HwConfig::kPS);
  const bool any_spm_hw = scs_reachable || ps_reachable;
  std::size_t tile_spm_bytes = 0;  // per-tile SPM demand (SCS)
  std::size_t pe_spm_bytes = 0;    // per-PE SPM demand (PS)
  bool tile_spill_ok = true;
  bool pe_spill_ok = true;
  for (const auto& r : regions) {
    if (!r.spm) continue;
    if (!any_spm_hw) {
      emit(out, "address.spm-not-available", Severity::kError,
           "region '" + r.label + "' is placed in scratchpad but " +
               (plan.hw.has_value() ? sim::to_string(*plan.hw) : "the plan") +
               " provides no SPM personality",
           r.label);
      continue;
    }
    switch (r.scope) {
      case kernels::RegionScope::kPerTile:
        tile_spm_bytes += r.bytes;
        tile_spill_ok = tile_spill_ok && r.spill_ok;
        break;
      case kernels::RegionScope::kPerPe:
        pe_spm_bytes += r.bytes;
        pe_spill_ok = pe_spill_ok && r.spill_ok;
        break;
      case kernels::RegionScope::kGlobal:
        emit(out, "address.spm-bad-scope", Severity::kError,
             "region '" + r.label +
                 "' is SPM-placed with global scope, but scratchpads only "
                 "exist per tile (SCS) or per PE (PS)",
             r.label);
        break;
    }
  }
  const auto spm_overflow = [&](std::size_t demand, std::size_t capacity,
                                bool spill_ok, const char* config,
                                const char* unit) {
    if (demand == 0 || demand <= capacity) return;
    const std::string msg =
        "SPM demand of " + std::to_string(demand) + " B per " + unit +
        " exceeds the " + std::to_string(capacity) + " B available under " +
        config + " (" + std::to_string(demand - capacity) + " B over)";
    // Name the largest contributing region for the location.
    std::string where = "(spm)";
    std::size_t largest = 0;
    for (const auto& r : regions) {
      const bool in_sum =
          r.spm && ((r.scope == kernels::RegionScope::kPerTile &&
                     std::string(unit) == "tile") ||
                    (r.scope == kernels::RegionScope::kPerPe &&
                     std::string(unit) == "PE"));
      if (in_sum && r.bytes >= largest) {
        largest = r.bytes;
        where = r.label;
      }
    }
    if (spill_ok) {
      emit(out, "address.spm-spill", Severity::kInfo,
           msg + "; the kernel spills the excess gracefully", where);
    } else {
      emit(out, "address.spm-overflow", Severity::kError, msg, where);
    }
  };
  if (scs_reachable) {
    spm_overflow(tile_spm_bytes, cfg.scs_spm_bytes_per_tile(), tile_spill_ok,
                 "SCS", "tile");
  }
  if (ps_reachable) {
    spm_overflow(pe_spm_bytes, cfg.ps_spm_bytes_per_pe(), pe_spill_ok, "PS",
                 "PE");
  }

  // ---- bank-conflict hazard under the shared configurations ----
  // PEs stream contiguous per-PE partitions of the big streamed arrays.
  // When the partition stride is a multiple of (banks * line), every PE's
  // concurrent access lands on the same L1 bank and the crossbar
  // serializes the whole tile.
  const bool shared_reachable =
      !plan.sw.has_value() || *plan.sw == runtime::SwConfig::kIP;
  if (shared_reachable && cfg.num_pes() > 0 && cfg.l1_banks_per_tile() > 1) {
    const std::size_t bank_stride = cfg.l1_banks_per_tile() * line;
    for (const auto& r : regions) {
      if (r.spm || r.scope != kernels::RegionScope::kGlobal) continue;
      if (r.label.rfind("matrix.", 0) != 0 &&
          r.label.rfind("output.", 0) != 0) {
        continue;
      }
      const std::size_t stride = r.bytes / cfg.num_pes();
      if (stride >= line && stride % bank_stride == 0) {
        emit(out, "address.bank-conflict", Severity::kWarning,
             "region '" + r.label + "': the per-PE partition stride of " +
                 std::to_string(stride) + " B is a multiple of banks*line (" +
                 std::to_string(bank_stride) +
                 " B), so concurrent PEs contend for one L1 bank under "
                 "SC/SCS",
             r.label);
      }
    }
  }

  return out;
}

}  // namespace cosparse::verify
