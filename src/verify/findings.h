// Machine-readable static-analysis findings (cosparse.lint_report/v1).
//
// Every verify pass emits Findings — a severity, a stable finding id
// ("config.illegal-pair", "address.spm-overflow", ...), a human-readable
// message, and a source location naming the config field, region label or
// decision-tree node the finding is anchored to. A LintReport collects the
// findings of one linted plan/report and serializes them as a
// cosparse.lint_report/v1 JSON document; cosparse-lint exits nonzero when
// a report contains errors so CI can gate on it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace cosparse::verify {

inline constexpr std::string_view kLintReportSchema = "cosparse.lint_report/v1";

/// Uniform multi-subject envelope every cosparse-lint subcommand emits
/// under --json: {schema, tool, subcommand, subjects: [{subject,
/// findings, summary}], summary}.
inline constexpr std::string_view kLintFindingsSchema =
    "cosparse.lint_findings/v1";

enum class Severity : std::uint8_t { kInfo, kWarning, kError };

[[nodiscard]] const char* to_string(Severity s);
/// Inverse of to_string(); throws cosparse::Error on unknown names.
[[nodiscard]] Severity severity_from_string(std::string_view s);

/// What a finding is anchored to. `kind` is one of "config_field" (a
/// dotted path into the run plan, e.g. "system.bank_bytes"), "region"
/// (an allocation label, e.g. "op.heap"), "tree_node" (a decision-tree
/// node name, e.g. "ip.scs") or "document" (a path into a linted JSON
/// document, e.g. "$.tile_stats").
struct Location {
  std::string kind;
  std::string name;

  static Location config_field(std::string name) {
    return {"config_field", std::move(name)};
  }
  static Location region(std::string label) {
    return {"region", std::move(label)};
  }
  static Location tree_node(std::string node) {
    return {"tree_node", std::move(node)};
  }
  static Location document(std::string path) {
    return {"document", std::move(path)};
  }
  /// A source-file anchor, "file:line"; line 0 names the whole file.
  static Location source(const std::string& file, int line) {
    return {"source",
            line > 0 ? file + ":" + std::to_string(line) : file};
  }
};

struct Finding {
  std::string pass;  ///< "config" | "address_map" | "decision_tree" | "schema"
  std::string id;    ///< stable machine-matchable id, e.g. "tree.gap"
  Severity severity = Severity::kError;
  std::string message;
  Location location;
  /// Set by a baseline (baseline.h): the finding stays in the report
  /// for visibility but no longer counts toward the gate.
  bool suppressed = false;

  [[nodiscard]] Json to_json() const;
};
[[nodiscard]] Finding finding_from_json(const Json& j);

/// The findings of one linted subject, ordered most-severe first.
class LintReport {
 public:
  explicit LintReport(std::string subject) : subject_(std::move(subject)) {}

  void add(Finding f) { findings_.push_back(std::move(f)); }
  void add(std::vector<Finding> fs);
  void emit(std::string pass, std::string id, Severity sev,
            std::string message, Location loc);

  [[nodiscard]] const std::string& subject() const { return subject_; }
  [[nodiscard]] const std::vector<Finding>& findings() const {
    return findings_;
  }
  [[nodiscard]] std::vector<Finding>& findings() { return findings_; }
  /// Non-suppressed findings of severity `s`.
  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t suppressed_count() const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  /// No errors (warnings/infos permitted).
  [[nodiscard]] bool clean() const { return errors() == 0; }

  /// Orders findings by descending severity (stable within a severity).
  void sort_by_severity();

  /// cosparse.lint_report/v1: schema, subject, findings, summary counts.
  [[nodiscard]] Json to_json() const;

 private:
  std::string subject_;
  std::vector<Finding> findings_;
};

/// The cosparse.lint_findings/v1 envelope: one document covering every
/// subject a cosparse-lint invocation linted, with a grand-total
/// summary. Exit-code semantics live in the per-subject summaries.
[[nodiscard]] Json lint_findings_json(std::string_view subcommand,
                                      const std::vector<LintReport>& reports);

}  // namespace cosparse::verify
