#include "verify/baseline.h"

#include "common/error.h"

namespace cosparse::verify {

Baseline Baseline::from_json(const Json& j) {
  COSPARSE_REQUIRE(j.is_object(), "baseline must be a JSON object");
  const Json* schema = j.find("schema");
  COSPARSE_REQUIRE(schema != nullptr &&
                       schema->as_string() == kLintBaselineSchema,
                   "baseline schema must be '" +
                       std::string(kLintBaselineSchema) + "'");
  Baseline b;
  const Json* suppress = j.find("suppress");
  if (suppress == nullptr) return b;
  COSPARSE_REQUIRE(suppress->is_array(), "baseline 'suppress' must be an array");
  for (const Json& e : suppress->items()) {
    COSPARSE_REQUIRE(e.is_object(), "baseline entry must be an object");
    const Json* pass = e.find("pass");
    const Json* id = e.find("id");
    COSPARSE_REQUIRE(pass != nullptr && id != nullptr,
                     "baseline entry needs 'pass' and 'id'");
    Entry entry;
    entry.pass = pass->as_string();
    entry.id = id->as_string();
    if (const Json* loc = e.find("location"); loc != nullptr)
      entry.location = loc->as_string();
    b.entries_.push_back(std::move(entry));
  }
  return b;
}

std::size_t Baseline::apply(LintReport& report) const {
  std::size_t n = 0;
  for (Finding& f : report.findings()) {
    if (f.suppressed) continue;
    for (const Entry& e : entries_) {
      if (e.pass == f.pass && e.id == f.id &&
          (e.location.empty() || e.location == f.location.name)) {
        f.suppressed = true;
        ++n;
        break;
      }
    }
  }
  return n;
}

}  // namespace cosparse::verify
