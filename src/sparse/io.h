// Matrix Market and SNAP edge-list I/O.
//
// The dataset registry generates synthetic stand-ins by default, but real
// SNAP / SuiteSparse files can be dropped in and loaded with these readers
// to run every experiment on the original graphs.
#pragma once

#include <string>

#include "sparse/formats.h"

namespace cosparse::sparse {

/// Reads a Matrix Market coordinate file (`%%MatrixMarket matrix coordinate
/// real|integer|pattern general|symmetric`). Pattern entries get value 1;
/// symmetric matrices are expanded. Throws cosparse::Error on malformed
/// input.
Coo read_matrix_market(const std::string& path);

/// Writes a COO matrix as `coordinate real general` (1-based indices).
void write_matrix_market(const std::string& path, const Coo& coo);

/// Reads a SNAP-style edge list: `#`-comment lines, then one
/// `src dst [weight]` per line (0- or 1-based; indices are used verbatim and
/// the matrix is sized to the max index + 1). `undirected` mirrors each
/// edge.
Coo read_edge_list(const std::string& path, bool undirected = false);

}  // namespace cosparse::sparse
