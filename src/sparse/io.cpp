#include "sparse/io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.h"

namespace cosparse::sparse {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Coo read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open Matrix Market file: " + path);

  std::string line;
  if (!std::getline(in, line)) throw Error(path + ": empty file");
  std::istringstream banner(line);
  std::string mm, object, format, field, symmetry;
  banner >> mm >> object >> format >> field >> symmetry;
  if (lower(mm) != "%%matrixmarket" || lower(object) != "matrix")
    throw Error(path + ": not a Matrix Market matrix file");
  if (lower(format) != "coordinate")
    throw Error(path + ": only coordinate format is supported");
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer")
    throw Error(path + ": unsupported field type '" + field + "'");
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general")
    throw Error(path + ": unsupported symmetry '" + symmetry + "'");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  long long rows = 0, cols = 0, declared_nnz = 0;
  if (!(sizes >> rows >> cols >> declared_nnz) || rows <= 0 || cols <= 0 ||
      declared_nnz < 0)
    throw Error(path + ": malformed size line");

  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(declared_nnz) * (symmetric ? 2 : 1));
  long long count = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ls(line);
    long long r = 0, c = 0;
    double v = 1.0;
    if (!(ls >> r >> c)) throw Error(path + ": malformed entry line: " + line);
    if (!pattern && !(ls >> v))
      throw Error(path + ": entry missing value: " + line);
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw Error(path + ": entry index out of declared bounds: " + line);
    const auto ri = static_cast<Index>(r - 1);
    const auto ci = static_cast<Index>(c - 1);
    triplets.push_back({ri, ci, v});
    if (symmetric && ri != ci) triplets.push_back({ci, ri, v});
    ++count;
  }
  if (count != declared_nnz)
    throw Error(path + ": entry count " + std::to_string(count) +
                " does not match declared nnz " + std::to_string(declared_nnz));
  return Coo(static_cast<Index>(rows), static_cast<Index>(cols),
             std::move(triplets));
}

void write_matrix_market(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open output file: " + path);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << coo.rows() << ' ' << coo.cols() << ' ' << coo.nnz() << '\n';
  for (const auto& t : coo.triplets()) {
    out << (t.row + 1) << ' ' << (t.col + 1) << ' ' << t.value << '\n';
  }
  if (!out) throw Error("error writing: " + path);
}

Coo read_edge_list(const std::string& path, bool undirected) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open edge list file: " + path);
  std::vector<Triplet> triplets;
  Index max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    long long u = 0, v = 0;
    double w = 1.0;
    if (!(ls >> u >> v)) throw Error(path + ": malformed edge line: " + line);
    ls >> w;  // optional weight
    if (u < 0 || v < 0) throw Error(path + ": negative vertex id: " + line);
    const auto ui = static_cast<Index>(u);
    const auto vi = static_cast<Index>(v);
    max_id = std::max({max_id, ui, vi});
    triplets.push_back({ui, vi, w});
    if (undirected && ui != vi) triplets.push_back({vi, ui, w});
  }
  const Index n = triplets.empty() ? 0 : max_id + 1;
  return Coo(n, n, std::move(triplets));
}

}  // namespace cosparse::sparse
