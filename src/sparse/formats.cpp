#include "sparse/formats.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::sparse {
namespace {

double density_of(Index rows, Index cols, std::size_t nnz) {
  const double cells = static_cast<double>(rows) * static_cast<double>(cols);
  return cells == 0.0 ? 0.0 : static_cast<double>(nnz) / cells;
}

}  // namespace

Coo::Coo(Index rows, Index cols, std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols), triplets_(std::move(triplets)) {
  for (const auto& t : triplets_) {
    COSPARSE_REQUIRE(t.row < rows_ && t.col < cols_,
                     "COO triplet out of bounds");
  }
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  // Combine duplicates by summation (standard triplet-assembly semantics).
  std::size_t out = 0;
  for (std::size_t i = 0; i < triplets_.size(); ++i) {
    if (out > 0 && triplets_[out - 1].row == triplets_[i].row &&
        triplets_[out - 1].col == triplets_[i].col) {
      triplets_[out - 1].value += triplets_[i].value;
    } else {
      triplets_[out++] = triplets_[i];
    }
  }
  triplets_.resize(out);
}

double Coo::density() const { return density_of(rows_, cols_, nnz()); }

Csr::Csr(Index rows, Index cols, std::vector<Offset> row_ptr,
         std::vector<Index> col_idx, std::vector<Value> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  COSPARSE_REQUIRE(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
                   "CSR row_ptr has wrong length");
  COSPARSE_REQUIRE(col_idx_.size() == values_.size(),
                   "CSR col_idx/values length mismatch");
  COSPARSE_REQUIRE(row_ptr_.front() == 0 && row_ptr_.back() == col_idx_.size(),
                   "CSR row_ptr endpoints invalid");
  for (Index r = 0; r < rows_; ++r) {
    COSPARSE_REQUIRE(row_ptr_[r] <= row_ptr_[r + 1],
                     "CSR row_ptr must be non-decreasing");
    for (Offset k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      COSPARSE_REQUIRE(col_idx_[k] < cols_, "CSR column index out of bounds");
      COSPARSE_REQUIRE(k == row_ptr_[r] || col_idx_[k - 1] < col_idx_[k],
                       "CSR columns within a row must be sorted and unique");
    }
  }
}

double Csr::density() const { return density_of(rows_, cols_, nnz()); }

Csc::Csc(Index rows, Index cols, std::vector<Offset> col_ptr,
         std::vector<Index> row_idx, std::vector<Value> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  COSPARSE_REQUIRE(col_ptr_.size() == static_cast<std::size_t>(cols_) + 1,
                   "CSC col_ptr has wrong length");
  COSPARSE_REQUIRE(row_idx_.size() == values_.size(),
                   "CSC row_idx/values length mismatch");
  COSPARSE_REQUIRE(col_ptr_.front() == 0 && col_ptr_.back() == row_idx_.size(),
                   "CSC col_ptr endpoints invalid");
  for (Index c = 0; c < cols_; ++c) {
    COSPARSE_REQUIRE(col_ptr_[c] <= col_ptr_[c + 1],
                     "CSC col_ptr must be non-decreasing");
    for (Offset k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k) {
      COSPARSE_REQUIRE(row_idx_[k] < rows_, "CSC row index out of bounds");
      COSPARSE_REQUIRE(k == col_ptr_[c] || row_idx_[k - 1] < row_idx_[k],
                       "CSC rows within a column must be sorted and unique");
    }
  }
}

double Csc::density() const { return density_of(rows_, cols_, nnz()); }

Csr coo_to_csr(const Coo& coo) {
  std::vector<Offset> row_ptr(static_cast<std::size_t>(coo.rows()) + 1, 0);
  std::vector<Index> col_idx(coo.nnz());
  std::vector<Value> values(coo.nnz());
  for (const auto& t : coo.triplets()) ++row_ptr[t.row + 1];
  for (Index r = 0; r < coo.rows(); ++r) row_ptr[r + 1] += row_ptr[r];
  // COO is already row-major sorted, so a single pass preserves column order.
  std::size_t k = 0;
  for (const auto& t : coo.triplets()) {
    col_idx[k] = t.col;
    values[k] = t.value;
    ++k;
  }
  return Csr(coo.rows(), coo.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

Csc coo_to_csc(const Coo& coo) {
  std::vector<Offset> col_ptr(static_cast<std::size_t>(coo.cols()) + 1, 0);
  std::vector<Index> row_idx(coo.nnz());
  std::vector<Value> values(coo.nnz());
  for (const auto& t : coo.triplets()) ++col_ptr[t.col + 1];
  for (Index c = 0; c < coo.cols(); ++c) col_ptr[c + 1] += col_ptr[c];
  std::vector<Offset> next(col_ptr.begin(), col_ptr.end() - 1);
  // Row-major input order means rows within each column arrive sorted.
  for (const auto& t : coo.triplets()) {
    const Offset k = next[t.col]++;
    row_idx[k] = t.row;
    values[k] = t.value;
  }
  return Csc(coo.rows(), coo.cols(), std::move(col_ptr), std::move(row_idx),
             std::move(values));
}

Coo csr_to_coo(const Csr& csr) {
  std::vector<Triplet> triplets;
  triplets.reserve(csr.nnz());
  for (Index r = 0; r < csr.rows(); ++r) {
    for (Offset k = csr.row_begin(r); k < csr.row_end(r); ++k) {
      triplets.push_back({r, csr.col_idx()[k], csr.values()[k]});
    }
  }
  return Coo(csr.rows(), csr.cols(), std::move(triplets));
}

Coo csc_to_coo(const Csc& csc) {
  std::vector<Triplet> triplets;
  triplets.reserve(csc.nnz());
  for (Index c = 0; c < csc.cols(); ++c) {
    for (Offset k = csc.col_begin(c); k < csc.col_end(c); ++k) {
      triplets.push_back({csc.row_idx()[k], c, csc.values()[k]});
    }
  }
  return Coo(csc.rows(), csc.cols(), std::move(triplets));
}

Csc csr_to_csc(const Csr& csr) { return coo_to_csc(csr_to_coo(csr)); }

Csr csc_to_csr(const Csc& csc) { return coo_to_csr(csc_to_coo(csc)); }

Coo transpose(const Coo& coo) {
  std::vector<Triplet> triplets;
  triplets.reserve(coo.nnz());
  for (const auto& t : coo.triplets()) triplets.push_back({t.col, t.row, t.value});
  return Coo(coo.cols(), coo.rows(), std::move(triplets));
}

Coo symmetrize(const Coo& coo) {
  COSPARSE_REQUIRE(coo.rows() == coo.cols(),
                   "symmetrize requires a square matrix");
  std::vector<Triplet> triplets = coo.triplets();
  triplets.reserve(coo.nnz() * 2);
  for (const auto& t : coo.triplets()) {
    if (t.row != t.col) triplets.push_back({t.col, t.row, t.value});
  }
  return Coo(coo.rows(), coo.cols(), std::move(triplets));
}

}  // namespace cosparse::sparse
