#include "sparse/graph.h"

#include "common/error.h"

namespace cosparse::sparse {

Graph::Graph(std::string name, Coo adjacency, bool directed)
    : name_(std::move(name)),
      adjacency_(std::move(adjacency)),
      directed_(directed) {
  COSPARSE_REQUIRE(adjacency_.rows() == adjacency_.cols(),
                   "graph adjacency matrix must be square");
  out_degrees_.assign(adjacency_.rows(), 0);
  for (const auto& t : adjacency_.triplets()) ++out_degrees_[t.row];
}

double Graph::average_degree() const {
  if (num_vertices() == 0) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(num_vertices());
}

}  // namespace cosparse::sparse
