// Dense and sparse vector representations.
//
// Graph frontiers in CoSPARSE flip between a dense array (inner-product
// dataflow) and a sorted (index, value) list (outer-product dataflow); the
// runtime converts between the two at iteration boundaries (paper §III-D.2)
// and charges the conversion cost.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace cosparse::sparse {

/// One non-zero element of a sparse vector.
struct VectorEntry {
  Index index = 0;
  Value value = 0;

  friend bool operator==(const VectorEntry&, const VectorEntry&) = default;
};

/// Sparse vector: entries sorted by index, no duplicates, no explicit zeros
/// required (explicit zeros are permitted — BFS frontiers store vertex ids
/// with payload values that may legitimately be 0).
class SparseVector {
 public:
  SparseVector() = default;
  explicit SparseVector(Index dimension) : dimension_(dimension) {}
  SparseVector(Index dimension, std::vector<VectorEntry> entries);

  [[nodiscard]] Index dimension() const { return dimension_; }
  [[nodiscard]] std::size_t nnz() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] double density() const {
    return dimension_ == 0 ? 0.0
                           : static_cast<double>(entries_.size()) /
                                 static_cast<double>(dimension_);
  }

  [[nodiscard]] const std::vector<VectorEntry>& entries() const {
    return entries_;
  }

  /// Appends an entry; index must be strictly greater than the last one.
  void push_back(Index index, Value value);

  /// Bulk-assigns entries (validates ordering).
  void assign(std::vector<VectorEntry> entries);

  void clear() { entries_.clear(); }

  /// Pre-allocates entry storage. Callers that refill the vector in place
  /// (e.g. the engine's frontier staging buffers) reserve once so the
  /// backing array never reallocates afterwards.
  void reserve(std::size_t n) { entries_.reserve(n); }

  friend bool operator==(const SparseVector&, const SparseVector&) = default;

 private:
  Index dimension_ = 0;
  std::vector<VectorEntry> entries_;
};

/// Dense vector with an optional "active" interpretation: for graph
/// frontiers, an element is active iff it differs from the algorithm's
/// identity value (e.g. +inf for SSSP). Plain SpMV uses all elements.
class DenseVector {
 public:
  DenseVector() = default;
  explicit DenseVector(Index dimension, Value fill = 0)
      : values_(dimension, fill) {}
  explicit DenseVector(std::vector<Value> values) : values_(std::move(values)) {}

  [[nodiscard]] Index dimension() const {
    return static_cast<Index>(values_.size());
  }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }
  [[nodiscard]] std::vector<Value>& values() { return values_; }

  Value& operator[](Index i) { return values_[i]; }
  const Value& operator[](Index i) const { return values_[i]; }

  /// Number of entries different from `identity` and the resulting density.
  [[nodiscard]] std::size_t count_active(Value identity) const;
  [[nodiscard]] double density(Value identity) const;

  friend bool operator==(const DenseVector&, const DenseVector&) = default;

 private:
  std::vector<Value> values_;
};

/// dense -> sparse: keeps entries that differ from `identity`.
SparseVector to_sparse(const DenseVector& dense, Value identity = 0);

/// sparse -> dense: missing entries become `identity`.
DenseVector to_dense(const SparseVector& sv, Value identity = 0);

}  // namespace cosparse::sparse
