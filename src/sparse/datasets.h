// Dataset registry reproducing paper Table III.
//
// The paper evaluates on five real-world graphs (SNAP + SuiteSparse).
// Those files are not available offline, so the registry synthesizes
// stand-ins with matched vertex count, edge count, directedness and degree
// skew (R-MAT for the social networks, uniform for `vsp`, which the paper
// itself labels "Random"). A `scale` divisor shrinks both vertex and edge
// counts to fit the simulation budget while preserving average degree; the
// substitution and its effect are documented in DESIGN.md §2.
//
// If real edge-list files are available, set the COSPARSE_DATA_DIR
// environment variable (or pass data_dir) and the registry loads
// `<dir>/<name>.txt` via read_edge_list() instead.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sparse/graph.h"

namespace cosparse::sparse {

/// Static description of one Table III row.
struct DatasetSpec {
  std::string name;
  Index vertices = 0;
  std::uint64_t edges = 0;
  bool directed = true;
  bool power_law = true;  ///< false for `vsp` (uniform random)
  double density = 0.0;   ///< as printed in Table III
};

class DatasetRegistry {
 public:
  /// `data_dir`: optional directory of real SNAP edge lists; when empty,
  /// the COSPARSE_DATA_DIR environment variable is consulted, and failing
  /// that, synthetic stand-ins are generated.
  explicit DatasetRegistry(std::string data_dir = "");

  /// The five Table III specifications, in paper order.
  [[nodiscard]] static const std::vector<DatasetSpec>& specs();

  /// Looks up a spec by name; throws cosparse::Error for unknown names.
  [[nodiscard]] static const DatasetSpec& spec(const std::string& name);

  /// Loads (or synthesizes) a graph. `scale` divides both |V| and |E|
  /// (scale=1 reproduces full size). Deterministic given (name, scale,
  /// seed): `seed` perturbs the synthetic stand-in generator (0, the
  /// default, keeps the canonical per-name stand-in every bench/test
  /// sees). Real edge-list files ignore the seed.
  [[nodiscard]] Graph load(const std::string& name, unsigned scale = 8,
                           std::uint64_t seed = 0) const;

 private:
  std::string data_dir_;
};

}  // namespace cosparse::sparse
