#include "sparse/vector.h"

#include <algorithm>

namespace cosparse::sparse {

SparseVector::SparseVector(Index dimension, std::vector<VectorEntry> entries)
    : dimension_(dimension) {
  assign(std::move(entries));
}

void SparseVector::push_back(Index index, Value value) {
  COSPARSE_CHECK_MSG(index < dimension_, "sparse vector index " << index
                                          << " out of range " << dimension_);
  COSPARSE_CHECK_MSG(entries_.empty() || entries_.back().index < index,
                     "sparse vector entries must be appended in strictly "
                     "increasing index order");
  entries_.push_back({index, value});
}

void SparseVector::assign(std::vector<VectorEntry> entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    COSPARSE_REQUIRE(entries[i].index < dimension_,
                     "sparse vector entry index out of range");
    COSPARSE_REQUIRE(i == 0 || entries[i - 1].index < entries[i].index,
                     "sparse vector entries must be sorted and unique");
  }
  entries_ = std::move(entries);
}

std::size_t DenseVector::count_active(Value identity) const {
  return static_cast<std::size_t>(std::count_if(
      values_.begin(), values_.end(),
      [identity](Value v) { return v != identity; }));
}

double DenseVector::density(Value identity) const {
  if (values_.empty()) return 0.0;
  return static_cast<double>(count_active(identity)) /
         static_cast<double>(values_.size());
}

SparseVector to_sparse(const DenseVector& dense, Value identity) {
  SparseVector out(dense.dimension());
  for (Index i = 0; i < dense.dimension(); ++i) {
    if (dense[i] != identity) out.push_back(i, dense[i]);
  }
  return out;
}

DenseVector to_dense(const SparseVector& sv, Value identity) {
  DenseVector out(sv.dimension(), identity);
  for (const auto& e : sv.entries()) out[e.index] = e.value;
  return out;
}

}  // namespace cosparse::sparse
