// Binary serialization for sparse matrices.
//
// Generating the Table III stand-ins takes seconds to minutes at low scale
// divisors; the dataset registry caches generated graphs on disk (set
// COSPARSE_CACHE_DIR) so benchmark reruns skip regeneration. The format is
// a versioned little-endian dump with a magic header and a trailing
// checksum so truncated or foreign files fail loudly rather than load
// garbage.
#pragma once

#include <string>

#include "sparse/formats.h"

namespace cosparse::sparse {

/// Writes `coo` to `path` (overwrites). Throws cosparse::Error on I/O
/// failure.
void write_binary(const std::string& path, const Coo& coo);

/// Reads a matrix written by write_binary. Throws cosparse::Error on
/// missing file, bad magic, version mismatch, truncation, or checksum
/// mismatch.
Coo read_binary(const std::string& path);

}  // namespace cosparse::sparse
