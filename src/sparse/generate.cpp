#include "sparse/generate.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace cosparse::sparse {
namespace {

Value draw_value(Rng& rng, ValueDist dist) {
  switch (dist) {
    case ValueDist::kOnes:
      return 1.0;
    case ValueDist::kUniform01:
      return 1.0 - rng.next_double();  // (0, 1]: avoid explicit zeros
    case ValueDist::kUniformInt:
      return static_cast<Value>(1 + rng.next_below(16));
  }
  return 1.0;
}

std::uint64_t pack(Index row, Index col) {
  return (static_cast<std::uint64_t>(row) << 32) | col;
}

/// Draws until `nnz` distinct coordinates are collected. `sample` yields a
/// (row, col) pair per call. Rejection is cheap as long as the target
/// density is well below 1, which holds for every workload in the paper
/// (densities <= 5e-3).
template <class Sampler>
Coo fill_distinct(Index rows, Index cols, std::uint64_t nnz, Rng& rng,
                  ValueDist dist, Sampler&& sample) {
  const double cells = static_cast<double>(rows) * static_cast<double>(cols);
  COSPARSE_REQUIRE(static_cast<double>(nnz) <= cells,
                   "requested nnz exceeds matrix capacity");
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz) * 2);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz));
  // For near-full matrices rejection would stall; guard with a generous cap
  // and fall back to dense enumeration (only reachable in tests).
  const std::uint64_t max_draws = nnz * 64 + 1024;
  std::uint64_t draws = 0;
  while (triplets.size() < nnz && draws < max_draws) {
    ++draws;
    auto [r, c] = sample();
    if (seen.insert(pack(r, c)).second) {
      triplets.push_back({r, c, draw_value(rng, dist)});
    }
  }
  if (triplets.size() < nnz) {
    // Deterministic fallback: enumerate remaining empty cells in order.
    for (Index r = 0; r < rows && triplets.size() < nnz; ++r) {
      for (Index c = 0; c < cols && triplets.size() < nnz; ++c) {
        if (seen.insert(pack(r, c)).second) {
          triplets.push_back({r, c, draw_value(rng, dist)});
        }
      }
    }
  }
  return Coo(rows, cols, std::move(triplets));
}

/// Cumulative-weight sampler over a power-law weight profile.
class PowerLawSampler {
 public:
  PowerLawSampler(Index n, double exponent) : cum_(n) {
    double acc = 0.0;
    for (Index i = 0; i < n; ++i) {
      acc += std::pow(static_cast<double>(i) + 1.0, -exponent);
      cum_[i] = acc;
    }
    total_ = acc;
  }

  Index draw(Rng& rng) const {
    const double u = rng.next_double() * total_;
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
    return static_cast<Index>(std::min<std::size_t>(
        static_cast<std::size_t>(it - cum_.begin()), cum_.size() - 1));
  }

 private:
  std::vector<double> cum_;
  double total_ = 0.0;
};

}  // namespace

Coo uniform_random(Index rows, Index cols, std::uint64_t nnz,
                   std::uint64_t seed, ValueDist dist) {
  Rng rng(seed);
  return fill_distinct(rows, cols, nnz, rng, dist, [&] {
    const Index r = static_cast<Index>(rng.next_below(rows));
    const Index c = static_cast<Index>(rng.next_below(cols));
    return std::pair<Index, Index>{r, c};
  });
}

Coo power_law(Index rows, Index cols, std::uint64_t nnz, double beta,
              std::uint64_t seed, ValueDist dist) {
  COSPARSE_REQUIRE(beta > 1.0, "power-law exponent beta must exceed 1");
  Rng rng(seed);
  // Chung-Lu: weight exponent is 1/(beta-1) for a degree exponent of beta.
  const double exponent = 1.0 / (beta - 1.0);
  PowerLawSampler row_sampler(rows, exponent);
  PowerLawSampler col_sampler(cols, exponent);
  // Sampled indices are permuted so that the heavy vertices are not all at
  // the front of the index space (matches how NetworkX relabels nodes).
  std::vector<Index> row_perm(rows), col_perm(cols);
  for (Index i = 0; i < rows; ++i) row_perm[i] = i;
  for (Index i = 0; i < cols; ++i) col_perm[i] = i;
  for (Index i = rows; i > 1; --i) {
    std::swap(row_perm[i - 1],
              row_perm[static_cast<Index>(rng.next_below(i))]);
  }
  for (Index i = cols; i > 1; --i) {
    std::swap(col_perm[i - 1],
              col_perm[static_cast<Index>(rng.next_below(i))]);
  }
  return fill_distinct(rows, cols, nnz, rng, dist, [&] {
    const Index r = row_perm[row_sampler.draw(rng)];
    const Index c = col_perm[col_sampler.draw(rng)];
    return std::pair<Index, Index>{r, c};
  });
}

Coo rmat(std::uint32_t scale, std::uint64_t nnz, double a, double b, double c,
         std::uint64_t seed, ValueDist dist) {
  COSPARSE_REQUIRE(scale > 0 && scale < 31, "R-MAT scale out of range");
  const double d = 1.0 - a - b - c;
  COSPARSE_REQUIRE(a >= 0 && b >= 0 && c >= 0 && d >= -1e-9,
                   "R-MAT probabilities must sum to <= 1");
  const Index n = Index{1} << scale;
  Rng rng(seed);
  return fill_distinct(n, n, nnz, rng, dist, [&] {
    Index r = 0, col = 0;
    for (std::uint32_t level = 0; level < scale; ++level) {
      const double u = rng.next_double();
      r <<= 1;
      col <<= 1;
      if (u < a) {
        // top-left quadrant: nothing to add
      } else if (u < a + b) {
        col |= 1;
      } else if (u < a + b + c) {
        r |= 1;
      } else {
        r |= 1;
        col |= 1;
      }
    }
    return std::pair<Index, Index>{r, col};
  });
}

SparseVector random_sparse_vector(Index dimension, double density,
                                  std::uint64_t seed, ValueDist dist) {
  COSPARSE_REQUIRE(density >= 0.0 && density <= 1.0,
                   "vector density must be in [0, 1]");
  const auto target = static_cast<std::uint64_t>(
      std::ceil(density * static_cast<double>(dimension)));
  Rng rng(seed);
  std::unordered_set<Index> chosen;
  chosen.reserve(static_cast<std::size_t>(target) * 2);
  while (chosen.size() < target) {
    chosen.insert(static_cast<Index>(rng.next_below(dimension)));
  }
  std::vector<Index> idx(chosen.begin(), chosen.end());
  std::sort(idx.begin(), idx.end());
  SparseVector out(dimension);
  for (Index i : idx) out.push_back(i, draw_value(rng, dist));
  return out;
}

DenseVector random_dense_vector(Index dimension, std::uint64_t seed,
                                ValueDist dist) {
  Rng rng(seed);
  DenseVector out(dimension);
  for (Index i = 0; i < dimension; ++i) out[i] = draw_value(rng, dist);
  return out;
}

}  // namespace cosparse::sparse
