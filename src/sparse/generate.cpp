#include "sparse/generate.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace cosparse::sparse {
namespace {

Value draw_value(Rng& rng, ValueDist dist) {
  switch (dist) {
    case ValueDist::kOnes:
      return 1.0;
    case ValueDist::kUniform01:
      return 1.0 - rng.next_double();  // (0, 1]: avoid explicit zeros
    case ValueDist::kUniformInt:
      return static_cast<Value>(1 + rng.next_below(16));
  }
  return 1.0;
}

std::uint64_t pack(Index row, Index col) {
  return (static_cast<std::uint64_t>(row) << 32) | col;
}

/// Draws until `nnz` distinct coordinates are collected. `sample` yields a
/// (row, col) pair per call. Rejection is cheap as long as the target
/// density is well below 1, which holds for every workload in the paper
/// (densities <= 5e-3).
template <class Sampler>
Coo fill_distinct(Index rows, Index cols, std::uint64_t nnz, Rng& rng,
                  ValueDist dist, Sampler&& sample) {
  const double cells = static_cast<double>(rows) * static_cast<double>(cols);
  COSPARSE_REQUIRE(static_cast<double>(nnz) <= cells,
                   "requested nnz exceeds matrix capacity");
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz) * 2);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz));
  // For near-full matrices rejection would stall; guard with a generous cap
  // and fall back to dense enumeration (only reachable in tests).
  const std::uint64_t max_draws = nnz * 64 + 1024;
  std::uint64_t draws = 0;
  while (triplets.size() < nnz && draws < max_draws) {
    ++draws;
    auto [r, c] = sample();
    if (seen.insert(pack(r, c)).second) {
      triplets.push_back({r, c, draw_value(rng, dist)});
    }
  }
  if (triplets.size() < nnz) {
    // Deterministic fallback: enumerate remaining empty cells in order.
    for (Index r = 0; r < rows && triplets.size() < nnz; ++r) {
      for (Index c = 0; c < cols && triplets.size() < nnz; ++c) {
        if (seen.insert(pack(r, c)).second) {
          triplets.push_back({r, c, draw_value(rng, dist)});
        }
      }
    }
  }
  return Coo(rows, cols, std::move(triplets));
}

/// Cumulative-weight sampler over a power-law weight profile.
class PowerLawSampler {
 public:
  PowerLawSampler(Index n, double exponent) : cum_(n) {
    double acc = 0.0;
    for (Index i = 0; i < n; ++i) {
      acc += std::pow(static_cast<double>(i) + 1.0, -exponent);
      cum_[i] = acc;
    }
    total_ = acc;
  }

  Index draw(Rng& rng) const {
    const double u = rng.next_double() * total_;
    const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
    return static_cast<Index>(std::min<std::size_t>(
        static_cast<std::size_t>(it - cum_.begin()), cum_.size() - 1));
  }

 private:
  std::vector<double> cum_;
  double total_ = 0.0;
};

}  // namespace

Coo uniform_random(Index rows, Index cols, std::uint64_t nnz,
                   std::uint64_t seed, ValueDist dist) {
  Rng rng(seed, "uniform_random");
  return fill_distinct(rows, cols, nnz, rng, dist, [&] {
    const Index r = static_cast<Index>(rng.next_below(rows));
    const Index c = static_cast<Index>(rng.next_below(cols));
    return std::pair<Index, Index>{r, c};
  });
}

Coo power_law(Index rows, Index cols, std::uint64_t nnz, double beta,
              std::uint64_t seed, ValueDist dist) {
  COSPARSE_REQUIRE(beta > 1.0, "power-law exponent beta must exceed 1");
  Rng rng(seed, "power_law");
  // Chung-Lu: weight exponent is 1/(beta-1) for a degree exponent of beta.
  const double exponent = 1.0 / (beta - 1.0);
  PowerLawSampler row_sampler(rows, exponent);
  PowerLawSampler col_sampler(cols, exponent);
  // Sampled indices are permuted so that the heavy vertices are not all at
  // the front of the index space (matches how NetworkX relabels nodes).
  std::vector<Index> row_perm(rows), col_perm(cols);
  for (Index i = 0; i < rows; ++i) row_perm[i] = i;
  for (Index i = 0; i < cols; ++i) col_perm[i] = i;
  for (Index i = rows; i > 1; --i) {
    std::swap(row_perm[i - 1],
              row_perm[static_cast<Index>(rng.next_below(i))]);
  }
  for (Index i = cols; i > 1; --i) {
    std::swap(col_perm[i - 1],
              col_perm[static_cast<Index>(rng.next_below(i))]);
  }
  return fill_distinct(rows, cols, nnz, rng, dist, [&] {
    const Index r = row_perm[row_sampler.draw(rng)];
    const Index c = col_perm[col_sampler.draw(rng)];
    return std::pair<Index, Index>{r, c};
  });
}

Coo rmat(std::uint32_t scale, std::uint64_t nnz, double a, double b, double c,
         std::uint64_t seed, ValueDist dist) {
  COSPARSE_REQUIRE(scale > 0 && scale < 31, "R-MAT scale out of range");
  const double d = 1.0 - a - b - c;
  COSPARSE_REQUIRE(a >= 0 && b >= 0 && c >= 0 && d >= -1e-9,
                   "R-MAT probabilities must sum to <= 1");
  const Index n = Index{1} << scale;
  Rng rng(seed, "rmat");
  return fill_distinct(n, n, nnz, rng, dist, [&] {
    Index r = 0, col = 0;
    for (std::uint32_t level = 0; level < scale; ++level) {
      const double u = rng.next_double();
      r <<= 1;
      col <<= 1;
      if (u < a) {
        // top-left quadrant: nothing to add
      } else if (u < a + b) {
        col |= 1;
      } else if (u < a + b + c) {
        r |= 1;
      } else {
        r |= 1;
        col |= 1;
      }
    }
    return std::pair<Index, Index>{r, col};
  });
}

Coo banded(Index rows, Index cols, Index bandwidth, std::uint64_t nnz,
           std::uint64_t seed, ValueDist dist) {
  // In-band capacity: for each row, columns [max(0, r - bw), min(cols - 1,
  // r + bw)]. fill_distinct is not usable here — its dense-enumeration
  // fallback would place elements outside the band — so the generator does
  // its own rejection sampling with an in-band-only fallback.
  std::uint64_t capacity = 0;
  for (Index r = 0; r < rows; ++r) {
    const Index lo = r > bandwidth ? r - bandwidth : 0;
    const Index hi = std::min<Index>(cols > 0 ? cols - 1 : 0, r + bandwidth);
    if (cols > 0 && hi >= lo) capacity += hi - lo + 1;
  }
  COSPARSE_REQUIRE(nnz <= capacity, "requested nnz exceeds band capacity");
  Rng rng(seed, "banded");
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz) * 2);
  std::vector<Triplet> triplets;
  triplets.reserve(static_cast<std::size_t>(nnz));
  const std::uint64_t max_draws = nnz * 64 + 1024;
  std::uint64_t draws = 0;
  while (triplets.size() < nnz && draws < max_draws) {
    ++draws;
    const Index r = static_cast<Index>(rng.next_below(rows));
    const Index lo = r > bandwidth ? r - bandwidth : 0;
    const Index hi = std::min<Index>(cols - 1, r + bandwidth);
    if (hi < lo) continue;  // row has no in-band columns (cols << rows)
    const Index c =
        lo + static_cast<Index>(rng.next_below(hi - lo + std::uint64_t{1}));
    if (seen.insert(pack(r, c)).second) {
      triplets.push_back({r, c, draw_value(rng, dist)});
    }
  }
  // Near-full bands stall rejection; finish by enumerating the remaining
  // in-band cells in order (deterministic).
  for (Index r = 0; r < rows && triplets.size() < nnz; ++r) {
    const Index lo = r > bandwidth ? r - bandwidth : 0;
    const Index hi = std::min<Index>(cols - 1, r + bandwidth);
    for (Index c = lo; c <= hi && triplets.size() < nnz; ++c) {
      if (seen.insert(pack(r, c)).second) {
        triplets.push_back({r, c, draw_value(rng, dist)});
      }
    }
  }
  return Coo(rows, cols, std::move(triplets));
}

Coo single_entry(Index rows, Index cols, std::uint64_t seed, ValueDist dist) {
  COSPARSE_REQUIRE(rows > 0 && cols > 0,
                   "single_entry needs a non-empty shape");
  Rng rng(seed, "single_entry");
  const Index r = static_cast<Index>(rng.next_below(rows));
  const Index c = static_cast<Index>(rng.next_below(cols));
  std::vector<Triplet> triplets{{r, c, draw_value(rng, dist)}};
  return Coo(rows, cols, std::move(triplets));
}

Coo with_empty_slices(const Coo& m, double row_fraction, double col_fraction,
                      std::uint64_t seed) {
  COSPARSE_REQUIRE(row_fraction >= 0.0 && row_fraction <= 1.0 &&
                       col_fraction >= 0.0 && col_fraction <= 1.0,
                   "empty-slice fractions must be in [0, 1]");
  Rng rng(seed, "with_empty_slices");
  std::vector<std::uint8_t> kill_row(m.rows(), 0);
  std::vector<std::uint8_t> kill_col(m.cols(), 0);
  for (auto& k : kill_row) k = rng.next_bool(row_fraction) ? 1 : 0;
  for (auto& k : kill_col) k = rng.next_bool(col_fraction) ? 1 : 0;
  std::vector<Triplet> triplets;
  triplets.reserve(m.triplets().size());
  for (const Triplet& t : m.triplets()) {
    if (kill_row[t.row] || kill_col[t.col]) continue;
    triplets.push_back(t);
  }
  return Coo(m.rows(), m.cols(), std::move(triplets));
}

SparseVector random_sparse_vector(Index dimension, double density,
                                  std::uint64_t seed, ValueDist dist) {
  COSPARSE_REQUIRE(density >= 0.0 && density <= 1.0,
                   "vector density must be in [0, 1]");
  const auto target = static_cast<std::uint64_t>(
      std::ceil(density * static_cast<double>(dimension)));
  Rng rng(seed, "random_sparse_vector");
  std::unordered_set<Index> chosen;
  chosen.reserve(static_cast<std::size_t>(target) * 2);
  while (chosen.size() < target) {
    chosen.insert(static_cast<Index>(rng.next_below(dimension)));
  }
  std::vector<Index> idx(chosen.begin(), chosen.end());
  std::sort(idx.begin(), idx.end());
  SparseVector out(dimension);
  for (Index i : idx) out.push_back(i, draw_value(rng, dist));
  return out;
}

DenseVector random_dense_vector(Index dimension, std::uint64_t seed,
                                ValueDist dist) {
  Rng rng(seed, "random_dense_vector");
  DenseVector out(dimension);
  for (Index i = 0; i < dimension; ++i) out[i] = draw_value(rng, dist);
  return out;
}

}  // namespace cosparse::sparse
