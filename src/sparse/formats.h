// Sparse matrix storage formats.
//
// CoSPARSE keeps two copies of the adjacency matrix resident (paper
// §III-D.2): row-major COO for the inner-product kernel and CSC for the
// outer-product kernel, avoiding conversion at reconfiguration time. CSR is
// provided for the native baselines (mini-Ligra pull direction, CPU SpMV).
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace cosparse::sparse {

/// One non-zero element in coordinate form.
struct Triplet {
  Index row = 0;
  Index col = 0;
  Value value = 0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate format, sorted row-major (row, then column), duplicates
/// combined at construction. This is the IP kernel's streaming layout.
class Coo {
 public:
  Coo() = default;
  /// Builds from an arbitrary triplet list; sorts row-major and sums
  /// duplicate coordinates.
  Coo(Index rows, Index cols, std::vector<Triplet> triplets);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return triplets_.size(); }
  [[nodiscard]] double density() const;
  [[nodiscard]] const std::vector<Triplet>& triplets() const {
    return triplets_;
  }

 private:
  Index rows_ = 0, cols_ = 0;
  std::vector<Triplet> triplets_;
};

/// Compressed sparse row. `row_ptr` has rows()+1 entries; column indices
/// within a row are sorted.
class Csr {
 public:
  Csr() = default;
  Csr(Index rows, Index cols, std::vector<Offset> row_ptr,
      std::vector<Index> col_idx, std::vector<Value> values);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return col_idx_.size(); }
  [[nodiscard]] double density() const;

  [[nodiscard]] const std::vector<Offset>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<Index>& col_idx() const { return col_idx_; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  [[nodiscard]] Offset row_begin(Index r) const { return row_ptr_[r]; }
  [[nodiscard]] Offset row_end(Index r) const { return row_ptr_[r + 1]; }
  [[nodiscard]] Index row_nnz(Index r) const {
    return static_cast<Index>(row_end(r) - row_begin(r));
  }

 private:
  Index rows_ = 0, cols_ = 0;
  std::vector<Offset> row_ptr_;
  std::vector<Index> col_idx_;
  std::vector<Value> values_;
};

/// Compressed sparse column (the OP kernel's layout). `col_ptr` has
/// cols()+1 entries; row indices within a column are sorted — the OP merge
/// relies on this ordering.
class Csc {
 public:
  Csc() = default;
  Csc(Index rows, Index cols, std::vector<Offset> col_ptr,
      std::vector<Index> row_idx, std::vector<Value> values);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return row_idx_.size(); }
  [[nodiscard]] double density() const;

  [[nodiscard]] const std::vector<Offset>& col_ptr() const { return col_ptr_; }
  [[nodiscard]] const std::vector<Index>& row_idx() const { return row_idx_; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  [[nodiscard]] Offset col_begin(Index c) const { return col_ptr_[c]; }
  [[nodiscard]] Offset col_end(Index c) const { return col_ptr_[c + 1]; }
  [[nodiscard]] Index col_nnz(Index c) const {
    return static_cast<Index>(col_end(c) - col_begin(c));
  }

 private:
  Index rows_ = 0, cols_ = 0;
  std::vector<Offset> col_ptr_;
  std::vector<Index> row_idx_;
  std::vector<Value> values_;
};

// ---- conversions (all O(nnz)) ----
Csr coo_to_csr(const Coo& coo);
Csc coo_to_csc(const Coo& coo);
Coo csr_to_coo(const Csr& csr);
Coo csc_to_coo(const Csc& csc);
Csc csr_to_csc(const Csr& csr);
Csr csc_to_csr(const Csc& csc);

/// Transposes (rows/cols swap, entries mirrored). Graph algorithms operate
/// on G^T (paper Fig. 2: f_next = SpMV(G.T, f)).
Coo transpose(const Coo& coo);

/// Symmetrizes a square matrix: the result contains (i, j) and (j, i) for
/// every input entry (duplicates combined by summation). Used by
/// undirected-graph algorithms (e.g. connected components) on directed
/// inputs.
Coo symmetrize(const Coo& coo);

}  // namespace cosparse::sparse
