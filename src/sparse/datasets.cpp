#include "sparse/datasets.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <unordered_set>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "sparse/generate.h"
#include "sparse/io.h"
#include "sparse/serialize.h"

namespace cosparse::sparse {
namespace {

// Seeds are fixed per dataset so that every bench/test sees the identical
// stand-in graph.
std::uint64_t seed_for(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (char ch : name) {
    h ^= static_cast<unsigned char>(ch);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

DatasetRegistry::DatasetRegistry(std::string data_dir)
    : data_dir_(std::move(data_dir)) {
  if (data_dir_.empty()) {
    if (const char* env = std::getenv("COSPARSE_DATA_DIR")) data_dir_ = env;
  }
}

const std::vector<DatasetSpec>& DatasetRegistry::specs() {
  // Paper Table III, verbatim.
  static const std::vector<DatasetSpec> kSpecs = {
      {"livejournal", 4847571, 68992772, /*directed=*/true, /*power_law=*/true,
       2.9e-6},
      {"pokec", 1632803, 30622564, true, true, 1.2e-5},
      {"youtube", 1134890, 2987624, /*directed=*/false, true, 2.3e-6},
      {"twitter", 81306, 1768149, true, true, 2.7e-4},
      {"vsp", 21996, 2442056, /*directed=*/false, /*power_law=*/false, 5.0e-3},
  };
  return kSpecs;
}

const DatasetSpec& DatasetRegistry::spec(const std::string& name) {
  for (const auto& s : specs()) {
    if (s.name == name) return s;
  }
  throw Error("unknown dataset: '" + name +
              "' (expected one of livejournal/pokec/youtube/twitter/vsp)");
}

Graph DatasetRegistry::load(const std::string& name, unsigned scale,
                            std::uint64_t seed_offset) const {
  COSPARSE_REQUIRE(scale >= 1, "dataset scale divisor must be >= 1");
  const DatasetSpec& s = spec(name);

  // Generated stand-ins are deterministic, so they can be cached on disk
  // (COSPARSE_CACHE_DIR) and reloaded instead of regenerated. A nonzero
  // seed offset names a distinct cache entry.
  std::string cache_path;
  if (const char* cache_dir = std::getenv("COSPARSE_CACHE_DIR")) {
    std::filesystem::create_directories(cache_dir);
    const std::string seed_tag =
        seed_offset == 0 ? "" : "_seed" + std::to_string(seed_offset);
    cache_path = (std::filesystem::path(cache_dir) /
                  (name + "_scale" + std::to_string(scale) + seed_tag +
                   ".bin"))
                     .string();
    if (std::filesystem::exists(cache_path)) {
      try {
        return Graph(name, read_binary(cache_path), s.directed);
      } catch (const Error& e) {
        log::warn("ignoring bad dataset cache ", cache_path, ": ", e.what());
      }
    }
  }

  if (!data_dir_.empty()) {
    const auto path = std::filesystem::path(data_dir_) / (name + ".txt");
    if (std::filesystem::exists(path)) {
      log::info("loading real dataset ", name, " from ", path.string());
      return Graph(name, read_edge_list(path.string(), !s.directed),
                   s.directed);
    }
    log::warn("dataset file ", path.string(),
              " not found; falling back to synthetic stand-in");
  }

  const Index vertices = std::max<Index>(16, s.vertices / scale);
  const std::uint64_t edges = std::max<std::uint64_t>(
      vertices, s.edges / scale);
  // Mix the caller's seed offset into the per-name seed; splitmix-style
  // scrambling keeps seed 1 and seed 2 uncorrelated.
  const std::uint64_t seed =
      seed_for(name) ^ (seed_offset * 0x9E3779B97F4A7C15ULL);

  Coo adj;
  if (s.power_law) {
    // R-MAT with standard Graph500-like skew reproduces the heavy-tailed
    // degree distribution of the SNAP social networks. The matrix is
    // generated at the next power-of-two dimension and cropped.
    const auto rmat_scale = static_cast<std::uint32_t>(
        std::ceil(std::log2(static_cast<double>(vertices))));
    Coo square = rmat(rmat_scale, edges, 0.57, 0.19, 0.19, seed,
                      ValueDist::kUniformInt);
    std::vector<Triplet> cropped;
    cropped.reserve(square.nnz());
    for (const auto& t : square.triplets()) {
      // Fold out-of-range coordinates back instead of dropping them so the
      // edge count stays (nearly) exact.
      Triplet folded{t.row % vertices, t.col % vertices, t.value};
      cropped.push_back(folded);
    }
    adj = Coo(vertices, vertices, std::move(cropped));
    // Folding can collide a few edges (Coo combines duplicates); top the
    // count back up with uniform extras so |E| matches the spec exactly.
    if (adj.nnz() < edges) {
      std::unordered_set<std::uint64_t> seen;
      seen.reserve(adj.nnz() * 2);
      std::vector<Triplet> topped = adj.triplets();
      for (const auto& t : topped) {
        seen.insert((static_cast<std::uint64_t>(t.row) << 32) | t.col);
      }
      Rng rng(seed ^ 0xA5A5A5A5ULL);
      while (topped.size() < edges) {
        const auto r = static_cast<Index>(rng.next_below(vertices));
        const auto c = static_cast<Index>(rng.next_below(vertices));
        if (seen.insert((static_cast<std::uint64_t>(r) << 32) | c).second) {
          topped.push_back(
              {r, c, static_cast<Value>(1 + rng.next_below(16))});
        }
      }
      adj = Coo(vertices, vertices, std::move(topped));
    }
  } else {
    adj = uniform_random(vertices, vertices, edges, seed,
                         ValueDist::kUniformInt);
  }

  if (!s.directed) {
    // Mirror edges for undirected graphs (youtube, vsp).
    std::vector<Triplet> sym = adj.triplets();
    sym.reserve(adj.nnz() * 2);
    for (const auto& t : adj.triplets()) {
      if (t.row != t.col) sym.push_back({t.col, t.row, t.value});
    }
    adj = Coo(vertices, vertices, std::move(sym));
  }

  if (!cache_path.empty()) {
    try {
      write_binary(cache_path, adj);
    } catch (const Error& e) {
      log::warn("could not write dataset cache ", cache_path, ": ", e.what());
    }
  }
  return Graph(name, std::move(adj), s.directed);
}

}  // namespace cosparse::sparse
