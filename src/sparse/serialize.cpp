#include "sparse/serialize.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.h"

namespace cosparse::sparse {
namespace {

constexpr std::uint64_t kMagic = 0x434F53'50415253ULL;  // "COSPARS"
constexpr std::uint32_t kVersion = 1;

// FNV-1a over the triplet payload: cheap, order-sensitive, good enough to
// catch truncation and bit rot.
std::uint64_t checksum(const std::vector<Triplet>& triplets) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ULL;
    }
  };
  for (const auto& t : triplets) {
    mix(&t.row, sizeof(t.row));
    mix(&t.col, sizeof(t.col));
    mix(&t.value, sizeof(t.value));
  }
  return h;
}

template <class T>
void put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T get(std::ifstream& in, const std::string& path) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw Error(path + ": truncated matrix file");
  return v;
}

}  // namespace

void write_binary(const std::string& path, const Coo& coo) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("cannot open for writing: " + path);
  put(out, kMagic);
  put(out, kVersion);
  put(out, coo.rows());
  put(out, coo.cols());
  put(out, static_cast<std::uint64_t>(coo.nnz()));
  for (const auto& t : coo.triplets()) {
    put(out, t.row);
    put(out, t.col);
    put(out, t.value);
  }
  put(out, checksum(coo.triplets()));
  if (!out) throw Error("error writing: " + path);
}

Coo read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open matrix file: " + path);
  if (get<std::uint64_t>(in, path) != kMagic) {
    throw Error(path + ": not a CoSPARSE binary matrix (bad magic)");
  }
  if (get<std::uint32_t>(in, path) != kVersion) {
    throw Error(path + ": unsupported matrix file version");
  }
  const auto rows = get<Index>(in, path);
  const auto cols = get<Index>(in, path);
  const auto nnz = get<std::uint64_t>(in, path);
  std::vector<Triplet> triplets;
  triplets.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    Triplet t;
    t.row = get<Index>(in, path);
    t.col = get<Index>(in, path);
    t.value = get<Value>(in, path);
    triplets.push_back(t);
  }
  const auto stored = get<std::uint64_t>(in, path);
  if (stored != checksum(triplets)) {
    throw Error(path + ": checksum mismatch (corrupt matrix file)");
  }
  return Coo(rows, cols, std::move(triplets));
}

}  // namespace cosparse::sparse
