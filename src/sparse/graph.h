// Graph wrapper over the sparse formats.
//
// A Graph owns the adjacency matrix A (A[u][v] = weight of edge u -> v) and
// derived data the algorithm layer needs: out-degrees (PageRank divides by
// deg(src), paper Table I) and directedness. CoSPARSE iterates
// f_next = SpMV(G^T, f) (paper Fig. 2), so the engine transposes once at
// construction.
#pragma once

#include <string>

#include "sparse/formats.h"

namespace cosparse::sparse {

class Graph {
 public:
  Graph() = default;
  Graph(std::string name, Coo adjacency, bool directed);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Index num_vertices() const { return adjacency_.rows(); }
  [[nodiscard]] std::size_t num_edges() const { return adjacency_.nnz(); }
  [[nodiscard]] bool directed() const { return directed_; }
  [[nodiscard]] double density() const { return adjacency_.density(); }

  /// Adjacency matrix A, row u holding u's out-edges.
  [[nodiscard]] const Coo& adjacency() const { return adjacency_; }

  /// Out-degree of every vertex (number of out-edges).
  [[nodiscard]] const std::vector<Index>& out_degrees() const {
    return out_degrees_;
  }

  /// Average out-degree.
  [[nodiscard]] double average_degree() const;

 private:
  std::string name_;
  Coo adjacency_;
  bool directed_ = true;
  std::vector<Index> out_degrees_;
};

}  // namespace cosparse::sparse
