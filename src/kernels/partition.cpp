#include "kernels/partition.h"

#include <algorithm>

#include "common/error.h"

namespace cosparse::kernels {

std::vector<Index> split_rows(const std::vector<Offset>& row_nnz,
                              std::uint32_t parts, bool nnz_balanced) {
  COSPARSE_CHECK(parts >= 1);
  const auto num_rows = static_cast<Index>(row_nnz.size());
  std::vector<Index> bounds(parts + 1, num_rows);
  bounds[0] = 0;
  if (!nnz_balanced) {
    for (std::uint32_t p = 1; p < parts; ++p) {
      bounds[p] = static_cast<Index>(
          static_cast<std::uint64_t>(num_rows) * p / parts);
    }
    return bounds;
  }
  // Greedy split on the non-zero prefix sum: boundary p is the first row at
  // which the running total reaches p/parts of all non-zeros.
  Offset total = 0;
  for (Offset c : row_nnz) total += c;
  Offset acc = 0;
  std::uint32_t p = 1;
  for (Index r = 0; r < num_rows && p < parts; ++r) {
    acc += row_nnz[r];
    while (p < parts && acc >= total * p / parts) {
      bounds[p] = r + 1;
      ++p;
    }
  }
  // Boundaries must be non-decreasing even for degenerate inputs.
  for (std::uint32_t i = 1; i <= parts; ++i) {
    bounds[i] = std::max(bounds[i], bounds[i - 1]);
  }
  return bounds;
}

namespace {

std::vector<Offset> count_row_nnz(const sparse::Coo& m) {
  std::vector<Offset> row_nnz(m.rows(), 0);
  for (const auto& t : m.triplets()) ++row_nnz[t.row];
  return row_nnz;
}

}  // namespace

IpPartitionedMatrix IpPartitionedMatrix::build(const sparse::Coo& m,
                                               std::uint32_t num_pes,
                                               Index vblock_cols,
                                               bool nnz_balanced) {
  IpPartitionedMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  if (vblock_cols == 0 || vblock_cols >= m.cols()) {
    out.vblock_cols_ = m.cols();
    out.num_vblocks_ = 1;
  } else {
    out.vblock_cols_ = vblock_cols;
    out.num_vblocks_ = (m.cols() + vblock_cols - 1) / vblock_cols;
  }

  const auto row_nnz = count_row_nnz(m);
  const auto bounds = split_rows(row_nnz, num_pes, nnz_balanced);

  // Row prefix sum to locate each partition's element range in the
  // row-major triplet array.
  std::vector<Offset> row_start(m.rows() + 1, 0);
  for (Index r = 0; r < m.rows(); ++r) {
    row_start[r + 1] = row_start[r] + row_nnz[r];
  }

  out.elems_.resize(m.nnz());
  out.partitions_.resize(num_pes);
  const auto& src = m.triplets();

  Offset write_pos = 0;
  for (std::uint32_t p = 0; p < num_pes; ++p) {
    PePartition& part = out.partitions_[p];
    part.row_begin = bounds[p];
    part.row_end = bounds[p + 1];
    const Offset e_begin = row_start[part.row_begin];
    const Offset e_end = row_start[part.row_end];

    // Counting sort by vblock, stable, so elements stay row-major within
    // each vblock.
    std::vector<Offset> counts(out.num_vblocks_ + 1, 0);
    for (Offset k = e_begin; k < e_end; ++k) {
      ++counts[src[k].col / out.vblock_cols_ + 1];
    }
    for (std::uint32_t vb = 0; vb < out.num_vblocks_; ++vb) {
      counts[vb + 1] += counts[vb];
    }
    part.vblocks.resize(out.num_vblocks_);
    for (std::uint32_t vb = 0; vb < out.num_vblocks_; ++vb) {
      part.vblocks[vb] = {write_pos + counts[vb], write_pos + counts[vb + 1]};
    }
    std::vector<Offset> cursor(counts.begin(), counts.end() - 1);
    for (Offset k = e_begin; k < e_end; ++k) {
      const std::uint32_t vb = src[k].col / out.vblock_cols_;
      out.elems_[write_pos + cursor[vb]++] = src[k];
    }
    write_pos += e_end - e_begin;
  }
  COSPARSE_CHECK(write_pos == m.nnz());
  return out;
}

OpStripedMatrix OpStripedMatrix::build(const sparse::Coo& m,
                                       std::uint32_t num_tiles,
                                       bool nnz_balanced) {
  OpStripedMatrix out;
  out.rows_ = m.rows();
  out.cols_ = m.cols();
  out.nnz_ = m.nnz();

  const auto row_nnz = count_row_nnz(m);
  const auto bounds = split_rows(row_nnz, num_tiles, nnz_balanced);

  out.stripes_.resize(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    TileStripe& s = out.stripes_[t];
    s.row_begin = bounds[t];
    s.row_end = bounds[t + 1];
    s.col_ptr.assign(static_cast<std::size_t>(m.cols()) + 1, 0);
  }

  // Count per (stripe, column), then scatter. The row-major input order
  // guarantees ascending rows within each column of each stripe.
  auto stripe_of = [&](Index row) {
    // Row partitions are few (<= 16); linear scan beats binary search here.
    for (std::uint32_t t = 0; t < num_tiles; ++t) {
      if (row < bounds[t + 1]) return t;
    }
    return num_tiles - 1;
  };

  for (const auto& tr : m.triplets()) {
    ++out.stripes_[stripe_of(tr.row)].col_ptr[tr.col + 1];
  }
  for (auto& s : out.stripes_) {
    for (Index c = 0; c < m.cols(); ++c) s.col_ptr[c + 1] += s.col_ptr[c];
    s.elems.resize(s.col_ptr[m.cols()]);
  }
  std::vector<std::vector<Offset>> cursor(num_tiles);
  for (std::uint32_t t = 0; t < num_tiles; ++t) {
    cursor[t].assign(out.stripes_[t].col_ptr.begin(),
                     out.stripes_[t].col_ptr.end() - 1);
  }
  for (const auto& tr : m.triplets()) {
    const std::uint32_t t = stripe_of(tr.row);
    out.stripes_[t].elems[cursor[t][tr.col]++] = {tr.row, tr.value};
  }
  return out;
}

}  // namespace cosparse::kernels
