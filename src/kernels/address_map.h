// Maps host arrays to stable simulated physical addresses.
//
// Kernels run functionally on host data but charge timing against simulated
// addresses. An AddressMap assigns each distinct host array a line-aligned
// range in the machine's address space, memoized by pointer so that the
// same matrix keeps the same addresses across iterations (preserving
// inter-iteration cache residency where it physically would exist).
#pragma once

#include <string_view>
#include <unordered_map>

#include "sim/machine.h"

namespace cosparse::kernels {

class AddressMap {
 public:
  explicit AddressMap(sim::Machine& machine) : machine_(&machine) {}

  /// Address of the first byte of the array identified by `host`. The
  /// label is mandatory: it names the allocation region for the memory
  /// profiler (canonical scheme: "matrix.*" for adjacency structure,
  /// "vector.*" for frontier/operand data, "output.*" for results).
  Addr of(const void* host, std::size_t bytes, std::string_view label) {
    auto it = map_.find(host);
    if (it != map_.end()) return it->second;
    const Addr a = machine_->alloc(bytes, label);
    map_.emplace(host, a);
    return a;
  }

  [[nodiscard]] sim::Machine& machine() const { return *machine_; }

 private:
  sim::Machine* machine_;
  std::unordered_map<const void*, Addr> map_;
};

}  // namespace cosparse::kernels
