// Maps host arrays to stable simulated physical addresses.
//
// Kernels run functionally on host data but charge timing against simulated
// addresses. An AddressMap assigns each distinct host array a line-aligned
// range in the machine's address space, memoized by pointer so that the
// same matrix keeps the same addresses across iterations (preserving
// inter-iteration cache residency where it physically would exist).
#pragma once

#include <string_view>
#include <unordered_map>

#include "common/error.h"
#include "sim/machine.h"

namespace cosparse::kernels {

class AddressMap {
 public:
  explicit AddressMap(sim::Machine& machine) : machine_(&machine) {}

  /// Address of the first byte of the array identified by `host`. The
  /// label is mandatory: it names the allocation region for the memory
  /// profiler (canonical scheme: "matrix.*" for adjacency structure,
  /// "vector.*" for frontier/operand data, "output.*" for results).
  /// Zero-sized regions are an error — an empty array has no bytes to
  /// address, and a silent zero-byte mapping would alias the next
  /// allocation (cosparse-lint flags the same defect statically as
  /// "address.zero-region"). Callers with legitimately empty arrays must
  /// skip the mapping; by construction they also issue no accesses.
  Addr of(const void* host, std::size_t bytes, std::string_view label) {
    COSPARSE_REQUIRE(bytes > 0, "AddressMap::of: zero-sized region '" +
                                    std::string(label) + "'");
    auto it = map_.find(host);
    if (it != map_.end()) return it->second;
    const Addr a = machine_->alloc(bytes, label);
    map_.emplace(host, a);
    return a;
  }

  /// Number of distinct host arrays mapped so far.
  [[nodiscard]] std::size_t size() const { return map_.size(); }

  /// Visits every region this map created, in allocation order, as
  /// (base, bytes, label). Iterates the owning machine's allocation
  /// records filtered to this map's bases, so labels and sizes are the
  /// ones the allocator actually recorded.
  template <class Fn>
  void for_each_region(Fn&& fn) const {
    for (const auto& rec : machine_->allocations()) {
      if (!owns(rec.base)) continue;
      fn(rec.base, rec.bytes, std::string_view(rec.label));
    }
  }

  [[nodiscard]] sim::Machine& machine() const { return *machine_; }

 private:
  [[nodiscard]] bool owns(Addr base) const {
    for (const auto& [host, a] : map_) {
      if (a == base) return true;
    }
    return false;
  }

  sim::Machine* machine_;
  std::unordered_map<const void*, Addr> map_;
};

}  // namespace cosparse::kernels
