#include "kernels/region_plan.h"

#include <algorithm>

#include "common/error.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"

namespace cosparse::kernels {

const char* to_string(RegionScope s) {
  switch (s) {
    case RegionScope::kGlobal: return "global";
    case RegionScope::kPerTile: return "per_tile";
    case RegionScope::kPerPe: return "per_pe";
  }
  return "?";
}

RegionScope region_scope_from_string(const std::string& s) {
  if (s == "global") return RegionScope::kGlobal;
  if (s == "per_tile") return RegionScope::kPerTile;
  if (s == "per_pe") return RegionScope::kPerPe;
  throw Error("unknown region scope '" + s +
              "' (expected global, per_tile or per_pe)");
}

Index default_vblock_cols(const sim::SystemConfig& cfg) {
  const double spm = static_cast<double>(cfg.scs_spm_bytes_per_tile());
  const auto cols = static_cast<Index>(spm / 8.0);
  // Round down to a multiple of 64 so vblock boundaries are line-aligned
  // (keeps DMA fills and bitmap words from straddling blocks).
  return std::max<Index>(64, cols / 64 * 64);
}

std::vector<PlannedRegion> plan_ip_regions(const sim::SystemConfig& cfg,
                                           const PlanShape& shape, bool scs,
                                           bool vblocked) {
  const auto n = static_cast<std::size_t>(shape.dimension);
  std::vector<PlannedRegion> regions;
  regions.push_back({"matrix.elems", shape.matrix_nnz * kIpElemBytes,
                     RegionScope::kGlobal, false, false, std::nullopt});
  regions.push_back({"vector.dense", n * kValueBytes, RegionScope::kGlobal,
                     false, false, std::nullopt});
  regions.push_back({"vector.bitmap", n / 8 + 1, RegionScope::kGlobal, false,
                     false, std::nullopt});
  regions.push_back({"output.y", n * kValueBytes, RegionScope::kGlobal, false,
                     false, std::nullopt});
  if (scs) {
    // The SPM-pinned vector segment of the active vblock (Fig. 3 step 1).
    // Without vblocking the whole value array must fit the tile SPM.
    const std::size_t segment =
        vblocked
            ? static_cast<std::size_t>(std::min<Index>(
                  shape.dimension, default_vblock_cols(cfg))) * kValueBytes
            : n * kValueBytes;
    regions.push_back({"vector.vblock_segment", segment,
                       RegionScope::kPerTile, true, false, std::nullopt});
  }
  return regions;
}

std::vector<PlannedRegion> plan_op_regions(const sim::SystemConfig& cfg,
                                           const PlanShape& shape, bool ps) {
  const std::uint32_t tiles = std::max<std::uint32_t>(1, cfg.num_tiles);
  const std::uint32_t P = std::max<std::uint32_t>(1, cfg.pes_per_tile);
  // Per-PE share of x within a tile (every tile scans all of x).
  const std::size_t chunk = (shape.frontier_nnz + P - 1) / P;
  std::vector<PlannedRegion> regions;
  regions.push_back({"vector.sparse", shape.frontier_nnz * kOpEntryBytes,
                     RegionScope::kGlobal, false, false, std::nullopt});
  regions.push_back({"matrix.op_elems",
                     static_cast<std::size_t>((shape.matrix_nnz + tiles - 1) /
                                              tiles) * kOpElemBytes,
                     RegionScope::kPerTile, false, false, std::nullopt});
  regions.push_back({"matrix.col_ptr",
                     (static_cast<std::size_t>(shape.dimension) + 1) * 8,
                     RegionScope::kPerTile, false, false, std::nullopt});
  // Sorted-list heap: one sub-range per PE. Under PS it lives in the
  // private SPM with graceful spill of the cold bottom levels.
  regions.push_back({"op.heap", (chunk + 1) * kHeapNodeBytes,
                     RegionScope::kPerPe, ps, /*spill_ok=*/true,
                     std::nullopt});
  return regions;
}

}  // namespace cosparse::kernels
