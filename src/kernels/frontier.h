// Dense frontier encoding used by the inner-product dataflow.
//
// A dense frontier is a value array plus a validity bitmap (one bit per
// vertex in hardware; a byte per vertex on the host for speed). The IP
// kernel checks the bitmap before loading the 8-byte value, which is what
// makes the SCS-vs-SC trade-off density-dependent (paper Fig. 5): the
// value-load traffic scales with frontier density, while the bitmap stream
// is small and caches well.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/vector.h"

namespace cosparse::kernels {

struct DenseFrontier {
  sparse::DenseVector values;
  std::vector<std::uint8_t> active;  ///< 1 if the vertex is in the frontier
  std::size_t num_active = 0;

  DenseFrontier() = default;
  /// All-inactive frontier of the given dimension, values at `identity`.
  DenseFrontier(Index dimension, Value identity)
      : values(dimension, identity), active(dimension, 0) {}

  [[nodiscard]] Index dimension() const { return values.dimension(); }
  [[nodiscard]] double density() const {
    return dimension() == 0 ? 0.0
                            : static_cast<double>(num_active) /
                                  static_cast<double>(dimension());
  }
  [[nodiscard]] bool all_active() const {
    return num_active == dimension() && dimension() > 0;
  }

  void set(Index i, Value v) {
    if (!active[i]) {
      active[i] = 1;
      ++num_active;
    }
    values[i] = v;
  }

  /// Builds a dense frontier from a sparse one; inactive slots hold
  /// `identity`.
  static DenseFrontier from_sparse(const sparse::SparseVector& sv,
                                   Value identity) {
    DenseFrontier f(sv.dimension(), identity);
    for (const auto& e : sv.entries()) f.set(e.index, e.value);
    return f;
  }

  /// Builds an all-active frontier from a plain dense vector.
  static DenseFrontier from_dense(const sparse::DenseVector& v) {
    DenseFrontier f;
    f.values = v;
    f.active.assign(v.dimension(), 1);
    f.num_active = v.dimension();
    return f;
  }

  [[nodiscard]] sparse::SparseVector to_sparse() const {
    sparse::SparseVector sv(dimension());
    for (Index i = 0; i < dimension(); ++i) {
      if (active[i]) sv.push_back(i, values[i]);
    }
    return sv;
  }
};

}  // namespace cosparse::kernels
