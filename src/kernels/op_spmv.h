// Outer-product SpMV kernel (paper Fig. 3, bottom).
//
// Dataflow: the matrix is striped by rows across tiles (CSC slices); within
// a tile the LCP hands each PE an equal contiguous chunk of the sparse
// input vector's non-zeros. Each PE k-way-merges the matrix columns
// selected by its chunk using a binary min-heap keyed on row index,
// combining same-row contributions and emitting each finished row to the
// tile's LCP, which serializes writeback (and combines partial rows across
// the tile's PEs before applying the semiring's finalize step once).
//
// Under PS the heap lives in the PE-private scratchpad; entries beyond SPM
// capacity spill to memory, but the heap's tree shape keeps the hot top
// levels — the majority of compares and swaps — inside the SPM (paper
// §III-A). Under PC the heap is ordinary cacheable memory, contending with
// the k column streams for the 4 kB private L1.
//
// Execution interleaving: the PEs of a tile are advanced round-robin in
// small bursts (kOpInterleavePops row-groups per turn) so that the shared
// levels of the hierarchy (per-tile L2, DRAM) see the *concurrent* working
// set of all PEs, not one PE's private working set at a time — this is
// what makes long sorted lists expensive, exactly as §III-C.3 describes.
#pragma once

#include <vector>

#include "kernels/address_map.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "sim/machine.h"
#include "sparse/vector.h"

namespace cosparse::kernels {

struct OpResult {
  sparse::SparseVector y;  ///< touched rows only, sorted by row
};

/// Modeled footprints (bytes).
inline constexpr std::uint32_t kOpElemBytes = 12;   ///< (row u32, value f64)
inline constexpr std::uint32_t kOpEntryBytes = 12;  ///< x (index, value)
inline constexpr std::uint32_t kHeapNodeBytes = 16; ///< (row, cursor, end, x)
inline constexpr std::uint32_t kColPtrBytes = 16;   ///< begin+end offsets

/// Row-groups a PE completes before yielding to the next PE of its tile.
inline constexpr std::uint32_t kOpInterleavePops = 16;

// Templated over the machine/address-map pair for the same reason as
// run_inner_product: the native backend re-runs this exact loop with no-op
// charges (DESIGN.md §14).
template <Semiring S, class Machine = sim::Machine, class AMap = AddressMap>
OpResult run_outer_product(Machine& m, AMap& amap,
                           const OpStripedMatrix& A,
                           const sparse::SparseVector& x,
                           const sparse::DenseVector* x_dst_old, const S& sr) {
  COSPARSE_CHECK_MSG(A.cols() == x.dimension(),
                     "OP: matrix/vector dimension mismatch");
  if constexpr (S::kUsesDst) {
    COSPARSE_CHECK_MSG(x_dst_old != nullptr &&
                           x_dst_old->dimension() == A.rows(),
                       "OP: semiring uses destination values but none given");
  }
  const bool ps = m.hw() == sim::HwConfig::kPS;
  const std::size_t spm_per_pe = m.spm_bytes_per_pe();

  OpResult out;
  out.y = sparse::SparseVector(A.rows());
  const auto& stripes = A.stripes();
  COSPARSE_CHECK_MSG(stripes.size() == m.num_tiles(),
                     "OP stripe count does not match machine tiles");

  // Empty frontiers/stripes have no bytes to place (and issue no
  // accesses); AddressMap::of rejects zero-sized regions.
  const Addr x_base =
      x.nnz() == 0
          ? Addr{0}
          : amap.of(x.entries().data(), x.nnz() * kOpEntryBytes,
                    "vector.sparse");
  const Addr xold_base =
      x_dst_old == nullptr
          ? 0
          : amap.of(x_dst_old->values().data(),
                    static_cast<std::size_t>(x_dst_old->dimension()) * 8,
                    "vector.dense_old");

  struct HeapNode {
    Index row;
    Offset cursor;  ///< index into stripe.elems of the loaded element
    Offset end;
    Value xval;
  };

  const std::uint32_t P = m.pes_per_tile();
  // Per-PE share of x within a tile (every tile scans all of x).
  const std::size_t chunk = (x.nnz() + P - 1) / P;

  // Simulated placement of every tile's structures, hoisted ahead of the
  // tile loop: alloc()/AddressMap registration mutate machine-global state
  // and are phase-illegal once the tile bodies run on parallel host
  // threads (Machine::for_tiles). Allocation order — elems, col_ptr, heap
  // per tile in ascending tile order — matches the historical in-loop
  // order, so addresses and profiler attribution are unchanged.
  struct TilePlacement {
    Addr elems = 0;
    Addr col_ptr = 0;
    Addr heap = 0;
  };
  std::vector<TilePlacement> place(m.num_tiles());
  for (std::uint32_t tile = 0; tile < m.num_tiles(); ++tile) {
    const auto& stripe = stripes[tile];
    place[tile].elems =
        stripe.elems.empty()
            ? Addr{0}
            : amap.of(stripe.elems.data(),
                      stripe.elems.size() * kOpElemBytes, "matrix.op_elems");
    place[tile].col_ptr = amap.of(stripe.col_ptr.data(),
                                  stripe.col_ptr.size() * 8, "matrix.col_ptr");
    // Scratch heap region for this invocation; per-PE sub-ranges.
    place[tile].heap = m.alloc(
        static_cast<std::size_t>(P) * (chunk + 1) * kHeapNodeBytes, "op.heap");
  }

  // Per-tile finished rows; concatenated in tile order below (stripes are
  // ascending disjoint row ranges, so concatenation keeps y sorted).
  std::vector<std::vector<sparse::VectorEntry>> tile_rows(m.num_tiles());

  m.for_tiles([&](std::uint32_t tile) {
    const auto& stripe = stripes[tile];
    const Addr elems_base = place[tile].elems;
    const Addr colptr_base = place[tile].col_ptr;
    const Addr heap_base = place[tile].heap;

    // Per-PE merge state, advanced round-robin.
    struct PeState {
      std::vector<HeapNode> heap;
      std::size_t build_pos = 0;  ///< next x-entry index (build phase)
      std::size_t build_end = 0;
      std::vector<sparse::VectorEntry> emitted;
    };
    std::vector<PeState> state(P);
    for (std::uint32_t lp = 0; lp < P; ++lp) {
      state[lp].build_pos =
          std::min<std::size_t>(static_cast<std::size_t>(lp) * chunk,
                                x.nnz());
      state[lp].build_end =
          std::min<std::size_t>(state[lp].build_pos + chunk, x.nnz());
      state[lp].heap.reserve(state[lp].build_end - state[lp].build_pos);
    }

    auto heap_access = [&](std::uint32_t pe, std::uint32_t lp,
                           std::size_t idx, bool write) {
      const std::size_t off = idx * kHeapNodeBytes;
      if (ps && off + kHeapNodeBytes <= spm_per_pe) {
        if (write) {
          m.spm_write(pe, kHeapNodeBytes);
        } else {
          m.spm_read(pe, kHeapNodeBytes);
        }
        return;
      }
      const Addr a =
          heap_base + static_cast<Addr>(lp) * (chunk + 1) * kHeapNodeBytes +
          off;
      if (write) {
        m.mem_write(pe, a, kHeapNodeBytes);
      } else {
        m.mem_read(pe, a, kHeapNodeBytes);
      }
    };

    auto sift_up = [&](std::uint32_t pe, std::uint32_t lp, std::size_t i) {
      auto& heap = state[lp].heap;
      while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        heap_access(pe, lp, parent, false);
        m.compute(pe, 1);
        if (heap[parent].row <= heap[i].row) break;
        std::swap(heap[parent], heap[i]);
        heap_access(pe, lp, parent, true);
        heap_access(pe, lp, i, true);
        i = parent;
      }
    };

    auto sift_down = [&](std::uint32_t pe, std::uint32_t lp, std::size_t i) {
      auto& heap = state[lp].heap;
      const std::size_t n = heap.size();
      while (true) {
        const std::size_t l = 2 * i + 1, r = 2 * i + 2;
        std::size_t smallest = i;
        if (l < n) {
          heap_access(pe, lp, l, false);
          m.compute(pe, 1);
          if (heap[l].row < heap[smallest].row) smallest = l;
        }
        if (r < n) {
          heap_access(pe, lp, r, false);
          m.compute(pe, 1);
          if (heap[r].row < heap[smallest].row) smallest = r;
        }
        if (smallest == i) break;
        std::swap(heap[i], heap[smallest]);
        heap_access(pe, lp, i, true);
        heap_access(pe, lp, smallest, true);
        i = smallest;
      }
    };

    // ---- build + merge, interleaved round-robin across the tile's PEs ----
    bool any_work = true;
    while (any_work) {
      any_work = false;
      for (std::uint32_t lp = 0; lp < P; ++lp) {
        PeState& st = state[lp];
        const std::uint32_t pe = tile * P + lp;

        // Build phase burst: install up to kOpInterleavePops column heads.
        std::uint32_t burst = kOpInterleavePops;
        while (st.build_pos < st.build_end && burst > 0) {
          const auto& e = x.entries()[st.build_pos];
          m.mem_read(pe, x_base + st.build_pos * kOpEntryBytes,
                     kOpEntryBytes);
          m.mem_read(pe, colptr_base + static_cast<Addr>(e.index) * 8,
                     kColPtrBytes);
          m.compute(pe, 2);
          const Offset c0 = stripe.col_begin(e.index);
          const Offset c1 = stripe.col_end(e.index);
          ++st.build_pos;
          --burst;
          if (c0 == c1) continue;  // empty column in this stripe
          m.mem_read(pe, elems_base + c0 * kOpElemBytes, kOpElemBytes);
          st.heap.push_back({stripe.elems[c0].row, c0, c1, e.value});
          heap_access(pe, lp, st.heap.size() - 1, true);
          sift_up(pe, lp, st.heap.size() - 1);
        }
        if (st.build_pos < st.build_end) {
          any_work = true;
          continue;  // keep building next turn; merging starts afterwards
        }

        // Merge phase burst: complete up to kOpInterleavePops row-groups.
        auto& heap = st.heap;
        for (std::uint32_t pops = 0;
             pops < kOpInterleavePops && !heap.empty(); ++pops) {
          const Index row = heap[0].row;
          Value acc = sr.reduce_identity();
          Value xdst = 0;
          if constexpr (S::kUsesDst) {
            m.mem_read(pe, xold_base + static_cast<Addr>(row) * 8, 8);
            xdst = (*x_dst_old)[row];
          }
          while (!heap.empty() && heap[0].row == row) {
            heap_access(pe, lp, 0, false);
            const HeapNode& top = heap[0];
            m.compute(pe, S::kEdgeOps);
            acc = sr.reduce(acc, sr.edge(stripe.elems[top.cursor].value,
                                         top.xval, xdst));
            const Offset next = top.cursor + 1;
            if (next < top.end) {
              m.mem_read(pe, elems_base + next * kOpElemBytes, kOpElemBytes);
              heap[0].cursor = next;
              heap[0].row = stripe.elems[next].row;
              heap_access(pe, lp, 0, true);
            } else {
              heap[0] = heap.back();
              heap.pop_back();
              if (!heap.empty()) heap_access(pe, lp, 0, true);
            }
            if (!heap.empty()) sift_down(pe, lp, 0);
          }
          // Raw (pre-finalize) partial row handed to the LCP.
          m.compute(pe, 1);
          m.lcp_emit(pe, kOpEntryBytes);
          st.emitted.push_back({row, acc});
        }
        if (!heap.empty()) any_work = true;
      }
    }

    // ---- LCP: combine same-row partials across PEs, finalize once ----
    std::vector<std::size_t> cursor(P, 0);
    while (true) {
      Index row = A.rows();
      for (std::uint32_t lp = 0; lp < P; ++lp) {
        if (cursor[lp] < state[lp].emitted.size()) {
          row = std::min(row, state[lp].emitted[cursor[lp]].index);
        }
      }
      if (row == A.rows()) break;
      Value acc = sr.reduce_identity();
      for (std::uint32_t lp = 0; lp < P; ++lp) {
        auto& c = cursor[lp];
        if (c < state[lp].emitted.size() &&
            state[lp].emitted[c].index == row) {
          acc = sr.reduce(acc, state[lp].emitted[c].value);
          ++c;
        }
      }
      const Value xdst =
          (S::kUsesDst && x_dst_old != nullptr) ? (*x_dst_old)[row] : Value{0};
      tile_rows[tile].push_back({row, sr.finalize(acc, xdst)});
    }
    m.tile_barrier(tile);
  });

  for (const auto& rows : tile_rows) {
    for (const sparse::VectorEntry& e : rows) out.y.push_back(e.index, e.value);
  }
  m.global_barrier();
  return out;
}

}  // namespace cosparse::kernels
