// Static workload partitioning (paper §III-B).
//
// Both dataflows first split the matrix into contiguous *row* partitions
// with (approximately) equal non-zero counts — per PE for the inner
// product, per tile for the outer product. The inner product additionally
// splits each partition into vertical blocks (vblocks) sized so the vector
// segment of one vblock fits in the tile's shared scratchpad (Fig. 3).
// The `nnz_balanced=false` variants reproduce the naive equal-row splits
// used as the "w/o partition" baseline of Fig. 7.
#pragma once

#include <vector>

#include "sparse/formats.h"

namespace cosparse::kernels {

/// Splits rows [0, num_rows) into `parts` contiguous ranges.
/// Returns `parts + 1` boundaries. When `nnz_balanced`, boundaries follow
/// the non-zero prefix sum (each part gets ~nnz/parts non-zeros); otherwise
/// each part gets ~num_rows/parts rows.
std::vector<Index> split_rows(const std::vector<Offset>& row_nnz,
                              std::uint32_t parts, bool nnz_balanced);

/// Inner-product layout: one row partition per PE, elements reordered
/// vblock-major (all of vblock 0, then vblock 1, ...) and row-major within
/// each vblock, so every PE streams its elements sequentially while all
/// PEs of a tile work on the same vector segment.
class IpPartitionedMatrix {
 public:
  struct PePartition {
    Index row_begin = 0;
    Index row_end = 0;
    /// Half-open element ranges into elems(), one per vblock.
    std::vector<std::pair<Offset, Offset>> vblocks;
  };

  /// `vblock_cols == 0` disables vertical blocking (single vblock).
  static IpPartitionedMatrix build(const sparse::Coo& m,
                                   std::uint32_t num_pes, Index vblock_cols,
                                   bool nnz_balanced = true);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return elems_.size(); }
  [[nodiscard]] Index vblock_cols() const { return vblock_cols_; }
  [[nodiscard]] std::uint32_t num_vblocks() const { return num_vblocks_; }
  [[nodiscard]] const std::vector<sparse::Triplet>& elems() const {
    return elems_;
  }
  [[nodiscard]] const std::vector<PePartition>& partitions() const {
    return partitions_;
  }

 private:
  Index rows_ = 0, cols_ = 0;
  Index vblock_cols_ = 0;
  std::uint32_t num_vblocks_ = 1;
  std::vector<sparse::Triplet> elems_;
  std::vector<PePartition> partitions_;
};

/// Outer-product layout: one row *stripe* per tile, each stored as a
/// column-compressed slice (rows within a column sorted ascending, which
/// the per-PE merge relies on). Elements pack (row, value) contiguously so
/// a column advance is one streamed load.
class OpStripedMatrix {
 public:
  struct Element {
    Index row = 0;
    Value value = 0;
  };

  struct TileStripe {
    Index row_begin = 0;
    Index row_end = 0;
    std::vector<Offset> col_ptr;  ///< cols + 1 entries
    std::vector<Element> elems;

    [[nodiscard]] Offset col_begin(Index c) const { return col_ptr[c]; }
    [[nodiscard]] Offset col_end(Index c) const { return col_ptr[c + 1]; }
  };

  static OpStripedMatrix build(const sparse::Coo& m, std::uint32_t num_tiles,
                               bool nnz_balanced = true);

  [[nodiscard]] Index rows() const { return rows_; }
  [[nodiscard]] Index cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return nnz_; }
  [[nodiscard]] const std::vector<TileStripe>& stripes() const {
    return stripes_;
  }

 private:
  Index rows_ = 0, cols_ = 0;
  std::size_t nnz_ = 0;
  std::vector<TileStripe> stripes_;
};

}  // namespace cosparse::kernels
