// Inner-product SpMV kernel (paper Fig. 3, top).
//
// Dataflow: every PE streams its nnz-balanced row partition in COO order
// (vblock-major), checks the frontier bitmap for the source vertex, loads
// the 8-byte frontier value only for active sources, and accumulates into
// its exclusive output rows — no synchronization between partitions. Under
// SCS the vector segment of the current vblock (values + bitmap) lives in
// the tile's shared scratchpad, refilled by a DMA per vblock (with a tile
// barrier); under SC the same loop runs with vector accesses through the
// shared L1 cache.
//
// The kernel is functional *and* timed: results are exact, and every
// architectural event is charged to the simulated machine.
#pragma once

#include <vector>

#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/partition.h"
#include "kernels/semiring.h"
#include "sim/machine.h"

namespace cosparse::kernels {

struct IpResult {
  sparse::DenseVector y;               ///< reduce_identity where untouched
  std::vector<std::uint8_t> touched;   ///< 1 where at least one edge landed
  std::size_t num_touched = 0;
};

/// Modeled in-memory footprints (bytes) of the streamed structures.
inline constexpr std::uint32_t kIpElemBytes = 16;  ///< (row, col, value)
inline constexpr std::uint32_t kValueBytes = 8;

/// Elements a PE streams before yielding to the next PE of its tile
/// (round-robin interleaving, so shared caches see concurrent pressure).
inline constexpr std::uint32_t kIpInterleaveElems = 64;

// The machine/address-map types are template parameters (defaulting to the
// simulated pair) so the native backend can run this exact loop with
// charge-free stand-ins (native::HostMachine / native::NullAddressMap,
// DESIGN.md §14): same operations, same order, bit-identical results.
template <Semiring S, class Machine = sim::Machine, class AMap = AddressMap>
IpResult run_inner_product(Machine& m, AMap& amap,
                           const IpPartitionedMatrix& A,
                           const DenseFrontier& x, const S& sr) {
  COSPARSE_CHECK_MSG(A.cols() == x.dimension(),
                     "IP: matrix/vector dimension mismatch");
  const Index n_rows = A.rows();
  const Index n_cols = A.cols();
  const bool all_active = x.all_active();
  const bool scs = m.hw() == sim::HwConfig::kSCS;

  IpResult out;
  out.y = sparse::DenseVector(n_rows, sr.reduce_identity());
  out.touched.assign(n_rows, 0);

  // Simulated placement of the persistent arrays. An empty matrix has no
  // element stream to place (and the loops below never touch it);
  // AddressMap::of rejects zero-sized regions.
  const Addr elems_base =
      A.nnz() == 0
          ? Addr{0}
          : amap.of(A.elems().data(), A.nnz() * kIpElemBytes, "matrix.elems");
  const Addr xval_base = amap.of(x.values.values().data(),
                                 static_cast<std::size_t>(n_cols) * kValueBytes,
                                 "vector.dense");
  const Addr xbit_base =
      amap.of(x.active.data(), n_cols / 8 + 1, "vector.bitmap");
  // Output buffer: fresh each invocation (it is new data).
  const Addr y_base = m.alloc(static_cast<std::size_t>(n_rows) * kValueBytes,
                              "output.y");
  // Output initialization to reduce_identity is a bulk DMA store; it costs
  // bandwidth (caught by the roofline) but no PE issue slots.
  m.dma_traffic(static_cast<std::size_t>(n_rows) * kValueBytes,
                /*write=*/true);

  const auto& parts = A.partitions();
  const std::uint32_t pes = m.num_pes();
  COSPARSE_CHECK_MSG(parts.size() == pes,
                     "IP partition count does not match machine PEs");

  // Bytes DMA'd into the SPM per vblock: the vblock's value segment.
  auto segment_bytes = [&](std::uint32_t vb) -> std::size_t {
    const Index c0 = static_cast<Index>(
        static_cast<std::uint64_t>(vb) * A.vblock_cols());
    const Index c1 = std::min<Index>(n_cols, c0 + A.vblock_cols());
    return static_cast<std::size_t>(c1 - c0) * kValueBytes;
  };

  // PEs of a tile are advanced round-robin in bursts of kIpInterleaveElems
  // elements so the shared L1/L2 see the tile's *concurrent* working set
  // (see the class comment in op_spmv.h for why this matters).
  struct PeState {
    Offset k = 0, k_end = 0;
    Index cur_row = 0;
    Value acc = 0;
    bool acc_open = false;
  };
  std::vector<PeState> state(pes);
  // Tile bodies may run on parallel host threads (Machine::for_tiles), so
  // the touched-row tally is kept per tile and summed afterwards; rows
  // themselves are PE-exclusive, so y/touched need no coordination.
  std::vector<std::size_t> tile_touched(m.num_tiles(), 0);

  for (std::uint32_t vb = 0; vb < A.num_vblocks(); ++vb) {
    m.for_tiles([&](std::uint32_t tile) {
      if (scs) {
        const Addr seg = xval_base + static_cast<Addr>(vb) *
                                         A.vblock_cols() * kValueBytes;
        m.spm_fill_tile(tile, seg, segment_bytes(vb));
      }
      for (std::uint32_t lp = 0; lp < m.pes_per_tile(); ++lp) {
        const std::uint32_t pe = tile * m.pes_per_tile() + lp;
        auto& st = state[pe];
        std::tie(st.k, st.k_end) = parts[pe].vblocks[vb];
        st.cur_row = n_rows;  // sentinel: no open row
        st.acc = sr.reduce_identity();
        st.acc_open = false;
      }

      auto flush_row = [&](std::uint32_t pe, PeState& st) {
        if (!st.acc_open) return;
        // Update of the exclusive output element. On the first touch of a
        // row the old value is the known reduce identity, so the kernel
        // writes directly; later touches (same row, earlier vblock) are
        // read-modify-write. The per-row touched bit lives in a small
        // PE-local bitmap (rows are PE-exclusive) — one ALU cycle.
        m.compute(pe, 1);
        if (out.touched[st.cur_row]) {
          m.mem_read(pe, y_base + static_cast<Addr>(st.cur_row) * kValueBytes,
                     kValueBytes);
        }
        m.mem_write(pe, y_base + static_cast<Addr>(st.cur_row) * kValueBytes,
                    kValueBytes);
        out.y[st.cur_row] = sr.reduce(out.y[st.cur_row], st.acc);
        if (!out.touched[st.cur_row]) {
          out.touched[st.cur_row] = 1;
          ++tile_touched[tile];
        }
        st.acc = sr.reduce_identity();
        st.acc_open = false;
      };

      bool any_left = true;
      while (any_left) {
        any_left = false;
        for (std::uint32_t lp = 0; lp < m.pes_per_tile(); ++lp) {
          const std::uint32_t pe = tile * m.pes_per_tile() + lp;
          auto& st = state[pe];
          const Offset burst_end =
              std::min<Offset>(st.k + kIpInterleaveElems, st.k_end);
          for (; st.k < burst_end; ++st.k) {
            const auto& e = A.elems()[st.k];
            // Matrix element stream (sequential; prefetcher keeps it hot).
            m.mem_read(pe, elems_base + st.k * kIpElemBytes, kIpElemBytes);
            m.compute(pe, 1);  // loop/issue overhead

            if (e.row != st.cur_row) {
              flush_row(pe, st);
              st.cur_row = e.row;
            }

            bool active = true;
            if (!all_active) {
              // Bitmap probe before touching the value (the test-and-branch
              // issues in the load's shadow, so only the access is charged).
              // The bitmap is tiny (N/8 bytes) and caches perfectly, so it
              // stays in the cache half even under SCS — SPM capacity is
              // reserved for the 8-byte values, which are what miss.
              m.mem_read(pe, xbit_base + e.col / 8, 1);
              active = x.active[e.col] != 0;
            }
            if (!active) continue;

            // Frontier value load.
            if (scs) {
              m.spm_read(pe, kValueBytes);
            } else {
              m.mem_read(pe,
                         xval_base + static_cast<Addr>(e.col) * kValueBytes,
                         kValueBytes);
            }
            Value xdst = 0;
            if constexpr (S::kUsesDst) {
              m.mem_read(pe,
                         xval_base + static_cast<Addr>(e.row) * kValueBytes,
                         kValueBytes);
              xdst = x.values[e.row];
            }
            m.compute(pe, S::kEdgeOps);
            st.acc = sr.reduce(st.acc, sr.edge(e.value, x.values[e.col], xdst));
            st.acc_open = true;
          }
          if (st.k < st.k_end) any_left = true;
        }
      }
      for (std::uint32_t lp = 0; lp < m.pes_per_tile(); ++lp) {
        const std::uint32_t pe = tile * m.pes_per_tile() + lp;
        flush_row(pe, state[pe]);
      }
    });
  }
  for (const std::size_t t : tile_touched) out.num_touched += t;

  // finalize() pass (only semirings that use the destination value need it;
  // for the others it is the identity and costs nothing).
  if constexpr (S::kUsesDst) {
    m.for_tiles([&](std::uint32_t tile) {
      for (std::uint32_t lp = 0; lp < m.pes_per_tile(); ++lp) {
        const std::uint32_t pe = tile * m.pes_per_tile() + lp;
        const auto& part = parts[pe];
        for (Index r = part.row_begin; r < part.row_end; ++r) {
          if (!out.touched[r]) continue;
          m.mem_read(pe, y_base + static_cast<Addr>(r) * kValueBytes,
                     kValueBytes);
          m.mem_read(pe, xval_base + static_cast<Addr>(r) * kValueBytes,
                     kValueBytes);
          m.compute(pe, 2);
          m.mem_write(pe, y_base + static_cast<Addr>(r) * kValueBytes,
                      kValueBytes);
          out.y[r] = sr.finalize(out.y[r], x.values[r]);
        }
      }
    });
  }

  m.global_barrier();
  return out;
}

}  // namespace cosparse::kernels
