// Static allocation planning: the address-map regions a kernel *would*
// create, computed from the machine configuration and the dataset shape
// alone — no simulation, no host data.
//
// This is the kernel half of the cosparse-lint contract (src/verify): the
// planners below mirror the amap.of()/Machine::alloc() calls in
// ip_spmv.h/op_spmv.h, so the address-map lint pass can check SPM
// capacity, alignment and bank-conflict hazards for the canonical
// "matrix.*"/"vector.*"/"output.*"/"op.*" labels before a single
// simulated cycle. When the kernels change their allocation scheme, the
// planners and the cross-check test (tests/verify/test_region_plan.cpp)
// must change with them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/config.h"

namespace cosparse::kernels {

/// How many instances of a region exist: one, one per tile, or one per PE.
enum class RegionScope : std::uint8_t { kGlobal, kPerTile, kPerPe };

[[nodiscard]] const char* to_string(RegionScope s);
/// Parses "global"/"per_tile"/"per_pe"; throws cosparse::Error otherwise.
[[nodiscard]] RegionScope region_scope_from_string(const std::string& s);

/// One planned allocation region. `bytes` is per instance of `scope`.
struct PlannedRegion {
  std::string label;
  std::size_t bytes = 0;
  RegionScope scope = RegionScope::kGlobal;
  /// Placed in scratchpad memory (subject to the SPM capacity of the
  /// hardware configuration) rather than the cacheable address space.
  bool spm = false;
  /// SPM region that the kernel degrades gracefully on overflow (the OP
  /// heap spills its cold bottom levels); overflow is then informational
  /// rather than an error.
  bool spill_ok = false;
  /// Pinned base address (hand-written plans only; derived regions are
  /// placed by the bump allocator and can never overlap).
  std::optional<Addr> base;
};

/// Dataset shape sufficient for allocation planning.
struct PlanShape {
  Index dimension = 0;           ///< square adjacency: rows == cols
  std::uint64_t matrix_nnz = 0;  ///< non-zeros of the adjacency
  std::size_t frontier_nnz = 0;  ///< worst-case active-vertex count
};

/// The vblock width (columns) the engine uses so one vblock's 8-byte value
/// segment fits the tile's SCS scratchpad, line-aligned (engine.cpp uses
/// this for the resident SCS layout).
[[nodiscard]] Index default_vblock_cols(const sim::SystemConfig& cfg);

/// Regions run_inner_product() maps/allocates. With `scs` the SCS-only
/// SPM-resident vblock segment is included (vblocked selects the engine's
/// vblock sizing; otherwise the whole vector must be pinned).
[[nodiscard]] std::vector<PlannedRegion> plan_ip_regions(
    const sim::SystemConfig& cfg, const PlanShape& shape, bool scs,
    bool vblocked = true);

/// Regions run_outer_product() maps/allocates. With `ps` the per-PE heap
/// is SPM-resident (spill-tolerant, paper §III-A).
[[nodiscard]] std::vector<PlannedRegion> plan_op_regions(
    const sim::SystemConfig& cfg, const PlanShape& shape, bool ps);

}  // namespace cosparse::kernels
