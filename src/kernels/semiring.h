// Semiring functors implementing paper Table I's Matrix_Op definitions.
//
// A semiring tells the SpMV kernels how to combine one matrix non-zero with
// the source-vertex value (`edge`), how to accumulate contributions into a
// destination (`reduce`), and how to post-process a destination's
// accumulator (`finalize`, e.g. CF's "- lambda * V_dst" term). The
// Vector_Op column of Table I runs in the algorithm layer (graph/) after
// the SpMV returns.
//
// `vector_identity` marks an *inactive* element in the dense frontier
// encoding, and `reduce_identity` initializes accumulators.
#pragma once

#include <concepts>
#include <limits>

#include "common/types.h"

namespace cosparse::kernels {

/// Compile-time interface every semiring satisfies (checked by the kernels).
template <class S>
concept Semiring = requires(const S s, Value a, Value x, Value d) {
  { s.vector_identity() } -> std::convertible_to<Value>;
  { s.reduce_identity() } -> std::convertible_to<Value>;
  { s.edge(a, x, d) } -> std::convertible_to<Value>;
  { s.reduce(x, d) } -> std::convertible_to<Value>;
  { s.finalize(x, d) } -> std::convertible_to<Value>;
  { S::kUsesDst } -> std::convertible_to<bool>;
  { S::kEdgeOps } -> std::convertible_to<std::uint32_t>;
};

inline constexpr Value kInf = std::numeric_limits<Value>::infinity();

/// Plain SpMV: Matrix_Op = sum(Sp[src,dst] * V[src]).
struct PlainSpmv {
  static constexpr bool kUsesDst = false;
  static constexpr std::uint32_t kEdgeOps = 1;  ///< one MAC
  Value vector_identity() const { return 0; }
  Value reduce_identity() const { return 0; }
  Value edge(Value a, Value xsrc, Value /*xdst*/) const { return a * xsrc; }
  Value reduce(Value acc, Value v) const { return acc + v; }
  Value finalize(Value acc, Value /*xdst*/) const { return acc; }
};

/// BFS: Matrix_Op = min(V[src]) — propagates the smallest frontier label
/// (the graph layer stores level/parent information in the labels).
struct BfsSemiring {
  static constexpr bool kUsesDst = false;
  static constexpr std::uint32_t kEdgeOps = 1;
  Value vector_identity() const { return kInf; }
  Value reduce_identity() const { return kInf; }
  Value edge(Value /*a*/, Value xsrc, Value /*xdst*/) const { return xsrc; }
  Value reduce(Value acc, Value v) const { return v < acc ? v : acc; }
  Value finalize(Value acc, Value /*xdst*/) const { return acc; }
};

/// SSSP: Matrix_Op = min(V[src] + Sp[src,dst]); the "min(..., V[dst])"
/// part of Table I is the algorithm layer's apply step.
struct SsspSemiring {
  static constexpr bool kUsesDst = false;
  static constexpr std::uint32_t kEdgeOps = 2;  ///< add + compare
  Value vector_identity() const { return kInf; }
  Value reduce_identity() const { return kInf; }
  Value edge(Value a, Value xsrc, Value /*xdst*/) const { return xsrc + a; }
  Value reduce(Value acc, Value v) const { return v < acc ? v : acc; }
  Value finalize(Value acc, Value /*xdst*/) const { return acc; }
};

/// PageRank: Matrix_Op = sum(V[src] / deg(src)). The division by out-degree
/// is pre-applied as a vector pass by the algorithm layer (equivalent and
/// cheaper, as in Ligra), so the matrix-side op reduces to a sum of source
/// contributions; Vector_Op = alpha + (1 - alpha) * y runs afterwards.
struct PageRankSemiring {
  static constexpr bool kUsesDst = false;
  static constexpr std::uint32_t kEdgeOps = 1;
  Value vector_identity() const { return 0; }
  Value reduce_identity() const { return 0; }
  Value edge(Value /*a*/, Value xsrc, Value /*xdst*/) const { return xsrc; }
  Value reduce(Value acc, Value v) const { return acc + v; }
  Value finalize(Value acc, Value /*xdst*/) const { return acc; }
};

/// Collaborative filtering (rank-1 latent factors, gradient step):
/// Matrix_Op = sum((Sp[src,dst] - V[src]*V[dst]) * V[src]) - lambda*V[dst];
/// Vector_Op = beta * y + V[dst] runs in the algorithm layer.
struct CfSemiring {
  static constexpr bool kUsesDst = true;
  static constexpr std::uint32_t kEdgeOps = 3;  ///< mul, sub, mac
  double lambda = 0.05;

  Value vector_identity() const { return 0; }
  Value reduce_identity() const { return 0; }
  Value edge(Value a, Value xsrc, Value xdst) const {
    return (a - xsrc * xdst) * xsrc;
  }
  Value reduce(Value acc, Value v) const { return acc + v; }
  Value finalize(Value acc, Value xdst) const { return acc - lambda * xdst; }
};

}  // namespace cosparse::kernels
