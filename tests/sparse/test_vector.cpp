#include "sparse/vector.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace cosparse::sparse {
namespace {

TEST(SparseVector, PushBackEnforcesOrder) {
  SparseVector v(10);
  v.push_back(2, 1.0);
  v.push_back(5, 2.0);
  EXPECT_THROW(v.push_back(5, 3.0), Error);  // duplicate
  EXPECT_THROW(v.push_back(3, 3.0), Error);  // out of order
  EXPECT_THROW(v.push_back(10, 3.0), Error); // out of range
  EXPECT_EQ(v.nnz(), 2u);
}

TEST(SparseVector, AssignValidatesEntries) {
  SparseVector v(4);
  EXPECT_THROW(v.assign({{3, 1.0}, {1, 2.0}}), Error);
  v.assign({{1, 2.0}, {3, 1.0}});
  EXPECT_EQ(v.nnz(), 2u);
}

TEST(SparseVector, DensityComputed) {
  SparseVector v(100);
  for (Index i = 0; i < 25; ++i) v.push_back(i * 4, 1.0);
  EXPECT_DOUBLE_EQ(v.density(), 0.25);
}

TEST(SparseVector, EmptyDimensionZeroDensity) {
  SparseVector v;
  EXPECT_DOUBLE_EQ(v.density(), 0.0);
  EXPECT_TRUE(v.empty());
}

TEST(DenseVector, ActiveCountWithIdentity) {
  DenseVector v(5, 0.0);
  v[1] = 2.0;
  v[4] = -1.0;
  EXPECT_EQ(v.count_active(0.0), 2u);
  EXPECT_DOUBLE_EQ(v.density(0.0), 0.4);
}

TEST(Conversions, DenseSparseRoundTrip) {
  DenseVector d(6, 0.0);
  d[0] = 1.5;
  d[3] = -2.0;
  d[5] = 0.25;
  const SparseVector s = to_sparse(d, 0.0);
  EXPECT_EQ(s.nnz(), 3u);
  const DenseVector back = to_dense(s, 0.0);
  EXPECT_EQ(back, d);
}

TEST(Conversions, SparseDenseRoundTripWithNonZeroIdentity) {
  SparseVector s(4, {{1, 7.0}, {2, 8.0}});
  const DenseVector d = to_dense(s, -1.0);
  EXPECT_DOUBLE_EQ(d[0], -1.0);
  EXPECT_DOUBLE_EQ(d[1], 7.0);
  const SparseVector back = to_sparse(d, -1.0);
  EXPECT_EQ(back, s);
}

TEST(Conversions, ExplicitIdentityValuedEntryDropsOnRoundTrip) {
  // An entry whose value equals the identity is indistinguishable from
  // "absent" after densification — documented contract.
  SparseVector s(4, {{1, 0.0}, {2, 8.0}});
  const SparseVector round = to_sparse(to_dense(s, 0.0), 0.0);
  EXPECT_EQ(round.nnz(), 1u);
}

}  // namespace
}  // namespace cosparse::sparse
