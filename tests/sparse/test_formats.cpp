#include "sparse/formats.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "sparse/generate.h"

namespace cosparse::sparse {
namespace {

Coo small_matrix() {
  // 3x4:
  //   [ .  1  .  2 ]
  //   [ 3  .  .  . ]
  //   [ .  4  5  . ]
  return Coo(3, 4, {{0, 1, 1}, {0, 3, 2}, {1, 0, 3}, {2, 1, 4}, {2, 2, 5}});
}

TEST(Coo, SortsRowMajor) {
  Coo m(2, 2, {{1, 1, 4}, {0, 1, 2}, {1, 0, 3}, {0, 0, 1}});
  ASSERT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.triplets()[0], (Triplet{0, 0, 1}));
  EXPECT_EQ(m.triplets()[3], (Triplet{1, 1, 4}));
}

TEST(Coo, CombinesDuplicatesBySum) {
  Coo m(2, 2, {{0, 0, 1}, {0, 0, 2.5}});
  ASSERT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.triplets()[0].value, 3.5);
}

TEST(Coo, RejectsOutOfBounds) {
  EXPECT_THROW(Coo(2, 2, {{2, 0, 1}}), Error);
  EXPECT_THROW(Coo(2, 2, {{0, 2, 1}}), Error);
}

TEST(Coo, DensityComputed) {
  EXPECT_DOUBLE_EQ(small_matrix().density(), 5.0 / 12.0);
}

TEST(Csr, ValidatesStructure) {
  // row_ptr wrong length
  EXPECT_THROW(Csr(2, 2, {0, 1}, {0}, {1.0}), Error);
  // unsorted columns within a row
  EXPECT_THROW(Csr(1, 3, {0, 2}, {2, 1}, {1.0, 2.0}), Error);
  // endpoint mismatch
  EXPECT_THROW(Csr(1, 3, {0, 1}, {0, 1}, {1.0, 2.0}), Error);
}

TEST(Csc, ValidatesStructure) {
  EXPECT_THROW(Csc(2, 2, {0, 1}, {0}, {1.0}), Error);
  EXPECT_THROW(Csc(3, 1, {0, 2}, {2, 1}, {1.0, 2.0}), Error);
}

TEST(Conversions, CooCsrPreservesEntries) {
  const Coo m = small_matrix();
  const Csr csr = coo_to_csr(m);
  EXPECT_EQ(csr.nnz(), m.nnz());
  EXPECT_EQ(csr.row_nnz(0), 2u);
  EXPECT_EQ(csr.row_nnz(1), 1u);
  EXPECT_EQ(csr.row_nnz(2), 2u);
  const Coo back = csr_to_coo(csr);
  EXPECT_EQ(back.triplets(), m.triplets());
}

TEST(Conversions, CooCscPreservesEntries) {
  const Coo m = small_matrix();
  const Csc csc = coo_to_csc(m);
  EXPECT_EQ(csc.nnz(), m.nnz());
  EXPECT_EQ(csc.col_nnz(1), 2u);
  const Coo back = csc_to_coo(csc);
  EXPECT_EQ(back.triplets(), m.triplets());
}

TEST(Conversions, CsrCscRoundTrip) {
  const Coo m = small_matrix();
  const Csr csr = coo_to_csr(m);
  const Csc csc = csr_to_csc(csr);
  const Csr back = csc_to_csr(csc);
  EXPECT_EQ(back.row_ptr(), csr.row_ptr());
  EXPECT_EQ(back.col_idx(), csr.col_idx());
  EXPECT_EQ(back.values(), csr.values());
}

TEST(Conversions, TransposeIsInvolution) {
  const Coo m = small_matrix();
  const Coo t = transpose(m);
  EXPECT_EQ(t.rows(), m.cols());
  EXPECT_EQ(t.cols(), m.rows());
  const Coo tt = transpose(t);
  EXPECT_EQ(tt.triplets(), m.triplets());
}

TEST(Conversions, RandomRoundTripProperty) {
  // Property: COO -> CSR -> COO and COO -> CSC -> COO are identities for
  // arbitrary random matrices.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Coo m =
        uniform_random(64, 48, 500, seed, ValueDist::kUniform01);
    EXPECT_EQ(csr_to_coo(coo_to_csr(m)).triplets(), m.triplets());
    EXPECT_EQ(csc_to_coo(coo_to_csc(m)).triplets(), m.triplets());
  }
}

TEST(Conversions, EmptyMatrix) {
  const Coo m(4, 4, {});
  EXPECT_EQ(coo_to_csr(m).nnz(), 0u);
  EXPECT_EQ(coo_to_csc(m).nnz(), 0u);
  EXPECT_EQ(transpose(m).nnz(), 0u);
}

TEST(Csc, ColumnsSortedByRowAfterConversion) {
  const Coo m = uniform_random(100, 100, 800, 9);
  const Csc csc = coo_to_csc(m);
  for (Index c = 0; c < csc.cols(); ++c) {
    for (Offset k = csc.col_begin(c) + 1; k < csc.col_end(c); ++k) {
      EXPECT_LT(csc.row_idx()[k - 1], csc.row_idx()[k]);
    }
  }
}

}  // namespace
}  // namespace cosparse::sparse
