#include "sparse/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "sparse/generate.h"

namespace cosparse::sparse {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string write_file(const std::string& content) {
    const std::string path =
        "/tmp/cosparse_io_test_" + std::to_string(counter_++) + ".tmp";
    std::ofstream out(path);
    out << content;
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  int counter_ = 0;
  std::vector<std::string> paths_;
};

TEST_F(IoTest, MatrixMarketRoundTrip) {
  const Coo m = uniform_random(20, 30, 100, 17, ValueDist::kUniform01);
  const std::string path = write_file("");
  write_matrix_market(path, m);
  const Coo back = read_matrix_market(path);
  EXPECT_EQ(back.rows(), m.rows());
  EXPECT_EQ(back.cols(), m.cols());
  ASSERT_EQ(back.nnz(), m.nnz());
  for (std::size_t i = 0; i < m.nnz(); ++i) {
    EXPECT_EQ(back.triplets()[i].row, m.triplets()[i].row);
    EXPECT_EQ(back.triplets()[i].col, m.triplets()[i].col);
    EXPECT_NEAR(back.triplets()[i].value, m.triplets()[i].value, 1e-5);
  }
}

TEST_F(IoTest, MatrixMarketPattern) {
  const auto path = write_file(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% comment\n"
      "3 3 2\n"
      "1 2\n"
      "3 1\n");
  const Coo m = read_matrix_market(path);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.triplets()[0].value, 1.0);
}

TEST_F(IoTest, MatrixMarketSymmetricExpands) {
  const auto path = write_file(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5.0\n"
      "3 3 7.0\n");
  const Coo m = read_matrix_market(path);
  EXPECT_EQ(m.nnz(), 3u);  // (1,0), (0,1), (2,2)
}

TEST_F(IoTest, MatrixMarketMalformedBanner) {
  const auto path = write_file("%%NotMM matrix coordinate real general\n");
  EXPECT_THROW(read_matrix_market(path), Error);
}

TEST_F(IoTest, MatrixMarketArrayFormatRejected) {
  const auto path = write_file(
      "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_matrix_market(path), Error);
}

TEST_F(IoTest, MatrixMarketOutOfBoundsEntry) {
  const auto path = write_file(
      "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), Error);
}

TEST_F(IoTest, MatrixMarketNnzMismatch) {
  const auto path = write_file(
      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(path), Error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market("/nonexistent/file.mtx"), Error);
  EXPECT_THROW(read_edge_list("/nonexistent/file.txt"), Error);
}

TEST_F(IoTest, EdgeListBasic) {
  const auto path = write_file(
      "# SNAP-style comment\n"
      "0 1\n"
      "1 2 2.5\n"
      "2 0\n");
  const Coo g = read_edge_list(path);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.nnz(), 3u);
}

TEST_F(IoTest, EdgeListUndirectedMirrors) {
  const auto path = write_file("0 1\n1 2\n");
  const Coo g = read_edge_list(path, /*undirected=*/true);
  EXPECT_EQ(g.nnz(), 4u);
}

TEST_F(IoTest, EdgeListMalformedLine) {
  const auto path = write_file("0 1\nbroken-line\n");
  EXPECT_THROW(read_edge_list(path), Error);
}

TEST_F(IoTest, EdgeListNegativeVertex) {
  const auto path = write_file("-1 2\n");
  EXPECT_THROW(read_edge_list(path), Error);
}

TEST_F(IoTest, EmptyEdgeListYieldsEmptyMatrix) {
  const auto path = write_file("# nothing\n");
  const Coo g = read_edge_list(path);
  EXPECT_EQ(g.rows(), 0u);
  EXPECT_EQ(g.nnz(), 0u);
}

}  // namespace
}  // namespace cosparse::sparse
