#include "sparse/generate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"

namespace cosparse::sparse {
namespace {

TEST(UniformRandom, ExactNnzAndBounds) {
  const Coo m = uniform_random(100, 80, 500, 1);
  EXPECT_EQ(m.rows(), 100u);
  EXPECT_EQ(m.cols(), 80u);
  EXPECT_EQ(m.nnz(), 500u);
  for (const auto& t : m.triplets()) {
    EXPECT_LT(t.row, 100u);
    EXPECT_LT(t.col, 80u);
  }
}

TEST(UniformRandom, DeterministicBySeed) {
  const Coo a = uniform_random(50, 50, 200, 42);
  const Coo b = uniform_random(50, 50, 200, 42);
  EXPECT_EQ(a.triplets(), b.triplets());
  const Coo c = uniform_random(50, 50, 200, 43);
  EXPECT_NE(a.triplets(), c.triplets());
}

TEST(UniformRandom, NoDuplicateCoordinates) {
  const Coo m = uniform_random(40, 40, 600, 5);
  std::set<std::pair<Index, Index>> seen;
  for (const auto& t : m.triplets()) {
    EXPECT_TRUE(seen.insert({t.row, t.col}).second);
  }
}

TEST(UniformRandom, FullMatrixViaFallback) {
  // nnz == rows*cols exercises the deterministic fallback path.
  const Coo m = uniform_random(8, 8, 64, 3);
  EXPECT_EQ(m.nnz(), 64u);
}

TEST(UniformRandom, RejectsOverfull) {
  EXPECT_THROW(uniform_random(4, 4, 17, 1), Error);
}

TEST(UniformRandom, ValueDistributions) {
  const Coo ones = uniform_random(30, 30, 100, 2, ValueDist::kOnes);
  for (const auto& t : ones.triplets()) EXPECT_DOUBLE_EQ(t.value, 1.0);

  const Coo u01 = uniform_random(30, 30, 100, 2, ValueDist::kUniform01);
  for (const auto& t : u01.triplets()) {
    EXPECT_GT(t.value, 0.0);
    EXPECT_LE(t.value, 1.0);
  }

  const Coo ints = uniform_random(30, 30, 100, 2, ValueDist::kUniformInt);
  for (const auto& t : ints.triplets()) {
    EXPECT_GE(t.value, 1.0);
    EXPECT_LE(t.value, 16.0);
    EXPECT_DOUBLE_EQ(t.value, std::floor(t.value));
  }
}

TEST(PowerLaw, ExactNnzAndSkew) {
  const Index n = 2000;
  const Coo m = power_law(n, n, 20000, 2.1, 7);
  EXPECT_EQ(m.nnz(), 20000u);
  // Degree skew: the max row degree should far exceed the mean (10).
  std::vector<Index> deg(n, 0);
  for (const auto& t : m.triplets()) ++deg[t.row];
  const Index max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(max_deg, 50u);
}

TEST(PowerLaw, MoreSkewedThanUniform) {
  const Index n = 2000;
  auto gini_of = [&](const Coo& m) {
    std::vector<Index> deg(n, 0);
    for (const auto& t : m.triplets()) ++deg[t.row];
    std::sort(deg.begin(), deg.end());
    double cum = 0, weighted = 0;
    for (std::size_t i = 0; i < deg.size(); ++i) {
      weighted += static_cast<double>(i + 1) * deg[i];
      cum += deg[i];
    }
    return (2.0 * weighted) / (n * cum) - (n + 1.0) / n;
  };
  const double g_pl = gini_of(power_law(n, n, 20000, 2.1, 7));
  const double g_un = gini_of(uniform_random(n, n, 20000, 7));
  EXPECT_GT(g_pl, g_un + 0.1);
}

TEST(PowerLaw, RejectsBadExponent) {
  EXPECT_THROW(power_law(10, 10, 5, 0.9, 1), Error);
}

TEST(Rmat, DimensionIsPowerOfTwo) {
  const Coo m = rmat(10, 5000, 0.57, 0.19, 0.19, 11);
  EXPECT_EQ(m.rows(), 1024u);
  EXPECT_EQ(m.cols(), 1024u);
  EXPECT_EQ(m.nnz(), 5000u);
}

TEST(Rmat, SkewedDegrees) {
  const Coo m = rmat(11, 30000, 0.57, 0.19, 0.19, 13);
  std::vector<Index> deg(m.rows(), 0);
  for (const auto& t : m.triplets()) ++deg[t.row];
  const Index max_deg = *std::max_element(deg.begin(), deg.end());
  const double mean = 30000.0 / static_cast<double>(m.rows());
  EXPECT_GT(max_deg, 10 * mean);
}

TEST(Rmat, RejectsBadParams) {
  EXPECT_THROW(rmat(0, 10, 0.25, 0.25, 0.25, 1), Error);
  EXPECT_THROW(rmat(4, 10, 0.7, 0.2, 0.2, 1), Error);
}

TEST(RandomSparseVector, DensityHonored) {
  const SparseVector v = random_sparse_vector(10000, 0.02, 3);
  EXPECT_EQ(v.nnz(), 200u);
  EXPECT_NEAR(v.density(), 0.02, 1e-9);
  Index prev = 0;
  bool first = true;
  for (const auto& e : v.entries()) {
    if (!first) EXPECT_GT(e.index, prev);
    prev = e.index;
    first = false;
  }
}

TEST(RandomSparseVector, EdgeDensities) {
  EXPECT_EQ(random_sparse_vector(100, 0.0, 1).nnz(), 0u);
  EXPECT_EQ(random_sparse_vector(100, 1.0, 1).nnz(), 100u);
  EXPECT_THROW(random_sparse_vector(100, 1.5, 1), Error);
}

TEST(RandomDenseVector, Deterministic) {
  const DenseVector a = random_dense_vector(100, 5);
  const DenseVector b = random_dense_vector(100, 5);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cosparse::sparse
