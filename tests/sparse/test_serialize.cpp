#include "sparse/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.h"
#include "sparse/datasets.h"
#include "sparse/generate.h"

namespace cosparse::sparse {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) {
    const std::string p = "/tmp/cosparse_ser_" + name + ".bin";
    paths_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::vector<std::string> paths_;
};

TEST_F(SerializeTest, RoundTripPreservesEverything) {
  const Coo m = uniform_random(300, 200, 4000, 7, ValueDist::kUniform01);
  const auto p = path("roundtrip");
  write_binary(p, m);
  const Coo back = read_binary(p);
  EXPECT_EQ(back.rows(), m.rows());
  EXPECT_EQ(back.cols(), m.cols());
  EXPECT_EQ(back.triplets(), m.triplets());
}

TEST_F(SerializeTest, EmptyMatrixRoundTrip) {
  const Coo m(5, 5, {});
  const auto p = path("empty");
  write_binary(p, m);
  const Coo back = read_binary(p);
  EXPECT_EQ(back.nnz(), 0u);
  EXPECT_EQ(back.rows(), 5u);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(read_binary("/nonexistent/matrix.bin"), Error);
}

TEST_F(SerializeTest, BadMagicRejected) {
  const auto p = path("magic");
  std::ofstream(p, std::ios::binary) << "this is not a matrix at all";
  EXPECT_THROW(read_binary(p), Error);
}

TEST_F(SerializeTest, TruncationRejected) {
  const Coo m = uniform_random(100, 100, 1000, 8);
  const auto p = path("trunc");
  write_binary(p, m);
  // Chop the file in half.
  std::ifstream in(p, std::ios::binary | std::ios::ate);
  const auto size = static_cast<long>(in.tellg());
  in.close();
  std::string data(static_cast<std::size_t>(size), '\0');
  std::ifstream(p, std::ios::binary).read(data.data(), size);
  std::ofstream(p, std::ios::binary | std::ios::trunc)
      .write(data.data(), size / 2);
  EXPECT_THROW(read_binary(p), Error);
}

TEST_F(SerializeTest, CorruptionRejectedByChecksum) {
  const Coo m = uniform_random(100, 100, 1000, 9, ValueDist::kUniform01);
  const auto p = path("corrupt");
  write_binary(p, m);
  // Flip one byte in the middle of the payload.
  std::fstream f(p, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(100);
  char b = 0;
  f.read(&b, 1);
  f.seekp(100);
  b = static_cast<char>(b ^ 0x40);
  f.write(&b, 1);
  f.close();
  EXPECT_THROW(read_binary(p), Error);
}

TEST_F(SerializeTest, DatasetCacheViaEnvironment) {
  // With COSPARSE_CACHE_DIR set, a second load must reuse the cached file
  // and produce the identical graph.
  const std::string dir = "/tmp/cosparse_cache_test";
  setenv("COSPARSE_CACHE_DIR", dir.c_str(), 1);
  DatasetRegistry reg;
  const auto a = reg.load("twitter", 128);
  const std::string cached = dir + "/twitter_scale128.bin";
  EXPECT_TRUE(std::ifstream(cached).good());
  const auto b = reg.load("twitter", 128);
  EXPECT_EQ(a.adjacency().triplets(), b.adjacency().triplets());
  unsetenv("COSPARSE_CACHE_DIR");
  std::remove(cached.c_str());
}

}  // namespace
}  // namespace cosparse::sparse
