#include "sparse/datasets.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "common/error.h"

namespace cosparse::sparse {
namespace {

TEST(Datasets, TableThreeSpecsPresent) {
  const auto& specs = DatasetRegistry::specs();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].name, "livejournal");
  EXPECT_EQ(specs[0].vertices, 4847571u);
  EXPECT_EQ(specs[0].edges, 68992772u);
  EXPECT_EQ(specs[1].name, "pokec");
  EXPECT_TRUE(specs[1].directed);
  EXPECT_EQ(specs[2].name, "youtube");
  EXPECT_FALSE(specs[2].directed);
  EXPECT_EQ(specs[3].name, "twitter");
  EXPECT_EQ(specs[4].name, "vsp");
  EXPECT_FALSE(specs[4].power_law);
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(DatasetRegistry::spec("facebook"), Error);
  DatasetRegistry reg;
  EXPECT_THROW(reg.load("facebook"), Error);
}

TEST(Datasets, ScaledLoadMatchesSpecProportions) {
  DatasetRegistry reg;
  const unsigned scale = 64;
  const Graph g = reg.load("twitter", scale);
  const auto& s = DatasetRegistry::spec("twitter");
  EXPECT_EQ(g.num_vertices(), s.vertices / scale);
  // Edge count within 1% of target (duplicate folding can drop a few).
  EXPECT_NEAR(static_cast<double>(g.num_edges()),
              static_cast<double>(s.edges / scale),
              0.01 * static_cast<double>(s.edges / scale));
}

TEST(Datasets, DeterministicAcrossLoads) {
  DatasetRegistry reg;
  const Graph a = reg.load("vsp", 8);
  const Graph b = reg.load("vsp", 8);
  EXPECT_EQ(a.adjacency().triplets(), b.adjacency().triplets());
}

TEST(Datasets, UndirectedGraphIsSymmetric) {
  DatasetRegistry reg;
  const Graph g = reg.load("vsp", 16);
  const auto& tri = g.adjacency().triplets();
  // Every off-diagonal (u, v) must have a matching (v, u).
  std::set<std::pair<Index, Index>> coords;
  for (const auto& t : tri) coords.insert({t.row, t.col});
  for (const auto& t : tri) {
    if (t.row != t.col) {
      EXPECT_TRUE(coords.count({t.col, t.row}))
          << "missing mirror of (" << t.row << "," << t.col << ")";
    }
  }
}

TEST(Datasets, PowerLawStandInIsSkewed) {
  DatasetRegistry reg;
  const Graph g = reg.load("twitter", 16);
  const auto& deg = g.out_degrees();
  const Index max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_GT(static_cast<double>(max_deg), 20.0 * g.average_degree());
}

TEST(Datasets, UniformStandInIsNotVerySkewed) {
  DatasetRegistry reg;
  const Graph g = reg.load("vsp", 8);
  const auto& deg = g.out_degrees();
  const Index max_deg = *std::max_element(deg.begin(), deg.end());
  EXPECT_LT(static_cast<double>(max_deg), 5.0 * g.average_degree());
}

TEST(Datasets, GraphDegreesConsistent) {
  DatasetRegistry reg;
  const Graph g = reg.load("youtube", 64);
  std::uint64_t total = 0;
  for (Index d : g.out_degrees()) total += d;
  EXPECT_EQ(total, g.num_edges());
}

}  // namespace
}  // namespace cosparse::sparse
