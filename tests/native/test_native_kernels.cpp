// Native kernel correctness: the results-only host kernels must agree
// *bitwise* with the cycle-accurate simulator and with the scalar
// reference, including the edge cases the accumulator merge is most
// likely to get wrong — tropical (min-plus) semirings, empty frontiers,
// all-zero rows, and power-law matrices with duplicate column indices.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../kernels/reference.h"
#include "common/digest.h"
#include "kernels/address_map.h"
#include "kernels/frontier.h"
#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/partition.h"
#include "kernels/region_plan.h"
#include "kernels/semiring.h"
#include "native/spmv.h"
#include "sim/machine.h"
#include "sim/parallel.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

using kernels::DenseFrontier;
using kernels::PlainSpmv;
using kernels::SsspSemiring;
using kernels::testing::reference_spmv;

std::string digest_ip(const kernels::IpResult& r) {
  Digest d;
  d.update_u64(r.num_touched);
  for (Index i = 0; i < r.y.dimension(); ++i) {
    d.update_u64(r.touched[i]);
    d.update_value(r.y[i]);
  }
  return d.hex();
}

std::string digest_op(const kernels::OpResult& r) {
  Digest d;
  d.update_u64(r.y.nnz());
  for (const auto& e : r.y.entries()) {
    d.update_index(e.index);
    d.update_value(e.value);
  }
  return d.hex();
}

const sim::SystemConfig kSys = sim::SystemConfig::transmuter(4, 4);

template <kernels::Semiring S>
kernels::IpResult sim_pull(const kernels::IpPartitionedMatrix& part,
                           const DenseFrontier& x, sim::HwConfig hw,
                           const S& sr) {
  sim::Machine machine(kSys, hw);
  kernels::AddressMap amap(machine);
  return kernels::run_inner_product(machine, amap, part, x, sr);
}

template <kernels::Semiring S>
kernels::OpResult sim_push(const kernels::OpStripedMatrix& striped,
                           const sparse::SparseVector& x, sim::HwConfig hw,
                           const S& sr) {
  sim::Machine machine(kSys, hw);
  kernels::AddressMap amap(machine);
  return kernels::run_outer_product(machine, amap, striped, x, nullptr, sr);
}

/// Runs pull through sim and native (serial + parallel) and checks all
/// legs produce bitwise-identical results, returning the digest.
template <kernels::Semiring S>
std::string check_pull(const sparse::Coo& m, const DenseFrontier& x,
                       sim::HwConfig hw, const S& sr) {
  const Index vb =
      hw == sim::HwConfig::kSCS ? kernels::default_vblock_cols(kSys) : 0;
  const auto part =
      kernels::IpPartitionedMatrix::build(m, kSys.num_pes(), vb, true);
  const std::string sim = digest_ip(sim_pull(part, x, hw, sr));
  EXPECT_EQ(sim, digest_ip(native::pull_spmv(kSys, hw, nullptr, part, x, sr)))
      << "native serial pull diverged from sim";
  sim::ParallelExecutor exec(8);
  EXPECT_EQ(sim, digest_ip(native::pull_spmv(kSys, hw, &exec, part, x, sr)))
      << "native 8-thread pull diverged from sim";
  return sim;
}

template <kernels::Semiring S>
std::string check_push(const sparse::Coo& m, const sparse::SparseVector& x,
                       sim::HwConfig hw, const S& sr) {
  const auto striped = kernels::OpStripedMatrix::build(m, kSys.num_tiles, true);
  const std::string sim = digest_op(sim_push(striped, x, hw, sr));
  EXPECT_EQ(sim, digest_op(native::push_spmsv(kSys, hw, nullptr, striped, x,
                                              nullptr, sr)))
      << "native serial push diverged from sim";
  sim::ParallelExecutor exec(8);
  EXPECT_EQ(sim, digest_op(native::push_spmsv(kSys, hw, &exec, striped, x,
                                              nullptr, sr)))
      << "native 8-thread push diverged from sim";
  return sim;
}

TEST(NativeKernels, PullMatchesSimAllHwConfigs) {
  const auto m =
      sparse::uniform_random(300, 300, 3600, 5, sparse::ValueDist::kUniform01);
  const auto x = DenseFrontier::from_sparse(
      sparse::random_sparse_vector(300, 0.3, 6), PlainSpmv{}.vector_identity());
  for (const auto hw : {sim::HwConfig::kSC, sim::HwConfig::kSCS}) {
    check_pull(m, x, hw, PlainSpmv{});
  }
}

TEST(NativeKernels, PushMatchesSimAllHwConfigs) {
  const auto m =
      sparse::uniform_random(300, 300, 3600, 5, sparse::ValueDist::kUniform01);
  const auto x = sparse::random_sparse_vector(300, 0.05, 6);
  for (const auto hw : {sim::HwConfig::kPC, sim::HwConfig::kPS}) {
    check_push(m, x, hw, PlainSpmv{});
  }
}

TEST(NativeKernels, TropicalSemiringMatchesSimAndReference) {
  // min-plus: exercises non-arithmetic reduce identity (infinity) and the
  // kUsesDst finalize path; also confirms the AVX2 dispatch leaves
  // non-arithmetic semirings on the generic kernel.
  const auto m =
      sparse::power_law(256, 256, 2048, 2.2, 9, sparse::ValueDist::kUniform01);
  const SsspSemiring sr;
  const auto x = DenseFrontier::from_sparse(
      sparse::random_sparse_vector(256, 0.2, 10), sr.vector_identity());
  check_pull(m, x, sim::HwConfig::kSC, sr);
  check_push(m, sparse::random_sparse_vector(256, 0.03, 11),
             sim::HwConfig::kPC, sr);

  // And against the scalar reference (values, not just digests).
  const auto part =
      kernels::IpPartitionedMatrix::build(m, kSys.num_pes(), 0, true);
  const auto native = native::pull_spmv(kSys, sim::HwConfig::kSC, nullptr,
                                        part, x, sr);
  const auto ref = reference_spmv(m, x, sr);
  ASSERT_EQ(native.y.dimension(), ref.y.dimension());
  for (Index r = 0; r < ref.y.dimension(); ++r) {
    EXPECT_EQ(native.touched[r], ref.touched[r]) << "row " << r;
    EXPECT_DOUBLE_EQ(native.y[r], ref.y[r]) << "row " << r;
  }
}

TEST(NativeKernels, EmptyFrontierPullTouchesNothing) {
  const auto m =
      sparse::uniform_random(128, 128, 1024, 3, sparse::ValueDist::kUniform01);
  const DenseFrontier x(128, PlainSpmv{}.vector_identity());  // all inactive
  const auto part =
      kernels::IpPartitionedMatrix::build(m, kSys.num_pes(), 0, true);
  const auto out = native::pull_spmv(kSys, sim::HwConfig::kSC, nullptr, part,
                                     x, PlainSpmv{});
  EXPECT_EQ(out.num_touched, 0u);
  for (Index r = 0; r < 128; ++r) {
    EXPECT_EQ(out.touched[r], 0) << "row " << r;
    EXPECT_EQ(out.y[r], PlainSpmv{}.reduce_identity()) << "row " << r;
  }
  check_pull(m, x, sim::HwConfig::kSC, PlainSpmv{});
}

TEST(NativeKernels, EmptyFrontierPushProducesEmptyOutput) {
  const auto m =
      sparse::uniform_random(128, 128, 1024, 3, sparse::ValueDist::kUniform01);
  const sparse::SparseVector x(128);  // no entries
  const auto striped = kernels::OpStripedMatrix::build(m, kSys.num_tiles, true);
  const auto out = native::push_spmsv(kSys, sim::HwConfig::kPC, nullptr,
                                      striped, x, nullptr, PlainSpmv{});
  EXPECT_EQ(out.y.nnz(), 0u);
  check_push(m, x, sim::HwConfig::kPC, PlainSpmv{});
}

TEST(NativeKernels, AllZeroRowsStayUntouched) {
  // Rows 10..19 and the last row have no entries at all: they must stay
  // at the reduce identity with touched = 0 in every backend.
  std::vector<sparse::Triplet> t;
  for (Index r = 0; r < 64; ++r) {
    if ((r >= 10 && r < 20) || r == 63) continue;
    t.push_back({r, static_cast<Index>((r * 7) % 64), 1.5 + r});
    t.push_back({r, static_cast<Index>((r * 13 + 5) % 64), 0.25});
  }
  const sparse::Coo m(64, 64, std::move(t));
  const auto x = DenseFrontier::from_dense(sparse::DenseVector(64, 1.0));
  const auto part =
      kernels::IpPartitionedMatrix::build(m, kSys.num_pes(), 0, true);
  const auto out = native::pull_spmv(kSys, sim::HwConfig::kSC, nullptr, part,
                                     x, PlainSpmv{});
  for (const Index r : {10, 15, 19, 63}) {
    EXPECT_EQ(out.touched[r], 0) << "row " << r;
    EXPECT_EQ(out.y[r], PlainSpmv{}.reduce_identity()) << "row " << r;
  }
  EXPECT_EQ(out.num_touched, 64u - 11u);
  check_pull(m, x, sim::HwConfig::kSC, PlainSpmv{});
  check_push(m, sparse::random_sparse_vector(64, 0.2, 17),
             sim::HwConfig::kPC, PlainSpmv{});
}

TEST(NativeKernels, PowerLawWithDuplicateColumnIndicesMergesExactly) {
  // Duplicate (row, col) coordinates are legal in COO input and must be
  // reduced in stream order by every backend — the case a thread-local
  // accumulator merge would get wrong by combining duplicates in merge
  // order instead. Sum floating-point values are order-sensitive, so a
  // bitwise match is the strongest possible check.
  auto base = sparse::power_law(200, 200, 1600, 2.1, 21,
                                sparse::ValueDist::kUniform01);
  std::vector<sparse::Triplet> t(base.triplets().begin(),
                                 base.triplets().end());
  // Re-add a slice of existing coordinates with different values.
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; i += 3) {
    t.push_back({t[i].row, t[i].col, 0.125 + static_cast<double>(i % 7)});
  }
  const sparse::Coo m(200, 200, std::move(t));
  const auto x = DenseFrontier::from_sparse(
      sparse::random_sparse_vector(200, 0.5, 22),
      PlainSpmv{}.vector_identity());
  check_pull(m, x, sim::HwConfig::kSC, PlainSpmv{});
  check_pull(m, x, sim::HwConfig::kSCS, PlainSpmv{});
  check_push(m, sparse::random_sparse_vector(200, 0.08, 23),
             sim::HwConfig::kPC, PlainSpmv{});

  // Reference check: duplicates must contribute once each.
  const auto part =
      kernels::IpPartitionedMatrix::build(m, kSys.num_pes(), 0, true);
  const auto native = native::pull_spmv(kSys, sim::HwConfig::kSC, nullptr,
                                        part, x, PlainSpmv{});
  const auto ref = reference_spmv(m, x, PlainSpmv{});
  for (Index r = 0; r < 200; ++r) {
    EXPECT_EQ(native.touched[r], ref.touched[r]) << "row " << r;
    EXPECT_NEAR(native.y[r], ref.y[r], 1e-9) << "row " << r;
  }
}

}  // namespace
}  // namespace cosparse
