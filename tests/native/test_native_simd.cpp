// SIMD dispatch + exec-mode resolution tests. The AVX2 specialization is
// only *used* behind a runtime CPUID check, but whenever this binary was
// compiled with AVX2 support and runs on an AVX2 host, its output must be
// bitwise identical to the always-compiled scalar path — the vectorization
// touches only the elementwise products, never the reduction order.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/digest.h"
#include "common/error.h"
#include "kernels/frontier.h"
#include "kernels/partition.h"
#include "kernels/region_plan.h"
#include "kernels/semiring.h"
#include "native/exec_mode.h"
#include "native/host_machine.h"
#include "native/simd.h"
#include "native/spmv.h"
#include "sim/parallel.h"
#include "sparse/generate.h"

namespace cosparse {
namespace {

using kernels::DenseFrontier;
using kernels::PlainSpmv;

TEST(ExecMode, ParsesAndPrints) {
  EXPECT_EQ(native::exec_mode_from_string("sim"), native::ExecMode::kSim);
  EXPECT_EQ(native::exec_mode_from_string("native"),
            native::ExecMode::kNative);
  EXPECT_STREQ(native::to_string(native::ExecMode::kSim), "sim");
  EXPECT_STREQ(native::to_string(native::ExecMode::kNative), "native");
  EXPECT_THROW((void)native::exec_mode_from_string("fast"), Error);
  EXPECT_THROW((void)native::exec_mode_from_string(""), Error);
}

TEST(ExecMode, CliWinsOverEnvironment) {
  ::setenv("COSPARSE_EXEC_MODE", "native", 1);
  EXPECT_EQ(native::resolve_exec_mode(std::string("sim")),
            native::ExecMode::kSim);
  EXPECT_EQ(native::resolve_exec_mode(std::nullopt),
            native::ExecMode::kNative);
  ::setenv("COSPARSE_EXEC_MODE", "bogus", 1);
  EXPECT_THROW((void)native::resolve_exec_mode(std::nullopt), Error);
  ::unsetenv("COSPARSE_EXEC_MODE");
  EXPECT_EQ(native::resolve_exec_mode(std::nullopt), native::ExecMode::kSim);
}

TEST(Simd, LevelAndModelStringsAreWellFormed) {
  // simd_level() is cached process-wide; just pin the printable forms and
  // that detection returns one of the known levels.
  const native::SimdLevel level = native::simd_level();
  EXPECT_TRUE(level == native::SimdLevel::kScalar ||
              level == native::SimdLevel::kAvx2);
  EXPECT_STREQ(native::to_string(native::SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(native::to_string(native::SimdLevel::kAvx2), "avx2");
  EXPECT_FALSE(native::cpu_model_string().empty());
}

#ifdef COSPARSE_HAVE_AVX2

std::string digest_ip(const kernels::IpResult& r) {
  Digest d;
  d.update_u64(r.num_touched);
  for (Index i = 0; i < r.y.dimension(); ++i) {
    d.update_u64(r.touched[i]);
    d.update_value(r.y[i]);
  }
  return d.hex();
}

/// Scalar leg: the generic templated kernel on the charge-free
/// HostMachine — exactly what runs when COSPARSE_NATIVE_SIMD=off.
kernels::IpResult scalar_pull(const kernels::IpPartitionedMatrix& part,
                              const DenseFrontier& x,
                              sim::ParallelExecutor* exec) {
  const auto cfg = sim::SystemConfig::transmuter(4, 4);
  native::HostMachine m(cfg, sim::HwConfig::kSC, exec);
  native::NullAddressMap amap;
  return kernels::run_inner_product(m, amap, part, x, PlainSpmv{});
}

class Avx2BitExact : public ::testing::Test {
 protected:
  void SetUp() override {
    if (native::simd_level() != native::SimdLevel::kAvx2) {
      GTEST_SKIP() << "host CPU lacks AVX2 (or COSPARSE_NATIVE_SIMD=off)";
    }
  }
};

TEST_F(Avx2BitExact, MatchesScalarOnUniformMatrix) {
  const auto cfg = sim::SystemConfig::transmuter(4, 4);
  const auto m = sparse::uniform_random(500, 500, 8000, 31,
                                        sparse::ValueDist::kUniform01);
  for (const Index vblock : {Index{0}, kernels::default_vblock_cols(cfg)}) {
    const auto part =
        kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), vblock, true);
    for (const double density : {0.05, 0.5, 1.0}) {
      const auto x = DenseFrontier::from_sparse(
          sparse::random_sparse_vector(500, density, 32),
          PlainSpmv{}.vector_identity());
      EXPECT_EQ(digest_ip(scalar_pull(part, x, nullptr)),
                digest_ip(native::avx2_pull_plain(part, x, nullptr)))
          << "vblock=" << vblock << " density=" << density;
    }
  }
}

TEST_F(Avx2BitExact, MatchesScalarOnPowerLawWithDuplicates) {
  const auto cfg = sim::SystemConfig::transmuter(4, 4);
  auto base = sparse::power_law(400, 400, 4800, 2.1, 41,
                                sparse::ValueDist::kUniform01);
  std::vector<sparse::Triplet> t(base.triplets().begin(),
                                 base.triplets().end());
  const std::size_t n = t.size();
  for (std::size_t i = 0; i < n; i += 2) {
    t.push_back({t[i].row, t[i].col, 1.0 / (1.0 + static_cast<double>(i))});
  }
  const sparse::Coo m(400, 400, std::move(t));
  const auto part =
      kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), 0, true);
  const auto x = DenseFrontier::from_sparse(
      sparse::random_sparse_vector(400, 0.4, 42),
      PlainSpmv{}.vector_identity());
  EXPECT_EQ(digest_ip(scalar_pull(part, x, nullptr)),
            digest_ip(native::avx2_pull_plain(part, x, nullptr)));
}

TEST_F(Avx2BitExact, MatchesScalarUnderExecutor) {
  const auto cfg = sim::SystemConfig::transmuter(4, 4);
  const auto m = sparse::uniform_random(300, 300, 4500, 51,
                                        sparse::ValueDist::kUniform01);
  const auto part =
      kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), 0, true);
  const auto x = DenseFrontier::from_dense(
      sparse::random_dense_vector(300, 52));
  sim::ParallelExecutor exec(8);
  const std::string serial_scalar = digest_ip(scalar_pull(part, x, nullptr));
  EXPECT_EQ(serial_scalar, digest_ip(scalar_pull(part, x, &exec)));
  EXPECT_EQ(serial_scalar,
            digest_ip(native::avx2_pull_plain(part, x, nullptr)));
  EXPECT_EQ(serial_scalar, digest_ip(native::avx2_pull_plain(part, x, &exec)));
}

TEST_F(Avx2BitExact, EmptyFrontierAndShortTails) {
  // Exercise the 4-wide main loop's tail handling: tiny vblocks and rows
  // with 1..3 elements, plus an all-inactive frontier (products must be
  // discarded, never added — adding 0.0 would flip -0.0 results and
  // corrupt touched bits).
  const auto cfg = sim::SystemConfig::transmuter(4, 4);
  std::vector<sparse::Triplet> t;
  for (Index r = 0; r < 37; ++r) {
    for (Index k = 0; k <= r % 5; ++k) {
      t.push_back({r, static_cast<Index>((r + 11 * k) % 37),
                   (k % 2 == 0 ? -0.0 : 1.25) + static_cast<double>(k)});
    }
  }
  const sparse::Coo m(37, 37, std::move(t));
  const auto part =
      kernels::IpPartitionedMatrix::build(m, cfg.num_pes(), 8, true);
  const DenseFrontier inactive(37, PlainSpmv{}.vector_identity());
  EXPECT_EQ(digest_ip(scalar_pull(part, inactive, nullptr)),
            digest_ip(native::avx2_pull_plain(part, inactive, nullptr)));
  const auto half = DenseFrontier::from_sparse(
      sparse::random_sparse_vector(37, 0.5, 53),
      PlainSpmv{}.vector_identity());
  EXPECT_EQ(digest_ip(scalar_pull(part, half, nullptr)),
            digest_ip(native::avx2_pull_plain(part, half, nullptr)));
}

#endif  // COSPARSE_HAVE_AVX2

}  // namespace
}  // namespace cosparse
