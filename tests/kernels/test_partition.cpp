#include "kernels/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "sparse/generate.h"

namespace cosparse::kernels {
namespace {

using sparse::Coo;
using sparse::uniform_random;

std::vector<Offset> row_nnz_of(const Coo& m) {
  std::vector<Offset> c(m.rows(), 0);
  for (const auto& t : m.triplets()) ++c[t.row];
  return c;
}

TEST(SplitRows, CoversAllRowsContiguously) {
  const Coo m = uniform_random(100, 100, 1000, 1);
  const auto bounds = split_rows(row_nnz_of(m), 7, true);
  ASSERT_EQ(bounds.size(), 8u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 100u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LE(bounds[i - 1], bounds[i]);
  }
}

TEST(SplitRows, NnzBalancedWithinOneMaxRow) {
  const Coo m = uniform_random(500, 500, 10000, 2);
  const auto row_nnz = row_nnz_of(m);
  const auto bounds = split_rows(row_nnz, 8, true);
  const Offset max_row =
      *std::max_element(row_nnz.begin(), row_nnz.end());
  const Offset target = 10000 / 8;
  for (std::size_t p = 0; p < 8; ++p) {
    Offset part = 0;
    for (Index r = bounds[p]; r < bounds[p + 1]; ++r) part += row_nnz[r];
    // Greedy split: each part within one heaviest-row of the target.
    EXPECT_LE(part, target + max_row);
  }
}

TEST(SplitRows, EqualRowsWhenNotBalanced) {
  std::vector<Offset> row_nnz(100, 1);
  row_nnz[0] = 1000;  // should NOT affect equal-row splitting
  const auto bounds = split_rows(row_nnz, 4, false);
  EXPECT_EQ(bounds[1], 25u);
  EXPECT_EQ(bounds[2], 50u);
  EXPECT_EQ(bounds[3], 75u);
}

TEST(SplitRows, MorePartsThanRows) {
  std::vector<Offset> row_nnz(3, 5);
  const auto bounds = split_rows(row_nnz, 8, true);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 3u);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LE(bounds[i - 1], bounds[i]);
}

TEST(IpPartition, PreservesEveryElement) {
  const Coo m = uniform_random(200, 200, 3000, 3);
  const auto part = IpPartitionedMatrix::build(m, 8, /*vblock_cols=*/64);
  EXPECT_EQ(part.nnz(), m.nnz());
  // Multiset equality via sorting copies.
  auto a = m.triplets();
  auto b = part.elems();
  auto lt = [](const sparse::Triplet& x, const sparse::Triplet& y) {
    return std::tie(x.row, x.col, x.value) < std::tie(y.row, y.col, y.value);
  };
  std::sort(a.begin(), a.end(), lt);
  std::sort(b.begin(), b.end(), lt);
  EXPECT_EQ(a, b);
}

TEST(IpPartition, VblockRangesRespectColumnBounds) {
  const Coo m = uniform_random(100, 300, 2000, 4);
  const Index vb_cols = 50;
  const auto part = IpPartitionedMatrix::build(m, 4, vb_cols);
  EXPECT_EQ(part.num_vblocks(), 6u);
  for (const auto& p : part.partitions()) {
    ASSERT_EQ(p.vblocks.size(), part.num_vblocks());
    for (std::uint32_t vb = 0; vb < part.num_vblocks(); ++vb) {
      for (Offset k = p.vblocks[vb].first; k < p.vblocks[vb].second; ++k) {
        const auto& e = part.elems()[k];
        EXPECT_EQ(e.col / vb_cols, vb);
        EXPECT_GE(e.row, p.row_begin);
        EXPECT_LT(e.row, p.row_end);
      }
    }
  }
}

TEST(IpPartition, RowMajorWithinVblock) {
  const Coo m = uniform_random(100, 100, 2000, 5);
  const auto part = IpPartitionedMatrix::build(m, 4, 25);
  for (const auto& p : part.partitions()) {
    for (const auto& [kb, ke] : p.vblocks) {
      for (Offset k = kb + 1; k < ke; ++k) {
        const auto& prev = part.elems()[k - 1];
        const auto& cur = part.elems()[k];
        EXPECT_TRUE(prev.row < cur.row ||
                    (prev.row == cur.row && prev.col < cur.col));
      }
    }
  }
}

TEST(IpPartition, SingleVblockWhenDisabled) {
  const Coo m = uniform_random(50, 50, 500, 6);
  const auto part = IpPartitionedMatrix::build(m, 4, 0);
  EXPECT_EQ(part.num_vblocks(), 1u);
  EXPECT_EQ(part.vblock_cols(), 50u);
}

TEST(IpPartition, PartitionsHaveExclusiveRowRanges) {
  const Coo m = uniform_random(128, 128, 1000, 7);
  const auto part = IpPartitionedMatrix::build(m, 8, 32);
  Index prev_end = 0;
  for (const auto& p : part.partitions()) {
    EXPECT_EQ(p.row_begin, prev_end);
    prev_end = p.row_end;
  }
  EXPECT_EQ(prev_end, 128u);
}

TEST(OpStripes, UnionEqualsMatrix) {
  const Coo m = uniform_random(200, 150, 2500, 8);
  const auto striped = OpStripedMatrix::build(m, 4);
  std::size_t total = 0;
  for (const auto& s : striped.stripes()) total += s.elems.size();
  EXPECT_EQ(total, m.nnz());
}

TEST(OpStripes, ColumnsSortedByRowWithinStripe) {
  const Coo m = uniform_random(300, 100, 4000, 9);
  const auto striped = OpStripedMatrix::build(m, 4);
  for (const auto& s : striped.stripes()) {
    for (Index c = 0; c < m.cols(); ++c) {
      for (Offset k = s.col_begin(c) + 1; k < s.col_end(c); ++k) {
        EXPECT_LT(s.elems[k - 1].row, s.elems[k].row);
      }
    }
  }
}

TEST(OpStripes, RowsWithinStripeBounds) {
  const Coo m = uniform_random(300, 100, 4000, 10);
  const auto striped = OpStripedMatrix::build(m, 5);
  for (const auto& s : striped.stripes()) {
    for (const auto& e : s.elems) {
      EXPECT_GE(e.row, s.row_begin);
      EXPECT_LT(e.row, s.row_end);
    }
  }
}

TEST(OpStripes, NnzBalancedAcrossTiles) {
  // Power-law matrix: naive equal-row split would be badly imbalanced;
  // the nnz-balanced split must stay within one heaviest row of target.
  const Coo m = sparse::power_law(1000, 1000, 20000, 2.1, 11);
  std::vector<Offset> row_nnz(m.rows(), 0);
  for (const auto& t : m.triplets()) ++row_nnz[t.row];
  const Offset max_row = *std::max_element(row_nnz.begin(), row_nnz.end());
  const auto striped = OpStripedMatrix::build(m, 8, true);
  for (const auto& s : striped.stripes()) {
    EXPECT_LE(s.elems.size(), 20000 / 8 + max_row);
  }
}

TEST(OpStripes, EmptyMatrix) {
  const Coo m(10, 10, {});
  const auto striped = OpStripedMatrix::build(m, 2);
  for (const auto& s : striped.stripes()) EXPECT_TRUE(s.elems.empty());
}

}  // namespace
}  // namespace cosparse::kernels
