// Unit tests for the Table I Matrix_Op definitions.
#include "kernels/semiring.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cosparse::kernels {
namespace {

TEST(PlainSpmvSemiring, TableOneDefinition) {
  const PlainSpmv s;
  // Matrix_Op = sum(Sp * V_src)
  EXPECT_DOUBLE_EQ(s.edge(2.0, 3.0, 99.0), 6.0);  // dst value ignored
  EXPECT_DOUBLE_EQ(s.reduce(1.5, 2.5), 4.0);
  EXPECT_DOUBLE_EQ(s.finalize(7.0, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(s.vector_identity(), 0.0);
  EXPECT_DOUBLE_EQ(s.reduce_identity(), 0.0);
  EXPECT_FALSE(PlainSpmv::kUsesDst);
}

TEST(BfsSemiring, TableOneDefinition) {
  const BfsSemiring s;
  // Matrix_Op = min(V_src): the edge op just forwards the source label.
  EXPECT_DOUBLE_EQ(s.edge(123.0, 4.0, 99.0), 4.0);
  EXPECT_DOUBLE_EQ(s.reduce(4.0, 2.0), 2.0);
  EXPECT_DOUBLE_EQ(s.reduce(2.0, 4.0), 2.0);
  EXPECT_TRUE(std::isinf(s.vector_identity()));
  EXPECT_TRUE(std::isinf(s.reduce_identity()));
}

TEST(SsspSemiring, TableOneDefinition) {
  const SsspSemiring s;
  // Matrix_Op = min(V_src + Sp)
  EXPECT_DOUBLE_EQ(s.edge(5.0, 2.0, 99.0), 7.0);
  EXPECT_DOUBLE_EQ(s.reduce(7.0, 3.0), 3.0);
  // Propagation through the identity behaves: inf + w stays inf.
  EXPECT_TRUE(std::isinf(s.edge(5.0, kInf, 0.0)));
  EXPECT_DOUBLE_EQ(s.reduce(kInf, 3.0), 3.0);
}

TEST(PageRankSemiring, TableOneDefinition) {
  const PageRankSemiring s;
  // Matrix_Op = sum(V_src / deg(src)); the division is pre-applied, so the
  // edge op forwards the (already divided) source contribution.
  EXPECT_DOUBLE_EQ(s.edge(1.0, 0.125, 99.0), 0.125);
  EXPECT_DOUBLE_EQ(s.reduce(0.25, 0.125), 0.375);
}

TEST(CfSemiring, TableOneDefinition) {
  const CfSemiring s{.lambda = 0.1};
  // Matrix_Op = sum((Sp - V_src*V_dst) * V_src) - lambda * V_dst
  const double src = 0.5, dst = 0.4, rating = 0.9;
  EXPECT_DOUBLE_EQ(s.edge(rating, src, dst), (rating - src * dst) * src);
  EXPECT_DOUBLE_EQ(s.reduce(1.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(s.finalize(2.0, dst), 2.0 - 0.1 * dst);
  EXPECT_TRUE(CfSemiring::kUsesDst);
}

TEST(CfSemiring, GradientDirectionReducesError) {
  // Single rating r, factors u (src) and v (dst): a small step along the
  // modeled gradient must reduce (r - u*v)^2 when lambda = 0.
  const CfSemiring s{.lambda = 0.0};
  const double u = 0.3, v = 0.2, r = 0.8;
  const double grad = s.finalize(s.edge(r, u, v), v);
  const double beta = 0.1;
  const double v2 = v + beta * grad;
  const double before = (r - u * v) * (r - u * v);
  const double after = (r - u * v2) * (r - u * v2);
  EXPECT_LT(after, before);
}

TEST(Semirings, SatisfyConcept) {
  static_assert(Semiring<PlainSpmv>);
  static_assert(Semiring<BfsSemiring>);
  static_assert(Semiring<SsspSemiring>);
  static_assert(Semiring<PageRankSemiring>);
  static_assert(Semiring<CfSemiring>);
  SUCCEED();
}

}  // namespace
}  // namespace cosparse::kernels
