#include "kernels/address_map.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cosparse::kernels {
namespace {

sim::Machine make_machine() {
  return sim::Machine(sim::SystemConfig::transmuter(2, 4),
                     sim::HwConfig::kSC);
}

TEST(AddressMap, MemoizesByHostPointer) {
  auto machine = make_machine();
  AddressMap amap(machine);
  std::vector<double> a(64);
  std::vector<double> b(64);
  const Addr first = amap.of(a.data(), a.size() * 8, "matrix.elems");
  EXPECT_EQ(amap.of(a.data(), a.size() * 8, "matrix.elems"), first);
  EXPECT_NE(amap.of(b.data(), b.size() * 8, "vector.dense"), first);
  EXPECT_EQ(amap.size(), 2u);
}

TEST(AddressMap, ZeroSizedRegionThrows) {
  // An empty array has no bytes to address; a silent zero-byte mapping
  // would alias the next allocation. cosparse-lint reports the same
  // defect statically as "address.zero-region".
  auto machine = make_machine();
  AddressMap amap(machine);
  int dummy = 0;
  EXPECT_THROW(amap.of(&dummy, 0, "vector.sparse"), Error);
  EXPECT_EQ(amap.size(), 0u);
}

TEST(AddressMap, ForEachRegionReportsAllocatorRecords) {
  auto machine = make_machine();
  AddressMap amap(machine);
  std::vector<double> a(16);
  std::vector<double> b(16);
  amap.of(a.data(), 128, "matrix.elems");
  machine.alloc(256, "scratch.unmapped");  // not owned by the map
  amap.of(b.data(), 128, "vector.dense");
  std::vector<std::string> labels;
  amap.for_each_region([&](Addr, std::size_t bytes, std::string_view label) {
    EXPECT_EQ(bytes, 128u);
    labels.emplace_back(label);
  });
  EXPECT_EQ(labels,
            (std::vector<std::string>{"matrix.elems", "vector.dense"}));
}

}  // namespace
}  // namespace cosparse::kernels
