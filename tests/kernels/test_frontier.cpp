#include "kernels/frontier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/semiring.h"
#include "sparse/generate.h"

namespace cosparse::kernels {
namespace {

TEST(DenseFrontier, StartsInactive) {
  DenseFrontier f(10, kInf);
  EXPECT_EQ(f.num_active, 0u);
  EXPECT_DOUBLE_EQ(f.density(), 0.0);
  EXPECT_FALSE(f.all_active());
  for (Index i = 0; i < 10; ++i) {
    EXPECT_EQ(f.active[i], 0);
    EXPECT_TRUE(std::isinf(f.values[i]));
  }
}

TEST(DenseFrontier, SetActivatesOnce) {
  DenseFrontier f(10, 0.0);
  f.set(3, 1.5);
  f.set(3, 2.5);  // same vertex twice: count stays 1
  EXPECT_EQ(f.num_active, 1u);
  EXPECT_DOUBLE_EQ(f.values[3], 2.5);
  EXPECT_DOUBLE_EQ(f.density(), 0.1);
}

TEST(DenseFrontier, FromSparseRoundTrip) {
  const auto sv = sparse::random_sparse_vector(500, 0.1, 3);
  const auto f = DenseFrontier::from_sparse(sv, kInf);
  EXPECT_EQ(f.num_active, sv.nnz());
  EXPECT_EQ(f.to_sparse(), sv);
}

TEST(DenseFrontier, FromDenseIsAllActive) {
  const auto f =
      DenseFrontier::from_dense(sparse::random_dense_vector(100, 5));
  EXPECT_TRUE(f.all_active());
  EXPECT_DOUBLE_EQ(f.density(), 1.0);
  EXPECT_EQ(f.to_sparse().nnz(), 100u);
}

TEST(DenseFrontier, ZeroValuedActiveEntrySurvivesRoundTrip) {
  // Unlike plain dense vectors, the explicit active bitmap preserves
  // entries whose payload equals the identity (BFS level 0!).
  sparse::SparseVector sv(4);
  sv.push_back(2, 0.0);
  const auto f = DenseFrontier::from_sparse(sv, 0.0);
  EXPECT_EQ(f.num_active, 1u);
  EXPECT_EQ(f.to_sparse().nnz(), 1u);
  EXPECT_EQ(f.to_sparse().entries()[0].index, 2u);
}

TEST(DenseFrontier, EmptyDimension) {
  DenseFrontier f(0, 0.0);
  EXPECT_DOUBLE_EQ(f.density(), 0.0);
  EXPECT_FALSE(f.all_active());
  EXPECT_TRUE(f.to_sparse().empty());
}

}  // namespace
}  // namespace cosparse::kernels
