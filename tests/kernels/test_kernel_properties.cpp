// Property-style parameterized sweeps: the two dataflows must agree with
// each other (and the reference) for every semiring, density, hardware
// configuration and system size — this is the invariant CoSPARSE's
// correctness rests on, since the runtime switches freely between them.
#include <gtest/gtest.h>

#include <tuple>

#include "kernels/ip_spmv.h"
#include "kernels/op_spmv.h"
#include "kernels/semiring.h"
#include "reference.h"
#include "sparse/generate.h"

namespace cosparse::kernels {
namespace {

using sparse::Coo;
using sparse::SparseVector;

// (tiles, pes_per_tile, vector_density, power_law_matrix)
using Params = std::tuple<std::uint32_t, std::uint32_t, double, bool>;

class IpOpEquivalence : public ::testing::TestWithParam<Params> {};

TEST_P(IpOpEquivalence, PlainSemiringAgrees) {
  const auto [tiles, pes, density, power_law] = GetParam();
  const Index n = 400;
  const Coo m =
      power_law
          ? sparse::power_law(n, n, 6000, 2.2, 42,
                              sparse::ValueDist::kUniform01)
          : sparse::uniform_random(n, n, 6000, 42,
                                   sparse::ValueDist::kUniform01);
  const SparseVector xs = sparse::random_sparse_vector(n, density, 7);
  const PlainSpmv sr;
  const auto xf = DenseFrontier::from_sparse(xs, sr.vector_identity());

  const auto cfg = sim::SystemConfig::transmuter(tiles, pes);

  // IP on SC.
  sim::Machine mip(cfg, sim::HwConfig::kSC);
  AddressMap aip(mip);
  const auto part = IpPartitionedMatrix::build(
      m, cfg.num_pes(),
      static_cast<Index>(cfg.scs_spm_bytes_per_tile() / 9));
  const auto ip = run_inner_product(mip, aip, part, xf, sr);

  // OP on PC.
  sim::Machine mop(cfg, sim::HwConfig::kPC);
  AddressMap aop(mop);
  const auto striped = OpStripedMatrix::build(m, cfg.num_tiles);
  const auto op = run_outer_product(mop, aop, striped, xs, nullptr, sr);

  // Cross-check against each other and the reference.
  const auto want = testing::reference_spmv(m, xf, sr);
  std::size_t want_touched = 0;
  for (auto t : want.touched) want_touched += t;
  EXPECT_EQ(ip.num_touched, want_touched);
  ASSERT_EQ(op.y.nnz(), want_touched);
  for (const auto& e : op.y.entries()) {
    EXPECT_NEAR(e.value, want.y[e.index], 1e-9);
    EXPECT_NEAR(e.value, ip.y[e.index], 1e-9);
  }
}

TEST_P(IpOpEquivalence, MinPlusSemiringAgrees) {
  const auto [tiles, pes, density, power_law] = GetParam();
  const Index n = 300;
  const Coo m =
      power_law
          ? sparse::power_law(n, n, 4500, 2.2, 43,
                              sparse::ValueDist::kUniformInt)
          : sparse::uniform_random(n, n, 4500, 43,
                                   sparse::ValueDist::kUniformInt);
  const SparseVector xs = sparse::random_sparse_vector(n, density, 8);
  const SsspSemiring sr;
  const auto xf = DenseFrontier::from_sparse(xs, sr.vector_identity());
  const auto cfg = sim::SystemConfig::transmuter(tiles, pes);

  sim::Machine mip(cfg, sim::HwConfig::kSCS);
  AddressMap aip(mip);
  const auto part = IpPartitionedMatrix::build(
      m, cfg.num_pes(),
      static_cast<Index>(cfg.scs_spm_bytes_per_tile() / 9));
  const auto ip = run_inner_product(mip, aip, part, xf, sr);

  sim::Machine mop(cfg, sim::HwConfig::kPS);
  AddressMap aop(mop);
  const auto striped = OpStripedMatrix::build(m, cfg.num_tiles);
  const auto op = run_outer_product(mop, aop, striped, xs, nullptr, sr);

  for (const auto& e : op.y.entries()) {
    EXPECT_DOUBLE_EQ(e.value, ip.y[e.index]);
  }
  std::size_t ip_touched = ip.num_touched;
  EXPECT_EQ(op.y.nnz(), ip_touched);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IpOpEquivalence,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),   // tiles
                       ::testing::Values(2u, 4u, 8u),   // PEs per tile
                       ::testing::Values(0.01, 0.1, 0.5, 1.0),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<Params>& info) {
      const auto t = std::get<0>(info.param);
      const auto p = std::get<1>(info.param);
      const auto d = std::get<2>(info.param);
      const auto pl = std::get<3>(info.param);
      std::string name = std::to_string(t) + "x" + std::to_string(p) + "_d" +
                         std::to_string(static_cast<int>(d * 100)) +
                         (pl ? "_powerlaw" : "_uniform");
      return name;
    });

// Timing-shape properties the reconfiguration heuristics rely on.
TEST(KernelShapes, OpBeatsIpAtVeryLowDensity) {
  const Index n = 20000;
  const Coo m = sparse::uniform_random(n, n, 200000, 1);
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const PlainSpmv sr;
  const SparseVector xs = sparse::random_sparse_vector(n, 0.001, 2);
  const auto xf = DenseFrontier::from_sparse(xs, sr.vector_identity());

  sim::Machine mip(cfg, sim::HwConfig::kSC);
  AddressMap aip(mip);
  const auto part = IpPartitionedMatrix::build(
      m, cfg.num_pes(),
      static_cast<Index>(cfg.scs_spm_bytes_per_tile() / 9));
  run_inner_product(mip, aip, part, xf, sr);

  sim::Machine mop(cfg, sim::HwConfig::kPC);
  AddressMap aop(mop);
  const auto striped = OpStripedMatrix::build(m, cfg.num_tiles);
  run_outer_product(mop, aop, striped, xs, nullptr, sr);

  EXPECT_LT(mop.cycles(), mip.cycles());
}

TEST(KernelShapes, IpBeatsOpAtFullDensity) {
  const Index n = 20000;
  const Coo m = sparse::uniform_random(n, n, 200000, 1);
  const auto cfg = sim::SystemConfig::transmuter(2, 8);
  const PlainSpmv sr;
  const auto xd = sparse::random_dense_vector(n, 3);
  const auto xf = DenseFrontier::from_dense(xd);
  const SparseVector xs = xf.to_sparse();

  sim::Machine mip(cfg, sim::HwConfig::kSC);
  AddressMap aip(mip);
  const auto part = IpPartitionedMatrix::build(
      m, cfg.num_pes(),
      static_cast<Index>(cfg.scs_spm_bytes_per_tile() / 9));
  run_inner_product(mip, aip, part, xf, sr);

  sim::Machine mop(cfg, sim::HwConfig::kPC);
  AddressMap aop(mop);
  const auto striped = OpStripedMatrix::build(m, cfg.num_tiles);
  run_outer_product(mop, aop, striped, xs, nullptr, sr);

  EXPECT_LT(mip.cycles(), mop.cycles());
}

}  // namespace
}  // namespace cosparse::kernels
