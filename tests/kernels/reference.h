// Shared test helper: a straightforward host-side reference of the
// semiring SpMV semantics both kernels must implement:
//   y[r] = finalize( reduce over active sources c with M[r][c] != absent of
//                    edge(M[r][c], x[c], x_old[r]) , x_old[r] )
// computed only for rows touched by at least one active source.
#pragma once

#include <vector>

#include "kernels/frontier.h"
#include "kernels/semiring.h"
#include "sparse/formats.h"

namespace cosparse::kernels::testing {

template <Semiring S>
struct ReferenceResult {
  sparse::DenseVector y;
  std::vector<std::uint8_t> touched;
};

template <Semiring S>
ReferenceResult<S> reference_spmv(const sparse::Coo& m,
                                  const DenseFrontier& x, const S& sr) {
  ReferenceResult<S> out;
  out.y = sparse::DenseVector(m.rows(), sr.reduce_identity());
  out.touched.assign(m.rows(), 0);
  for (const auto& t : m.triplets()) {
    if (!x.active[t.col]) continue;
    const Value xdst = S::kUsesDst ? x.values[t.row] : Value{0};
    out.y[t.row] =
        sr.reduce(out.y[t.row], sr.edge(t.value, x.values[t.col], xdst));
    out.touched[t.row] = 1;
  }
  for (Index r = 0; r < m.rows(); ++r) {
    if (out.touched[r]) {
      out.y[r] = sr.finalize(out.y[r], S::kUsesDst ? x.values[r] : Value{0});
    }
  }
  return out;
}

}  // namespace cosparse::kernels::testing
