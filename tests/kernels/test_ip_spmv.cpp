#include "kernels/ip_spmv.h"

#include <gtest/gtest.h>

#include "kernels/semiring.h"
#include "reference.h"
#include "sparse/generate.h"

namespace cosparse::kernels {
namespace {

using sparse::Coo;
using sparse::uniform_random;
using testing::reference_spmv;

struct IpHarness {
  sim::SystemConfig cfg = sim::SystemConfig::transmuter(2, 4);
  sim::HwConfig hw = sim::HwConfig::kSC;
  Index vblock_cols = 0;  // 0: derive from SPM capacity

  template <Semiring S>
  IpResult run(const Coo& m, const DenseFrontier& x, const S& sr) {
    sim::Machine machine(cfg, hw);
    AddressMap amap(machine);
    const Index vb =
        vblock_cols != 0
            ? vblock_cols
            : static_cast<Index>(cfg.scs_spm_bytes_per_tile() / 9);
    const auto part = IpPartitionedMatrix::build(m, cfg.num_pes(), vb);
    auto result = run_inner_product(machine, amap, part, x, sr);
    cycles = machine.cycles();
    stats = machine.stats();
    return result;
  }

  Cycles cycles = 0;
  sim::Stats stats;
};

DenseFrontier frontier_with_density(Index n, double density,
                                    std::uint64_t seed, Value identity) {
  return DenseFrontier::from_sparse(
      sparse::random_sparse_vector(n, density, seed), identity);
}

TEST(IpSpmv, MatchesReferencePlainDense) {
  const Coo m = uniform_random(200, 200, 3000, 1, sparse::ValueDist::kUniform01);
  const auto x = DenseFrontier::from_dense(sparse::random_dense_vector(200, 2));
  IpHarness h;
  const PlainSpmv sr;
  const auto got = h.run(m, x, sr);
  const auto want = reference_spmv(m, x, sr);
  for (Index r = 0; r < 200; ++r) {
    EXPECT_NEAR(got.y[r], want.y[r], 1e-9) << "row " << r;
    EXPECT_EQ(got.touched[r], want.touched[r]) << "row " << r;
  }
  EXPECT_GT(h.cycles, 0u);
}

TEST(IpSpmv, MatchesReferenceSparseFrontier) {
  const Coo m = uniform_random(300, 300, 5000, 3, sparse::ValueDist::kUniformInt);
  const SsspSemiring sr;
  const auto x = frontier_with_density(300, 0.1, 4, sr.vector_identity());
  IpHarness h;
  const auto got = h.run(m, x, sr);
  const auto want = reference_spmv(m, x, sr);
  for (Index r = 0; r < 300; ++r) {
    EXPECT_DOUBLE_EQ(got.y[r], want.y[r]) << "row " << r;
    EXPECT_EQ(got.touched[r], want.touched[r]) << "row " << r;
  }
}

TEST(IpSpmv, ScsAndScProduceIdenticalResults) {
  const Coo m = uniform_random(256, 256, 4000, 5);
  const PlainSpmv sr;
  const auto x = frontier_with_density(256, 0.5, 6, sr.vector_identity());
  IpHarness sc, scs;
  sc.hw = sim::HwConfig::kSC;
  scs.hw = sim::HwConfig::kSCS;
  const auto ysc = sc.run(m, x, sr);
  const auto yscs = scs.run(m, x, sr);
  EXPECT_EQ(ysc.y, yscs.y);
  // SCS must actually exercise the scratchpad.
  EXPECT_GT(scs.stats.spm_accesses, 0u);
  EXPECT_EQ(sc.stats.spm_accesses, 0u);
}

TEST(IpSpmv, CfSemiringUsesDestination) {
  const Coo m = uniform_random(100, 100, 1500, 7, sparse::ValueDist::kUniform01);
  const auto x = DenseFrontier::from_dense(sparse::random_dense_vector(100, 8));
  const CfSemiring sr{.lambda = 0.1};
  IpHarness h;
  const auto got = h.run(m, x, sr);
  const auto want = reference_spmv(m, x, sr);
  for (Index r = 0; r < 100; ++r) {
    EXPECT_NEAR(got.y[r], want.y[r], 1e-9);
  }
}

TEST(IpSpmv, EmptyFrontierTouchesNothing) {
  const Coo m = uniform_random(64, 64, 500, 9);
  const BfsSemiring sr;
  const DenseFrontier x(64, sr.vector_identity());
  IpHarness h;
  const auto got = h.run(m, x, sr);
  EXPECT_EQ(got.num_touched, 0u);
  for (Index r = 0; r < 64; ++r) EXPECT_EQ(got.touched[r], 0);
}

TEST(IpSpmv, EmptyMatrix) {
  const Coo m(32, 32, {});
  const PlainSpmv sr;
  const auto x = DenseFrontier::from_dense(sparse::random_dense_vector(32, 1));
  IpHarness h;
  const auto got = h.run(m, x, sr);
  EXPECT_EQ(got.num_touched, 0u);
}

TEST(IpSpmv, VblockingDoesNotChangeResults) {
  const Coo m = uniform_random(200, 200, 3000, 11);
  const PlainSpmv sr;
  const auto x = DenseFrontier::from_dense(sparse::random_dense_vector(200, 12));
  IpHarness with, without;
  with.vblock_cols = 32;
  without.vblock_cols = 200;  // single vblock
  const auto a = with.run(m, x, sr);
  const auto b = without.run(m, x, sr);
  for (Index r = 0; r < 200; ++r) EXPECT_NEAR(a.y[r], b.y[r], 1e-9);
}

TEST(IpSpmv, ScsFillsSpmPerVblock) {
  const Coo m = uniform_random(512, 512, 8000, 13);
  const PlainSpmv sr;
  const auto x = DenseFrontier::from_dense(sparse::random_dense_vector(512, 14));
  IpHarness h;
  h.hw = sim::HwConfig::kSCS;
  h.vblock_cols = 128;  // 4 vblocks
  h.run(m, x, sr);
  // Each of the 2 tiles fills its SPM once per vblock: >= 8 barriers.
  EXPECT_GE(h.stats.barriers, 8u);
}

TEST(IpSpmv, DenserFrontierCostsMoreCycles) {
  const Coo m = uniform_random(1024, 1024, 20000, 15);
  const SsspSemiring sr;
  IpHarness sparse_run, dense_run;
  sparse_run.run(m, frontier_with_density(1024, 0.01, 16,
                                          sr.vector_identity()), sr);
  dense_run.run(m, frontier_with_density(1024, 0.9, 17,
                                         sr.vector_identity()), sr);
  EXPECT_GT(dense_run.cycles, sparse_run.cycles);
}

TEST(IpSpmv, DimensionMismatchRejected) {
  const Coo m = uniform_random(32, 32, 100, 18);
  const PlainSpmv sr;
  const auto x = DenseFrontier::from_dense(sparse::random_dense_vector(16, 1));
  IpHarness h;
  EXPECT_THROW(h.run(m, x, sr), Error);
}

}  // namespace
}  // namespace cosparse::kernels
