#include "kernels/op_spmv.h"

#include <gtest/gtest.h>

#include "kernels/semiring.h"
#include "reference.h"
#include "sparse/generate.h"

namespace cosparse::kernels {
namespace {

using sparse::Coo;
using sparse::SparseVector;
using sparse::uniform_random;
using testing::reference_spmv;

struct OpHarness {
  sim::SystemConfig cfg = sim::SystemConfig::transmuter(2, 4);
  sim::HwConfig hw = sim::HwConfig::kPC;

  template <Semiring S>
  OpResult run(const Coo& m, const SparseVector& x,
               const sparse::DenseVector* xold, const S& sr) {
    sim::Machine machine(cfg, hw);
    AddressMap amap(machine);
    const auto striped = OpStripedMatrix::build(m, cfg.num_tiles);
    auto result = run_outer_product(machine, amap, striped, x, xold, sr);
    cycles = machine.cycles();
    stats = machine.stats();
    return result;
  }

  Cycles cycles = 0;
  sim::Stats stats;
};

/// Compares an OP sparse result against the dense reference.
template <Semiring S>
void expect_matches_reference(const OpResult& got, const Coo& m,
                              const DenseFrontier& xf, const S& sr,
                              double tol = 1e-9) {
  const auto want = reference_spmv(m, xf, sr);
  std::size_t want_touched = 0;
  for (auto t : want.touched) want_touched += t;
  ASSERT_EQ(got.y.nnz(), want_touched);
  for (const auto& e : got.y.entries()) {
    ASSERT_TRUE(want.touched[e.index]) << "row " << e.index;
    EXPECT_NEAR(e.value, want.y[e.index], tol) << "row " << e.index;
  }
}

TEST(OpSpmv, MatchesReferencePlain) {
  const Coo m = uniform_random(200, 200, 3000, 1, sparse::ValueDist::kUniform01);
  const PlainSpmv sr;
  const SparseVector x = sparse::random_sparse_vector(200, 0.1, 2);
  const auto xf = DenseFrontier::from_sparse(x, sr.vector_identity());
  OpHarness h;
  const auto got = h.run(m, x, nullptr, sr);
  expect_matches_reference(got, m, xf, sr);
  EXPECT_GT(h.cycles, 0u);
}

TEST(OpSpmv, MatchesReferenceMinPlus) {
  const Coo m = uniform_random(300, 300, 6000, 3, sparse::ValueDist::kUniformInt);
  const SsspSemiring sr;
  const SparseVector x = sparse::random_sparse_vector(300, 0.05, 4);
  const auto xf = DenseFrontier::from_sparse(x, sr.vector_identity());
  OpHarness h;
  const auto got = h.run(m, x, nullptr, sr);
  expect_matches_reference(got, m, xf, sr);
}

TEST(OpSpmv, PcAndPsProduceIdenticalResults) {
  const Coo m = uniform_random(256, 256, 5000, 5);
  const PlainSpmv sr;
  const SparseVector x = sparse::random_sparse_vector(256, 0.2, 6);
  OpHarness pc, ps;
  pc.hw = sim::HwConfig::kPC;
  ps.hw = sim::HwConfig::kPS;
  const auto ypc = pc.run(m, x, nullptr, sr);
  const auto yps = ps.run(m, x, nullptr, sr);
  EXPECT_EQ(ypc.y, yps.y);
  EXPECT_GT(ps.stats.spm_accesses, 0u);
  EXPECT_EQ(pc.stats.spm_accesses, 0u);
}

TEST(OpSpmv, CfUsesDestinationValues) {
  const Coo m = uniform_random(100, 100, 1500, 7, sparse::ValueDist::kUniform01);
  const auto dense_x = sparse::random_dense_vector(100, 8);
  const auto xf = DenseFrontier::from_dense(dense_x);
  const SparseVector x = xf.to_sparse();
  const CfSemiring sr{.lambda = 0.1};
  OpHarness h;
  const auto got = h.run(m, x, &dense_x, sr);
  expect_matches_reference(got, m, xf, sr);
}

TEST(OpSpmv, EmptyVectorYieldsEmptyResult) {
  const Coo m = uniform_random(64, 64, 500, 9);
  const PlainSpmv sr;
  const SparseVector x(64);
  OpHarness h;
  const auto got = h.run(m, x, nullptr, sr);
  EXPECT_TRUE(got.y.empty());
}

TEST(OpSpmv, EmptyColumnsSkipped) {
  // Vector hits only columns with no matrix entries: nothing merges.
  Coo m(8, 8, {{0, 0, 1.0}, {3, 1, 2.0}});
  SparseVector x(8);
  x.push_back(4, 1.0);
  x.push_back(7, 1.0);
  const PlainSpmv sr;
  OpHarness h;
  const auto got = h.run(m, x, nullptr, sr);
  EXPECT_TRUE(got.y.empty());
}

TEST(OpSpmv, OutputSortedByRowGlobally) {
  const Coo m = uniform_random(500, 500, 8000, 10);
  const PlainSpmv sr;
  const SparseVector x = sparse::random_sparse_vector(500, 0.3, 11);
  OpHarness h;
  const auto got = h.run(m, x, nullptr, sr);
  for (std::size_t i = 1; i < got.y.entries().size(); ++i) {
    EXPECT_LT(got.y.entries()[i - 1].index, got.y.entries()[i].index);
  }
}

TEST(OpSpmv, SingleColumnVector) {
  Coo m(6, 6,
        {{0, 2, 1.0}, {1, 2, 2.0}, {5, 2, 3.0}, {3, 3, 9.0}});
  SparseVector x(6);
  x.push_back(2, 10.0);
  const PlainSpmv sr;
  OpHarness h;
  const auto got = h.run(m, x, nullptr, sr);
  ASSERT_EQ(got.y.nnz(), 3u);
  EXPECT_DOUBLE_EQ(got.y.entries()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(got.y.entries()[1].value, 20.0);
  EXPECT_DOUBLE_EQ(got.y.entries()[2].value, 30.0);
}

TEST(OpSpmv, LcpElementsMatchOutputWork) {
  const Coo m = uniform_random(200, 200, 3000, 12);
  const PlainSpmv sr;
  const SparseVector x = sparse::random_sparse_vector(200, 0.2, 13);
  OpHarness h;
  const auto got = h.run(m, x, nullptr, sr);
  // Each PE emits one element per distinct row it produced; the combined
  // output can only be smaller (cross-PE merging).
  EXPECT_GE(h.stats.lcp_elements, got.y.nnz());
}

TEST(OpSpmv, DenserVectorCostsMoreCycles) {
  const Coo m = uniform_random(1024, 1024, 20000, 14);
  const PlainSpmv sr;
  OpHarness lo, hi;
  lo.run(m, sparse::random_sparse_vector(1024, 0.01, 15), nullptr, sr);
  hi.run(m, sparse::random_sparse_vector(1024, 0.5, 16), nullptr, sr);
  EXPECT_GT(hi.cycles, lo.cycles);
}

TEST(OpSpmv, DimensionMismatchRejected) {
  const Coo m = uniform_random(32, 32, 100, 17);
  const PlainSpmv sr;
  const SparseVector x(16);
  OpHarness h;
  EXPECT_THROW(h.run(m, x, nullptr, sr), Error);
}

TEST(OpSpmv, MissingDstVectorRejectedForCf) {
  const Coo m = uniform_random(32, 32, 100, 18);
  const CfSemiring sr{};
  const SparseVector x = sparse::random_sparse_vector(32, 0.5, 19);
  OpHarness h;
  EXPECT_THROW(h.run(m, x, nullptr, sr), Error);
}

}  // namespace
}  // namespace cosparse::kernels
