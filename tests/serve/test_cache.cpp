// MatrixCache: LRU under a byte budget, pinned entries never evicted,
// concurrent acquires stay coherent.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "serve/cache.h"
#include "sparse/datasets.h"

namespace cosparse::serve {
namespace {

// Scale 128 keeps every Table III stand-in tiny while preserving their
// relative sizes (the dense `vsp` spec overflows its clamped dimensions
// at larger divisors).
constexpr unsigned kScale = 128;

sparse::DatasetRegistry registry() { return sparse::DatasetRegistry(); }

std::uint64_t bytes_of(const sparse::DatasetRegistry& reg,
                       const std::string& name) {
  return MatrixCache::graph_bytes(reg.load(name, kScale, 0));
}

TEST(MatrixCache, MissThenHit) {
  auto reg = registry();
  MatrixCache cache(&reg, 1ULL << 30, kScale, 0);
  {
    const auto lease = cache.acquire("twitter");
    ASSERT_TRUE(lease.valid());
    EXPECT_GT(lease.graph().num_vertices(), 0u);
  }
  EXPECT_TRUE(cache.resident("twitter"));
  { const auto again = cache.acquire("twitter"); }
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.bytes_resident, bytes_of(reg, "twitter"));
}

TEST(MatrixCache, UnknownDatasetThrows) {
  auto reg = registry();
  MatrixCache cache(&reg, 1ULL << 30, kScale, 0);
  EXPECT_THROW((void)cache.acquire("friendster"), Error);
}

TEST(MatrixCache, LruEvictionOrder) {
  auto reg = registry();
  // Budget fits exactly two of the three smallest datasets.
  const std::uint64_t budget =
      bytes_of(reg, "twitter") + bytes_of(reg, "vsp") +
      bytes_of(reg, "youtube") - 1;
  MatrixCache cache(&reg, budget, kScale, 0);
  { const auto l = cache.acquire("twitter"); }
  { const auto l = cache.acquire("vsp"); }
  // twitter is now least-recently-used; loading youtube must evict it
  // (and only it, if vsp + youtube fit).
  { const auto l = cache.acquire("youtube"); }
  EXPECT_FALSE(cache.resident("twitter"));
  EXPECT_TRUE(cache.resident("vsp"));
  EXPECT_TRUE(cache.resident("youtube"));
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes_resident, budget);
}

TEST(MatrixCache, AcquireRefreshesRecency) {
  auto reg = registry();
  const std::uint64_t budget =
      bytes_of(reg, "twitter") + bytes_of(reg, "vsp") +
      bytes_of(reg, "youtube") - 1;
  MatrixCache cache(&reg, budget, kScale, 0);
  { const auto l = cache.acquire("twitter"); }
  { const auto l = cache.acquire("vsp"); }
  { const auto l = cache.acquire("twitter"); }  // refresh: vsp is LRU now
  { const auto l = cache.acquire("youtube"); }
  EXPECT_TRUE(cache.resident("twitter"));
  EXPECT_FALSE(cache.resident("vsp"));
}

TEST(MatrixCache, PinnedEntriesAreNeverEvicted) {
  auto reg = registry();
  // Budget fits only one dataset: with twitter pinned, loading vsp must
  // run over budget instead of evicting the pinned entry.
  const std::uint64_t budget = bytes_of(reg, "twitter");
  MatrixCache cache(&reg, budget, kScale, 0);
  const auto pinned = cache.acquire("twitter");
  ASSERT_TRUE(pinned.valid());
  {
    const auto l = cache.acquire("vsp");
    EXPECT_TRUE(cache.resident("twitter"));  // still pinned, still here
    EXPECT_TRUE(cache.resident("vsp"));
    EXPECT_GE(cache.stats().over_budget_loads, 1u);
    EXPECT_GT(cache.stats().bytes_resident, budget);
  }
  // The pinned lease keeps its graph reference valid throughout.
  EXPECT_GT(pinned.graph().num_edges(), 0u);
}

TEST(MatrixCache, PeakBytesTracksHighWater) {
  auto reg = registry();
  MatrixCache cache(&reg, 1ULL << 30, kScale, 0);
  { const auto a = cache.acquire("twitter"); }
  { const auto b = cache.acquire("vsp"); }
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.peak_bytes_resident,
            bytes_of(reg, "twitter") + bytes_of(reg, "vsp"));
}

TEST(MatrixCache, ConcurrentAcquiresLoadOnce) {
  auto reg = registry();
  MatrixCache cache(&reg, 1ULL << 30, kScale, 0);
  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&cache, &failures] {
      for (int rep = 0; rep < 20; ++rep) {
        const auto lease = cache.acquire(rep % 2 == 0 ? "twitter" : "vsp");
        if (!lease.valid() || lease.graph().num_vertices() == 0)
          failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  const CacheStats s = cache.stats();
  // The per-entry load latch serializes duplicate loads: exactly one miss
  // per dataset no matter how the 8 threads interleave.
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 8u * 20u - 2u);
}

TEST(MatrixCache, GraphBytesFormula) {
  auto reg = registry();
  const auto g = reg.load("twitter", kScale, 0);
  EXPECT_EQ(MatrixCache::graph_bytes(g),
            g.num_edges() * sizeof(sparse::Triplet) +
                g.num_vertices() * sizeof(Index));
}

}  // namespace
}  // namespace cosparse::serve
