// The discrete-event scheduler: admission, batching, virtual timing.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/scheduler.h"
#include "serve/trace.h"

namespace cosparse::serve {
namespace {

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.scheduler_type = "same-dataset-batch";
  cfg.max_active_reqs = 8;
  cfg.max_batch_size = 4;
  cfg.virtual_workers = 2;
  cfg.scale = 2048;
  cfg.traffic.request_interval_us = 200;
  cfg.traffic.request_total_cnt = 60;
  cfg.traffic.seed = 5;
  cfg.traffic.datasets = {"twitter", "vsp"};
  cfg.traffic.algos = {"bfs", "pagerank"};
  return cfg;
}

QueryRequest req(std::uint64_t id, std::uint64_t arrival,
                 const std::string& dataset, Algo algo = Algo::kBfs) {
  QueryRequest r;
  r.id = id;
  r.arrival_us = arrival;
  r.dataset = dataset;
  r.algo = algo;
  return r;
}

TEST(Scheduler, PureFunctionOfConfigAndTrace) {
  const ServeConfig cfg = small_config();
  const auto trace = generate_trace(cfg.traffic);
  const Schedule a = build_schedule(cfg, trace);
  const Schedule b = build_schedule(cfg, trace);
  EXPECT_EQ(schedule_json(a).dump(), schedule_json(b).dump());
}

TEST(Scheduler, FcfsDispatchesSinglyInArrivalOrder) {
  ServeConfig cfg = small_config();
  cfg.scheduler_type = "fcfs";
  cfg.virtual_workers = 1;
  const std::vector<QueryRequest> trace = {
      req(1, 0, "twitter"), req(2, 1, "vsp"), req(3, 2, "twitter")};
  const Schedule s = build_schedule(cfg, trace);
  ASSERT_EQ(s.batches.size(), 3u);
  std::uint64_t prev_dispatch = 0;
  for (std::size_t i = 0; i < s.batches.size(); ++i) {
    EXPECT_EQ(s.batches[i].request_indices.size(), 1u);
    EXPECT_EQ(s.batches[i].request_indices[0], i);  // arrival order
    EXPECT_GE(s.batches[i].dispatch_us, prev_dispatch);
    prev_dispatch = s.batches[i].dispatch_us;
  }
}

TEST(Scheduler, SameDatasetBatchCoalesces) {
  ServeConfig cfg = small_config();
  cfg.virtual_workers = 1;
  cfg.max_batch_size = 8;
  // Four twitter requests arrive while the worker is busy with the first:
  // they must coalesce into one batch.
  std::vector<QueryRequest> trace;
  trace.push_back(req(1, 0, "vsp"));
  for (std::uint64_t i = 2; i <= 5; ++i)
    trace.push_back(req(i, 1, "twitter"));
  const Schedule s = build_schedule(cfg, trace);
  ASSERT_EQ(s.batches.size(), 2u);
  EXPECT_EQ(s.batches[0].dataset, "vsp");
  EXPECT_EQ(s.batches[1].dataset, "twitter");
  EXPECT_EQ(s.batches[1].request_indices.size(), 4u);
  // One engine instance, one shared dispatch time for the whole batch.
  for (const std::size_t idx : s.batches[1].request_indices)
    EXPECT_EQ(s.responses[idx].dispatch_us, s.batches[1].dispatch_us);
}

TEST(Scheduler, BatchSizeIsCapped) {
  ServeConfig cfg = small_config();
  cfg.virtual_workers = 1;
  cfg.max_batch_size = 2;
  cfg.max_active_reqs = 64;
  std::vector<QueryRequest> trace;
  trace.push_back(req(1, 0, "vsp"));
  for (std::uint64_t i = 2; i <= 8; ++i)
    trace.push_back(req(i, 1, "twitter"));
  const Schedule s = build_schedule(cfg, trace);
  for (const BatchPlan& b : s.batches)
    EXPECT_LE(b.request_indices.size(), 2u);
}

TEST(Scheduler, AdmissionControlRejectsBeyondMaxActive) {
  ServeConfig cfg = small_config();
  cfg.scheduler_type = "fcfs";
  cfg.virtual_workers = 1;
  cfg.max_active_reqs = 2;
  // Five simultaneous arrivals, worker serves one at a time: only 2 can
  // be active, the rest are rejected deterministically.
  std::vector<QueryRequest> trace;
  for (std::uint64_t i = 1; i <= 5; ++i)
    trace.push_back(req(i, 0, "twitter"));
  const Schedule s = build_schedule(cfg, trace);
  EXPECT_EQ(s.stats.admitted, 2u);
  EXPECT_EQ(s.stats.rejected, 3u);
  std::size_t rejected = 0;
  for (const QueryResponse& r : s.responses) {
    if (r.status == Status::kRejected) {
      ++rejected;
      EXPECT_FALSE(r.error.empty());
      EXPECT_EQ(r.batch, 0u);
    }
  }
  EXPECT_EQ(rejected, 3u);
  EXPECT_LE(s.stats.peak_active, cfg.max_active_reqs);
}

TEST(Scheduler, UnknownDatasetBecomesErrorNotQueued) {
  ServeConfig cfg = small_config();
  const std::vector<QueryRequest> trace = {req(1, 0, "friendster"),
                                           req(2, 5, "twitter")};
  const Schedule s = build_schedule(cfg, trace);
  EXPECT_EQ(s.stats.errored, 1u);
  EXPECT_EQ(s.stats.admitted, 1u);
  EXPECT_EQ(s.responses[0].status, Status::kError);
  EXPECT_NE(s.responses[0].error.find("friendster"), std::string::npos);
  EXPECT_EQ(s.responses[1].status, Status::kOk);
}

TEST(Scheduler, VirtualTimesAreConsistent) {
  const ServeConfig cfg = small_config();
  const auto trace = generate_trace(cfg.traffic);
  const Schedule s = build_schedule(cfg, trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const QueryResponse& r = s.responses[i];
    if (r.status != Status::kOk) continue;
    EXPECT_GE(r.dispatch_us, trace[i].arrival_us);
    EXPECT_GT(r.finish_us, r.dispatch_us);
    EXPECT_LE(r.finish_us, s.stats.makespan_us);
    ASSERT_GE(r.batch, 1u);
    ASSERT_LE(r.batch, s.batches.size());
    const BatchPlan& b = s.batches[r.batch - 1];
    EXPECT_EQ(r.dispatch_us, b.dispatch_us);
    EXPECT_LE(r.finish_us, b.finish_us);
    EXPECT_LT(b.worker, cfg.virtual_workers);
  }
}

TEST(Scheduler, VirtualCacheCountsMissesAndHits) {
  ServeConfig cfg = small_config();
  cfg.virtual_workers = 1;
  const std::vector<QueryRequest> trace = {
      req(1, 0, "twitter"), req(2, 100000, "twitter"),
      req(3, 200000, "vsp")};
  const Schedule s = build_schedule(cfg, trace);
  EXPECT_EQ(s.stats.cache_misses, 2u);  // twitter, vsp
  EXPECT_EQ(s.stats.cache_hits, 1u);    // the second twitter
  ASSERT_EQ(s.batches.size(), 3u);
  EXPECT_TRUE(s.batches[0].cache_miss);
  EXPECT_FALSE(s.batches[1].cache_miss);
  EXPECT_TRUE(s.batches[2].cache_miss);
}

TEST(Scheduler, CostModelOrdersAlgorithmsAndDatasets) {
  const CostModel cm{2048};
  // CF > PageRank > SSSP > BFS on the same dataset.
  EXPECT_GT(cm.service_us("twitter", Algo::kCf),
            cm.service_us("twitter", Algo::kPagerank));
  EXPECT_GT(cm.service_us("twitter", Algo::kPagerank),
            cm.service_us("twitter", Algo::kSssp));
  EXPECT_GT(cm.service_us("twitter", Algo::kSssp),
            cm.service_us("twitter", Algo::kBfs));
  // Bigger graphs cost more to load.
  EXPECT_GT(cm.load_us("livejournal"), cm.load_us("twitter"));
  EXPECT_GT(cm.bytes("livejournal"), cm.bytes("twitter"));
}

TEST(Scheduler, LatencyPercentileSortedIndexMethod) {
  std::vector<QueryResponse> rs;
  for (std::uint64_t us : {50, 10, 30, 20, 40}) {
    QueryResponse r;
    r.status = Status::kOk;
    r.arrival_us = 0;
    r.finish_us = us;
    rs.push_back(r);
  }
  QueryResponse rejected;
  rejected.status = Status::kRejected;
  rejected.finish_us = 9999;
  rs.push_back(rejected);  // non-kOk responses are excluded
  EXPECT_EQ(latency_percentile_us(rs, 50.0), 30u);
  EXPECT_EQ(latency_percentile_us(rs, 99.0), 50u);
  EXPECT_EQ(latency_percentile_us(rs, 100.0), 50u);
  EXPECT_EQ(latency_percentile_us({}, 50.0), 0u);
}

TEST(Scheduler, QueueSamplesRespectAdmissionBound) {
  const ServeConfig cfg = small_config();
  const auto trace = generate_trace(cfg.traffic);
  const Schedule s = build_schedule(cfg, trace);
  ASSERT_FALSE(s.queue_depth.empty());
  std::uint64_t prev_t = 0;
  for (const QueueSample& q : s.queue_depth) {
    EXPECT_LE(q.waiting + q.running, cfg.max_active_reqs);
    EXPECT_GE(q.t_us, prev_t);
    prev_t = q.t_us;
  }
}

}  // namespace
}  // namespace cosparse::serve
